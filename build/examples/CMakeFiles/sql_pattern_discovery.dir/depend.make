# Empty dependencies file for sql_pattern_discovery.
# This may be replaced when dependencies are built.
