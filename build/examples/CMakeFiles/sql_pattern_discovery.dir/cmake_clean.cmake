file(REMOVE_RECURSE
  "CMakeFiles/sql_pattern_discovery.dir/sql_pattern_discovery.cpp.o"
  "CMakeFiles/sql_pattern_discovery.dir/sql_pattern_discovery.cpp.o.d"
  "sql_pattern_discovery"
  "sql_pattern_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_pattern_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
