file(REMOVE_RECURSE
  "CMakeFiles/failover_recovery.dir/failover_recovery.cpp.o"
  "CMakeFiles/failover_recovery.dir/failover_recovery.cpp.o.d"
  "failover_recovery"
  "failover_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
