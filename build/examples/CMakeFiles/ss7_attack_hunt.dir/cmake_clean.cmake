file(REMOVE_RECURSE
  "CMakeFiles/ss7_attack_hunt.dir/ss7_attack_hunt.cpp.o"
  "CMakeFiles/ss7_attack_hunt.dir/ss7_attack_hunt.cpp.o.d"
  "ss7_attack_hunt"
  "ss7_attack_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss7_attack_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
