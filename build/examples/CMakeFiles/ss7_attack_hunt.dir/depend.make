# Empty dependencies file for ss7_attack_hunt.
# This may be replaced when dependencies are built.
