# Empty dependencies file for partition_invariance_test.
# This may be replaced when dependencies are built.
