file(REMOVE_RECURSE
  "CMakeFiles/partition_invariance_test.dir/partition_invariance_test.cpp.o"
  "CMakeFiles/partition_invariance_test.dir/partition_invariance_test.cpp.o.d"
  "partition_invariance_test"
  "partition_invariance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_invariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
