# Empty compiler generated dependencies file for timestamp_sweep_test.
# This may be replaced when dependencies are built.
