file(REMOVE_RECURSE
  "CMakeFiles/timestamp_sweep_test.dir/timestamp_sweep_test.cpp.o"
  "CMakeFiles/timestamp_sweep_test.dir/timestamp_sweep_test.cpp.o.d"
  "timestamp_sweep_test"
  "timestamp_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timestamp_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
