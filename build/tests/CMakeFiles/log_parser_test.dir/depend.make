# Empty dependencies file for log_parser_test.
# This may be replaced when dependencies are built.
