file(REMOVE_RECURSE
  "CMakeFiles/log_parser_test.dir/log_parser_test.cpp.o"
  "CMakeFiles/log_parser_test.dir/log_parser_test.cpp.o.d"
  "log_parser_test"
  "log_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
