file(REMOVE_RECURSE
  "CMakeFiles/job_test.dir/job_test.cpp.o"
  "CMakeFiles/job_test.dir/job_test.cpp.o.d"
  "job_test"
  "job_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
