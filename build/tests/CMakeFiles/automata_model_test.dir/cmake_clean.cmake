file(REMOVE_RECURSE
  "CMakeFiles/automata_model_test.dir/automata_model_test.cpp.o"
  "CMakeFiles/automata_model_test.dir/automata_model_test.cpp.o.d"
  "automata_model_test"
  "automata_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
