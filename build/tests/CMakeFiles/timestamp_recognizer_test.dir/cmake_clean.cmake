file(REMOVE_RECURSE
  "CMakeFiles/timestamp_recognizer_test.dir/timestamp_recognizer_test.cpp.o"
  "CMakeFiles/timestamp_recognizer_test.dir/timestamp_recognizer_test.cpp.o.d"
  "timestamp_recognizer_test"
  "timestamp_recognizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timestamp_recognizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
