# Empty dependencies file for timestamp_recognizer_test.
# This may be replaced when dependencies are built.
