file(REMOVE_RECURSE
  "CMakeFiles/parser_property_test.dir/parser_property_test.cpp.o"
  "CMakeFiles/parser_property_test.dir/parser_property_test.cpp.o.d"
  "parser_property_test"
  "parser_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
