file(REMOVE_RECURSE
  "CMakeFiles/event_gen_test.dir/event_gen_test.cpp.o"
  "CMakeFiles/event_gen_test.dir/event_gen_test.cpp.o.d"
  "event_gen_test"
  "event_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
