# Empty compiler generated dependencies file for event_gen_test.
# This may be replaced when dependencies are built.
