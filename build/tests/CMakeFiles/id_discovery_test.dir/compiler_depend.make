# Empty compiler generated dependencies file for id_discovery_test.
# This may be replaced when dependencies are built.
