file(REMOVE_RECURSE
  "CMakeFiles/id_discovery_test.dir/id_discovery_test.cpp.o"
  "CMakeFiles/id_discovery_test.dir/id_discovery_test.cpp.o.d"
  "id_discovery_test"
  "id_discovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/id_discovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
