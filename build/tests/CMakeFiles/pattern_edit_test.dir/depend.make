# Empty dependencies file for pattern_edit_test.
# This may be replaced when dependencies are built.
