file(REMOVE_RECURSE
  "CMakeFiles/pattern_edit_test.dir/pattern_edit_test.cpp.o"
  "CMakeFiles/pattern_edit_test.dir/pattern_edit_test.cpp.o.d"
  "pattern_edit_test"
  "pattern_edit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_edit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
