file(REMOVE_RECURSE
  "CMakeFiles/timestamp_format_test.dir/timestamp_format_test.cpp.o"
  "CMakeFiles/timestamp_format_test.dir/timestamp_format_test.cpp.o.d"
  "timestamp_format_test"
  "timestamp_format_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timestamp_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
