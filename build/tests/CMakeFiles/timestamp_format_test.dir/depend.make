# Empty dependencies file for timestamp_format_test.
# This may be replaced when dependencies are built.
