# Empty dependencies file for model_ops_test.
# This may be replaced when dependencies are built.
