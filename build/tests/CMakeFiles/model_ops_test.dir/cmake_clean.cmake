file(REMOVE_RECURSE
  "CMakeFiles/model_ops_test.dir/model_ops_test.cpp.o"
  "CMakeFiles/model_ops_test.dir/model_ops_test.cpp.o.d"
  "model_ops_test"
  "model_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
