
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/out_of_order_test.cpp" "tests/CMakeFiles/out_of_order_test.dir/out_of_order_test.cpp.o" "gcc" "tests/CMakeFiles/out_of_order_test.dir/out_of_order_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/automata/CMakeFiles/loglens_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/loglens_service.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/loglens_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/loglens_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/loglens_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/loglens_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/streaming/CMakeFiles/loglens_streaming.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/loglens_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/logmine/CMakeFiles/loglens_logmine.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenize/CMakeFiles/loglens_tokenize.dir/DependInfo.cmake"
  "/root/repo/build/src/timestamp/CMakeFiles/loglens_timestamp.dir/DependInfo.cmake"
  "/root/repo/build/src/grok/CMakeFiles/loglens_grok.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/loglens_json.dir/DependInfo.cmake"
  "/root/repo/build/src/regexlite/CMakeFiles/loglens_regexlite.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/loglens_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
