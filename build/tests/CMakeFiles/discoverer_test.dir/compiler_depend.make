# Empty compiler generated dependencies file for discoverer_test.
# This may be replaced when dependencies are built.
