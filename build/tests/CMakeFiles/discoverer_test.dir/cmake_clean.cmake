file(REMOVE_RECURSE
  "CMakeFiles/discoverer_test.dir/discoverer_test.cpp.o"
  "CMakeFiles/discoverer_test.dir/discoverer_test.cpp.o.d"
  "discoverer_test"
  "discoverer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discoverer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
