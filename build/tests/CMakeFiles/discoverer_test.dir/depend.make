# Empty dependencies file for discoverer_test.
# This may be replaced when dependencies are built.
