# Empty dependencies file for logstash_test.
# This may be replaced when dependencies are built.
