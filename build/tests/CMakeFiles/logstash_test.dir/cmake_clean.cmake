file(REMOVE_RECURSE
  "CMakeFiles/logstash_test.dir/logstash_test.cpp.o"
  "CMakeFiles/logstash_test.dir/logstash_test.cpp.o.d"
  "logstash_test"
  "logstash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logstash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
