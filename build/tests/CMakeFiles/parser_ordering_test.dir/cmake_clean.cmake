file(REMOVE_RECURSE
  "CMakeFiles/parser_ordering_test.dir/parser_ordering_test.cpp.o"
  "CMakeFiles/parser_ordering_test.dir/parser_ordering_test.cpp.o.d"
  "parser_ordering_test"
  "parser_ordering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_ordering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
