# Empty compiler generated dependencies file for parser_ordering_test.
# This may be replaced when dependencies are built.
