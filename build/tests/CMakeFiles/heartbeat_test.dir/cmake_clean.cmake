file(REMOVE_RECURSE
  "CMakeFiles/heartbeat_test.dir/heartbeat_test.cpp.o"
  "CMakeFiles/heartbeat_test.dir/heartbeat_test.cpp.o.d"
  "heartbeat_test"
  "heartbeat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heartbeat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
