file(REMOVE_RECURSE
  "CMakeFiles/grok_pattern_test.dir/grok_pattern_test.cpp.o"
  "CMakeFiles/grok_pattern_test.dir/grok_pattern_test.cpp.o.d"
  "grok_pattern_test"
  "grok_pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grok_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
