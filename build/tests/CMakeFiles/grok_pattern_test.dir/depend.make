# Empty dependencies file for grok_pattern_test.
# This may be replaced when dependencies are built.
