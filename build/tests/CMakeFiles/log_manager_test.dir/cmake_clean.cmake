file(REMOVE_RECURSE
  "CMakeFiles/log_manager_test.dir/log_manager_test.cpp.o"
  "CMakeFiles/log_manager_test.dir/log_manager_test.cpp.o.d"
  "log_manager_test"
  "log_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
