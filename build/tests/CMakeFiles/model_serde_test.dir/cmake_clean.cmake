file(REMOVE_RECURSE
  "CMakeFiles/model_serde_test.dir/model_serde_test.cpp.o"
  "CMakeFiles/model_serde_test.dir/model_serde_test.cpp.o.d"
  "model_serde_test"
  "model_serde_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_serde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
