# Empty dependencies file for model_serde_test.
# This may be replaced when dependencies are built.
