# Empty dependencies file for extension_e2e_test.
# This may be replaced when dependencies are built.
