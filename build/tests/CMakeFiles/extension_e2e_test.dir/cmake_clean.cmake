file(REMOVE_RECURSE
  "CMakeFiles/extension_e2e_test.dir/extension_e2e_test.cpp.o"
  "CMakeFiles/extension_e2e_test.dir/extension_e2e_test.cpp.o.d"
  "extension_e2e_test"
  "extension_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
