# Empty compiler generated dependencies file for streaming_stress_test.
# This may be replaced when dependencies are built.
