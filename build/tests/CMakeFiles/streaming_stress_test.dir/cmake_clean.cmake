file(REMOVE_RECURSE
  "CMakeFiles/streaming_stress_test.dir/streaming_stress_test.cpp.o"
  "CMakeFiles/streaming_stress_test.dir/streaming_stress_test.cpp.o.d"
  "streaming_stress_test"
  "streaming_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
