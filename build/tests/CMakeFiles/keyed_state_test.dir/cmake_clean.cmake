file(REMOVE_RECURSE
  "CMakeFiles/keyed_state_test.dir/keyed_state_test.cpp.o"
  "CMakeFiles/keyed_state_test.dir/keyed_state_test.cpp.o.d"
  "keyed_state_test"
  "keyed_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyed_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
