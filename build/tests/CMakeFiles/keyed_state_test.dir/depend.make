# Empty dependencies file for keyed_state_test.
# This may be replaced when dependencies are built.
