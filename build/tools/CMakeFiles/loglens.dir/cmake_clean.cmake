file(REMOVE_RECURSE
  "CMakeFiles/loglens.dir/loglens_cli.cpp.o"
  "CMakeFiles/loglens.dir/loglens_cli.cpp.o.d"
  "loglens"
  "loglens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
