# Empty dependencies file for loglens.
# This may be replaced when dependencies are built.
