# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_demo "/root/repo/build/tools/loglens" "demo")
set_tests_properties(cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_roundtrip "/usr/bin/cmake" "-DLOGLENS=/root/repo/build/tools/loglens" "-DWORKDIR=/root/repo/build/tools/cli_test" "-P" "/root/repo/tools/cli_roundtrip.cmake")
set_tests_properties(cli_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
