file(REMOVE_RECURSE
  "CMakeFiles/loglens_regexlite.dir/regex.cpp.o"
  "CMakeFiles/loglens_regexlite.dir/regex.cpp.o.d"
  "libloglens_regexlite.a"
  "libloglens_regexlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_regexlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
