file(REMOVE_RECURSE
  "libloglens_regexlite.a"
)
