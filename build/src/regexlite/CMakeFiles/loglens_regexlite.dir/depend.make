# Empty dependencies file for loglens_regexlite.
# This may be replaced when dependencies are built.
