# CMake generated Testfile for 
# Source directory: /root/repo/src/regexlite
# Build directory: /root/repo/build/src/regexlite
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
