file(REMOVE_RECURSE
  "CMakeFiles/loglens_grok.dir/datatype.cpp.o"
  "CMakeFiles/loglens_grok.dir/datatype.cpp.o.d"
  "CMakeFiles/loglens_grok.dir/edit.cpp.o"
  "CMakeFiles/loglens_grok.dir/edit.cpp.o.d"
  "CMakeFiles/loglens_grok.dir/pattern.cpp.o"
  "CMakeFiles/loglens_grok.dir/pattern.cpp.o.d"
  "libloglens_grok.a"
  "libloglens_grok.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_grok.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
