
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grok/datatype.cpp" "src/grok/CMakeFiles/loglens_grok.dir/datatype.cpp.o" "gcc" "src/grok/CMakeFiles/loglens_grok.dir/datatype.cpp.o.d"
  "/root/repo/src/grok/edit.cpp" "src/grok/CMakeFiles/loglens_grok.dir/edit.cpp.o" "gcc" "src/grok/CMakeFiles/loglens_grok.dir/edit.cpp.o.d"
  "/root/repo/src/grok/pattern.cpp" "src/grok/CMakeFiles/loglens_grok.dir/pattern.cpp.o" "gcc" "src/grok/CMakeFiles/loglens_grok.dir/pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/loglens_common.dir/DependInfo.cmake"
  "/root/repo/build/src/regexlite/CMakeFiles/loglens_regexlite.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/loglens_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
