# Empty dependencies file for loglens_grok.
# This may be replaced when dependencies are built.
