file(REMOVE_RECURSE
  "libloglens_grok.a"
)
