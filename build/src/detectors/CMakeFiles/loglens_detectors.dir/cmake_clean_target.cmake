file(REMOVE_RECURSE
  "libloglens_detectors.a"
)
