# Empty dependencies file for loglens_detectors.
# This may be replaced when dependencies are built.
