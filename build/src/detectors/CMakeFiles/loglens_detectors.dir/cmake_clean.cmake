file(REMOVE_RECURSE
  "CMakeFiles/loglens_detectors.dir/field_range.cpp.o"
  "CMakeFiles/loglens_detectors.dir/field_range.cpp.o.d"
  "CMakeFiles/loglens_detectors.dir/keyword.cpp.o"
  "CMakeFiles/loglens_detectors.dir/keyword.cpp.o.d"
  "libloglens_detectors.a"
  "libloglens_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
