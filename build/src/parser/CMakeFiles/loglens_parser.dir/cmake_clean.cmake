file(REMOVE_RECURSE
  "CMakeFiles/loglens_parser.dir/log_parser.cpp.o"
  "CMakeFiles/loglens_parser.dir/log_parser.cpp.o.d"
  "CMakeFiles/loglens_parser.dir/signature.cpp.o"
  "CMakeFiles/loglens_parser.dir/signature.cpp.o.d"
  "libloglens_parser.a"
  "libloglens_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
