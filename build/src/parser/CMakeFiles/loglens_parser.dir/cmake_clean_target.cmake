file(REMOVE_RECURSE
  "libloglens_parser.a"
)
