# Empty dependencies file for loglens_parser.
# This may be replaced when dependencies are built.
