file(REMOVE_RECURSE
  "libloglens_timestamp.a"
)
