# Empty dependencies file for loglens_timestamp.
# This may be replaced when dependencies are built.
