file(REMOVE_RECURSE
  "CMakeFiles/loglens_timestamp.dir/format.cpp.o"
  "CMakeFiles/loglens_timestamp.dir/format.cpp.o.d"
  "CMakeFiles/loglens_timestamp.dir/recognizer.cpp.o"
  "CMakeFiles/loglens_timestamp.dir/recognizer.cpp.o.d"
  "libloglens_timestamp.a"
  "libloglens_timestamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_timestamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
