# Empty compiler generated dependencies file for loglens_streaming.
# This may be replaced when dependencies are built.
