file(REMOVE_RECURSE
  "libloglens_streaming.a"
)
