file(REMOVE_RECURSE
  "CMakeFiles/loglens_streaming.dir/engine.cpp.o"
  "CMakeFiles/loglens_streaming.dir/engine.cpp.o.d"
  "CMakeFiles/loglens_streaming.dir/job.cpp.o"
  "CMakeFiles/loglens_streaming.dir/job.cpp.o.d"
  "CMakeFiles/loglens_streaming.dir/thread_pool.cpp.o"
  "CMakeFiles/loglens_streaming.dir/thread_pool.cpp.o.d"
  "libloglens_streaming.a"
  "libloglens_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
