file(REMOVE_RECURSE
  "CMakeFiles/loglens_automata.dir/detector.cpp.o"
  "CMakeFiles/loglens_automata.dir/detector.cpp.o.d"
  "CMakeFiles/loglens_automata.dir/id_discovery.cpp.o"
  "CMakeFiles/loglens_automata.dir/id_discovery.cpp.o.d"
  "CMakeFiles/loglens_automata.dir/model.cpp.o"
  "CMakeFiles/loglens_automata.dir/model.cpp.o.d"
  "libloglens_automata.a"
  "libloglens_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
