file(REMOVE_RECURSE
  "libloglens_automata.a"
)
