# Empty dependencies file for loglens_automata.
# This may be replaced when dependencies are built.
