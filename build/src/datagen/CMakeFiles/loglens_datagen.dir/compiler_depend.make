# Empty compiler generated dependencies file for loglens_datagen.
# This may be replaced when dependencies are built.
