file(REMOVE_RECURSE
  "libloglens_datagen.a"
)
