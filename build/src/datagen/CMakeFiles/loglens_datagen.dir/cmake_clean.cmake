file(REMOVE_RECURSE
  "CMakeFiles/loglens_datagen.dir/datasets.cpp.o"
  "CMakeFiles/loglens_datagen.dir/datasets.cpp.o.d"
  "CMakeFiles/loglens_datagen.dir/event_gen.cpp.o"
  "CMakeFiles/loglens_datagen.dir/event_gen.cpp.o.d"
  "CMakeFiles/loglens_datagen.dir/render.cpp.o"
  "CMakeFiles/loglens_datagen.dir/render.cpp.o.d"
  "CMakeFiles/loglens_datagen.dir/template_gen.cpp.o"
  "CMakeFiles/loglens_datagen.dir/template_gen.cpp.o.d"
  "libloglens_datagen.a"
  "libloglens_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
