# Empty compiler generated dependencies file for loglens_broker.
# This may be replaced when dependencies are built.
