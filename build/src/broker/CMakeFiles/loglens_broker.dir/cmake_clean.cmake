file(REMOVE_RECURSE
  "CMakeFiles/loglens_broker.dir/broker.cpp.o"
  "CMakeFiles/loglens_broker.dir/broker.cpp.o.d"
  "libloglens_broker.a"
  "libloglens_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
