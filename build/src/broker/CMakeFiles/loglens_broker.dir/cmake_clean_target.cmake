file(REMOVE_RECURSE
  "libloglens_broker.a"
)
