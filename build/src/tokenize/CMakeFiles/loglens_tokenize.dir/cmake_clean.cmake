file(REMOVE_RECURSE
  "CMakeFiles/loglens_tokenize.dir/preprocessor.cpp.o"
  "CMakeFiles/loglens_tokenize.dir/preprocessor.cpp.o.d"
  "libloglens_tokenize.a"
  "libloglens_tokenize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_tokenize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
