# Empty compiler generated dependencies file for loglens_tokenize.
# This may be replaced when dependencies are built.
