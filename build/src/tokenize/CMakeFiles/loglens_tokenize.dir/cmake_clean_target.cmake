file(REMOVE_RECURSE
  "libloglens_tokenize.a"
)
