# Empty compiler generated dependencies file for loglens_logmine.
# This may be replaced when dependencies are built.
