file(REMOVE_RECURSE
  "libloglens_logmine.a"
)
