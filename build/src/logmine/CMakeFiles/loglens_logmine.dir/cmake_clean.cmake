file(REMOVE_RECURSE
  "CMakeFiles/loglens_logmine.dir/discoverer.cpp.o"
  "CMakeFiles/loglens_logmine.dir/discoverer.cpp.o.d"
  "libloglens_logmine.a"
  "libloglens_logmine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_logmine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
