# Empty compiler generated dependencies file for loglens_common.
# This may be replaced when dependencies are built.
