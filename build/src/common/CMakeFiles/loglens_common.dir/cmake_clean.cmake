file(REMOVE_RECURSE
  "CMakeFiles/loglens_common.dir/strings.cpp.o"
  "CMakeFiles/loglens_common.dir/strings.cpp.o.d"
  "CMakeFiles/loglens_common.dir/time.cpp.o"
  "CMakeFiles/loglens_common.dir/time.cpp.o.d"
  "libloglens_common.a"
  "libloglens_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
