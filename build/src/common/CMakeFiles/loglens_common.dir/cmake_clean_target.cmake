file(REMOVE_RECURSE
  "libloglens_common.a"
)
