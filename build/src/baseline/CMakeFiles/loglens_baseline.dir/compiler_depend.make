# Empty compiler generated dependencies file for loglens_baseline.
# This may be replaced when dependencies are built.
