file(REMOVE_RECURSE
  "libloglens_baseline.a"
)
