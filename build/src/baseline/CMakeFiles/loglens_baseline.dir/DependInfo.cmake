
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/logstash_parser.cpp" "src/baseline/CMakeFiles/loglens_baseline.dir/logstash_parser.cpp.o" "gcc" "src/baseline/CMakeFiles/loglens_baseline.dir/logstash_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/loglens_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/regexlite/CMakeFiles/loglens_regexlite.dir/DependInfo.cmake"
  "/root/repo/build/src/grok/CMakeFiles/loglens_grok.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/loglens_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/loglens_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
