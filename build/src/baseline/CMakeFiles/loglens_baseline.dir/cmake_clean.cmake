file(REMOVE_RECURSE
  "CMakeFiles/loglens_baseline.dir/logstash_parser.cpp.o"
  "CMakeFiles/loglens_baseline.dir/logstash_parser.cpp.o.d"
  "libloglens_baseline.a"
  "libloglens_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
