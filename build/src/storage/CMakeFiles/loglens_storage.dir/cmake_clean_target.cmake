file(REMOVE_RECURSE
  "libloglens_storage.a"
)
