file(REMOVE_RECURSE
  "CMakeFiles/loglens_storage.dir/anomaly.cpp.o"
  "CMakeFiles/loglens_storage.dir/anomaly.cpp.o.d"
  "CMakeFiles/loglens_storage.dir/document_store.cpp.o"
  "CMakeFiles/loglens_storage.dir/document_store.cpp.o.d"
  "CMakeFiles/loglens_storage.dir/stores.cpp.o"
  "CMakeFiles/loglens_storage.dir/stores.cpp.o.d"
  "libloglens_storage.a"
  "libloglens_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
