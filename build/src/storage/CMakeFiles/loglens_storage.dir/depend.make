# Empty dependencies file for loglens_storage.
# This may be replaced when dependencies are built.
