file(REMOVE_RECURSE
  "libloglens_service.a"
)
