# Empty dependencies file for loglens_service.
# This may be replaced when dependencies are built.
