
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/agent.cpp" "src/service/CMakeFiles/loglens_service.dir/agent.cpp.o" "gcc" "src/service/CMakeFiles/loglens_service.dir/agent.cpp.o.d"
  "/root/repo/src/service/dashboard.cpp" "src/service/CMakeFiles/loglens_service.dir/dashboard.cpp.o" "gcc" "src/service/CMakeFiles/loglens_service.dir/dashboard.cpp.o.d"
  "/root/repo/src/service/feedback.cpp" "src/service/CMakeFiles/loglens_service.dir/feedback.cpp.o" "gcc" "src/service/CMakeFiles/loglens_service.dir/feedback.cpp.o.d"
  "/root/repo/src/service/heartbeat.cpp" "src/service/CMakeFiles/loglens_service.dir/heartbeat.cpp.o" "gcc" "src/service/CMakeFiles/loglens_service.dir/heartbeat.cpp.o.d"
  "/root/repo/src/service/log_manager.cpp" "src/service/CMakeFiles/loglens_service.dir/log_manager.cpp.o" "gcc" "src/service/CMakeFiles/loglens_service.dir/log_manager.cpp.o.d"
  "/root/repo/src/service/model.cpp" "src/service/CMakeFiles/loglens_service.dir/model.cpp.o" "gcc" "src/service/CMakeFiles/loglens_service.dir/model.cpp.o.d"
  "/root/repo/src/service/model_ops.cpp" "src/service/CMakeFiles/loglens_service.dir/model_ops.cpp.o" "gcc" "src/service/CMakeFiles/loglens_service.dir/model_ops.cpp.o.d"
  "/root/repo/src/service/service.cpp" "src/service/CMakeFiles/loglens_service.dir/service.cpp.o" "gcc" "src/service/CMakeFiles/loglens_service.dir/service.cpp.o.d"
  "/root/repo/src/service/tasks.cpp" "src/service/CMakeFiles/loglens_service.dir/tasks.cpp.o" "gcc" "src/service/CMakeFiles/loglens_service.dir/tasks.cpp.o.d"
  "/root/repo/src/service/wire.cpp" "src/service/CMakeFiles/loglens_service.dir/wire.cpp.o" "gcc" "src/service/CMakeFiles/loglens_service.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/automata/CMakeFiles/loglens_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/loglens_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/logmine/CMakeFiles/loglens_logmine.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/loglens_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenize/CMakeFiles/loglens_tokenize.dir/DependInfo.cmake"
  "/root/repo/build/src/streaming/CMakeFiles/loglens_streaming.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/loglens_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/loglens_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/timestamp/CMakeFiles/loglens_timestamp.dir/DependInfo.cmake"
  "/root/repo/build/src/grok/CMakeFiles/loglens_grok.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/loglens_json.dir/DependInfo.cmake"
  "/root/repo/build/src/regexlite/CMakeFiles/loglens_regexlite.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/loglens_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
