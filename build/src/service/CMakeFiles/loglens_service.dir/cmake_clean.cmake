file(REMOVE_RECURSE
  "CMakeFiles/loglens_service.dir/agent.cpp.o"
  "CMakeFiles/loglens_service.dir/agent.cpp.o.d"
  "CMakeFiles/loglens_service.dir/dashboard.cpp.o"
  "CMakeFiles/loglens_service.dir/dashboard.cpp.o.d"
  "CMakeFiles/loglens_service.dir/feedback.cpp.o"
  "CMakeFiles/loglens_service.dir/feedback.cpp.o.d"
  "CMakeFiles/loglens_service.dir/heartbeat.cpp.o"
  "CMakeFiles/loglens_service.dir/heartbeat.cpp.o.d"
  "CMakeFiles/loglens_service.dir/log_manager.cpp.o"
  "CMakeFiles/loglens_service.dir/log_manager.cpp.o.d"
  "CMakeFiles/loglens_service.dir/model.cpp.o"
  "CMakeFiles/loglens_service.dir/model.cpp.o.d"
  "CMakeFiles/loglens_service.dir/model_ops.cpp.o"
  "CMakeFiles/loglens_service.dir/model_ops.cpp.o.d"
  "CMakeFiles/loglens_service.dir/service.cpp.o"
  "CMakeFiles/loglens_service.dir/service.cpp.o.d"
  "CMakeFiles/loglens_service.dir/tasks.cpp.o"
  "CMakeFiles/loglens_service.dir/tasks.cpp.o.d"
  "CMakeFiles/loglens_service.dir/wire.cpp.o"
  "CMakeFiles/loglens_service.dir/wire.cpp.o.d"
  "libloglens_service.a"
  "libloglens_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
