# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("json")
subdirs("regexlite")
subdirs("grok")
subdirs("timestamp")
subdirs("tokenize")
subdirs("broker")
subdirs("storage")
subdirs("streaming")
subdirs("logmine")
subdirs("parser")
subdirs("automata")
subdirs("detectors")
subdirs("baseline")
subdirs("datagen")
subdirs("service")
