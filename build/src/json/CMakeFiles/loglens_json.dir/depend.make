# Empty dependencies file for loglens_json.
# This may be replaced when dependencies are built.
