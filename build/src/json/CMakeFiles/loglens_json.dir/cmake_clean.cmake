file(REMOVE_RECURSE
  "CMakeFiles/loglens_json.dir/json.cpp.o"
  "CMakeFiles/loglens_json.dir/json.cpp.o.d"
  "libloglens_json.a"
  "libloglens_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loglens_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
