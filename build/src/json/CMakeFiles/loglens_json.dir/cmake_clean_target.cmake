file(REMOVE_RECURSE
  "libloglens_json.a"
)
