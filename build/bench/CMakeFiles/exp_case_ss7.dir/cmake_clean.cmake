file(REMOVE_RECURSE
  "CMakeFiles/exp_case_ss7.dir/exp_case_ss7.cpp.o"
  "CMakeFiles/exp_case_ss7.dir/exp_case_ss7.cpp.o.d"
  "exp_case_ss7"
  "exp_case_ss7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_case_ss7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
