# Empty dependencies file for exp_case_ss7.
# This may be replaced when dependencies are built.
