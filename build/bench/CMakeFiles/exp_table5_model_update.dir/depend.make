# Empty dependencies file for exp_table5_model_update.
# This may be replaced when dependencies are built.
