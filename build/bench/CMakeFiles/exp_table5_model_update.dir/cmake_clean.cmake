file(REMOVE_RECURSE
  "CMakeFiles/exp_table5_model_update.dir/exp_table5_model_update.cpp.o"
  "CMakeFiles/exp_table5_model_update.dir/exp_table5_model_update.cpp.o.d"
  "exp_table5_model_update"
  "exp_table5_model_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table5_model_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
