file(REMOVE_RECURSE
  "CMakeFiles/bench_signature_match.dir/bench_signature_match.cpp.o"
  "CMakeFiles/bench_signature_match.dir/bench_signature_match.cpp.o.d"
  "bench_signature_match"
  "bench_signature_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signature_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
