# Empty compiler generated dependencies file for bench_signature_match.
# This may be replaced when dependencies are built.
