# Empty dependencies file for bench_parser_memory.
# This may be replaced when dependencies are built.
