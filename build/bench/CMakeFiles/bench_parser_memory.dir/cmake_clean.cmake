file(REMOVE_RECURSE
  "CMakeFiles/bench_parser_memory.dir/bench_parser_memory.cpp.o"
  "CMakeFiles/bench_parser_memory.dir/bench_parser_memory.cpp.o.d"
  "bench_parser_memory"
  "bench_parser_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parser_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
