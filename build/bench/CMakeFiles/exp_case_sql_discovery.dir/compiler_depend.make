# Empty compiler generated dependencies file for exp_case_sql_discovery.
# This may be replaced when dependencies are built.
