file(REMOVE_RECURSE
  "CMakeFiles/exp_case_sql_discovery.dir/exp_case_sql_discovery.cpp.o"
  "CMakeFiles/exp_case_sql_discovery.dir/exp_case_sql_discovery.cpp.o.d"
  "exp_case_sql_discovery"
  "exp_case_sql_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_case_sql_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
