file(REMOVE_RECURSE
  "CMakeFiles/bench_open_states.dir/bench_open_states.cpp.o"
  "CMakeFiles/bench_open_states.dir/bench_open_states.cpp.o.d"
  "bench_open_states"
  "bench_open_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_open_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
