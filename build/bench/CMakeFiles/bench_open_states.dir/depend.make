# Empty dependencies file for bench_open_states.
# This may be replaced when dependencies are built.
