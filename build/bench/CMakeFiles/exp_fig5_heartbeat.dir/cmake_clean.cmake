file(REMOVE_RECURSE
  "CMakeFiles/exp_fig5_heartbeat.dir/exp_fig5_heartbeat.cpp.o"
  "CMakeFiles/exp_fig5_heartbeat.dir/exp_fig5_heartbeat.cpp.o.d"
  "exp_fig5_heartbeat"
  "exp_fig5_heartbeat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig5_heartbeat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
