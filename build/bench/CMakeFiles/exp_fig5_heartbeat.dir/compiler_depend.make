# Empty compiler generated dependencies file for exp_fig5_heartbeat.
# This may be replaced when dependencies are built.
