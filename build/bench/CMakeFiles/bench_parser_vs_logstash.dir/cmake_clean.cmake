file(REMOVE_RECURSE
  "CMakeFiles/bench_parser_vs_logstash.dir/bench_parser_vs_logstash.cpp.o"
  "CMakeFiles/bench_parser_vs_logstash.dir/bench_parser_vs_logstash.cpp.o.d"
  "bench_parser_vs_logstash"
  "bench_parser_vs_logstash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parser_vs_logstash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
