# Empty compiler generated dependencies file for bench_parser_vs_logstash.
# This may be replaced when dependencies are built.
