# Empty dependencies file for exp_fig4_accuracy.
# This may be replaced when dependencies are built.
