file(REMOVE_RECURSE
  "CMakeFiles/exp_fig4_accuracy.dir/exp_fig4_accuracy.cpp.o"
  "CMakeFiles/exp_fig4_accuracy.dir/exp_fig4_accuracy.cpp.o.d"
  "exp_fig4_accuracy"
  "exp_fig4_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig4_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
