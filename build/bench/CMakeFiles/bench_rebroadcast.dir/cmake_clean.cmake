file(REMOVE_RECURSE
  "CMakeFiles/bench_rebroadcast.dir/bench_rebroadcast.cpp.o"
  "CMakeFiles/bench_rebroadcast.dir/bench_rebroadcast.cpp.o.d"
  "bench_rebroadcast"
  "bench_rebroadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rebroadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
