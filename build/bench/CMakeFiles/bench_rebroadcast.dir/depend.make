# Empty dependencies file for bench_rebroadcast.
# This may be replaced when dependencies are built.
