# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(exp_fig4_accuracy "/root/repo/build/bench/exp_fig4_accuracy")
set_tests_properties(exp_fig4_accuracy PROPERTIES  ENVIRONMENT "LOGLENS_SCALE=0.05" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;46;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(exp_fig5_heartbeat "/root/repo/build/bench/exp_fig5_heartbeat")
set_tests_properties(exp_fig5_heartbeat PROPERTIES  ENVIRONMENT "LOGLENS_SCALE=0.05" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;46;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(exp_table5_model_update "/root/repo/build/bench/exp_table5_model_update")
set_tests_properties(exp_table5_model_update PROPERTIES  ENVIRONMENT "LOGLENS_SCALE=0.05" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;46;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(exp_case_sql_discovery "/root/repo/build/bench/exp_case_sql_discovery")
set_tests_properties(exp_case_sql_discovery PROPERTIES  ENVIRONMENT "LOGLENS_SCALE=0.05" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;46;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(exp_case_ss7 "/root/repo/build/bench/exp_case_ss7")
set_tests_properties(exp_case_ss7 PROPERTIES  ENVIRONMENT "LOGLENS_SCALE=0.05" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;46;add_test;/root/repo/bench/CMakeLists.txt;0;")
