#!/usr/bin/env bash
# Tier-1 gate plus a sanitizer pass:
#   1. regular build + full ctest (the suite every PR must keep green)
#   2. sanitizer build + ctest (catches lifetime/race bugs the regular
#      build hides)
#
# Usage: tools/check.sh [--skip-asan] [--skip-sanitizer] [--sanitizer-only]
#   --skip-sanitizer  run only the regular pass
#   --skip-asan       skip the sanitizer pass only when it would be ASan; a
#                     pass explicitly requested via LOGLENS_SANITIZE=thread
#                     still runs
#   --sanitizer-only  run only the sanitizer pass (the CI matrix legs)
#
# Environment:
#   LOGLENS_SANITIZE       sanitizer for the second pass (default: address)
#   LOGLENS_CTEST_TIMEOUT  default per-test timeout in seconds, propagated to
#                          ctest (the sanitizer pass gets 3x — instrumented
#                          binaries are that much slower). Tests with their
#                          own TIMEOUT property keep it.
#   LOGLENS_CMAKE_ARGS     extra arguments for every cmake configure, e.g.
#                          "-DCMAKE_CXX_COMPILER_LAUNCHER=ccache
#                           -DLOGLENS_WERROR=ON"
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
sanitizer="${LOGLENS_SANITIZE:-address}"

run_regular=1
run_sanitizer=1
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizer) run_sanitizer=0 ;;
    --skip-asan)
      if [[ "$sanitizer" == "address" ]]; then run_sanitizer=0; fi ;;
    --sanitizer-only) run_regular=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake_args=()
if [[ -n "${LOGLENS_CMAKE_ARGS:-}" ]]; then
  # Intentional word splitting: the variable carries several -D flags.
  # shellcheck disable=SC2206
  cmake_args=(${LOGLENS_CMAKE_ARGS})
fi

ctest_args=(--output-on-failure -j "$jobs")
san_ctest_args=("${ctest_args[@]}")
if [[ -n "${LOGLENS_CTEST_TIMEOUT:-}" ]]; then
  ctest_args+=(--timeout "$LOGLENS_CTEST_TIMEOUT")
  san_ctest_args+=(--timeout "$((LOGLENS_CTEST_TIMEOUT * 3))")
fi

if [[ "$run_regular" == 1 ]]; then
  echo "== tier-1: regular build + ctest =="
  cmake -B "$repo/build" -S "$repo" "${cmake_args[@]}" >/dev/null
  cmake --build "$repo/build" -j "$jobs"
  ctest --test-dir "$repo/build" "${ctest_args[@]}"
fi

if [[ "$run_sanitizer" == 1 ]]; then
  echo "== sanitizer pass: ${sanitizer} build + ctest =="
  cmake -B "$repo/build-${sanitizer}" -S "$repo" \
        -DLOGLENS_SANITIZE="${sanitizer}" "${cmake_args[@]}" >/dev/null
  cmake --build "$repo/build-${sanitizer}" -j "$jobs"
  ctest --test-dir "$repo/build-${sanitizer}" "${san_ctest_args[@]}"
else
  echo "== sanitizer pass skipped =="
fi

echo "== all checks passed =="
