#!/usr/bin/env bash
# Tier-1 gate plus a sanitizer pass:
#   1. regular build + full ctest (the suite every PR must keep green)
#   2. AddressSanitizer build + ctest (catches lifetime/race-adjacent bugs
#      the regular build hides)
#
# Usage: tools/check.sh [--skip-asan]
# Set LOGLENS_SANITIZE=thread in the environment to run TSan instead of ASan
# for the second pass.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
sanitizer="${LOGLENS_SANITIZE:-address}"

echo "== tier-1: regular build + ctest =="
cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

if [[ "${1:-}" == "--skip-asan" ]]; then
  echo "== sanitizer pass skipped =="
  exit 0
fi

echo "== sanitizer pass: ${sanitizer} build + ctest =="
cmake -B "$repo/build-${sanitizer}" -S "$repo" \
      -DLOGLENS_SANITIZE="${sanitizer}" >/dev/null
cmake --build "$repo/build-${sanitizer}" -j "$jobs"
ctest --test-dir "$repo/build-${sanitizer}" --output-on-failure -j "$jobs"

echo "== all checks passed =="
