#!/usr/bin/env bash
# Tier-1 gate plus a sanitizer pass and a static-analysis pass:
#   1. regular build + full ctest (the suite every PR must keep green)
#   2. sanitizer build + ctest (catches lifetime/race bugs the regular
#      build hides)
#   3. --static-only: project lint, Clang -Werror=thread-safety over the
#      whole tree, the negative thread-safety compile test, and clang-tidy
#      on the concurrent core (docs/STATIC_ANALYSIS.md)
#
# Usage: tools/check.sh [--skip-asan] [--skip-sanitizer] [--sanitizer-only]
#                       [--static-only] [--coverage]
#   --skip-sanitizer  run only the regular pass
#   --skip-asan       skip the sanitizer pass only when it would be ASan; a
#                     pass explicitly requested via LOGLENS_SANITIZE=thread
#                     still runs
#   --sanitizer-only  run only the sanitizer pass (the CI matrix legs)
#   --static-only     run only the static gates (no tests). Lint always
#                     runs; the Clang steps are skipped with a notice when
#                     no clang++ is on PATH (they are enforced in CI).
#   --coverage        run only the coverage pass: instrumented build
#                     (-DLOGLENS_COVERAGE=ON) + ctest, then
#                     tools/coverage_report.py renders coverage-html/ and
#                     enforces the src/automata/ line-coverage floor. Use
#                     clang via LOGLENS_CMAKE_ARGS for the llvm-cov
#                     annotated-source report (the CI coverage job does);
#                     GCC builds fall back to gcov aggregation.
#
# Environment:
#   LOGLENS_SANITIZE       sanitizer for the second pass (default: address;
#                          thread and undefined are the other CI legs)
#   LOGLENS_CTEST_TIMEOUT  default per-test timeout in seconds, propagated to
#                          ctest (the sanitizer pass gets 3x — instrumented
#                          binaries are that much slower). Tests with their
#                          own TIMEOUT property keep it.
#   LOGLENS_CMAKE_ARGS     extra arguments for every cmake configure, e.g.
#                          "-DCMAKE_CXX_COMPILER_LAUNCHER=ccache
#                           -DLOGLENS_WERROR=ON"
#   LOGLENS_CLANGXX        clang++ binary for the static pass (default:
#                          clang++ from PATH)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
sanitizer="${LOGLENS_SANITIZE:-address}"

run_regular=1
run_sanitizer=1
run_static=0
run_coverage=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizer) run_sanitizer=0 ;;
    --skip-asan)
      if [[ "$sanitizer" == "address" ]]; then run_sanitizer=0; fi ;;
    --sanitizer-only) run_regular=0 ;;
    --static-only) run_static=1; run_regular=0; run_sanitizer=0 ;;
    --coverage) run_coverage=1; run_regular=0; run_sanitizer=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake_args=()
if [[ -n "${LOGLENS_CMAKE_ARGS:-}" ]]; then
  # Intentional word splitting: the variable carries several -D flags.
  # shellcheck disable=SC2206
  cmake_args=(${LOGLENS_CMAKE_ARGS})
fi

ctest_args=(--output-on-failure -j "$jobs")
san_ctest_args=("${ctest_args[@]}")
if [[ -n "${LOGLENS_CTEST_TIMEOUT:-}" ]]; then
  ctest_args+=(--timeout "$LOGLENS_CTEST_TIMEOUT")
  san_ctest_args+=(--timeout "$((LOGLENS_CTEST_TIMEOUT * 3))")
fi

if [[ "$run_static" == 1 ]]; then
  echo "== static: project lint =="
  python3 "$repo/tools/lint.py" --self-test
  python3 "$repo/tools/lint.py"

  clangxx="${LOGLENS_CLANGXX:-clang++}"
  if command -v "$clangxx" >/dev/null 2>&1; then
    echo "== static: clang -Werror=thread-safety build =="
    cmake -B "$repo/build-tsa" -S "$repo" \
          -DCMAKE_CXX_COMPILER="$clangxx" -DLOGLENS_THREAD_SAFETY=ON \
          "${cmake_args[@]}" >/dev/null
    cmake --build "$repo/build-tsa" -j "$jobs"

    echo "== static: negative thread-safety compile test =="
    # The deliberately mis-annotated TU must be REJECTED by the gate...
    if "$clangxx" -std=c++20 -fsyntax-only -I "$repo/src" \
         -Wthread-safety -Werror=thread-safety \
         "$repo/tests/static/thread_safety_negative.cpp" 2>/dev/null; then
      echo "FAIL: thread_safety_negative.cpp compiled under the gate" >&2
      exit 1
    fi
    # ...while being well-formed without it (a syntax error would fake the
    # rejection above).
    "$clangxx" -std=c++20 -fsyntax-only -I "$repo/src" \
      "$repo/tests/static/thread_safety_negative.cpp"
    echo "negative test OK: gate rejects the mis-annotated TU"

    if command -v clang-tidy >/dev/null 2>&1; then
      echo "== static: clang-tidy (concurrent core) =="
      cmake -B "$repo/build-tsa" -S "$repo" \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
      mapfile -t tidy_files < <(
        ls "$repo"/src/{broker,streaming,metrics,faults,service,storage,trace}/*.cpp)
      clang-tidy -p "$repo/build-tsa" --quiet "${tidy_files[@]}"
    else
      echo "== static: clang-tidy not found; skipped (enforced in CI) =="
    fi
  else
    echo "== static: $clangxx not found; Clang gates skipped (enforced in CI) =="
  fi
fi

if [[ "$run_regular" == 1 ]]; then
  echo "== tier-1: regular build + ctest =="
  cmake -B "$repo/build" -S "$repo" "${cmake_args[@]}" >/dev/null
  cmake --build "$repo/build" -j "$jobs"
  ctest --test-dir "$repo/build" "${ctest_args[@]}"
fi

if [[ "$run_coverage" == 1 ]]; then
  echo "== coverage: instrumented build + ctest + report =="
  covdir="$repo/build-coverage"
  cmake -B "$covdir" -S "$repo" -DLOGLENS_COVERAGE=ON \
        "${cmake_args[@]}" >/dev/null
  cmake --build "$covdir" -j "$jobs"
  # Unique per-process profile files so concurrently running (clang-
  # instrumented) tests never clobber one default.profraw; harmless for GCC.
  LLVM_PROFILE_FILE="$covdir/profraw/%p.profraw" \
    ctest --test-dir "$covdir" "${ctest_args[@]}"
  python3 "$repo/tools/coverage_report.py" --build-dir "$covdir" \
    --html-dir "$repo/coverage-html"
  # Second gate over the tiered storage engine (segment codec, flush,
  # compaction, pruning): the differential + segment property suites must
  # keep src/storage/ at or above its committed floor.
  python3 "$repo/tools/coverage_report.py" --build-dir "$covdir" \
    --filter src/storage/ --threshold 90
fi

if [[ "$run_sanitizer" == 1 ]]; then
  echo "== sanitizer pass: ${sanitizer} build + ctest =="
  cmake -B "$repo/build-${sanitizer}" -S "$repo" \
        -DLOGLENS_SANITIZE="${sanitizer}" "${cmake_args[@]}" >/dev/null
  cmake --build "$repo/build-${sanitizer}" -j "$jobs"
  ctest --test-dir "$repo/build-${sanitizer}" "${san_ctest_args[@]}"
else
  echo "== sanitizer pass skipped =="
fi

echo "== all checks passed =="
