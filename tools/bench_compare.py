#!/usr/bin/env python3
"""Compare a benchmark run against the committed baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold 0.25]
                        [--require STAGE]...

Both files are the BENCH_*.json a benchmark binary writes (bench/baseline.json
holds the union of every gated stage; stages the current binary does not emit
are skipped). The check fails (exit 1) when any stage's msgs_per_sec drops
more than ``threshold`` below the baseline. Stages present in only one file
are reported but do not fail the check (the benchmark may grow stages between
commits) — except stages named with ``--require``, which must appear in the
current run so a silently-dropped gate cannot pass. Speedups only update the
printed report.

CI keeps the baseline honest: refresh bench/baseline.json deliberately when
a PR moves throughput, rather than letting it drift.
"""

import argparse
import json
import sys


def load_stages(path):
    with open(path) as fh:
        doc = json.load(fh)
    stages = {}
    for stage in doc.get("stages", []):
        name = stage.get("stage")
        rate = stage.get("msgs_per_sec")
        if name is not None and isinstance(rate, (int, float)) and rate > 0:
            stages[name] = float(rate)
    return stages


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="STAGE",
                        help="stage that must be present in the current run")
    args = parser.parse_args()

    baseline = load_stages(args.baseline)
    current = load_stages(args.current)
    if not baseline:
        print(f"error: no stages in baseline {args.baseline}", file=sys.stderr)
        return 2

    failed = False
    for name in args.require:
        if name not in current:
            print(f"  {name}: REQUIRED stage missing from current run",
                  file=sys.stderr)
            failed = True
    for name in sorted(baseline):
        if name not in current:
            print(f"  {name}: missing from current run (skipped)")
            continue
        base, cur = baseline[name], current[name]
        delta = (cur - base) / base
        floor = base * (1.0 - args.threshold)
        verdict = "ok" if cur >= floor else "REGRESSION"
        if cur < floor:
            failed = True
        print(f"  {name}: {cur:,.0f} msgs/s vs baseline {base:,.0f} "
              f"({delta:+.1%}) [{verdict}]")
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name}: new stage, {current[name]:,.0f} msgs/s (no baseline)")

    if failed:
        print(f"FAIL: throughput regressed more than "
              f"{args.threshold:.0%} on at least one stage", file=sys.stderr)
        return 1
    print("bench smoke: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
