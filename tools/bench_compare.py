#!/usr/bin/env python3
"""Compare a benchmark run against the committed baseline — or update it.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [options]

Compare mode (default): the check fails (exit 1) when any stage's
msgs_per_sec drops more than ``--threshold`` below the baseline, when an
absolute ``--min-rate``/``--max-p99-us`` gate is violated, or when a
``--require``'d stage is missing from the current run. Every failure is one
line naming the stage, the metric, the observed value, the required value,
and their ratio, so a red CI log reads without opening either JSON file:

  FAIL parser msgs_per_sec: observed 310,000 < required 375,000 (ratio 0.83)

Stages present in only one file are reported but do not fail the check (the
benchmark may grow stages between commits) — except ``--require``'d stages,
which must appear so a silently-dropped gate cannot pass. Speedups never
fail; refresh the baseline deliberately when a PR moves throughput:

  bench_compare.py bench/baseline.json BENCH_pipeline_notrace.json \
      --update-baseline

Update mode rewrites BASELINE.json in place, merging by stage name: stages
in the current run replace their baseline entry wholesale (all metrics, not
just msgs_per_sec); baseline stages the current run does not emit are kept,
so one bench binary's refresh never erases another's gates.

``--markdown FILE`` appends a baseline-vs-current table to FILE (use
$GITHUB_STEP_SUMMARY in CI); "-" writes it to stdout.
"""

import argparse
import json
import sys


def load_doc(path):
    with open(path) as fh:
        return json.load(fh)


def stage_map(doc):
    """stage name -> full stage dict, keeping every metric the bench wrote."""
    out = {}
    for stage in doc.get("stages", []):
        name = stage.get("stage")
        if name is not None:
            out[name] = stage
    return out


def rate_of(stage):
    rate = stage.get("msgs_per_sec")
    return float(rate) if isinstance(rate, (int, float)) and rate > 0 else None


def parse_gate(values, flag):
    """['STAGE=VALUE', ...] -> {stage: value}, with a clear error."""
    gates = {}
    for item in values:
        stage, sep, value = item.partition("=")
        if not sep or not stage:
            raise SystemExit(f"error: {flag} expects STAGE=VALUE, got '{item}'")
        try:
            gates[stage] = float(value)
        except ValueError:
            raise SystemExit(f"error: {flag} {stage}: '{value}' is not a "
                             f"number")
    return gates


def fail_line(stage, metric, observed, op, required):
    ratio = observed / required if required else float("inf")
    return (f"FAIL {stage} {metric}: observed {observed:,.0f} {op} "
            f"required {required:,.0f} (ratio {ratio:.2f})")


def update_baseline(baseline_path, baseline_doc, current):
    merged = stage_map(baseline_doc)
    replaced = sorted(set(merged) & set(current))
    added = sorted(set(current) - set(merged))
    merged.update(current)
    baseline_doc["stages"] = [merged[name] for name in sorted(merged)]
    with open(baseline_path, "w") as fh:
        json.dump(baseline_doc, fh, indent=1)
        fh.write("\n")
    for name in replaced:
        print(f"  {name}: baseline updated")
    for name in added:
        print(f"  {name}: new baseline stage")
    print(f"baseline written: {baseline_path} ({len(merged)} stages)")


def markdown_table(baseline, current):
    lines = ["| stage | baseline msgs/s | current msgs/s | delta | p99 (us) |",
             "|---|---|---|---|---|"]
    for name in sorted(set(baseline) | set(current)):
        base = rate_of(baseline.get(name, {}))
        cur = rate_of(current.get(name, {}))
        delta = (f"{(cur - base) / base:+.1%}"
                 if base is not None and cur is not None else "-")
        p99 = current.get(name, {}).get("p99_batch_latency_us")
        lines.append("| {} | {} | {} | {} | {} |".format(
            name,
            f"{base:,.0f}" if base is not None else "-",
            f"{cur:,.0f}" if cur is not None else "-",
            delta,
            f"{p99:,.0f}" if isinstance(p99, (int, float)) else "-"))
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="STAGE",
                        help="stage that must be present in the current run")
    parser.add_argument("--only", action="append", default=[],
                        metavar="STAGE",
                        help="restrict the comparison to these stages (lets "
                             "one invocation per stage apply different "
                             "thresholds)")
    parser.add_argument("--min-rate", action="append", default=[],
                        metavar="STAGE=RATE",
                        help="absolute msgs_per_sec floor for a stage")
    parser.add_argument("--max-p99-us", action="append", default=[],
                        metavar="STAGE=US",
                        help="absolute p99_batch_latency_us ceiling for a "
                             "stage")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite BASELINE.json, merging the current "
                             "run's stages in by name")
    parser.add_argument("--markdown", metavar="FILE",
                        help="append a baseline-vs-current markdown table to "
                             "FILE ('-' for stdout)")
    args = parser.parse_args()

    min_rates = parse_gate(args.min_rate, "--min-rate")
    max_p99s = parse_gate(args.max_p99_us, "--max-p99-us")

    baseline_doc = load_doc(args.baseline)
    baseline = stage_map(baseline_doc)
    current = stage_map(load_doc(args.current))
    if args.only:
        keep = set(args.only)
        baseline = {k: v for k, v in baseline.items() if k in keep}
        current = {k: v for k, v in current.items() if k in keep}
    if not baseline and not args.update_baseline:
        print(f"error: no stages in baseline {args.baseline}", file=sys.stderr)
        return 2

    if args.update_baseline:
        update_baseline(args.baseline, baseline_doc, current)
        return 0

    failures = []
    for name in args.require:
        if name not in current:
            failures.append(
                f"FAIL {name}: REQUIRED stage missing from current run")
    for name in sorted(baseline):
        if name not in current:
            print(f"  {name}: missing from current run (skipped)")
            continue
        base, cur = rate_of(baseline[name]), rate_of(current[name])
        if base is None or cur is None:
            continue
        delta = (cur - base) / base
        floor = base * (1.0 - args.threshold)
        verdict = "ok" if cur >= floor else "REGRESSION"
        print(f"  {name}: {cur:,.0f} msgs/s vs baseline {base:,.0f} "
              f"({delta:+.1%}) [{verdict}]")
        if cur < floor:
            failures.append(fail_line(name, "msgs_per_sec", cur, "<", floor))
    for name in sorted(set(current) - set(baseline)):
        cur = rate_of(current[name])
        if cur is not None:
            print(f"  {name}: new stage, {cur:,.0f} msgs/s (no baseline)")

    for name, floor in sorted(min_rates.items()):
        cur = rate_of(current.get(name, {}))
        if cur is None:
            failures.append(
                f"FAIL {name} msgs_per_sec: stage missing, --min-rate gate "
                f"unmet")
        elif cur < floor:
            failures.append(fail_line(name, "msgs_per_sec", cur, "<", floor))
    for name, ceiling in sorted(max_p99s.items()):
        p99 = current.get(name, {}).get("p99_batch_latency_us")
        if not isinstance(p99, (int, float)):
            failures.append(
                f"FAIL {name} p99_batch_latency_us: stage or metric missing, "
                f"--max-p99-us gate unmet")
        elif p99 > ceiling:
            failures.append(
                fail_line(name, "p99_batch_latency_us", p99, ">", ceiling))

    if args.markdown:
        table = markdown_table(baseline, current)
        if args.markdown == "-":
            print(table)
        else:
            with open(args.markdown, "a") as fh:
                fh.write(table + "\n")

    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        return 1
    print("bench compare: all gates pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
