// loglens — command-line front end to the LogLens library.
//
//   loglens discover <training.log>
//       Discover GROK patterns from a training corpus and print them.
//
//   loglens train <training.log> <model.json>
//       Build the full model (patterns + event automata + extension
//       detectors) and write it as JSON.
//
//   loglens parse <model.json> <logs.log>
//       Parse a log file with a trained model; parsed records go to stdout
//       as JSONL, unparseable lines are reported to stderr.
//
//   loglens detect <model.json> <logs.log>
//       Run the full stateless+stateful pipeline over a log file and print
//       the anomaly report and dashboard summary.
//
//   loglens edit <model.json> <op> [args...]
//       Human-in-the-loop model editing (Section III-A4 / model manager):
//         rename     <pattern-id> <old-field> <new-field>
//         specialize <pattern-id> <field> <literal>
//         generalize <pattern-id> <token-index> <TYPE> <field>
//         drop-pattern   <pattern-id>
//         drop-automaton <automaton-id>
//       Writes the edited model back in place (print with `show`).
//
//   loglens show <model.json>
//       Print a model summary: patterns, automata, extension detectors.
//
//   loglens dashboard <model.json> <logs.log>
//       Run the full pipeline over a log file, then print the status
//       dashboard and the Prometheus-style metrics page (engine, parser,
//       detector, broker, job counters/latencies). With --json, print the
//       machine-readable metrics snapshot instead of the Prometheus text.
//
//   loglens demo
//       Self-contained demonstration on a generated dataset.
//
//   loglens trace [<model.json> <logs.log>]
//       Run the pipeline with batch tracing on and print the stage
//       breakdown report (where each batch's latency went: queue wait,
//       routing, parallel execution, publish) plus the lock-contention
//       profile, and export a Chrome trace-event JSON file loadable in
//       Perfetto (--trace-out, default loglens_trace.json). Without
//       arguments it traces the generated benchmark workload.
//
// Flags (must precede the subcommand):
//   --max-dist <d>     clustering threshold for discover/train (default 0.3)
//   --ranges           learn/check KPI field ranges
//   --keywords         learn/check severity keywords
//   --trace-out <f>    trace-event JSON path for `trace`
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "datagen/datasets.h"
#include "grok/edit.h"
#include "service/dashboard.h"
#include "service/service.h"
#include "trace/report.h"
#include "trace/trace.h"

namespace loglens {
namespace {

struct CliOptions {
  double max_dist = 0.3;
  bool ranges = false;
  bool keywords = false;
  bool json = false;
  std::string trace_out = "loglens_trace.json";
};

int usage() {
  std::fprintf(stderr,
               "usage: loglens [--max-dist D] [--ranges] [--keywords] "
               "[--json] [--trace-out F] "
               "<discover|train|parse|detect|dashboard|trace|demo> "
               "[args...]\n"
               "  discover  <training.log>\n"
               "  train     <training.log> <model.json>\n"
               "  parse     <model.json> <logs.log>\n"
               "  detect    <model.json> <logs.log>\n"
               "  dashboard <model.json> <logs.log>\n"
               "  trace     [<model.json> <logs.log>]\n"
               "  show      <model.json>\n"
               "  edit      <model.json> <op> [args...]\n"
               "  demo\n");
  return 2;
}

StatusOr<std::vector<std::string>> read_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return StatusOr<std::vector<std::string>>::Error("cannot open: " + path);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

StatusOr<CompositeModel> read_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) return StatusOr<CompositeModel>::Error("cannot open: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto j = Json::parse(text);
  if (!j.ok()) return StatusOr<CompositeModel>(j.status());
  return CompositeModel::from_json(j.value());
}

BuildOptions build_options(const CliOptions& cli) {
  BuildOptions opts;
  opts.discovery.max_dist = cli.max_dist;
  opts.learn_field_ranges = cli.ranges;
  opts.learn_keywords = cli.keywords;
  return opts;
}

int cmd_discover(const CliOptions& cli, const std::string& training_path) {
  auto lines = read_lines(training_path);
  if (!lines.ok()) {
    std::fprintf(stderr, "error: %s\n", lines.status().message().c_str());
    return 1;
  }
  ModelBuilder builder(build_options(cli));
  BuildResult result = builder.build(lines.value());
  std::printf("# %zu patterns from %zu logs (%.2f s discovery)\n",
              result.model.patterns.size(), result.training_logs,
              result.discovery_seconds);
  for (const auto& p : result.model.patterns) {
    std::printf("P%d: %s\n", p.id(), p.to_string().c_str());
  }
  return 0;
}

int cmd_train(const CliOptions& cli, const std::string& training_path,
              const std::string& model_path) {
  auto lines = read_lines(training_path);
  if (!lines.ok()) {
    std::fprintf(stderr, "error: %s\n", lines.status().message().c_str());
    return 1;
  }
  ModelBuilder builder(build_options(cli));
  BuildResult result = builder.build(lines.value());
  std::ofstream out(model_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", model_path.c_str());
    return 1;
  }
  out << result.model.to_json().dump() << "\n";
  std::fprintf(stderr,
               "model: %zu patterns, %zu automata, %zu tracked KPI fields "
               "(%.2f s total; %zu/%zu training logs parsed)\n",
               result.model.patterns.size(),
               result.model.sequence.automata.size(),
               result.model.field_ranges.tracked_fields(),
               result.total_seconds,
               result.training_logs - result.unparsed_training_logs,
               result.training_logs);
  return 0;
}

int cmd_parse(const CliOptions&, const std::string& model_path,
              const std::string& logs_path) {
  auto model = read_model(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().message().c_str());
    return 1;
  }
  auto lines = read_lines(logs_path);
  if (!lines.ok()) {
    std::fprintf(stderr, "error: %s\n", lines.status().message().c_str());
    return 1;
  }
  Preprocessor pre = std::move(Preprocessor::create({}).value());
  LogParser parser(model->patterns, pre.classifier());
  size_t anomalies = 0;
  for (const auto& line : lines.value()) {
    auto outcome = parser.parse(pre.process(line));
    if (outcome.log.has_value()) {
      std::printf("%s\n", outcome.log->to_json().dump().c_str());
    } else {
      ++anomalies;
      std::fprintf(stderr, "UNPARSED: %s\n", line.c_str());
    }
  }
  std::fprintf(stderr, "parsed %zu/%zu logs (%zu stateless anomalies)\n",
               lines->size() - anomalies, lines->size(), anomalies);
  return anomalies == 0 ? 0 : 3;
}

int cmd_detect(const CliOptions& cli, const std::string& model_path,
               const std::string& logs_path) {
  auto model = read_model(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().message().c_str());
    return 1;
  }
  auto lines = read_lines(logs_path);
  if (!lines.ok()) {
    std::fprintf(stderr, "error: %s\n", lines.status().message().c_str());
    return 1;
  }
  ServiceOptions opts;
  opts.build = build_options(cli);
  LogLensService service(opts);
  service.models().deploy(service.model_name(), model.value());
  Agent agent = service.make_agent(logs_path);
  agent.replay(lines.value());
  service.drain();
  service.heartbeat_advance(24L * 3600 * 1000);
  service.drain();

  Dashboard dashboard(service.anomalies(), service.model_store(),
                      service.log_store());
  std::printf("%s\n", dashboard.render().c_str());
  std::printf("%s", dashboard.render_recent(10).c_str());
  return service.anomalies().count() == 0 ? 0 : 3;
}

int cmd_dashboard(const CliOptions& cli, const std::string& model_path,
                  const std::string& logs_path) {
  auto model = read_model(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().message().c_str());
    return 1;
  }
  auto lines = read_lines(logs_path);
  if (!lines.ok()) {
    std::fprintf(stderr, "error: %s\n", lines.status().message().c_str());
    return 1;
  }
  ServiceOptions opts;
  opts.build = build_options(cli);
  LogLensService service(opts);
  service.models().deploy(service.model_name(), model.value());
  Agent agent = service.make_agent(logs_path);
  agent.replay(lines.value());
  service.drain();
  service.heartbeat_advance(24L * 3600 * 1000);
  service.drain();

  Dashboard dashboard(service.anomalies(), service.model_store(),
                      service.log_store());
  if (cli.json) {
    std::printf("%s\n", dashboard.metrics_snapshot().dump().c_str());
  } else {
    // "Which sources spiked X in the last hour" — the hour ending at the
    // newest anomaly, so the panel works on replayed historical logs too.
    int64_t newest = -1;
    for (const auto& a : service.anomalies().all()) {
      newest = std::max(newest, a.timestamp_ms);
    }
    std::string spikes;
    if (newest >= 0) {
      spikes = dashboard.render_source_spikes(
          AnomalyType::kOpenStateEvicted, newest - 3600L * 1000, newest);
    }
    std::printf("%s\n%s%s\n%s", dashboard.render().c_str(), spikes.c_str(),
                dashboard.render_stage_latency().c_str(),
                dashboard.render_metrics().c_str());
  }
  return 0;
}

int cmd_show(const std::string& model_path) {
  auto model = read_model(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().message().c_str());
    return 1;
  }
  std::printf("patterns: %zu\n", model->patterns.size());
  for (const auto& p : model->patterns) {
    std::string text = p.to_string();
    if (text.size() > 120) text = text.substr(0, 117) + "...";
    std::printf("  P%d: %s\n", p.id(), text.c_str());
  }
  std::printf("automata: %zu\n", model->sequence.automata.size());
  for (const auto& a : model->sequence.automata) {
    std::printf("%s", a.describe().c_str());
  }
  std::printf("id fields: %zu, tracked KPI fields: %zu\n",
              model->sequence.id_fields.size(),
              model->field_ranges.tracked_fields());
  return 0;
}

GrokPattern* find_pattern(CompositeModel& model, int id) {
  for (auto& p : model.patterns) {
    if (p.id() == id) return &p;
  }
  return nullptr;
}

int cmd_edit(const std::string& model_path, int argc, char** argv, int arg) {
  auto model = read_model(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().message().c_str());
    return 1;
  }
  std::string op = argv[arg++];
  Status status = Status::Error("unknown edit op: " + op);
  auto remaining = [&](int n) { return argc - arg >= n; };
  if (op == "rename" && remaining(3)) {
    GrokPattern* p = find_pattern(model.value(), std::atoi(argv[arg]));
    status = p == nullptr
                 ? Status::Error("no such pattern")
                 : pattern_edit::rename_field(*p, argv[arg + 1], argv[arg + 2]);
  } else if (op == "specialize" && remaining(3)) {
    GrokPattern* p = find_pattern(model.value(), std::atoi(argv[arg]));
    status = p == nullptr
                 ? Status::Error("no such pattern")
                 : pattern_edit::specialize(*p, argv[arg + 1], argv[arg + 2]);
  } else if (op == "generalize" && remaining(4)) {
    GrokPattern* p = find_pattern(model.value(), std::atoi(argv[arg]));
    Datatype type;
    if (p == nullptr) {
      status = Status::Error("no such pattern");
    } else if (!datatype_from_name(argv[arg + 2], type)) {
      status = Status::Error(std::string("unknown datatype: ") + argv[arg + 2]);
    } else {
      status = pattern_edit::generalize(
          *p, static_cast<size_t>(std::atoi(argv[arg + 1])), type,
          argv[arg + 3]);
    }
  } else if (op == "drop-pattern" && remaining(1)) {
    int id = std::atoi(argv[arg]);
    size_t before = model->patterns.size();
    std::erase_if(model->patterns,
                  [id](const GrokPattern& p) { return p.id() == id; });
    status = model->patterns.size() < before
                 ? Status::Ok()
                 : Status::Error("no such pattern");
  } else if (op == "drop-automaton" && remaining(1)) {
    int id = std::atoi(argv[arg]);
    size_t before = model->sequence.automata.size();
    std::erase_if(model->sequence.automata,
                  [id](const Automaton& a) { return a.id == id; });
    status = model->sequence.automata.size() < before
                 ? Status::Ok()
                 : Status::Error("no such automaton");
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.message().c_str());
    return 1;
  }
  std::ofstream out(model_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", model_path.c_str());
    return 1;
  }
  out << model->to_json().dump() << "\n";
  std::fprintf(stderr, "edited %s: %s applied\n", model_path.c_str(),
               op.c_str());
  return 0;
}

int cmd_demo() {
  std::printf("Generating a data-center trace workload (D1 shape)...\n");
  Dataset d1 = make_d1(0.03);
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");
  LogLensService service(opts);
  BuildResult build = service.train(d1.training);
  std::printf("trained: %zu patterns, %zu automata from %zu logs\n",
              build.model.patterns.size(),
              build.model.sequence.automata.size(), d1.training.size());
  Agent agent = service.make_agent("demo");
  agent.replay(d1.testing);
  service.drain();
  service.heartbeat_advance(24L * 3600 * 1000);
  service.drain();
  Dashboard dashboard(service.anomalies(), service.model_store(),
                      service.log_store());
  std::printf("\n%s\n%s", dashboard.render().c_str(),
              dashboard.render_recent(5).c_str());
  std::printf("(%zu corrupted workflows were injected)\n",
              d1.injected_anomalies());
  return 0;
}

int cmd_trace(const CliOptions& cli, const std::string& model_path,
              const std::string& logs_path) {
  // The service reports into the global registry; start it clean so the
  // report covers exactly this run.
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.reset();
  trace::set_enabled(true);
  lock_rank::contention_reset();

  if (model_path.empty()) {
    // No inputs: trace the generated benchmark workload (the same D1 shape
    // bench_pipeline_throughput measures).
    Dataset d1 = make_d1(0.1);
    ServiceOptions opts;
    opts.build.discovery = recommended_discovery("D1");
    LogLensService service(opts);
    service.train(d1.training);
    Agent agent = service.make_agent("bench");
    agent.replay(d1.testing);
    service.drain();
  } else {
    auto model = read_model(model_path);
    if (!model.ok()) {
      std::fprintf(stderr, "error: %s\n", model.status().message().c_str());
      return 1;
    }
    auto lines = read_lines(logs_path);
    if (!lines.ok()) {
      std::fprintf(stderr, "error: %s\n", lines.status().message().c_str());
      return 1;
    }
    ServiceOptions opts;
    opts.build = build_options(cli);
    LogLensService service(opts);
    service.models().deploy(service.model_name(), model.value());
    Agent agent = service.make_agent(logs_path);
    agent.replay(lines.value());
    service.drain();
  }

  std::vector<trace::Span> spans = registry.take_trace_spans();
  trace::Report report =
      trace::build_report(spans, registry.spans_dropped());
  std::printf("%s", trace::format_report(report).c_str());

  if (!lock_rank::profiling_enabled()) {
    std::printf(
        "\ncontention profile: compiled out "
        "(rebuild with -DLOGLENS_MUTEX_PROFILE=ON)\n");
  } else {
    auto profile = lock_rank::contention_profile();
    if (profile.empty()) {
      std::printf("\ncontention profile: no contended acquisitions\n");
    } else {
      std::printf("\ncontention profile (per lock rank):\n");
      std::printf("  %-18s %10s %14s %12s\n", "rank", "contended",
                  "wait total", "wait max");
      for (const auto& stat : profile) {
        std::printf("  %-18s %10llu %11.2f ms %9.2f ms\n", stat.name,
                    static_cast<unsigned long long>(stat.contended),
                    static_cast<double>(stat.wait_us_total) / 1000.0,
                    static_cast<double>(stat.wait_us_max) / 1000.0);
      }
    }
  }

  std::ofstream out(cli.trace_out);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", cli.trace_out.c_str());
    return 1;
  }
  out << trace::chrome_trace_json(spans).dump() << "\n";
  std::printf(
      "\nwrote %zu span(s) to %s (open in Perfetto or chrome://tracing)\n",
      spans.size(), cli.trace_out.c_str());
  return 0;
}

}  // namespace
}  // namespace loglens

int main(int argc, char** argv) {
  using namespace loglens;
  CliOptions cli;
  int arg = 1;
  while (arg < argc && std::strncmp(argv[arg], "--", 2) == 0) {
    if (std::strcmp(argv[arg], "--ranges") == 0) {
      cli.ranges = true;
      ++arg;
    } else if (std::strcmp(argv[arg], "--keywords") == 0) {
      cli.keywords = true;
      ++arg;
    } else if (std::strcmp(argv[arg], "--json") == 0) {
      cli.json = true;
      ++arg;
    } else if (std::strcmp(argv[arg], "--max-dist") == 0 && arg + 1 < argc) {
      cli.max_dist = std::atof(argv[arg + 1]);
      arg += 2;
    } else if (std::strcmp(argv[arg], "--trace-out") == 0 && arg + 1 < argc) {
      cli.trace_out = argv[arg + 1];
      arg += 2;
    } else {
      return usage();
    }
  }
  if (arg >= argc) return usage();
  std::string cmd = argv[arg++];
  auto need = [&](int n) { return argc - arg >= n; };
  if (cmd == "discover" && need(1)) return cmd_discover(cli, argv[arg]);
  if (cmd == "train" && need(2)) return cmd_train(cli, argv[arg], argv[arg + 1]);
  if (cmd == "parse" && need(2)) return cmd_parse(cli, argv[arg], argv[arg + 1]);
  if (cmd == "detect" && need(2)) {
    return cmd_detect(cli, argv[arg], argv[arg + 1]);
  }
  if (cmd == "dashboard" && need(2)) {
    return cmd_dashboard(cli, argv[arg], argv[arg + 1]);
  }
  if (cmd == "trace") {
    if (need(2)) return cmd_trace(cli, argv[arg], argv[arg + 1]);
    if (need(0) && argc - arg == 0) return cmd_trace(cli, "", "");
    return usage();
  }
  if (cmd == "show" && need(1)) return cmd_show(argv[arg]);
  if (cmd == "edit" && need(2)) return cmd_edit(argv[arg], argc, argv, arg + 1);
  if (cmd == "demo") return cmd_demo();
  return usage();
}
