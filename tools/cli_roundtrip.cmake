# Scripted CLI round trip: train a model from files, inspect it, edit it,
# parse a production stream, and run full detection.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})
file(WRITE ${WORKDIR}/train.log
"2016/02/23 09:00:31 10.0.0.1 login user1
2016/02/23 09:00:32 10.0.0.2 login user2
2016/02/23 09:00:33 10.0.0.3 login user3
2016/02/23 09:01:02 Connect DB 127.0.0.1 user abc123
2016/02/23 09:01:09 Connect DB 10.1.1.5 user svc_batch
2016/02/23 09:01:44 Connect DB 10.1.1.9 user reporter
")
file(WRITE ${WORKDIR}/prod.log
"2016/02/23 10:00:01 10.0.0.9 login bob
2016/02/23 10:00:07 Connect DB 10.1.1.2 user etl
kernel panic: something exploded
")

macro(run_cli expect_rc)
  execute_process(COMMAND ${LOGLENS} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "loglens ${ARGN} -> rc=${rc} (want ${expect_rc})\n${out}\n${err}")
  endif()
endmacro()

run_cli(0 --max-dist 0.45 train ${WORKDIR}/train.log ${WORKDIR}/model.json)
run_cli(0 show ${WORKDIR}/model.json)
run_cli(0 edit ${WORKDIR}/model.json rename 1 P1F2 clientIp)
run_cli(1 edit ${WORKDIR}/model.json rename 99 nope nope)
# prod.log has one garbage line -> parse exits 3 (anomalies present).
run_cli(3 parse ${WORKDIR}/model.json ${WORKDIR}/prod.log)
run_cli(3 detect ${WORKDIR}/model.json ${WORKDIR}/prod.log)
# Renamed field must appear in parse output.
execute_process(COMMAND ${LOGLENS} parse ${WORKDIR}/model.json ${WORKDIR}/prod.log
                OUTPUT_VARIABLE out ERROR_QUIET RESULT_VARIABLE rc)
string(FIND "${out}" "clientIp" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "renamed field missing from parse output:\n${out}")
endif()
# Dashboard prints a Prometheus metrics page with live pipeline counters.
execute_process(COMMAND ${LOGLENS} dashboard ${WORKDIR}/model.json ${WORKDIR}/prod.log
                OUTPUT_VARIABLE out ERROR_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "loglens dashboard -> rc=${rc}\n${out}")
endif()
foreach(metric loglens_engine_batches_total loglens_parser_logs_total
               loglens_detector_logs_total loglens_broker_messages_produced_total)
  string(REGEX MATCH "${metric}[^\n]* [1-9][0-9]*" hit "${out}")
  if("${hit}" STREQUAL "")
    message(FATAL_ERROR "metric ${metric} missing or zero in dashboard output:\n${out}")
  endif()
endforeach()
# And the machine-readable snapshot parses as non-empty JSON.
execute_process(COMMAND ${LOGLENS} --json dashboard ${WORKDIR}/model.json ${WORKDIR}/prod.log
                OUTPUT_VARIABLE out ERROR_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "loglens --json dashboard -> rc=${rc}")
endif()
string(FIND "${out}" "\"histograms\"" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "JSON metrics snapshot missing histograms:\n${out}")
endif()
message(STATUS "cli round trip ok")
