#!/usr/bin/env python3
"""Project linter: fast, dependency-free checks that run before any build.

Checks (see docs/STATIC_ANALYSIS.md):
  1. Concurrent-core locking discipline. Files under the concurrent core
     (src/broker, src/streaming, src/metrics, src/faults, src/service,
     src/storage) must not declare naked std::mutex members or lock with
     std::lock_guard / std::unique_lock / std::scoped_lock — they use
     RankedMutex / RankedMutexLock (common/lock_rank.h) so that both the
     Clang thread-safety analysis and the runtime lock-rank checker can see
     every acquisition. std::condition_variable (non-_any) is banned for the
     same reason: it only accepts std::unique_lock<std::mutex>.
  2. Header hygiene: every header starts its directives with #pragma once;
     no parent-relative ("../") includes anywhere.
  3. Annotation hygiene: a file using LOGLENS_GUARDED_BY/REQUIRES/... must
     include common/thread_annotations.h directly, so the attributes never
     depend on transitive includes.
  4. Clock discipline: src/ code must not call std::chrono::steady_clock
     directly — it reads loglens::trace_clock (common/clock.h), the mockable
     time source every span timestamp and timer goes through. Only the shim
     itself touches the real clock.
  5. Regex discipline: no file may include <regex> or name std::regex.
     All regular-expression work goes through regexlite (src/regexlite/) —
     the budgeted backtracking engine whose step cap and sticky
     budget_exhausted flag keep pathological patterns from stalling the hot
     path — or the set-level matcher (src/grok/set_matcher.h). std::regex
     has no step budget and an order of magnitude more overhead.
  6. Lock annotation coverage: every RankedMutex member declared in a
     concurrent-core header must be named by at least one LOGLENS_
     thread-safety annotation (GUARDED_BY/REQUIRES/EXCLUDES/ACQUIRE/...)
     in the same header. An unannotated mutex is invisible to the Clang
     thread-safety analysis — nothing stops an unlocked access to the data
     it guards — and says nothing about where it sits in the lock order.
  7. Sleep discipline: std::this_thread::sleep_for/sleep_until/yield are
     banned in src/ outside the sched shim (common/sched.{h,cpp}). Core
     code sleeps via sched::sleep_for_* so every backoff/delay site is a
     schedule point the deterministic explorer can virtualize (and tests
     never burn wall-clock time on them).

Usage:
  tools/lint.py              lint the repo (exit 1 on any violation)
  tools/lint.py FILE...      lint specific files
  tools/lint.py --self-test  verify the linter flags seeded violations
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Directories whose code must use RankedMutex/RankedMutexLock. common/ is
# exempt (lock_rank.h itself wraps std::mutex); parsing/models are
# single-threaded by contract.
CONCURRENT_CORE = (
    "src/broker",
    "src/streaming",
    "src/metrics",
    "src/faults",
    "src/service",
    "src/storage",
    "src/trace",
)

EXEMPT = ("src/common/lock_rank.h",)

BANNED_IN_CORE = (
    (
        re.compile(r"\bstd::mutex\b"),
        "std::mutex: use RankedMutex (common/lock_rank.h) so the lock has a "
        "rank and the Clang analysis can see it",
    ),
    (
        re.compile(r"\bstd::(lock_guard|unique_lock|scoped_lock)\b"),
        "std::lock_guard/unique_lock/scoped_lock: use RankedMutexLock",
    ),
    (
        re.compile(r"\bstd::condition_variable\b(?!_any)"),
        "std::condition_variable: use std::condition_variable_any, which "
        "can wait on a RankedMutexLock",
    ),
)

# The only file in src/ allowed to name the real steady clock: the shim that
# wraps it behind a swappable source.
CLOCK_SHIM = "src/common/clock.h"
STEADY_CLOCK = re.compile(r"\bsteady_clock\b")

# Banned everywhere: the project's regex engine is regexlite, which has a
# step budget; std::regex does not (and is far slower).
STD_REGEX = re.compile(r'\bstd::w?regex\b|#\s*include\s*<regex>')

ANNOTATION = re.compile(
    r"\bLOGLENS_(GUARDED_BY|PT_GUARDED_BY|REQUIRES|EXCLUDES|ACQUIRE|RELEASE|"
    r"TRY_ACQUIRE|CAPABILITY|SCOPED_CAPABILITY|ASSERT_CAPABILITY|"
    r"RETURN_CAPABILITY|NO_THREAD_SAFETY_ANALYSIS)\b"
)

# Rule 6: a RankedMutex member declaration in a header ("RankedMutex name"
# followed by an initializer or semicolon; references like "RankedMutex&"
# don't match), and the argument lists of the annotations that may name it.
MUTEX_MEMBER = re.compile(r"\b(?:mutable\s+)?RankedMutex\s+(\w+)\s*[{;=]")
ANNOTATION_ARGS = re.compile(
    r"\bLOGLENS_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|EXCLUDES|ACQUIRE|"
    r"RELEASE|TRY_ACQUIRE|ASSERT_CAPABILITY)\s*\(([^)]*)\)"
)

# Rule 7: raw sleeps/yields bypass the schedule explorer. Only the sched
# shim may touch std::this_thread (it implements the sanctioned sleep).
THIS_THREAD = re.compile(r"\bstd::this_thread::(sleep_for|sleep_until|yield)\b")
SCHED_SHIM = ("src/common/sched.h", "src/common/sched.cpp")

LINE_COMMENT = re.compile(r"//.*$")


def strip_comments(text):
    """Returns (lineno, code) pairs with // and /* */ comments blanked."""
    out = []
    in_block = False
    for i, line in enumerate(text.splitlines(), start=1):
        code = line
        if in_block:
            end = code.find("*/")
            if end < 0:
                out.append((i, ""))
                continue
            code = " " * (end + 2) + code[end + 2 :]
            in_block = False
        while True:
            start = code.find("/*")
            if start < 0:
                break
            end = code.find("*/", start + 2)
            if end < 0:
                code = code[:start]
                in_block = True
                break
            code = code[:start] + " " * (end + 2 - start) + code[end + 2 :]
        code = LINE_COMMENT.sub("", code)
        out.append((i, code))
    return out


def in_concurrent_core(rel):
    if rel in EXEMPT:
        return False
    return any(rel == d or rel.startswith(d + "/") for d in CONCURRENT_CORE)


def lint_text(text, rel):
    """Lints one file's contents under its repo-relative path."""
    problems = []
    lines = strip_comments(text)

    if in_concurrent_core(rel):
        for lineno, code in lines:
            for pattern, why in BANNED_IN_CORE:
                if pattern.search(code):
                    problems.append(f"{rel}:{lineno}: {why}")

    if rel.endswith(".h"):
        directives = [
            (n, c.strip()) for n, c in lines if c.strip().startswith("#")
        ]
        if not directives or directives[0][1] != "#pragma once":
            problems.append(
                f"{rel}:1: header must open its directives with #pragma once"
            )

    for lineno, code in lines:
        if re.search(r'#\s*include\s+"\.\./', code):
            problems.append(
                f"{rel}:{lineno}: parent-relative include; include project "
                "headers by their src/-relative path"
            )

    for lineno, code in lines:
        if STD_REGEX.search(code):
            problems.append(
                f"{rel}:{lineno}: std::regex/<regex>; use regexlite "
                "(src/regexlite/regex.h) — it has a step budget — or the "
                "set-level matcher (src/grok/set_matcher.h)"
            )

    if rel.startswith("src/") and rel != CLOCK_SHIM:
        for lineno, code in lines:
            if STEADY_CLOCK.search(code):
                problems.append(
                    f"{rel}:{lineno}: steady_clock outside the clock shim; "
                    "use trace_clock::now_us() (common/clock.h) so tests can "
                    "mock time and spans share one timebase"
                )

    if in_concurrent_core(rel) and rel.endswith(".h"):
        code_only = "\n".join(code for _, code in lines)
        named = set()
        for args in ANNOTATION_ARGS.findall(code_only):
            named.update(re.findall(r"\w+", args))
        for lineno, code in lines:
            for m in MUTEX_MEMBER.finditer(code):
                if m.group(1) not in named:
                    problems.append(
                        f"{rel}:{lineno}: RankedMutex member '{m.group(1)}' "
                        "is not named by any LOGLENS_ annotation in this "
                        "header; annotate what it guards (GUARDED_BY) or "
                        "its contract (REQUIRES/EXCLUDES/ACQUIRE) so the "
                        "Clang analysis can check it"
                    )

    if rel.startswith("src/") and rel not in SCHED_SHIM:
        for lineno, code in lines:
            if THIS_THREAD.search(code):
                problems.append(
                    f"{rel}:{lineno}: raw std::this_thread sleep/yield; use "
                    "sched::sleep_for_ms/us (common/sched.h) so the delay "
                    "is a schedule point and virtualizes under the "
                    "deterministic explorer"
                )

    if ANNOTATION.search(text) and rel != "src/common/thread_annotations.h":
        if '#include "common/thread_annotations.h"' not in text:
            problems.append(
                f"{rel}:1: uses LOGLENS_ thread-safety annotations without "
                'including "common/thread_annotations.h"'
            )
    return problems


def repo_files():
    files = []
    for root in ("src", "tests", "bench", "examples", "tools"):
        top = REPO / root
        if top.is_dir():
            files.extend(sorted(top.rglob("*.h")))
            files.extend(sorted(top.rglob("*.cpp")))
    return files


def run(paths):
    problems = []
    for path in paths:
        rel = path.resolve().relative_to(REPO).as_posix()
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as e:
            problems.append(f"{rel}:0: unreadable: {e}")
            continue
        problems.extend(lint_text(text, rel))
    for p in problems:
        print(p)
    if problems:
        print(f"lint: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    return 0


SELF_TEST_CASES = [
    # (pretend repo-relative path, contents, expected problem substring;
    #  None = must lint clean)
    (
        "src/broker/fixture.h",
        "#pragma once\n#include <mutex>\nstruct S { std::mutex mu_; };\n",
        "std::mutex",
    ),
    (
        "src/streaming/fixture.cpp",
        "void f() { std::lock_guard lock(mu_); }\n",
        "RankedMutexLock",
    ),
    (
        "src/metrics/fixture.h",
        "#pragma once\nstd::condition_variable cv_;\n",
        "condition_variable_any",
    ),
    (
        "src/service/fixture.h",
        "// no pragma once\n#include <string>\n",
        "#pragma once",
    ),
    (
        "src/common/fixture.h",
        '#pragma once\n#include "../broker/broker.h"\n',
        "parent-relative",
    ),
    (
        "src/faults/fixture.h",
        "#pragma once\nint x_ LOGLENS_GUARDED_BY(mu_);\n",
        "thread_annotations.h",
    ),
    # The trace subsystem is part of the concurrent core.
    (
        "src/trace/fixture.h",
        "#pragma once\n#include <mutex>\nstruct S { std::mutex mu_; };\n",
        "std::mutex",
    ),
    # The real clock is banned in src/ outside the shim...
    (
        "src/streaming/fixture_clock.cpp",
        "void f() { auto t = std::chrono::steady_clock::now(); }\n",
        "steady_clock",
    ),
    # ...including mentions via using-declarations in non-core src/ dirs...
    (
        "src/parser/fixture_clock.h",
        "#pragma once\nusing Clock = std::chrono::steady_clock;\n",
        "steady_clock",
    ),
    # ...but fine in the shim itself, in comments, and outside src/.
    (
        "src/common/clock.h",
        "#pragma once\n"
        "inline long now() {\n"
        "  return std::chrono::steady_clock::now().time_since_epoch().count();"
        "\n}\n",
        None,
    ),
    (
        "src/broker/fixture_clock_comment.cpp",
        "// steady_clock is banned here\nint x;\n",
        None,
    ),
    (
        "bench/fixture_clock.cpp",
        "auto t0 = std::chrono::steady_clock::now();\n",
        None,
    ),
    # std::regex is banned everywhere, including tests and benches...
    (
        "src/regexlite/fixture_std.cpp",
        "#include <regex>\nstd::regex re(\"a+\");\n",
        "std::regex",
    ),
    (
        "tests/fixture_std_regex.cpp",
        "bool f() { return std::regex_match(s, std::regex(\"x\")); }\n",
        "std::regex",
    ),
    # ...but mentions in comments are fine.
    (
        "src/grok/fixture_regex_comment.h",
        "#pragma once\n// unlike std::regex, regexlite has a step budget\n",
        None,
    ),
    # Commented-out code must not trip the core bans.
    (
        "src/broker/fixture_comment.cpp",
        "// std::mutex in prose\n/* std::lock_guard lock(mu_); */\n",
        None,
    ),
    # An unannotated RankedMutex member in a concurrent-core header is
    # invisible to the thread-safety analysis...
    (
        "src/streaming/fixture_naked_mutex.h",
        "#pragma once\n"
        '#include "common/lock_rank.h"\n'
        "namespace loglens {\n"
        "struct S {\n"
        "  RankedMutex mu_{1};\n"
        "  int n_ = 0;\n"
        "};\n"
        "}  // namespace loglens\n",
        "not named by any LOGLENS_ annotation",
    ),
    # ...a mutable one too...
    (
        "src/broker/fixture_mutable_mutex.h",
        "#pragma once\n"
        '#include "common/lock_rank.h"\n'
        "struct S { mutable RankedMutex mu_{1}; };\n",
        "not named by any LOGLENS_ annotation",
    ),
    # ...but naming it in any annotation (here an EXCLUDES contract)
    # satisfies the rule, and references/locals don't count as members.
    (
        "src/service/fixture_excludes_ok.h",
        "#pragma once\n"
        '#include "common/lock_rank.h"\n'
        '#include "common/thread_annotations.h"\n'
        "struct S {\n"
        "  void poke() LOGLENS_EXCLUDES(mu_);\n"
        "  RankedMutex mu_{1};\n"
        "};\n"
        "void helper(RankedMutex& other);\n",
        None,
    ),
    # Raw sleeps in src/ bypass the schedule explorer...
    (
        "src/streaming/fixture_sleep.cpp",
        "#include <thread>\n"
        "void f() {\n"
        "  std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"
        "}\n",
        "std::this_thread",
    ),
    (
        "src/broker/fixture_yield.cpp",
        "void f() { std::this_thread::yield(); }\n",
        "std::this_thread",
    ),
    # ...but the shim itself implements the sanctioned sleep, and tests may
    # sleep for real.
    (
        "src/common/sched.cpp",
        "void g() {\n"
        "  std::this_thread::sleep_for(std::chrono::microseconds(1));\n"
        "}\n",
        None,
    ),
    (
        "tests/fixture_sleep.cpp",
        "void f() { std::this_thread::sleep_for(1ms); }\n",
        None,
    ),
    # Negative control: idiomatic code must pass clean.
    (
        "src/broker/fixture_ok.h",
        "#pragma once\n"
        '#include "common/lock_rank.h"\n'
        '#include "common/thread_annotations.h"\n'
        "namespace loglens {\n"
        "struct S {\n"
        "  RankedMutex mu_{1};\n"
        "  int n_ LOGLENS_GUARDED_BY(mu_) = 0;\n"
        "};\n"
        "}  // namespace loglens\n",
        None,
    ),
]


def self_test():
    failures = 0
    for rel, contents, expect in SELF_TEST_CASES:
        problems = lint_text(contents, rel)
        if expect is None:
            if problems:
                print(f"self-test FAIL: {rel} should be clean, got {problems}")
                failures += 1
        elif not any(expect in p for p in problems):
            print(
                f"self-test FAIL: {rel} should flag '{expect}', got {problems}"
            )
            failures += 1
    if failures:
        return 1
    print(f"lint self-test: {len(SELF_TEST_CASES)} fixture(s) OK")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    if argv:
        return run(Path(a) for a in argv)
    return run(repo_files())


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
