#!/usr/bin/env python3
"""Aggregate coverage from a LOGLENS_COVERAGE build and gate on it.

Usage: coverage_report.py --build-dir BUILD [--filter src/automata/]
                          [--threshold 95.0] [--html-dir DIR]

Two instrumentation modes, auto-detected from what the build left behind:

- **llvm** (Clang, -fprofile-instr-generate): the build directory holds
  ``*.profraw`` files (run ctest with ``LLVM_PROFILE_FILE=<dir>/%p.profraw``
  so concurrent test processes do not clobber one file). They are merged
  with llvm-profdata and exported per-file with llvm-cov across every test
  binary; ``--html-dir`` gets the full ``llvm-cov show`` annotated-source
  report. This is the CI mode.
- **gcov** (GCC, --coverage): the build directory holds ``*.gcda`` note
  files next to each object. Each is exported with ``gcov --json-format
  --stdout`` and line counts are merged across translation units (headers
  appear in many TUs). ``--html-dir`` gets a self-contained summary table.
  This is the local-fallback mode — the container toolchain's llvm-cov
  cannot read GCC 12 .gcno files.

The gate: aggregate line coverage over files matching ``--filter`` must be
at least ``--threshold`` percent, else exit 1. The default threshold is the
value measured when the deadline-index test suite landed; refresh it
deliberately when coverage moves, like bench/baseline.json.
"""

import argparse
import glob
import json
import os
import shutil
import subprocess
import sys


def find_tool(names):
    for name in names:
        path = shutil.which(name)
        if path:
            return path
    return None


def list_test_binaries(build_dir):
    """Executables under <build>/tests (the ctest suite)."""
    out = []
    tests_dir = os.path.join(build_dir, "tests")
    for entry in sorted(os.listdir(tests_dir)) if os.path.isdir(tests_dir) else []:
        path = os.path.join(tests_dir, entry)
        if os.path.isfile(path) and os.access(path, os.X_OK):
            out.append(path)
    return out


def collect_llvm(build_dir, html_dir):
    """Returns {source_path: (covered, total)} from llvm source-based data."""
    profraws = glob.glob(os.path.join(build_dir, "**", "*.profraw"),
                         recursive=True)
    if not profraws:
        return None
    profdata_tool = find_tool(["llvm-profdata", "llvm-profdata-14",
                               "llvm-profdata-15", "llvm-profdata-16"])
    cov_tool = find_tool(["llvm-cov", "llvm-cov-14", "llvm-cov-15",
                          "llvm-cov-16"])
    if not profdata_tool or not cov_tool:
        print("coverage: found .profraw but no llvm-profdata/llvm-cov",
              file=sys.stderr)
        sys.exit(2)
    binaries = list_test_binaries(build_dir)
    if not binaries:
        print("coverage: no test binaries under", build_dir, file=sys.stderr)
        sys.exit(2)

    profdata = os.path.join(build_dir, "coverage.profdata")
    subprocess.run([profdata_tool, "merge", "-sparse", *profraws,
                    "-o", profdata], check=True)

    objects = [binaries[0]]
    for b in binaries[1:]:
        objects += ["-object", b]
    export = subprocess.run(
        [cov_tool, "export", "-instr-profile", profdata, *objects,
         "-skip-functions"],
        check=True, capture_output=True, text=True)
    doc = json.loads(export.stdout)
    lines = {}
    for data in doc.get("data", []):
        for f in data.get("files", []):
            summary = f.get("summary", {}).get("lines", {})
            lines[f.get("filename", "")] = (
                int(summary.get("covered", 0)), int(summary.get("count", 0)))

    if html_dir:
        subprocess.run(
            [cov_tool, "show", "-format=html", f"-output-dir={html_dir}",
             "-instr-profile", profdata, *objects],
            check=True)
        print(f"coverage: HTML report at {html_dir}/index.html")
    return lines


def collect_gcov(build_dir, html_dir, filter_substr):
    """Returns {source_path: (covered, total)} by merging gcov JSON exports."""
    gcdas = glob.glob(os.path.join(build_dir, "**", "*.gcda"), recursive=True)
    if not gcdas:
        return None
    gcov_tool = find_tool(["gcov", "gcov-12", "gcov-13"])
    if not gcov_tool:
        print("coverage: found .gcda but no gcov", file=sys.stderr)
        sys.exit(2)

    # line hit counts merged across every TU that compiled the line.
    counts = {}  # file -> {line: count}
    for gcda in gcdas:
        proc = subprocess.run(
            [gcov_tool, "--json-format", "--stdout", gcda],
            capture_output=True, text=True, cwd=build_dir)
        if proc.returncode != 0:
            continue
        for chunk in proc.stdout.splitlines():
            if not chunk.strip():
                continue
            try:
                doc = json.loads(chunk)
            except json.JSONDecodeError:
                continue
            for f in doc.get("files", []):
                name = os.path.normpath(f.get("file", ""))
                per_file = counts.setdefault(name, {})
                for line in f.get("lines", []):
                    n = line.get("line_number")
                    per_file[n] = per_file.get(n, 0) + int(line.get("count", 0))

    lines = {}
    for name, per_file in counts.items():
        covered = sum(1 for c in per_file.values() if c > 0)
        lines[name] = (covered, len(per_file))

    if html_dir:
        os.makedirs(html_dir, exist_ok=True)
        rows = []
        for name in sorted(lines):
            if filter_substr not in name:
                continue
            covered, total = lines[name]
            pct = 100.0 * covered / total if total else 100.0
            rows.append(f"<tr><td>{name}</td><td>{covered}/{total}</td>"
                        f"<td>{pct:.1f}%</td></tr>")
        with open(os.path.join(html_dir, "index.html"), "w") as fh:
            fh.write("<!DOCTYPE html><html><head><title>loglens coverage"
                     "</title></head><body><h1>Line coverage (gcov mode)"
                     "</h1><table border='1' cellpadding='4'>"
                     "<tr><th>file</th><th>lines</th><th>coverage</th></tr>"
                     + "".join(rows) + "</table></body></html>\n")
        print(f"coverage: HTML summary at {html_dir}/index.html")
    return lines


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--filter", default="src/automata/",
                        help="path substring selecting the gated files")
    # Floor pinned when the deadline-index suite landed: 99.2% measured for
    # src/automata/ (gcov mode), held at 97 for llvm/gcov line-counting
    # differences.
    parser.add_argument("--threshold", type=float, default=97.0,
                        help="minimum aggregate line coverage percent")
    parser.add_argument("--html-dir", default=None,
                        help="write an HTML report here")
    args = parser.parse_args()

    lines = collect_llvm(args.build_dir, args.html_dir)
    if lines is None:
        lines = collect_gcov(args.build_dir, args.html_dir, args.filter)
    if lines is None:
        print("coverage: no .profraw or .gcda under", args.build_dir,
              "— was the build configured with -DLOGLENS_COVERAGE=ON "
              "and ctest run?", file=sys.stderr)
        sys.exit(2)

    covered = total = 0
    print(f"line coverage for files matching '{args.filter}':")
    for name in sorted(lines):
        if args.filter not in name.replace("\\", "/"):
            continue
        c, t = lines[name]
        covered += c
        total += t
        pct = 100.0 * c / t if t else 100.0
        print(f"  {name}: {c}/{t} ({pct:.1f}%)")
    if total == 0:
        print("coverage: no instrumented lines matched the filter",
              file=sys.stderr)
        sys.exit(2)
    pct = 100.0 * covered / total
    print(f"aggregate: {covered}/{total} = {pct:.2f}% "
          f"(threshold {args.threshold:.2f}%)")
    if pct < args.threshold:
        print("coverage gate FAILED", file=sys.stderr)
        sys.exit(1)
    print("coverage gate passed")


if __name__ == "__main__":
    main()
