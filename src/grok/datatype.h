// Datatypes of paper Table I and the coverage lattice between them.
//
// Every token in a log and every field in a GROK pattern has a datatype.
// Signatures (Section III-B) are sequences of datatype names, and candidate
// pattern ordering sorts by datatype *generality*: a pattern made of specific
// datatypes is tried before one made of general datatypes so the most precise
// parse wins.
#pragma once

#include <string>
#include <string_view>

#include "regexlite/regex.h"

namespace loglens {

enum class Datatype {
  kWord,      // [a-zA-Z]+
  kNumber,    // -?[0-9]+(.[0-9]+)?
  kIp,        // dotted quad
  kNotSpace,  // \S+
  kDateTime,  // unified "yyyy/MM/dd HH:mm:ss.SSS" (assigned by the
              // timestamp recognizer; never by single-token classification)
  kAnyData,   // ".*" wildcard spanning zero or more tokens
};

inline constexpr int kDatatypeCount = 6;

// Upper-case name as it appears inside %{NAME:field} GROK expressions.
std::string_view datatype_name(Datatype t);

// Inverse of datatype_name; returns false if `name` is unknown.
bool datatype_from_name(std::string_view name, Datatype& out);

// The paper's isCovered(a, b): true when every string matched by `a`'s RegEx
// definition is also matched by `b`'s. The lattice is
//   WORD, NUMBER, IP  <  NOTSPACE  <  ANYDATA,   DATETIME < ANYDATA
// (DATETIME contains a space, so it is *not* under NOTSPACE).
bool is_covered(Datatype a, Datatype b);

// Generality rank used to order candidate-pattern-groups: lower is more
// specific. WORD/NUMBER/IP/DATETIME=1, NOTSPACE=2, ANYDATA=3.
int generality(Datatype t);

// Classifies a single token by the Table I RegEx rules, most specific type
// first. Never returns kDateTime or kAnyData (those are multi-token
// concepts); every non-empty whitespace-free token is at least NOTSPACE.
class DatatypeClassifier {
 public:
  DatatypeClassifier();

  Datatype classify(std::string_view token) const;

  // True iff `token` matches the RegEx definition of `type`.
  bool matches(std::string_view token, Datatype type) const;

  // Times any of the Table I regexes gave up on VM budget exhaustion
  // (monotonic; surfaced as loglens_regex_budget_exhausted_total).
  uint64_t budget_exhausted_total() const {
    return word_.budget_exhausted_count() + number_.budget_exhausted_count() +
           ip_.budget_exhausted_count();
  }

 private:
  Regex word_;
  Regex number_;
  Regex ip_;
};

}  // namespace loglens
