// The token representation shared by the tokenizer, pattern discovery, and
// the parser.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grok/datatype.h"

namespace loglens {

struct Token {
  std::string text;   // normalized text; canonical form for DATETIME tokens
  Datatype type = Datatype::kNotSpace;

  friend bool operator==(const Token&, const Token&) = default;
};

// A raw log after preprocessing (Section III-A1/A2): delimiter splitting,
// sub-token split rules, timestamp recognition + unification, and datatype
// classification.
struct TokenizedLog {
  std::vector<Token> tokens;
  int64_t timestamp_ms = -1;  // first recognized timestamp, -1 if none
  std::string raw;            // original log line
};

}  // namespace loglens
