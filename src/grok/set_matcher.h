// Set-level GROK matcher (ROADMAP item 2): the whole pattern set compiled
// into one shared-prefix trie executed as an NFA, so matchability of *every*
// pattern against a log is decided in one pass over the log instead of one
// match attempt per pattern — the O(patterns)-per-log collapse of paper
// Table IV becomes ~O(log length) on the index-miss and discovery paths.
//
// Compile-then-execute IR. Each pattern token lowers to one symbol:
//
//   literal      -> an interned literal id (exact token text),
//   field T      -> a datatype class edge (T != ANYDATA),
//   %{ANYDATA}   -> a wildcard node: self-loop plus an epsilon edge to the
//                   continuation (spans zero or more log tokens).
//
// Patterns sharing a symbol prefix share trie nodes; a node reached by a
// whole pattern records that pattern's index in its terminal list.
//
// Execution is a Thompson-style NFA simulation over the trie. For each log
// token the walk computes the token's IR symbol once — its interned literal
// id (the Aho-Corasick-style literal prefilter: a token text outside the
// pattern set's literal alphabet can never take a literal edge, so the
// whole literal fan-out of a node is skipped with one hash probe) and its
// datatype acceptance mask — then advances every active node with pure
// integer edge checks. Cost per log is O(tokens x active nodes),
// independent of the pattern count; shared prefixes and the prefilter keep
// the active set small. A configurable active-set cap bounds pathological
// models: on overflow the walk reports failure (GrokSetScratch::overflow)
// and the caller falls back to the linear per-pattern scan.
//
// Two front-ends lower into the same IR and share the walk:
//
//   compile_tokens      exact token-level matchability: for every pattern i,
//                       the result contains i iff patterns[i].match(tokens)
//                       — bit-identical to the per-pattern matcher because
//                       edge predicates are grok_token_matches itself.
//                       Captures are recovered by a targeted second pass:
//                       run the per-pattern matcher on the one selected
//                       candidate.
//   compile_signatures  Algorithm 1 membership: i iff
//                       signature_match(log_sig, sigs[i]) — used by the
//                       parser to build a candidate group on an index miss
//                       in one walk instead of one DP per pattern.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "grok/datatype.h"
#include "grok/pattern.h"
#include "grok/token.h"

namespace loglens {

// Reusable walk state: a warm scratch executes a walk with no heap
// allocation. Outputs of the last walk are left in `result` / the flags.
struct GrokSetScratch {
  // Walk output: indices of every matching pattern, ascending. Meaningless
  // when the walk returned false (overflow).
  std::vector<uint32_t> result;
  uint64_t steps = 0;          // node activations in the last walk
  bool prefilter_hit = false;  // a log token was in the literal alphabet
  bool overflow = false;       // active-set cap exceeded; fall back

  // Internals reused across walks.
  std::vector<uint32_t> active;
  std::vector<uint32_t> next_active;
  std::vector<uint32_t> seen;  // node id -> epoch of last activation
  uint32_t epoch = 0;
  std::vector<uint32_t> sym_lit;   // per-position interned literal id
  std::vector<uint8_t> sym_mask;   // per-position datatype acceptance bits
};

struct GrokSetOptions {
  // Ceiling on simultaneously-active trie nodes. Shared prefixes keep real
  // models far below this; a model that exceeds it (pathological wildcard
  // nesting) falls back to the linear scan rather than paying unbounded
  // walk cost.
  size_t max_active = 256;
};

class GrokSetMatcher {
 public:
  using Options = GrokSetOptions;

  GrokSetMatcher() = default;

  // Token-level instance over whole patterns.
  static GrokSetMatcher compile_tokens(const std::vector<GrokPattern>& patterns,
                                       Options options = {});
  // Signature-level instance over datatype sequences (pattern signatures).
  static GrokSetMatcher compile_signatures(
      const std::vector<std::vector<Datatype>>& signatures,
      Options options = {});

  // One pass over `tokens`: on success returns true with scratch.result
  // holding the indices of every pattern the per-pattern matcher would
  // accept. Returns false with scratch.overflow set when the active-set cap
  // was exceeded (use the linear scan instead). Only valid on an instance
  // built by compile_tokens.
  bool match_tokens(const std::vector<Token>& tokens,
                    const DatatypeClassifier& classifier,
                    GrokSetScratch& scratch) const;

  // Same, for an instance built by compile_signatures: scratch.result holds
  // every i with signature_match(sig, signatures[i]).
  bool match_signature(std::span<const Datatype> sig,
                       GrokSetScratch& scratch) const;

  size_t pattern_count() const { return pattern_count_; }
  size_t node_count() const { return nodes_.size(); }
  size_t literal_count() const { return lit_ids_.size(); }
  size_t resident_bytes() const;

 private:
  // No literal edge carries this id, so a log token outside the literal
  // alphabet skips every literal fan-out (the prefilter).
  static constexpr uint32_t kNoLiteral = static_cast<uint32_t>(-1);

  struct Node {
    // Edge per datatype class (indexed by the field's Datatype); -1 absent.
    int32_t class_next[kDatatypeCount];
    int32_t wild_next = -1;  // epsilon edge into a wildcard child
    bool self_loop = false;  // node entered via %{ANYDATA}: consumes freely
    // Literal edges sorted by interned id for binary search.
    std::vector<std::pair<uint32_t, int32_t>> lit_edges;
    std::vector<uint32_t> terminal;  // pattern indices ending here
    Node() {
      for (auto& e : class_next) e = -1;
    }
  };

  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return static_cast<size_t>(fnv1a(s));
    }
  };

  uint32_t intern_literal(std::string_view text);
  uint32_t find_literal(std::string_view text) const;
  int32_t child_class(uint32_t node, Datatype type);
  int32_t child_literal(uint32_t node, uint32_t lit);
  int32_t child_wild(uint32_t node);
  bool walk(size_t positions, GrokSetScratch& scratch) const;

  std::vector<Node> nodes_;
  std::unordered_map<std::string, uint32_t, TransparentHash, std::equal_to<>>
      lit_ids_;
  size_t pattern_count_ = 0;
  Options options_;
};

}  // namespace loglens
