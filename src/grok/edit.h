// Domain-knowledge pattern editing (Section III-A4).
//
// Discovery is unsupervised, so generated patterns carry generic field names
// (P1F1, P1F2, ...) and may be more general or more specific than the user
// wants. These operations let users (or the model manager acting for them)
// adjust patterns without regenerating them:
//   - rename a generic field to a semantic name,
//   - specialize a field to a fixed literal value,
//   - generalize a literal token into a variable field,
//   - widen a token range into a single ANYDATA (wildcard) field,
// plus the heuristic renamer the paper uses to avoid manual renaming for
// common "Key = value" / "Key: value" shapes.
#pragma once

#include <string_view>

#include "common/status.h"
#include "grok/pattern.h"

namespace loglens::pattern_edit {

// Renames the field currently called `old_name` to `new_name`.
Status rename_field(GrokPattern& pattern, std::string_view old_name,
                    std::string_view new_name);

// Replaces the field `field_name` with the fixed literal `value`
// (e.g. %{IP:P1F2} -> 127.0.0.1).
Status specialize(GrokPattern& pattern, std::string_view field_name,
                  std::string_view value);

// Converts the literal at `token_index` into a variable field
// (e.g. user1 -> %{NOTSPACE:userName}).
Status generalize(GrokPattern& pattern, size_t token_index, Datatype type,
                  std::string_view name);

// Replaces tokens [first, last] (inclusive) with a single ANYDATA field so
// multiple tokens parse into one field.
Status widen_to_anydata(GrokPattern& pattern, size_t first, size_t last,
                        std::string_view name);

// True for machine-assigned names of the form P<digits>F<digits>.
bool is_generic_name(std::string_view name);

// Applies the "PDU = %{NUMBER:P1F1}" -> "PDU = %{NUMBER:PDU}" heuristic: a
// field preceded by "Key =", "Key :", "Key=", or "Key:" takes the key as its
// name (sanitized to [A-Za-z_][A-Za-z0-9_]*, de-duplicated within the
// pattern). Returns the number of fields renamed.
int apply_heuristic_names(GrokPattern& pattern);

}  // namespace loglens::pattern_edit
