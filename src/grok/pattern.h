// GROK pattern model (Section III).
//
// A pattern is a whitespace-separated sequence of tokens; each token is
// either a fixed literal ("user1", "DB") or a typed variable field written
// %{TYPE:Name}. Patterns are discovered by clustering (logmine/), edited by
// users (grok/edit.h), indexed by signature (parser/), and matched against
// tokenized logs to produce JSON records.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "grok/datatype.h"
#include "grok/token.h"
#include "json/json.h"

namespace loglens {

struct GrokField {
  Datatype type = Datatype::kNotSpace;
  std::string name;  // "P1F2" generic id or a user-supplied semantic name

  friend bool operator==(const GrokField&, const GrokField&) = default;
};

struct GrokToken {
  // Exactly one of the two alternatives is active.
  bool is_field = false;
  std::string literal;  // when !is_field
  GrokField field;      // when is_field

  static GrokToken make_literal(std::string text) {
    GrokToken t;
    t.literal = std::move(text);
    return t;
  }
  static GrokToken make_field(Datatype type, std::string name = {}) {
    GrokToken t;
    t.is_field = true;
    t.field = {type, std::move(name)};
    return t;
  }

  friend bool operator==(const GrokToken&, const GrokToken&) = default;
};

class GrokPattern {
 public:
  GrokPattern() = default;
  explicit GrokPattern(std::vector<GrokToken> tokens)
      : tokens_(std::move(tokens)) {}

  // Renders as "%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}".
  std::string to_string() const;

  // Parses the textual form back into a pattern. Accepts %{TYPE} without a
  // name. Fails on unknown datatypes or malformed %{...} syntax.
  static StatusOr<GrokPattern> parse(std::string_view text);

  // Pattern-signature (Section III-B): every field contributes its datatype
  // name; every literal contributes the datatype of its present value.
  std::string signature(const DatatypeClassifier& classifier) const;

  // Attempts to parse `tokens`; on success fills `out` with field-name ->
  // value pairs in pattern order and returns true. ANYDATA fields may span
  // zero or more tokens (joined with single spaces in the output).
  bool match(const std::vector<Token>& tokens, const DatatypeClassifier& classifier,
             JsonObject* out) const;
  bool match(const std::vector<Token>& tokens,
             const DatatypeClassifier& classifier) const;

  // Assigns generic field ids P<pattern_id>F<k> to fields that have no name
  // yet (discovery order, k starting at 1), and records the pattern id.
  void assign_field_ids(int pattern_id);

  int id() const { return id_; }
  void set_id(int id) { id_ = id; }

  const std::vector<GrokToken>& tokens() const { return tokens_; }
  std::vector<GrokToken>& tokens() { return tokens_; }
  size_t size() const { return tokens_.size(); }
  bool has_wildcard() const;

  // Sum of field generality ranks; the candidate-group sort key ("ascending
  // order of datatype's generality and length", Section III-B step 2).
  int generality_score() const;

  friend bool operator==(const GrokPattern&, const GrokPattern&) = default;

 private:
  bool match_rec(const std::vector<Token>& tokens,
                 const DatatypeClassifier& classifier, size_t ti, size_t pi,
                 JsonObject* out) const;

  std::vector<GrokToken> tokens_;
  int id_ = 0;
};

}  // namespace loglens
