// GROK pattern model (Section III).
//
// A pattern is a whitespace-separated sequence of tokens; each token is
// either a fixed literal ("user1", "DB") or a typed variable field written
// %{TYPE:Name}. Patterns are discovered by clustering (logmine/), edited by
// users (grok/edit.h), indexed by signature (parser/), and matched against
// tokenized logs to produce JSON records.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "grok/datatype.h"
#include "grok/token.h"
#include "json/json.h"

namespace loglens {

// Reusable state for GrokPattern::match_into. starts[pi] records the log
// token index where pattern token `pi` began matching (with a sentinel
// starts[pattern size] = log size), so a wildcard's span is
// [starts[pi], starts[pi+1]). `steps` counts matcher loop iterations of the
// last attempt; it is O(pattern tokens * log tokens) by construction, which
// tests use to pin down the old exponential-backtracking regression.
struct GrokMatchScratch {
  std::vector<uint32_t> starts;
  uint64_t steps = 0;
};

struct GrokField {
  Datatype type = Datatype::kNotSpace;
  std::string name;  // "P1F2" generic id or a user-supplied semantic name

  friend bool operator==(const GrokField&, const GrokField&) = default;
};

struct GrokToken {
  // Exactly one of the two alternatives is active.
  bool is_field = false;
  std::string literal;  // when !is_field
  GrokField field;      // when is_field

  static GrokToken make_literal(std::string text) {
    GrokToken t;
    t.literal = std::move(text);
    return t;
  }
  static GrokToken make_field(Datatype type, std::string name = {}) {
    GrokToken t;
    t.is_field = true;
    t.field = {type, std::move(name)};
    return t;
  }

  friend bool operator==(const GrokToken&, const GrokToken&) = default;
};

// Single-token predicate for literals and non-ANYDATA fields: does pattern
// token `pt` match log token `tok`? Depends only on the log token, never on
// its position — the property that makes both the per-pattern wildcard scan
// and the set-level trie walk (grok/set_matcher.h) complete. The set matcher
// must agree with the per-pattern matcher token-for-token, so both call this
// one definition.
bool grok_token_matches(const GrokToken& pt, const Token& tok,
                        const DatatypeClassifier& classifier);

class GrokPattern {
 public:
  GrokPattern() = default;
  explicit GrokPattern(std::vector<GrokToken> tokens)
      : tokens_(std::move(tokens)) {}

  // Renders as "%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}".
  std::string to_string() const;

  // Parses the textual form back into a pattern. Accepts %{TYPE} without a
  // name. Fails on unknown datatypes or malformed %{...} syntax.
  static StatusOr<GrokPattern> parse(std::string_view text);

  // Pattern-signature (Section III-B): every field contributes its datatype
  // name; every literal contributes the datatype of its present value.
  std::string signature(const DatatypeClassifier& classifier) const;

  // Attempts to parse `tokens`; on success fills `out` with field-name ->
  // value pairs in pattern order and returns true. ANYDATA fields may span
  // zero or more tokens (joined with single spaces in the output); when
  // several assignments exist the lexicographically minimal one wins (each
  // wildcard takes as few tokens as possible, left to right), matching the
  // historical shortest-first search.
  bool match(const std::vector<Token>& tokens, const DatatypeClassifier& classifier,
             JsonObject* out) const;
  bool match(const std::vector<Token>& tokens,
             const DatatypeClassifier& classifier) const;

  // Hot-path variant: iterative matcher reusing `scratch` across calls. On
  // failure `out` is left untouched; on success `out` is overwritten in
  // place, reusing existing key/value string storage so a warm call performs
  // no heap allocation. `out` may be null to test matchability only.
  bool match_into(const std::vector<Token>& tokens,
                  const DatatypeClassifier& classifier, JsonObject* out,
                  GrokMatchScratch& scratch) const;

  // Assigns generic field ids P<pattern_id>F<k> to fields that have no name
  // yet (discovery order, k starting at 1), and records the pattern id.
  void assign_field_ids(int pattern_id);

  int id() const { return id_; }
  void set_id(int id) { id_ = id; }

  const std::vector<GrokToken>& tokens() const { return tokens_; }
  std::vector<GrokToken>& tokens() { return tokens_; }
  size_t size() const { return tokens_.size(); }
  bool has_wildcard() const;

  // Sum of field generality ranks; the candidate-group sort key ("ascending
  // order of datatype's generality and length", Section III-B step 2).
  int generality_score() const;

  friend bool operator==(const GrokPattern&, const GrokPattern&) = default;

 private:
  // Fills scratch.starts with a match assignment, or returns false. The
  // matcher is the classic iterative glob scan: a single most-recent-wildcard
  // backtrack register makes it O(pattern * log) worst case (complete for
  // this pattern class because segments between wildcards are fixed-length
  // runs of position-independent single-token predicates), and the fixed
  // suffix after the last wildcard is anchored right-aligned up front so
  // unmatchable tails fail before any wildcard work happens.
  bool match_tokens(const std::vector<Token>& tokens,
                    const DatatypeClassifier& classifier,
                    GrokMatchScratch& scratch) const;
  void emit_fields(const std::vector<Token>& tokens,
                   const GrokMatchScratch& scratch, JsonObject* out) const;

  std::vector<GrokToken> tokens_;
  int id_ = 0;
};

}  // namespace loglens
