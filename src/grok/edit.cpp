#include "grok/edit.h"

#include <cctype>
#include <set>
#include <string>

namespace loglens::pattern_edit {

namespace {

GrokToken* find_field(GrokPattern& pattern, std::string_view name) {
  for (auto& t : pattern.tokens()) {
    if (t.is_field && t.field.name == name) return &t;
  }
  return nullptr;
}

// Sanitizes a candidate semantic name: strips one trailing '=' or ':' and any
// non-identifier characters; empty result means "not usable".
std::string sanitize_name(std::string_view raw) {
  if (!raw.empty() && (raw.back() == '=' || raw.back() == ':')) {
    raw.remove_suffix(1);
  }
  std::string out;
  for (char c : raw) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(c);
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front()))) {
    return {};
  }
  return out;
}

}  // namespace

Status rename_field(GrokPattern& pattern, std::string_view old_name,
                    std::string_view new_name) {
  if (new_name.empty()) return Status::Error("new field name is empty");
  if (find_field(pattern, new_name) != nullptr) {
    return Status::Error("field name already in use: " + std::string(new_name));
  }
  GrokToken* t = find_field(pattern, old_name);
  if (t == nullptr) {
    return Status::Error("no such field: " + std::string(old_name));
  }
  t->field.name = std::string(new_name);
  return Status::Ok();
}

Status specialize(GrokPattern& pattern, std::string_view field_name,
                  std::string_view value) {
  GrokToken* t = find_field(pattern, field_name);
  if (t == nullptr) {
    return Status::Error("no such field: " + std::string(field_name));
  }
  if (value.empty() || value.find_first_of(" \t") != std::string_view::npos) {
    return Status::Error("literal value must be a single non-empty token");
  }
  *t = GrokToken::make_literal(std::string(value));
  return Status::Ok();
}

Status generalize(GrokPattern& pattern, size_t token_index, Datatype type,
                  std::string_view name) {
  if (token_index >= pattern.size()) {
    return Status::Error("token index out of range");
  }
  GrokToken& t = pattern.tokens()[token_index];
  if (t.is_field) {
    return Status::Error("token is already a field; use rename/specialize");
  }
  if (!name.empty() && find_field(pattern, name) != nullptr) {
    return Status::Error("field name already in use: " + std::string(name));
  }
  t = GrokToken::make_field(type, std::string(name));
  return Status::Ok();
}

Status widen_to_anydata(GrokPattern& pattern, size_t first, size_t last,
                        std::string_view name) {
  if (first > last || last >= pattern.size()) {
    return Status::Error("invalid token range");
  }
  auto& tokens = pattern.tokens();
  tokens.erase(tokens.begin() + static_cast<ptrdiff_t>(first),
               tokens.begin() + static_cast<ptrdiff_t>(last) + 1);
  tokens.insert(tokens.begin() + static_cast<ptrdiff_t>(first),
                GrokToken::make_field(Datatype::kAnyData, std::string(name)));
  return Status::Ok();
}

bool is_generic_name(std::string_view name) {
  if (name.size() < 4 || name[0] != 'P') return false;
  size_t i = 1;
  size_t digits = 0;
  while (i < name.size() && std::isdigit(static_cast<unsigned char>(name[i]))) {
    ++i;
    ++digits;
  }
  if (digits == 0 || i >= name.size() || name[i] != 'F') return false;
  ++i;
  digits = 0;
  while (i < name.size() && std::isdigit(static_cast<unsigned char>(name[i]))) {
    ++i;
    ++digits;
  }
  return digits > 0 && i == name.size();
}

int apply_heuristic_names(GrokPattern& pattern) {
  auto& tokens = pattern.tokens();
  std::set<std::string> used;
  for (const auto& t : tokens) {
    if (t.is_field && !t.field.name.empty()) used.insert(t.field.name);
  }
  int renamed = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    GrokToken& t = tokens[i];
    if (!t.is_field) continue;
    if (!t.field.name.empty() && !is_generic_name(t.field.name)) continue;

    std::string candidate;
    // "Key = value" / "Key : value" (three tokens).
    if (i >= 2 && !tokens[i - 1].is_field &&
        (tokens[i - 1].literal == "=" || tokens[i - 1].literal == ":") &&
        !tokens[i - 2].is_field) {
      candidate = sanitize_name(tokens[i - 2].literal);
    }
    // "Key= value" / "Key: value" (two tokens).
    if (candidate.empty() && i >= 1 && !tokens[i - 1].is_field &&
        (tokens[i - 1].literal.ends_with('=') ||
         tokens[i - 1].literal.ends_with(':'))) {
      candidate = sanitize_name(tokens[i - 1].literal);
    }
    if (candidate.empty() || used.contains(candidate)) continue;
    used.erase(t.field.name);
    t.field.name = candidate;
    used.insert(candidate);
    ++renamed;
  }
  return renamed;
}

}  // namespace loglens::pattern_edit
