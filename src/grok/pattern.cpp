#include "grok/pattern.h"

#include "common/strings.h"

namespace loglens {

std::string GrokPattern::to_string() const {
  std::vector<std::string> parts;
  parts.reserve(tokens_.size());
  for (const auto& t : tokens_) {
    if (t.is_field) {
      std::string s = "%{";
      s += datatype_name(t.field.type);
      if (!t.field.name.empty()) {
        s += ':';
        s += t.field.name;
      }
      s += '}';
      parts.push_back(std::move(s));
    } else {
      parts.push_back(t.literal);
    }
  }
  return join(parts, " ");
}

StatusOr<GrokPattern> GrokPattern::parse(std::string_view text) {
  std::vector<GrokToken> tokens;
  for (std::string_view piece : split_any(text, " \t")) {
    if (piece.starts_with("%{")) {
      if (!piece.ends_with('}')) {
        return StatusOr<GrokPattern>::Error("unterminated %{...} in: " +
                                            std::string(piece));
      }
      std::string_view body = piece.substr(2, piece.size() - 3);
      std::string_view type_name = body;
      std::string_view field_name;
      if (size_t colon = body.find(':'); colon != std::string_view::npos) {
        type_name = body.substr(0, colon);
        field_name = body.substr(colon + 1);
      }
      Datatype type;
      if (!datatype_from_name(type_name, type)) {
        return StatusOr<GrokPattern>::Error("unknown datatype: " +
                                            std::string(type_name));
      }
      tokens.push_back(GrokToken::make_field(type, std::string(field_name)));
    } else {
      tokens.push_back(GrokToken::make_literal(std::string(piece)));
    }
  }
  if (tokens.empty()) {
    return StatusOr<GrokPattern>::Error("empty pattern");
  }
  return GrokPattern(std::move(tokens));
}

std::string GrokPattern::signature(const DatatypeClassifier& classifier) const {
  std::vector<std::string_view> parts;
  parts.reserve(tokens_.size());
  for (const auto& t : tokens_) {
    if (t.is_field) {
      parts.push_back(datatype_name(t.field.type));
    } else {
      parts.push_back(datatype_name(classifier.classify(t.literal)));
    }
  }
  return join(parts, " ");
}

bool GrokPattern::has_wildcard() const {
  for (const auto& t : tokens_) {
    if (t.is_field && t.field.type == Datatype::kAnyData) return true;
  }
  return false;
}

int GrokPattern::generality_score() const {
  int score = 0;
  for (const auto& t : tokens_) {
    if (t.is_field) score += generality(t.field.type);
  }
  return score;
}

void GrokPattern::assign_field_ids(int pattern_id) {
  id_ = pattern_id;
  int seq = 1;
  for (auto& t : tokens_) {
    if (t.is_field && t.field.name.empty()) {
      t.field.name = "P" + std::to_string(pattern_id) + "F" + std::to_string(seq);
    }
    if (t.is_field) ++seq;
  }
}

bool GrokPattern::match_rec(const std::vector<Token>& tokens,
                            const DatatypeClassifier& classifier, size_t ti,
                            size_t pi, JsonObject* out) const {
  if (pi == tokens_.size()) return ti == tokens.size();
  const GrokToken& pt = tokens_[pi];
  if (!pt.is_field) {
    if (ti < tokens.size() && tokens[ti].text == pt.literal) {
      return match_rec(tokens, classifier, ti + 1, pi + 1, out);
    }
    return false;
  }
  if (pt.field.type == Datatype::kAnyData) {
    // Wildcard: consume zero or more tokens, shortest first so trailing
    // literals anchor the match deterministically.
    for (size_t take = 0; ti + take <= tokens.size(); ++take) {
      size_t mark = out != nullptr ? out->size() : 0;
      if (out != nullptr) {
        std::vector<std::string_view> span;
        span.reserve(take);
        for (size_t k = 0; k < take; ++k) span.push_back(tokens[ti + k].text);
        out->emplace_back(pt.field.name, Json(join(span, " ")));
      }
      if (match_rec(tokens, classifier, ti + take, pi + 1, out)) return true;
      if (out != nullptr) out->resize(mark);
    }
    return false;
  }
  if (ti >= tokens.size()) return false;
  const Token& tok = tokens[ti];
  bool ok = pt.field.type == Datatype::kDateTime
                ? tok.type == Datatype::kDateTime
                : tok.type != Datatype::kDateTime &&
                      classifier.matches(tok.text, pt.field.type);
  if (!ok) return false;
  size_t mark = out != nullptr ? out->size() : 0;
  if (out != nullptr) out->emplace_back(pt.field.name, Json(tok.text));
  if (match_rec(tokens, classifier, ti + 1, pi + 1, out)) return true;
  if (out != nullptr) out->resize(mark);
  return false;
}

bool GrokPattern::match(const std::vector<Token>& tokens,
                        const DatatypeClassifier& classifier,
                        JsonObject* out) const {
  if (out != nullptr) out->clear();
  return match_rec(tokens, classifier, 0, 0, out);
}

bool GrokPattern::match(const std::vector<Token>& tokens,
                        const DatatypeClassifier& classifier) const {
  return match_rec(tokens, classifier, 0, 0, nullptr);
}

}  // namespace loglens
