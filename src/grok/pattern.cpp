#include "grok/pattern.h"

#include "common/strings.h"

namespace loglens {

std::string GrokPattern::to_string() const {
  std::vector<std::string> parts;
  parts.reserve(tokens_.size());
  for (const auto& t : tokens_) {
    if (t.is_field) {
      std::string s = "%{";
      s += datatype_name(t.field.type);
      if (!t.field.name.empty()) {
        s += ':';
        s += t.field.name;
      }
      s += '}';
      parts.push_back(std::move(s));
    } else {
      parts.push_back(t.literal);
    }
  }
  return join(parts, " ");
}

StatusOr<GrokPattern> GrokPattern::parse(std::string_view text) {
  std::vector<GrokToken> tokens;
  for (std::string_view piece : split_any(text, " \t")) {
    if (piece.starts_with("%{")) {
      if (!piece.ends_with('}')) {
        return StatusOr<GrokPattern>::Error("unterminated %{...} in: " +
                                            std::string(piece));
      }
      std::string_view body = piece.substr(2, piece.size() - 3);
      std::string_view type_name = body;
      std::string_view field_name;
      if (size_t colon = body.find(':'); colon != std::string_view::npos) {
        type_name = body.substr(0, colon);
        field_name = body.substr(colon + 1);
      }
      Datatype type;
      if (!datatype_from_name(type_name, type)) {
        return StatusOr<GrokPattern>::Error("unknown datatype: " +
                                            std::string(type_name));
      }
      tokens.push_back(GrokToken::make_field(type, std::string(field_name)));
    } else {
      tokens.push_back(GrokToken::make_literal(std::string(piece)));
    }
  }
  if (tokens.empty()) {
    return StatusOr<GrokPattern>::Error("empty pattern");
  }
  return GrokPattern(std::move(tokens));
}

std::string GrokPattern::signature(const DatatypeClassifier& classifier) const {
  std::vector<std::string_view> parts;
  parts.reserve(tokens_.size());
  for (const auto& t : tokens_) {
    if (t.is_field) {
      parts.push_back(datatype_name(t.field.type));
    } else {
      parts.push_back(datatype_name(classifier.classify(t.literal)));
    }
  }
  return join(parts, " ");
}

bool GrokPattern::has_wildcard() const {
  for (const auto& t : tokens_) {
    if (t.is_field && t.field.type == Datatype::kAnyData) return true;
  }
  return false;
}

int GrokPattern::generality_score() const {
  int score = 0;
  for (const auto& t : tokens_) {
    if (t.is_field) score += generality(t.field.type);
  }
  return score;
}

void GrokPattern::assign_field_ids(int pattern_id) {
  id_ = pattern_id;
  int seq = 1;
  for (auto& t : tokens_) {
    if (t.is_field && t.field.name.empty()) {
      t.field.name = "P" + std::to_string(pattern_id) + "F" + std::to_string(seq);
    }
    if (t.is_field) ++seq;
  }
}

namespace {

bool is_wildcard(const GrokToken& pt) {
  return pt.is_field && pt.field.type == Datatype::kAnyData;
}

}  // namespace

bool grok_token_matches(const GrokToken& pt, const Token& tok,
                        const DatatypeClassifier& classifier) {
  if (!pt.is_field) return tok.text == pt.literal;
  if (pt.field.type == Datatype::kDateTime) {
    return tok.type == Datatype::kDateTime;
  }
  return tok.type != Datatype::kDateTime &&
         classifier.matches(tok.text, pt.field.type);
}

bool GrokPattern::match_tokens(const std::vector<Token>& tokens,
                               const DatatypeClassifier& classifier,
                               GrokMatchScratch& scratch) const {
  const size_t n = tokens.size();
  const size_t m = tokens_.size();
  scratch.steps = 0;
  auto& starts = scratch.starts;
  starts.assign(m + 1, 0);
  starts[m] = static_cast<uint32_t>(n);

  // Locate the fixed suffix after the last wildcard. Every non-wildcard
  // pattern token consumes exactly one log token and the match must end at
  // the last log token, so the suffix's placement is forced: right-aligned.
  // Anchoring it first both rejects unmatchable tails in O(suffix) and caps
  // the region the wildcard scan has to cover.
  size_t tail = m;
  while (tail > 0 && !is_wildcard(tokens_[tail - 1])) --tail;
  const size_t tail_len = m - tail;

  if (tail == 0) {
    // No wildcard: one-to-one.
    if (n != m) return false;
    for (size_t i = 0; i < m; ++i) {
      ++scratch.steps;
      if (!grok_token_matches(tokens_[i], tokens[i], classifier)) return false;
      starts[i] = static_cast<uint32_t>(i);
    }
    return true;
  }

  if (n < tail_len) return false;
  const size_t limit = n - tail_len;  // wildcard region is tokens[0, limit)
  for (size_t k = 0; k < tail_len; ++k) {
    ++scratch.steps;
    if (!grok_token_matches(tokens_[tail + k], tokens[limit + k], classifier)) {
      return false;
    }
    starts[tail + k] = static_cast<uint32_t>(limit + k);
  }

  // Match tokens_[0, tail) — which ends in a wildcard — against
  // tokens[0, limit). On a dead end, re-open the most recent wildcard one
  // token wider; earlier wildcards never need revisiting, so the scan is
  // O(tail * limit) and the first assignment found is the lexicographically
  // minimal one (same captures as the historical shortest-first search).
  constexpr size_t kNoStar = static_cast<size_t>(-1);
  size_t ti = 0;
  size_t pi = 0;
  size_t star_pi = kNoStar;  // most recent wildcard's pattern index
  size_t star_ti = 0;        // resume point: one past that wildcard's span
  while (ti < limit || pi < tail) {
    ++scratch.steps;
    if (pi < tail) {
      const GrokToken& pt = tokens_[pi];
      if (is_wildcard(pt)) {
        starts[pi] = static_cast<uint32_t>(ti);
        star_pi = pi;
        star_ti = ti;
        ++pi;
        continue;
      }
      if (ti < limit && grok_token_matches(pt, tokens[ti], classifier)) {
        starts[pi] = static_cast<uint32_t>(ti);
        ++pi;
        ++ti;
        continue;
      }
    }
    if (star_pi == kNoStar || star_ti >= limit) return false;
    ++star_ti;
    ti = star_ti;
    pi = star_pi + 1;
  }
  return true;
}

void GrokPattern::emit_fields(const std::vector<Token>& tokens,
                              const GrokMatchScratch& scratch,
                              JsonObject* out) const {
  const auto& starts = scratch.starts;
  size_t nf = 0;
  for (size_t pi = 0; pi < tokens_.size(); ++pi) {
    const GrokToken& pt = tokens_[pi];
    if (!pt.is_field) continue;
    if (nf == out->size()) out->emplace_back();
    auto& slot = (*out)[nf++];
    slot.first.assign(pt.field.name);
    std::string& value = slot.second.emplace_string();
    value.clear();
    if (pt.field.type == Datatype::kAnyData) {
      for (size_t k = starts[pi]; k < starts[pi + 1]; ++k) {
        if (k > starts[pi]) value += ' ';
        value += tokens[k].text;
      }
    } else {
      value.append(tokens[starts[pi]].text);
    }
  }
  out->resize(nf);
}

bool GrokPattern::match_into(const std::vector<Token>& tokens,
                             const DatatypeClassifier& classifier,
                             JsonObject* out, GrokMatchScratch& scratch) const {
  if (!match_tokens(tokens, classifier, scratch)) return false;
  if (out != nullptr) emit_fields(tokens, scratch, out);
  return true;
}

bool GrokPattern::match(const std::vector<Token>& tokens,
                        const DatatypeClassifier& classifier,
                        JsonObject* out) const {
  GrokMatchScratch scratch;
  if (out != nullptr) out->clear();
  return match_into(tokens, classifier, out, scratch);
}

bool GrokPattern::match(const std::vector<Token>& tokens,
                        const DatatypeClassifier& classifier) const {
  GrokMatchScratch scratch;
  return match_tokens(tokens, classifier, scratch);
}

}  // namespace loglens
