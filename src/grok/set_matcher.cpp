#include "grok/set_matcher.h"

#include <algorithm>
#include <array>

namespace loglens {

namespace {

constexpr uint8_t bit_of(Datatype t) {
  return static_cast<uint8_t>(1u << static_cast<int>(t));
}

// cover_mask[d] = the set of non-wildcard pattern elements p that accept a
// log element d under Algorithm 1: d == p || is_covered(d, p). Precomputed
// once from the same is_covered the linear signature_match loop uses.
std::array<uint8_t, kDatatypeCount> build_cover_masks() {
  std::array<uint8_t, kDatatypeCount> out{};
  for (int d = 0; d < kDatatypeCount; ++d) {
    for (int p = 0; p < kDatatypeCount; ++p) {
      const Datatype dd = static_cast<Datatype>(d);
      const Datatype pp = static_cast<Datatype>(p);
      if (dd == pp || is_covered(dd, pp)) {
        out[d] |= static_cast<uint8_t>(1u << p);
      }
    }
  }
  return out;
}

const std::array<uint8_t, kDatatypeCount>& cover_masks() {
  static const std::array<uint8_t, kDatatypeCount> masks = build_cover_masks();
  return masks;
}

struct LitEdgeLess {
  bool operator()(const std::pair<uint32_t, int32_t>& e, uint32_t v) const {
    return e.first < v;
  }
};

}  // namespace

uint32_t GrokSetMatcher::intern_literal(std::string_view text) {
  auto it = lit_ids_.find(text);
  if (it != lit_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(lit_ids_.size());
  lit_ids_.emplace(std::string(text), id);
  return id;
}

uint32_t GrokSetMatcher::find_literal(std::string_view text) const {
  auto it = lit_ids_.find(text);
  return it == lit_ids_.end() ? kNoLiteral : it->second;
}

int32_t GrokSetMatcher::child_class(uint32_t node, Datatype type) {
  const int idx = static_cast<int>(type);
  int32_t next = nodes_[node].class_next[idx];
  if (next < 0) {
    next = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node].class_next[idx] = next;
  }
  return next;
}

int32_t GrokSetMatcher::child_literal(uint32_t node, uint32_t lit) {
  {
    const auto& edges = nodes_[node].lit_edges;
    auto it = std::lower_bound(edges.begin(), edges.end(), lit, LitEdgeLess{});
    if (it != edges.end() && it->first == lit) return it->second;
  }
  const int32_t next = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();  // may reallocate: re-resolve the edge list
  auto& edges = nodes_[node].lit_edges;
  edges.insert(std::lower_bound(edges.begin(), edges.end(), lit, LitEdgeLess{}),
               {lit, next});
  return next;
}

int32_t GrokSetMatcher::child_wild(uint32_t node) {
  int32_t next = nodes_[node].wild_next;
  if (next < 0) {
    next = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_.back().self_loop = true;
    nodes_[node].wild_next = next;
  }
  return next;
}

GrokSetMatcher GrokSetMatcher::compile_tokens(
    const std::vector<GrokPattern>& patterns, Options options) {
  GrokSetMatcher m;
  m.options_ = options;
  m.pattern_count_ = patterns.size();
  m.nodes_.emplace_back();  // root
  for (size_t i = 0; i < patterns.size(); ++i) {
    uint32_t cur = 0;
    for (const GrokToken& t : patterns[i].tokens()) {
      if (!t.is_field) {
        cur = static_cast<uint32_t>(
            m.child_literal(cur, m.intern_literal(t.literal)));
      } else if (t.field.type == Datatype::kAnyData) {
        cur = static_cast<uint32_t>(m.child_wild(cur));
      } else {
        cur = static_cast<uint32_t>(m.child_class(cur, t.field.type));
      }
    }
    m.nodes_[cur].terminal.push_back(static_cast<uint32_t>(i));
  }
  return m;
}

GrokSetMatcher GrokSetMatcher::compile_signatures(
    const std::vector<std::vector<Datatype>>& signatures, Options options) {
  GrokSetMatcher m;
  m.options_ = options;
  m.pattern_count_ = signatures.size();
  m.nodes_.emplace_back();  // root
  for (size_t i = 0; i < signatures.size(); ++i) {
    uint32_t cur = 0;
    for (Datatype d : signatures[i]) {
      if (d == Datatype::kAnyData) {
        cur = static_cast<uint32_t>(m.child_wild(cur));
      } else {
        cur = static_cast<uint32_t>(m.child_class(cur, d));
      }
    }
    m.nodes_[cur].terminal.push_back(static_cast<uint32_t>(i));
  }
  return m;
}

// The shared executor. scratch.sym_lit / scratch.sym_mask hold one IR symbol
// per consumed position; the walk advances the active-node set over them.
bool GrokSetMatcher::walk(size_t positions, GrokSetScratch& scratch) const {
  scratch.result.clear();
  scratch.steps = 0;
  scratch.overflow = false;
  if (nodes_.empty() || pattern_count_ == 0) return true;
  if (scratch.seen.size() != nodes_.size()) {
    scratch.seen.assign(nodes_.size(), 0);
    scratch.epoch = 0;
  }

  auto next_epoch = [&scratch]() {
    if (++scratch.epoch == 0) {  // wrapped: invalidate every stale stamp
      std::fill(scratch.seen.begin(), scratch.seen.end(), 0u);
      scratch.epoch = 1;
    }
  };
  // Adds `node` and its epsilon closure (the wild_next chain: a wildcard
  // may span zero tokens, so entering one immediately activates its
  // continuation too). Epoch stamps dedup nodes reachable twice per step.
  auto add = [this, &scratch](std::vector<uint32_t>& set, uint32_t node) {
    while (scratch.seen[node] != scratch.epoch) {
      scratch.seen[node] = scratch.epoch;
      set.push_back(node);
      ++scratch.steps;
      const int32_t w = nodes_[node].wild_next;
      if (w < 0) break;
      node = static_cast<uint32_t>(w);
    }
  };

  next_epoch();
  scratch.active.clear();
  add(scratch.active, 0);
  for (size_t i = 0; i < positions; ++i) {
    if (scratch.active.empty()) break;  // no pattern can match
    const uint32_t lit = scratch.sym_lit[i];
    const uint8_t mask = scratch.sym_mask[i];
    next_epoch();
    scratch.next_active.clear();
    for (const uint32_t id : scratch.active) {
      const Node& nd = nodes_[id];
      if (nd.self_loop) add(scratch.next_active, id);
      if (lit != kNoLiteral && !nd.lit_edges.empty()) {
        auto it = std::lower_bound(nd.lit_edges.begin(), nd.lit_edges.end(),
                                   lit, LitEdgeLess{});
        if (it != nd.lit_edges.end() && it->first == lit) {
          add(scratch.next_active, static_cast<uint32_t>(it->second));
        }
      }
      if (mask != 0) {
        for (int p = 0; p < kDatatypeCount; ++p) {
          if (((mask >> p) & 1) != 0 && nd.class_next[p] >= 0) {
            add(scratch.next_active, static_cast<uint32_t>(nd.class_next[p]));
          }
        }
      }
      if (scratch.next_active.size() > options_.max_active) {
        scratch.overflow = true;
        return false;
      }
    }
    scratch.active.swap(scratch.next_active);
  }

  for (const uint32_t id : scratch.active) {
    const Node& nd = nodes_[id];
    scratch.result.insert(scratch.result.end(), nd.terminal.begin(),
                          nd.terminal.end());
  }
  // Terminal lists of distinct nodes are disjoint, so this is a plain sort,
  // no dedup needed.
  std::sort(scratch.result.begin(), scratch.result.end());
  return true;
}

bool GrokSetMatcher::match_tokens(const std::vector<Token>& tokens,
                                  const DatatypeClassifier& classifier,
                                  GrokSetScratch& scratch) const {
  const size_t n = tokens.size();
  scratch.sym_lit.resize(n);
  scratch.sym_mask.resize(n);
  scratch.prefilter_hit = false;
  static constexpr Datatype kClassable[] = {Datatype::kWord, Datatype::kNumber,
                                            Datatype::kIp, Datatype::kNotSpace};
  for (size_t i = 0; i < n; ++i) {
    const Token& tok = tokens[i];
    const uint32_t lit = find_literal(tok.text);
    if (lit != kNoLiteral) scratch.prefilter_hit = true;
    // The acceptance mask must agree with grok_token_matches bit for bit:
    // a DATETIME token matches only %{DATETIME} fields; any other token
    // matches exactly the Table I classes whose regex accepts its text.
    uint8_t mask = 0;
    if (tok.type == Datatype::kDateTime) {
      mask = bit_of(Datatype::kDateTime);
    } else {
      for (Datatype t : kClassable) {
        if (classifier.matches(tok.text, t)) mask |= bit_of(t);
      }
    }
    scratch.sym_lit[i] = lit;
    scratch.sym_mask[i] = mask;
  }
  return walk(n, scratch);
}

bool GrokSetMatcher::match_signature(std::span<const Datatype> sig,
                                     GrokSetScratch& scratch) const {
  const size_t n = sig.size();
  scratch.sym_lit.assign(n, kNoLiteral);
  scratch.sym_mask.resize(n);
  scratch.prefilter_hit = false;
  const auto& masks = cover_masks();
  for (size_t i = 0; i < n; ++i) {
    scratch.sym_mask[i] = masks[static_cast<int>(sig[i])];
  }
  return walk(n, scratch);
}

size_t GrokSetMatcher::resident_bytes() const {
  size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) {
    bytes += n.lit_edges.capacity() * sizeof(n.lit_edges[0]);
    bytes += n.terminal.capacity() * sizeof(uint32_t);
  }
  for (const auto& [text, id] : lit_ids_) {
    bytes += text.capacity() + sizeof(id) + 4 * sizeof(void*);  // node approx
  }
  return bytes;
}

}  // namespace loglens
