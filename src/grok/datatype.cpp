#include "grok/datatype.h"

namespace loglens {

std::string_view datatype_name(Datatype t) {
  switch (t) {
    case Datatype::kWord: return "WORD";
    case Datatype::kNumber: return "NUMBER";
    case Datatype::kIp: return "IP";
    case Datatype::kNotSpace: return "NOTSPACE";
    case Datatype::kDateTime: return "DATETIME";
    case Datatype::kAnyData: return "ANYDATA";
  }
  return "NOTSPACE";
}

bool datatype_from_name(std::string_view name, Datatype& out) {
  if (name == "WORD") out = Datatype::kWord;
  else if (name == "NUMBER") out = Datatype::kNumber;
  else if (name == "IP") out = Datatype::kIp;
  else if (name == "NOTSPACE") out = Datatype::kNotSpace;
  else if (name == "DATETIME") out = Datatype::kDateTime;
  else if (name == "ANYDATA") out = Datatype::kAnyData;
  else return false;
  return true;
}

bool is_covered(Datatype a, Datatype b) {
  if (a == b) return true;
  if (b == Datatype::kAnyData) return true;
  if (b == Datatype::kNotSpace) {
    return a == Datatype::kWord || a == Datatype::kNumber ||
           a == Datatype::kIp;
  }
  return false;
}

int generality(Datatype t) {
  switch (t) {
    case Datatype::kWord:
    case Datatype::kNumber:
    case Datatype::kIp:
    case Datatype::kDateTime:
      return 1;
    case Datatype::kNotSpace:
      return 2;
    case Datatype::kAnyData:
      return 3;
  }
  return 3;
}

namespace {

// Hand-rolled scanners for the three Table I token regexes. classify() runs
// once per token of every log line — the single hottest call in the
// pipeline — and each of these patterns is regular enough that a direct
// scan beats the regex VM by an order of magnitude while matching the exact
// same language (the VM versions remain the executable spec; the classifier
// equivalence tests cross-check the two).

inline bool is_alpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
inline bool is_digit(char c) { return c >= '0' && c <= '9'; }

// [a-zA-Z]+
bool scan_word(std::string_view t) {
  if (t.empty()) return false;
  for (char c : t) {
    if (!is_alpha(c)) return false;
  }
  return true;
}

// -?[0-9]+(\.[0-9]+)?
bool scan_number(std::string_view t) {
  size_t i = 0;
  if (i < t.size() && t[i] == '-') ++i;
  const size_t int_start = i;
  while (i < t.size() && is_digit(t[i])) ++i;
  if (i == int_start) return false;
  if (i == t.size()) return true;
  if (t[i] != '.') return false;
  const size_t frac_start = ++i;
  while (i < t.size() && is_digit(t[i])) ++i;
  return i > frac_start && i == t.size();
}

// [0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}
bool scan_ip(std::string_view t) {
  size_t i = 0;
  for (int group = 0; group < 4; ++group) {
    const size_t start = i;
    while (i < t.size() && i - start < 3 && is_digit(t[i])) ++i;
    if (i == start) return false;
    if (group < 3) {
      if (i >= t.size() || t[i] != '.') return false;
      ++i;
    }
  }
  return i == t.size();
}

}  // namespace

DatatypeClassifier::DatatypeClassifier()
    : word_(Regex::compile_or_die("[a-zA-Z]+")),
      number_(Regex::compile_or_die("-?[0-9]+(\\.[0-9]+)?")),
      ip_(Regex::compile_or_die(
          "[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}")) {}

Datatype DatatypeClassifier::classify(std::string_view token) const {
  // First-byte dispatch: a token can only be WORD if it starts with a
  // letter, and only NUMBER/IP if it starts with a digit or '-'.
  if (token.empty()) return Datatype::kNotSpace;
  const char c0 = token.front();
  if (is_alpha(c0)) {
    return scan_word(token) ? Datatype::kWord : Datatype::kNotSpace;
  }
  if (is_digit(c0) || c0 == '-') {
    if (scan_number(token)) return Datatype::kNumber;
    if (scan_ip(token)) return Datatype::kIp;
  }
  return Datatype::kNotSpace;
}

bool DatatypeClassifier::matches(std::string_view token, Datatype type) const {
  switch (type) {
    case Datatype::kWord: return scan_word(token);
    case Datatype::kNumber: return scan_number(token);
    case Datatype::kIp: return scan_ip(token);
    case Datatype::kNotSpace:
      return !token.empty() &&
             token.find_first_of(" \t\r\n") == std::string_view::npos;
    case Datatype::kDateTime:
      // Canonical form only; recognition of raw formats happens in the
      // timestamp module before classification.
      return token.size() == 23 && token[4] == '/' && token[7] == '/';
    case Datatype::kAnyData:
      return true;
  }
  return false;
}

}  // namespace loglens
