#include "grok/datatype.h"

namespace loglens {

std::string_view datatype_name(Datatype t) {
  switch (t) {
    case Datatype::kWord: return "WORD";
    case Datatype::kNumber: return "NUMBER";
    case Datatype::kIp: return "IP";
    case Datatype::kNotSpace: return "NOTSPACE";
    case Datatype::kDateTime: return "DATETIME";
    case Datatype::kAnyData: return "ANYDATA";
  }
  return "NOTSPACE";
}

bool datatype_from_name(std::string_view name, Datatype& out) {
  if (name == "WORD") out = Datatype::kWord;
  else if (name == "NUMBER") out = Datatype::kNumber;
  else if (name == "IP") out = Datatype::kIp;
  else if (name == "NOTSPACE") out = Datatype::kNotSpace;
  else if (name == "DATETIME") out = Datatype::kDateTime;
  else if (name == "ANYDATA") out = Datatype::kAnyData;
  else return false;
  return true;
}

bool is_covered(Datatype a, Datatype b) {
  if (a == b) return true;
  if (b == Datatype::kAnyData) return true;
  if (b == Datatype::kNotSpace) {
    return a == Datatype::kWord || a == Datatype::kNumber ||
           a == Datatype::kIp;
  }
  return false;
}

int generality(Datatype t) {
  switch (t) {
    case Datatype::kWord:
    case Datatype::kNumber:
    case Datatype::kIp:
    case Datatype::kDateTime:
      return 1;
    case Datatype::kNotSpace:
      return 2;
    case Datatype::kAnyData:
      return 3;
  }
  return 3;
}

DatatypeClassifier::DatatypeClassifier()
    : word_(Regex::compile_or_die("[a-zA-Z]+")),
      number_(Regex::compile_or_die("-?[0-9]+(\\.[0-9]+)?")),
      ip_(Regex::compile_or_die(
          "[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}")) {}

Datatype DatatypeClassifier::classify(std::string_view token) const {
  if (word_.full_match(token)) return Datatype::kWord;
  if (number_.full_match(token)) return Datatype::kNumber;
  if (ip_.full_match(token)) return Datatype::kIp;
  return Datatype::kNotSpace;
}

bool DatatypeClassifier::matches(std::string_view token, Datatype type) const {
  switch (type) {
    case Datatype::kWord: return word_.full_match(token);
    case Datatype::kNumber: return number_.full_match(token);
    case Datatype::kIp: return ip_.full_match(token);
    case Datatype::kNotSpace:
      return !token.empty() &&
             token.find_first_of(" \t\r\n") == std::string_view::npos;
    case Datatype::kDateTime:
      // Canonical form only; recognition of raw formats happens in the
      // timestamp module before classification.
      return token.size() == 23 && token[4] == '/' && token[7] == '/';
    case Datatype::kAnyData:
      return true;
  }
  return false;
}

}  // namespace loglens
