#include "logmine/discoverer.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>

#include "grok/edit.h"
#include "grok/set_matcher.h"

namespace loglens {

Datatype datatype_join(Datatype a, Datatype b) {
  if (a == b) return a;
  if (is_covered(a, b)) return b;
  if (is_covered(b, a)) return a;
  // WORD/NUMBER/IP pairwise join to NOTSPACE; anything involving DATETIME
  // (which is not under NOTSPACE) joins to ANYDATA.
  if (a != Datatype::kDateTime && b != Datatype::kDateTime &&
      a != Datatype::kAnyData && b != Datatype::kAnyData) {
    return Datatype::kNotSpace;
  }
  return Datatype::kAnyData;
}

double token_distance(const std::vector<Token>& a,
                      const std::vector<Token>& b) {
  if (a.size() != b.size() || a.empty()) return 1.0;
  double score = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].text == b[i].text) {
      score += 1.0;
    } else if (a[i].type == b[i].type) {
      score += 0.5;
    }
  }
  return 1.0 - score / static_cast<double>(a.size());
}

namespace {

// Per-token score for alignment: identical tokens 1.0; fields (or literal vs
// field) with joinable non-wildcard datatypes 0.5; otherwise 0.
double align_score(const GrokToken& x, const GrokToken& y,
                   const DatatypeClassifier& classifier) {
  if (!x.is_field && !y.is_field) {
    if (x.literal == y.literal) return 1.0;
    Datatype dx = classifier.classify(x.literal);
    Datatype dy = classifier.classify(y.literal);
    return dx == dy ? 0.5 : 0.25;
  }
  Datatype dx = x.is_field ? x.field.type : classifier.classify(x.literal);
  Datatype dy = y.is_field ? y.field.type : classifier.classify(y.literal);
  if (dx == dy) return 0.5;
  if (is_covered(dx, dy) || is_covered(dy, dx)) return 0.4;
  return 0.1;
}

// Global alignment (Needleman-Wunsch, gap score 0). Returns the DP score
// matrix; the traceback is recomputed by callers that need it.
std::vector<std::vector<double>> align_matrix(
    const GrokPattern& a, const GrokPattern& b,
    const DatatypeClassifier& classifier) {
  const auto& ta = a.tokens();
  const auto& tb = b.tokens();
  std::vector<std::vector<double>> dp(ta.size() + 1,
                                      std::vector<double>(tb.size() + 1, 0));
  for (size_t i = 1; i <= ta.size(); ++i) {
    for (size_t j = 1; j <= tb.size(); ++j) {
      double diag =
          dp[i - 1][j - 1] + align_score(ta[i - 1], tb[j - 1], classifier);
      dp[i][j] = std::max({diag, dp[i - 1][j], dp[i][j - 1]});
    }
  }
  return dp;
}

GrokToken merge_tokens(const GrokToken& x, const GrokToken& y,
                       const DatatypeClassifier& classifier) {
  if (!x.is_field && !y.is_field && x.literal == y.literal) {
    return x;  // still a constant
  }
  Datatype dx = x.is_field ? x.field.type : classifier.classify(x.literal);
  Datatype dy = y.is_field ? y.field.type : classifier.classify(y.literal);
  return GrokToken::make_field(datatype_join(dx, dy));
}

}  // namespace

double pattern_distance(const GrokPattern& a, const GrokPattern& b,
                        const DatatypeClassifier& classifier) {
  if (a.size() == 0 || b.size() == 0) return 1.0;
  auto dp = align_matrix(a, b, classifier);
  double best = dp[a.size()][b.size()];
  return 1.0 - 2.0 * best / static_cast<double>(a.size() + b.size());
}

GrokPattern merge_patterns(const GrokPattern& a, const GrokPattern& b,
                           const DatatypeClassifier& classifier) {
  auto dp = align_matrix(a, b, classifier);
  const auto& ta = a.tokens();
  const auto& tb = b.tokens();

  // Traceback, collecting merged tokens in reverse. Gap stretches collapse
  // into a single ANYDATA wildcard field.
  std::vector<GrokToken> reversed;
  size_t i = ta.size();
  size_t j = tb.size();
  bool in_gap = false;
  auto emit_gap = [&] {
    if (!in_gap) {
      reversed.push_back(GrokToken::make_field(Datatype::kAnyData));
      in_gap = true;
    }
  };
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 &&
        dp[i][j] ==
            dp[i - 1][j - 1] + align_score(ta[i - 1], tb[j - 1], classifier)) {
      reversed.push_back(merge_tokens(ta[i - 1], tb[j - 1], classifier));
      in_gap = false;
      --i;
      --j;
    } else if (i > 0 && dp[i][j] == dp[i - 1][j]) {
      emit_gap();
      --i;
    } else {
      emit_gap();
      --j;
    }
  }
  std::reverse(reversed.begin(), reversed.end());

  // Collapse adjacent wildcard fields that the traceback may have produced
  // around matched-but-widened positions.
  std::vector<GrokToken> merged;
  for (auto& t : reversed) {
    bool wild = t.is_field && t.field.type == Datatype::kAnyData;
    if (wild && !merged.empty() && merged.back().is_field &&
        merged.back().field.type == Datatype::kAnyData) {
      continue;
    }
    merged.push_back(std::move(t));
  }
  return GrokPattern(std::move(merged));
}

std::vector<GrokPattern> PatternDiscoverer::level0(
    const std::vector<TokenizedLog>& logs) const {
  struct Cluster {
    std::vector<Token> representative;   // first member
    std::vector<GrokToken> merged;       // running position-wise merge
  };
  // Bucket clusters by token count so only same-length logs are compared.
  std::unordered_map<size_t, std::vector<Cluster>> buckets;

  for (const auto& log : logs) {
    if (log.tokens.empty()) continue;
    auto& bucket = buckets[log.tokens.size()];
    Cluster* home = nullptr;
    for (auto& c : bucket) {
      if (token_distance(log.tokens, c.representative) <= options_.max_dist) {
        home = &c;
        break;
      }
    }
    if (home == nullptr) {
      Cluster c;
      c.representative = log.tokens;
      c.merged.reserve(log.tokens.size());
      for (const auto& t : log.tokens) {
        if (t.type == Datatype::kDateTime) {
          // Timestamps are always variable fields; two runs of the same
          // program never share one.
          c.merged.push_back(GrokToken::make_field(Datatype::kDateTime));
        } else {
          c.merged.push_back(GrokToken::make_literal(t.text));
        }
      }
      bucket.push_back(std::move(c));
      continue;
    }
    // Position-wise merge into the cluster pattern.
    for (size_t i = 0; i < log.tokens.size(); ++i) {
      GrokToken& m = home->merged[i];
      const Token& t = log.tokens[i];
      if (!m.is_field) {
        if (m.literal == t.text) continue;
        m = GrokToken::make_field(
            datatype_join(classifier_.classify(m.literal), t.type));
      } else if (m.field.type != Datatype::kDateTime ||
                 t.type != Datatype::kDateTime) {
        Datatype joined = datatype_join(
            m.field.type,
            t.type == Datatype::kDateTime ? Datatype::kDateTime : t.type);
        m.field.type = joined;
      }
    }
  }

  // Deterministic order: shorter patterns first, then textual order.
  std::vector<GrokPattern> out;
  std::vector<size_t> lengths;
  lengths.reserve(buckets.size());
  for (const auto& [len, _] : buckets) lengths.push_back(len);
  std::sort(lengths.begin(), lengths.end());
  for (size_t len : lengths) {
    for (auto& c : buckets[len]) {
      out.emplace_back(std::move(c.merged));
    }
  }
  return out;
}

std::vector<GrokPattern> PatternDiscoverer::reduce(
    std::vector<GrokPattern> patterns, double threshold) const {
  std::vector<GrokPattern> clusters;
  for (auto& p : patterns) {
    GrokPattern* home = nullptr;
    for (auto& c : clusters) {
      if (pattern_distance(p, c, classifier_) <= threshold) {
        home = &c;
        break;
      }
    }
    if (home == nullptr) {
      clusters.push_back(std::move(p));
    } else {
      *home = merge_patterns(*home, p, classifier_);
    }
  }
  return clusters;
}

std::vector<GrokPattern> PatternDiscoverer::discover_raw(
    const std::vector<TokenizedLog>& logs) const {
  std::vector<GrokPattern> patterns = level0(logs);

  if (options_.max_patterns > 0) {
    double threshold = options_.max_dist;
    for (int level = 1;
         level <= options_.max_levels && patterns.size() > options_.max_patterns;
         ++level) {
      threshold *= options_.relax_factor;
      if (threshold > 1.0) threshold = 1.0;
      size_t before = patterns.size();
      patterns = reduce(std::move(patterns), threshold);
      if (patterns.size() == before && threshold >= 1.0) break;
    }
  }
  return patterns;
}

std::vector<GrokPattern> PatternDiscoverer::discover(
    const std::vector<TokenizedLog>& logs) const {
  std::vector<GrokPattern> patterns = discover_raw(logs);
  int id = 1;
  for (auto& p : patterns) {
    p.assign_field_ids(id++);
    if (options_.heuristic_names) {
      pattern_edit::apply_heuristic_names(p);
    }
  }
  return patterns;
}

std::vector<GrokPattern> PatternDiscoverer::discover_incremental(
    const std::vector<TokenizedLog>& logs,
    std::vector<GrokPattern> known) const {
  if (known.empty()) return discover(logs);

  // One token-level walk per log decides whether *any* known pattern parses
  // it; only the novel remainder pays for clustering.
  const GrokSetMatcher matcher = GrokSetMatcher::compile_tokens(known);
  GrokSetScratch scratch;
  std::vector<TokenizedLog> novel;
  for (const auto& log : logs) {
    bool covered = false;
    if (matcher.match_tokens(log.tokens, classifier_, scratch)) {
      covered = !scratch.result.empty();
    } else {
      // Active-set overflow: decide by the linear per-pattern scan instead.
      for (const auto& p : known) {
        if (p.match(log.tokens, classifier_)) {
          covered = true;
          break;
        }
      }
    }
    if (!covered) novel.push_back(log);
  }
  if (novel.empty()) return known;

  std::vector<GrokPattern> fresh = discover_raw(novel);
  int id = 0;
  for (const auto& p : known) id = std::max(id, p.id());
  for (auto& p : fresh) {
    p.assign_field_ids(++id);
    if (options_.heuristic_names) {
      pattern_edit::apply_heuristic_names(p);
    }
  }
  known.insert(known.end(), std::make_move_iterator(fresh.begin()),
               std::make_move_iterator(fresh.end()));
  return known;
}

}  // namespace loglens
