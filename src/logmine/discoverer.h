// LogMine-style unsupervised pattern discovery (Section III-A3; Hamooni et
// al., CIKM'16).
//
// Discovery runs in levels:
//   Level 0 clusters tokenized logs of equal length with a one-pass,
//   max-distance clustering against cluster representatives; each cluster
//   merges position-wise into one GROK pattern (identical tokens stay
//   literals, differing tokens become typed variable fields, with datatypes
//   joined upward in the Table I lattice).
//   Higher levels cluster the *patterns* with an alignment-based distance
//   and merge via sequence alignment, introducing ANYDATA wildcard fields
//   for gaps. Levels repeat with a relaxed threshold until the pattern count
//   drops under `max_patterns` (or the hierarchy stabilizes).
//
// The result is the log-pattern model: patterns with ids 1..m, generic field
// ids PxFy, and heuristic semantic names applied ("PDU = %{NUMBER:PDU}").
#pragma once

#include <vector>

#include "grok/datatype.h"
#include "grok/pattern.h"
#include "grok/token.h"

namespace loglens {

struct DiscoveryOptions {
  // Level-0 distance threshold in [0,1]; two logs cluster when their
  // normalized token distance is at most this.
  double max_dist = 0.3;
  // Target model size: higher levels run until at most this many patterns
  // remain (0 disables the cap and runs level 0 only).
  size_t max_patterns = 0;
  // Threshold relaxation per additional level.
  double relax_factor = 1.25;
  int max_levels = 8;
  // Apply the Section III-A4 "Key = value" heuristic renaming to the result.
  bool heuristic_names = true;
};

// Join of two datatypes: the least general type covering both.
Datatype datatype_join(Datatype a, Datatype b);

// Normalized distance between two same-length token sequences: per position,
// identical text scores 1, same datatype scores 0.5, otherwise 0; distance is
// 1 - total/length. Sequences of different length have distance 1.
double token_distance(const std::vector<Token>& a, const std::vector<Token>& b);

// Alignment-based distance between two patterns (used at levels >= 1):
// 1 - 2*score/(len(a)+len(b)) where aligned identical tokens score 1,
// same-datatype fields 0.5 and gaps 0.
double pattern_distance(const GrokPattern& a, const GrokPattern& b,
                        const DatatypeClassifier& classifier);

// Merges two patterns by global alignment; unaligned stretches become a
// single ANYDATA field.
GrokPattern merge_patterns(const GrokPattern& a, const GrokPattern& b,
                           const DatatypeClassifier& classifier);

class PatternDiscoverer {
 public:
  PatternDiscoverer(DiscoveryOptions options,
                    const DatatypeClassifier& classifier)
      : options_(options), classifier_(classifier) {}

  // Discovers the pattern set for a training corpus. Deterministic for a
  // given input order.
  std::vector<GrokPattern> discover(const std::vector<TokenizedLog>& logs) const;

  // Incremental discovery against an existing model: logs some `known`
  // pattern already parses are dropped up front — one set-matcher walk per
  // log (grok/set_matcher.h), ~O(log length) instead of one match attempt
  // per known pattern — and clustering runs only on the novel remainder.
  // Returns `known` plus the newly discovered patterns, whose ids continue
  // after the highest known id. With `known` empty this is exactly
  // discover().
  std::vector<GrokPattern> discover_incremental(
      const std::vector<TokenizedLog>& logs,
      std::vector<GrokPattern> known) const;

 private:
  std::vector<GrokPattern> level0(const std::vector<TokenizedLog>& logs) const;
  std::vector<GrokPattern> reduce(std::vector<GrokPattern> patterns,
                                  double threshold) const;
  // The id-free pipeline (level 0 + reduction levels) shared by both entry
  // points; callers assign pattern ids and heuristic names.
  std::vector<GrokPattern> discover_raw(
      const std::vector<TokenizedLog>& logs) const;

  DiscoveryOptions options_;
  const DatatypeClassifier& classifier_;
};

}  // namespace loglens
