#include "tokenize/preprocessor.h"

#include "common/strings.h"
#include "common/time.h"

namespace loglens {

StatusOr<Preprocessor> Preprocessor::create(PreprocessorOptions options) {
  std::vector<CompiledRule> rules;
  rules.reserve(options.split_rules.size());
  for (const auto& spec : options.split_rules) {
    auto re = Regex::compile(spec.match);
    if (!re.ok()) {
      return StatusOr<Preprocessor>::Error("bad split rule '" + spec.match +
                                           "': " + re.status().message());
    }
    rules.push_back({std::move(re.value()), spec.rewrite});
  }
  return Preprocessor(std::move(options), std::move(rules));
}

Preprocessor::Preprocessor(PreprocessorOptions options,
                           std::vector<CompiledRule> rules)
    : options_(std::move(options)),
      rules_(std::move(rules)),
      recognizer_(options_.timestamp, options_.timestamp_formats) {
  for (unsigned char c : options_.delimiters) is_delim_[c] = true;
}

TokenizedLog Preprocessor::process(std::string_view raw) {
  TokenizedLog out;
  process_into(raw, out);
  return out;
}

void Preprocessor::process_into(std::string_view raw, TokenizedLog& out) {
  out.raw.assign(raw);
  out.timestamp_ms = -1;

  // 1. Delimiter split. 2. Split rules (one pass; a rule's output pieces are
  // not re-fed through the rules, matching the paper's single rewrite step).
  //
  // With no split rules (the common config) every token is a view into
  // out.raw — the one copy of the line made above — so the split allocates
  // and copies nothing. With rules, tokens are materialized into piece
  // slots (which keep their capacity across logs) because a rewrite has no
  // backing storage in the line; views are built only after every piece is
  // in place, since growing pieces_ would move SSO string bytes out from
  // under earlier views.
  views_.clear();
  if (rules_.empty()) {
    for_each_delimited(out.raw,
                       [&](std::string_view tok) { views_.push_back(tok); });
  } else {
    size_t np = 0;
    auto add_piece = [&](std::string_view sv) {
      if (np == pieces_.size()) pieces_.emplace_back();
      pieces_[np++].assign(sv);
    };
    for_each_delimited(out.raw, [&](std::string_view tok) {
      const CompiledRule* hit = nullptr;
      for (const auto& rule : rules_) {
        if (rule.match.full_match(tok)) {
          hit = &rule;
          break;
        }
      }
      if (hit == nullptr) {
        add_piece(tok);
        return;
      }
      std::string rewritten = hit->match.replace_all(tok, hit->rewrite);
      for_each_split_any(rewritten, " ", add_piece);
    });
    for (size_t i = 0; i < np; ++i) views_.push_back(pieces_[i]);
  }

  // 3+4. Timestamp recognition, then datatype classification. Token slots
  // are reused across logs, with a trailing resize dropping leftovers.
  const size_t np = views_.size();

  size_t nt = 0;
  auto next_token = [&]() -> Token& {
    if (nt == out.tokens.size()) out.tokens.emplace_back();
    return out.tokens[nt++];
  };
  size_t i = 0;
  while (i < np) {
    if (auto m = recognizer_.match_at(views_, i)) {
      Token& t = next_token();
      format_canonical_to(m->epoch_ms, t.text);
      t.type = Datatype::kDateTime;
      if (out.timestamp_ms < 0) out.timestamp_ms = m->epoch_ms;
      i += m->span;
      continue;
    }
    Token& t = next_token();
    t.text.assign(views_[i]);
    t.type = classifier_.classify(views_[i]);
    ++i;
  }
  out.tokens.resize(nt);
}

}  // namespace loglens
