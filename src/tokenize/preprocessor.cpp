#include "tokenize/preprocessor.h"

#include "common/strings.h"
#include "common/time.h"

namespace loglens {

StatusOr<Preprocessor> Preprocessor::create(PreprocessorOptions options) {
  std::vector<CompiledRule> rules;
  rules.reserve(options.split_rules.size());
  for (const auto& spec : options.split_rules) {
    auto re = Regex::compile(spec.match);
    if (!re.ok()) {
      return StatusOr<Preprocessor>::Error("bad split rule '" + spec.match +
                                           "': " + re.status().message());
    }
    rules.push_back({std::move(re.value()), spec.rewrite});
  }
  return Preprocessor(std::move(options), std::move(rules));
}

Preprocessor::Preprocessor(PreprocessorOptions options,
                           std::vector<CompiledRule> rules)
    : options_(std::move(options)),
      rules_(std::move(rules)),
      recognizer_(options_.timestamp, options_.timestamp_formats) {}

TokenizedLog Preprocessor::process(std::string_view raw) {
  TokenizedLog out;
  out.raw = std::string(raw);

  // 1. Delimiter split. 2. Split rules (one pass; a rule's output pieces are
  // not re-fed through the rules, matching the paper's single rewrite step).
  std::vector<std::string> pieces;
  for (std::string_view tok : split_any(raw, options_.delimiters)) {
    const CompiledRule* hit = nullptr;
    for (const auto& rule : rules_) {
      if (rule.match.full_match(tok)) {
        hit = &rule;
        break;
      }
    }
    if (hit == nullptr) {
      pieces.emplace_back(tok);
      continue;
    }
    std::string rewritten = hit->match.replace_all(tok, hit->rewrite);
    for (std::string_view sub : split_any(rewritten, " ")) {
      pieces.emplace_back(sub);
    }
  }

  // 3+4. Timestamp recognition, then datatype classification.
  std::vector<std::string_view> views;
  views.reserve(pieces.size());
  for (const auto& p : pieces) views.push_back(p);

  out.tokens.reserve(pieces.size());
  size_t i = 0;
  while (i < views.size()) {
    if (auto m = recognizer_.match_at(views, i)) {
      Token t;
      t.text = format_canonical(m->epoch_ms);
      t.type = Datatype::kDateTime;
      out.tokens.push_back(std::move(t));
      if (out.timestamp_ms < 0) out.timestamp_ms = m->epoch_ms;
      i += m->span;
      continue;
    }
    Token t;
    t.text = pieces[i];
    t.type = classifier_.classify(views[i]);
    out.tokens.push_back(std::move(t));
    ++i;
  }
  return out;
}

}  // namespace loglens
