// Log preprocessing (Section III-A1 + III-A2): delimiter splitting, user
// split rules, timestamp recognition/unification, datatype classification.
//
// The preprocessor turns a raw log line into a TokenizedLog:
//   1. split on the delimiter set (default: whitespace; user-overridable),
//   2. apply user RegEx split rules that break one token into sub-tokens
//      (paper example: "123KB" -> "123" "KB"),
//   3. recognize timestamps — possibly spanning several tokens ("Feb 23,
//      2016 09:00:31" is four) — and unify them into the canonical
//      "yyyy/MM/dd HH:mm:ss.SSS" DATETIME token,
//   4. classify every remaining token's datatype per Table I.
//
// The preprocessor is stateful only through the timestamp recognizer's
// matched-format cache, so one instance per log source preserves the paper's
// "logs from the same source use the same formats" locality.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "grok/token.h"
#include "regexlite/regex.h"
#include "timestamp/recognizer.h"

namespace loglens {

// A user rule splitting one token into several. `match` is applied to the
// whole token; on match, `rewrite` (with $1..$9 group references) produces a
// space-separated replacement. The paper's "[0-9]+KB" => "[0-9]+ KB" rule is
// expressed as {"([0-9]+)(KB)", "$1 $2"}.
struct SplitRuleSpec {
  std::string match;
  std::string rewrite;
};

struct PreprocessorOptions {
  std::string delimiters = " \t\r\n";        // user-overridable
  std::vector<SplitRuleSpec> split_rules;
  RecognizerOptions timestamp;
  std::vector<std::string> timestamp_formats;  // replaces predefined if set
};

class Preprocessor {
 public:
  static StatusOr<Preprocessor> create(PreprocessorOptions options = {});

  TokenizedLog process(std::string_view raw);

  // Hot-path variant: fills `out` in place, reusing its token/raw string
  // storage and the instance's piece/view scratch, so a warm call on a
  // delimiter-only log performs no heap allocation.
  void process_into(std::string_view raw, TokenizedLog& out);

  TimestampRecognizer& recognizer() { return recognizer_; }
  const DatatypeClassifier& classifier() const { return classifier_; }

  // Times any split-rule regex gave up on VM budget exhaustion (monotonic;
  // folded into loglens_regex_budget_exhausted_total).
  uint64_t split_rule_budget_exhausted_total() const {
    uint64_t total = 0;
    for (const auto& r : rules_) total += r.match.budget_exhausted_count();
    return total;
  }

 private:
  struct CompiledRule {
    Regex match;
    std::string rewrite;
  };

  Preprocessor(PreprocessorOptions options, std::vector<CompiledRule> rules);

  // Splits `text` on the delimiter table, invoking fn(token) per piece.
  template <typename Fn>
  void for_each_delimited(std::string_view text, Fn&& fn) const {
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() ||
          is_delim_[static_cast<unsigned char>(text[i])]) {
        if (i > start) fn(text.substr(start, i - start));
        start = i + 1;
      }
    }
  }

  PreprocessorOptions options_;
  std::vector<CompiledRule> rules_;
  TimestampRecognizer recognizer_;
  DatatypeClassifier classifier_;
  // Byte-indexed delimiter membership, so the per-character split test is
  // one load instead of a find() over the delimiter string.
  std::array<bool, 256> is_delim_ = {};
  // process_into scratch. views_ holds the split tokens — views into the
  // log's out.raw copy when no split rules are configured, views into
  // pieces_ (whose string slots keep their capacity across logs) when
  // rewrites force materialization.
  std::vector<std::string> pieces_;
  std::vector<std::string_view> views_;
};

}  // namespace loglens
