#include "detectors/field_range.h"

#include <charconv>
#include <cmath>

namespace loglens {

namespace {

// Numeric parse for field values; values with units or ids stay non-numeric.
bool parse_number(std::string_view text, double& out) {
  if (text.empty()) return false;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && p == text.data() + text.size();
}

}  // namespace

FieldRangeModel::FieldRangeModel(FieldRangeOptions options)
    : options_(options) {}

void FieldRangeModel::learn(const ParsedLog& log) {
  for (const auto& [name, value] : log.fields) {
    double v;
    if (!value.is_string() || !parse_number(value.as_string(), v)) continue;
    auto [it, fresh] = ranges_.try_emplace({log.pattern_id, name});
    Range& r = it->second;
    if (fresh) {
      r.min = r.max = v;
    } else {
      r.min = std::min(r.min, v);
      r.max = std::max(r.max, v);
    }
    ++r.samples;
  }
}

std::vector<Anomaly> FieldRangeModel::check(const ParsedLog& log,
                                            std::string_view source) const {
  std::vector<Anomaly> out;
  for (const auto& [name, value] : log.fields) {
    double v;
    if (!value.is_string() || !parse_number(value.as_string(), v)) continue;
    auto it = ranges_.find({log.pattern_id, name});
    if (it == ranges_.end() || it->second.samples < options_.min_samples) {
      continue;
    }
    const Range& r = it->second;
    double span = r.max - r.min;
    double pad = span > 0 ? span * options_.margin
                          : std::abs(r.max) * options_.margin;
    if (v >= r.min - pad && v <= r.max + pad) continue;
    Anomaly a;
    a.type = AnomalyType::kValueOutOfRange;
    a.severity = "medium";
    a.reason = "field " + name + " = " + value.as_string() +
               " outside learned range [" + std::to_string(r.min) + ", " +
               std::to_string(r.max) + "] (pattern " +
               std::to_string(log.pattern_id) + ")";
    a.timestamp_ms = log.timestamp_ms;
    a.source = std::string(source);
    a.logs = {log.raw};
    a.details = Json(JsonObject{
        {"pattern_id", Json(static_cast<int64_t>(log.pattern_id))},
        {"field", Json(name)},
        {"value", Json(v)}});
    out.push_back(std::move(a));
  }
  return out;
}

bool FieldRangeModel::widen(int pattern_id, const std::string& field,
                            double value) {
  auto it = ranges_.find({pattern_id, field});
  if (it == ranges_.end()) return false;
  it->second.min = std::min(it->second.min, value);
  it->second.max = std::max(it->second.max, value);
  ++it->second.samples;
  return true;
}

Json FieldRangeModel::to_json() const {
  JsonArray arr;
  for (const auto& [key, range] : ranges_) {
    JsonObject obj;
    obj.emplace_back("pattern_id", Json(static_cast<int64_t>(key.first)));
    obj.emplace_back("field", Json(key.second));
    obj.emplace_back("min", Json(range.min));
    obj.emplace_back("max", Json(range.max));
    obj.emplace_back("samples", Json(static_cast<int64_t>(range.samples)));
    arr.emplace_back(Json(std::move(obj)));
  }
  return Json(std::move(arr));
}

StatusOr<FieldRangeModel> FieldRangeModel::from_json(const Json& j,
                                                     FieldRangeOptions options) {
  if (!j.is_array()) {
    return StatusOr<FieldRangeModel>::Error("range model not an array");
  }
  FieldRangeModel m(options);
  for (const auto& entry : j.as_array()) {
    if (!entry.is_object()) {
      return StatusOr<FieldRangeModel>::Error("range entry not an object");
    }
    Range r;
    const Json* min = entry.find("min");
    const Json* max = entry.find("max");
    if (min == nullptr || max == nullptr || !min->is_number() ||
        !max->is_number()) {
      return StatusOr<FieldRangeModel>::Error("range entry missing bounds");
    }
    r.min = min->as_double();
    r.max = max->as_double();
    r.samples = static_cast<uint64_t>(entry.get_int("samples"));
    m.ranges_[{static_cast<int>(entry.get_int("pattern_id")),
               std::string(entry.get_string("field"))}] = r;
  }
  return m;
}

}  // namespace loglens
