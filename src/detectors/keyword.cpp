#include "detectors/keyword.h"

#include "common/strings.h"

namespace loglens {

KeywordDetector::KeywordDetector(KeywordDetectorOptions options)
    : options_(std::move(options)) {
  if (options_.case_insensitive) {
    for (auto& k : options_.keywords) k = to_lower(k);
  }
}

std::string KeywordDetector::normalize(std::string_view token) const {
  return options_.case_insensitive ? to_lower(token) : std::string(token);
}

std::string_view KeywordDetector::keyword_in(std::string_view token) const {
  for (const auto& k : options_.keywords) {
    if (token.find(k) != std::string_view::npos) return k;
  }
  return {};
}

void KeywordDetector::observe_normal(std::string_view raw) {
  for (std::string_view tok : split_any(raw, " \t")) {
    std::string norm = normalize(tok);
    if (!keyword_in(norm).empty()) {
      allowlist_.insert(std::move(norm));
    }
  }
}

std::optional<Anomaly> KeywordDetector::check(std::string_view raw,
                                              std::string_view source,
                                              int64_t timestamp_ms) const {
  for (std::string_view tok : split_any(raw, " \t")) {
    std::string norm = normalize(tok);
    std::string_view keyword = keyword_in(norm);
    if (keyword.empty() || allowlist_.contains(norm)) continue;
    Anomaly a;
    a.type = AnomalyType::kKeywordAlert;
    a.severity = "medium";
    a.reason = "token '" + std::string(tok) + "' contains severity keyword '" +
               std::string(keyword) + "' never seen in normal runs";
    a.timestamp_ms = timestamp_ms;
    a.source = std::string(source);
    a.logs = {std::string(raw)};
    a.details = Json(JsonObject{{"token", Json(norm)}});
    return a;
  }
  return std::nullopt;
}

Json KeywordDetector::to_json() const {
  JsonArray allow;
  for (const auto& t : allowlist_) allow.emplace_back(t);
  JsonObject obj;
  obj.emplace_back("allowlist", Json(std::move(allow)));
  return Json(std::move(obj));
}

StatusOr<KeywordDetector> KeywordDetector::from_json(
    const Json& j, KeywordDetectorOptions options) {
  if (!j.is_object()) {
    return StatusOr<KeywordDetector>::Error("keyword model not an object");
  }
  KeywordDetector d(std::move(options));
  if (const Json* allow = j.find("allowlist");
      allow != nullptr && allow->is_array()) {
    for (const auto& t : allow->as_array()) {
      if (t.is_string()) d.allowlist_.insert(t.as_string());
    }
  }
  return d;
}

}  // namespace loglens
