// Keyword-based stateless detection.
//
// The paper's canonical stateless example is "identifying errors or warnings
// in operational logs" (Section I) — no state needed, each log judged alone.
// This detector flags logs containing severity keywords (error, fatal,
// exception, ...), with a twist that keeps it unsupervised in spirit: any
// keyword-bearing token observed during *normal* runs is allowlisted, so a
// component legitimately named "failover-manager" never alarms.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "storage/anomaly.h"

namespace loglens {

struct KeywordDetectorOptions {
  std::vector<std::string> keywords = {"error",  "fatal",    "exception",
                                       "fail",   "failed",   "panic",
                                       "critical", "corrupt", "timeout"};
  bool case_insensitive = true;
};

class KeywordDetector {
 public:
  explicit KeywordDetector(KeywordDetectorOptions options = {});

  // Training pass: tokens containing a keyword in normal logs are noise by
  // definition and get allowlisted.
  void observe_normal(std::string_view raw);

  // Detection pass: returns an anomaly when the log contains a keyword
  // token that was never seen during normal runs.
  std::optional<Anomaly> check(std::string_view raw, std::string_view source,
                               int64_t timestamp_ms) const;

  size_t allowlist_size() const { return allowlist_.size(); }

  Json to_json() const;
  static StatusOr<KeywordDetector> from_json(const Json& j,
                                             KeywordDetectorOptions options = {});

 private:
  // Returns the first keyword contained in `token`, or empty.
  std::string_view keyword_in(std::string_view token) const;
  std::string normalize(std::string_view token) const;

  KeywordDetectorOptions options_;
  std::set<std::string> allowlist_;  // normalized tokens seen in normal runs
};

}  // namespace loglens
