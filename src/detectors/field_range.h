// Field-range stateless detection.
//
// The paper motivates structured parsing with "easy extraction of ... the
// value of key performance indicators" (Section I). This detector closes the
// loop: it profiles the numeric range of every (pattern, field) pair over
// the training corpus and flags production values that leave the learned
// range (with a configurable safety margin). Like the automata rules, the
// learned bounds are the tightest ones consistent with normal behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "parser/log_parser.h"
#include "storage/anomaly.h"

namespace loglens {

struct FieldRangeOptions {
  // Learned ranges are widened by this fraction of their span on each side
  // (a zero-span range is widened by |value| * margin), so boundary jitter
  // does not alarm.
  double margin = 0.1;
  // Fields with fewer training samples than this never produce anomalies.
  size_t min_samples = 10;
};

class FieldRangeModel {
 public:
  FieldRangeModel() = default;
  explicit FieldRangeModel(FieldRangeOptions options);

  // Training: record every numeric field value of a parsed log.
  void learn(const ParsedLog& log);

  // Detection: anomalies for numeric fields outside their widened range.
  std::vector<Anomaly> check(const ParsedLog& log,
                             std::string_view source) const;

  // Feedback: widen a tracked field's range to include `value` (no-op on
  // untracked fields). Returns true when a range was widened.
  bool widen(int pattern_id, const std::string& field, double value);

  size_t tracked_fields() const { return ranges_.size(); }

  Json to_json() const;
  static StatusOr<FieldRangeModel> from_json(const Json& j,
                                             FieldRangeOptions options = {});

  friend bool operator==(const FieldRangeModel& a, const FieldRangeModel& b) {
    return a.ranges_ == b.ranges_;
  }

 private:
  struct Range {
    double min = 0;
    double max = 0;
    uint64_t samples = 0;

    friend bool operator==(const Range&, const Range&) = default;
  };

  // (pattern id, field name) -> observed range.
  std::map<std::pair<int, std::string>, Range> ranges_;
  FieldRangeOptions options_{};
};

}  // namespace loglens
