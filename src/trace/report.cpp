#include "trace/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <string_view>
#include <unordered_map>

namespace loglens {
namespace trace {

namespace {

constexpr std::string_view kPipelineSuffix = ".pipeline";

// The engine batch phases that decompose a `<stage>.batch` span.
constexpr const char* kBatchPhases[] = {"control", "route", "exec", "collect"};

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() > suffix.size() &&
         std::string_view(s).substr(s.size() - suffix.size()) == suffix;
}

// One batch's attributed pass through a stage.
struct BatchAttribution {
  int64_t batch = -1;
  uint64_t total_us = 0;
  std::vector<std::pair<std::string, uint64_t>> components;
  uint64_t attributed_us = 0;
  uint64_t task_us = 0;
  uint64_t pool_wait_us = 0;
};

double percentile(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return static_cast<double>(sorted[rank]);
}

std::string format_ms(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f ms", us / 1000.0);
  return buf;
}

}  // namespace

Report build_report(const std::vector<Span>& spans, uint64_t spans_dropped) {
  Report report;
  report.span_count = spans.size();
  report.spans_dropped = spans_dropped;

  std::unordered_map<uint64_t, std::vector<const Span*>> children;
  children.reserve(spans.size());
  for (const Span& span : spans) {
    if (span.parent_id != 0) children[span.parent_id].push_back(&span);
  }
  auto children_of = [&](uint64_t id) -> const std::vector<const Span*>* {
    auto it = children.find(id);
    return it == children.end() ? nullptr : &it->second;
  };

  std::vector<std::string> stage_order;
  std::map<std::string, std::vector<BatchAttribution>> by_stage;

  for (const Span& pipeline : spans) {
    if (!ends_with(pipeline.name, kPipelineSuffix)) continue;
    const std::string stage =
        pipeline.name.substr(0, pipeline.name.size() - kPipelineSuffix.size());
    if (by_stage.find(stage) == by_stage.end()) stage_order.push_back(stage);

    BatchAttribution attr;
    attr.batch = pipeline.batch;
    uint64_t start = pipeline.start_us;
    const uint64_t end = pipeline.start_us + pipeline.duration_us;

    const auto* kids = children_of(pipeline.span_id);
    if (kids != nullptr) {
      for (const Span* child : *kids) {
        if (ends_with(child->name, ".queue_wait")) {
          if (child->start_us < start) start = child->start_us;
          attr.components.emplace_back("queue_wait", child->duration_us);
        } else if (ends_with(child->name, ".publish")) {
          attr.components.emplace_back("publish", child->duration_us);
        } else if (ends_with(child->name, ".batch")) {
          // Decompose the engine batch into its phases; whatever the phase
          // spans do not cover stays attributed to the batch as "batch_other"
          // so the partition still sums to the batch span.
          uint64_t phases = 0;
          if (const auto* grandkids = children_of(child->span_id)) {
            for (const Span* phase : *grandkids) {
              for (const char* known : kBatchPhases) {
                if (ends_with(phase->name, std::string(".") + known)) {
                  attr.components.emplace_back(known, phase->duration_us);
                  phases += phase->duration_us;
                }
              }
              if (ends_with(phase->name, ".exec")) {
                if (const auto* workers = children_of(phase->span_id)) {
                  for (const Span* worker : *workers) {
                    if (ends_with(worker->name, ".task")) {
                      attr.task_us += worker->duration_us;
                    } else if (ends_with(worker->name, ".pool_wait")) {
                      attr.pool_wait_us += worker->duration_us;
                    }
                  }
                }
              }
            }
          }
          if (child->duration_us > phases) {
            attr.components.emplace_back("batch_other",
                                         child->duration_us - phases);
          }
        }
      }
    }

    attr.total_us = end > start ? end - start : 0;
    for (const auto& [_, us] : attr.components) attr.attributed_us += us;
    by_stage[stage].push_back(std::move(attr));
  }

  for (const std::string& stage : stage_order) {
    auto& batches = by_stage[stage];
    StageReport out;
    out.stage = stage;
    out.batches = batches.size();

    std::map<std::string, uint64_t> component_totals;
    std::vector<uint64_t> totals;
    totals.reserve(batches.size());
    for (const BatchAttribution& attr : batches) {
      out.total_us += attr.total_us;
      out.attributed_us += attr.attributed_us;
      out.task_us += attr.task_us;
      out.pool_wait_us += attr.pool_wait_us;
      totals.push_back(attr.total_us);
      for (const auto& [name, us] : attr.components) {
        component_totals[name] += us;
      }
    }
    if (out.total_us > out.attributed_us) {
      component_totals["other"] += out.total_us - out.attributed_us;
    }
    out.coverage = out.total_us == 0
                       ? 0.0
                       : static_cast<double>(out.attributed_us) /
                             static_cast<double>(out.total_us);
    out.mean_total_us = batches.empty() ? 0.0
                                        : static_cast<double>(out.total_us) /
                                              static_cast<double>(out.batches);

    std::sort(totals.begin(), totals.end());
    out.p50_total_us = percentile(totals, 0.50);
    out.p99_total_us = percentile(totals, 0.99);

    for (const auto& [name, us] : component_totals) {
      out.components.push_back(StageComponent{name, us});
    }
    std::stable_sort(out.components.begin(), out.components.end(),
                     [](const StageComponent& a, const StageComponent& b) {
                       return a.total_us > b.total_us;
                     });

    // The worst-case exemplar: first batch at or above the p99 latency.
    const auto p99_target = static_cast<uint64_t>(out.p99_total_us);
    for (const BatchAttribution& attr : batches) {
      if (attr.total_us < p99_target) continue;
      if (out.p99_batch >= 0 && attr.total_us >= out.p99_total_us2) continue;
      out.p99_batch = attr.batch;
      out.p99_total_us2 = attr.total_us;
      out.p99_breakdown.clear();
      for (const auto& [name, us] : attr.components) {
        out.p99_breakdown.push_back(StageComponent{name, us});
      }
      std::stable_sort(out.p99_breakdown.begin(), out.p99_breakdown.end(),
                       [](const StageComponent& a, const StageComponent& b) {
                         return a.total_us > b.total_us;
                       });
    }

    report.stages.push_back(std::move(out));
  }
  return report;
}

std::string format_report(const Report& report) {
  std::ostringstream out;
  out << "trace report: " << report.span_count << " span(s)";
  if (report.spans_dropped > 0) {
    out << ", " << report.spans_dropped
        << " DROPPED (buffers overflowed; drain more often)";
  }
  out << "\n";
  if (report.stages.empty()) {
    out << "  no pipeline spans recorded (is tracing enabled?)\n";
    return out.str();
  }
  for (const StageReport& stage : report.stages) {
    char cov[16];
    std::snprintf(cov, sizeof(cov), "%.1f%%", stage.coverage * 100.0);
    out << "\nstage " << stage.stage << " — " << stage.batches
        << " batch(es), mean " << format_ms(stage.mean_total_us) << ", p50 "
        << format_ms(stage.p50_total_us) << ", p99 "
        << format_ms(stage.p99_total_us) << ", attributed " << cov << "\n";
    for (const StageComponent& comp : stage.components) {
      char share[16];
      std::snprintf(share, sizeof(share), "%.1f%%",
                    stage.total_us == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(comp.total_us) /
                              static_cast<double>(stage.total_us));
      char line[128];
      std::snprintf(line, sizeof(line), "  %-12s %12s  (%s)\n",
                    comp.name.c_str(),
                    format_ms(static_cast<double>(comp.total_us)).c_str(),
                    share);
      out << line;
    }
    if (stage.task_us > 0 || stage.pool_wait_us > 0) {
      out << "  parallel section: task "
          << format_ms(static_cast<double>(stage.task_us)) << ", pool_wait "
          << format_ms(static_cast<double>(stage.pool_wait_us))
          << " (across partitions; overlaps exec)\n";
    }
    if (stage.p99_batch >= 0) {
      out << "  p99 batch #" << stage.p99_batch << " ("
          << format_ms(static_cast<double>(stage.p99_total_us2)) << "):";
      bool first = true;
      for (const StageComponent& comp : stage.p99_breakdown) {
        out << (first ? " " : ", ") << format_ms(static_cast<double>(
                                           comp.total_us))
            << " " << comp.name;
        first = false;
      }
      out << "\n";
    }
  }
  return out.str();
}

namespace {

Json components_json(const std::vector<StageComponent>& components,
                     uint64_t total_us) {
  JsonArray out;
  for (const StageComponent& comp : components) {
    JsonObject obj;
    obj.emplace_back("name", Json(comp.name));
    obj.emplace_back("total_us", Json(static_cast<int64_t>(comp.total_us)));
    obj.emplace_back("share",
                     Json(total_us == 0
                              ? 0.0
                              : static_cast<double>(comp.total_us) /
                                    static_cast<double>(total_us)));
    out.push_back(Json(std::move(obj)));
  }
  return Json(std::move(out));
}

}  // namespace

Json report_json(const Report& report) {
  JsonArray stages;
  for (const StageReport& stage : report.stages) {
    JsonObject obj;
    obj.emplace_back("stage", Json(stage.stage));
    obj.emplace_back("batches", Json(static_cast<int64_t>(stage.batches)));
    obj.emplace_back("total_us", Json(static_cast<int64_t>(stage.total_us)));
    obj.emplace_back("attributed_us",
                     Json(static_cast<int64_t>(stage.attributed_us)));
    obj.emplace_back("coverage", Json(stage.coverage));
    obj.emplace_back("mean_total_us", Json(stage.mean_total_us));
    obj.emplace_back("p50_total_us", Json(stage.p50_total_us));
    obj.emplace_back("p99_total_us", Json(stage.p99_total_us));
    obj.emplace_back("components",
                     components_json(stage.components, stage.total_us));
    obj.emplace_back("p99_batch", Json(stage.p99_batch));
    obj.emplace_back("p99_breakdown",
                     components_json(stage.p99_breakdown, stage.p99_total_us2));
    obj.emplace_back("task_us", Json(static_cast<int64_t>(stage.task_us)));
    obj.emplace_back("pool_wait_us",
                     Json(static_cast<int64_t>(stage.pool_wait_us)));
    stages.push_back(Json(std::move(obj)));
  }
  JsonObject root;
  root.emplace_back("stages", Json(std::move(stages)));
  root.emplace_back("span_count",
                    Json(static_cast<int64_t>(report.span_count)));
  root.emplace_back("spans_dropped",
                    Json(static_cast<int64_t>(report.spans_dropped)));
  return Json(std::move(root));
}

Json chrome_trace_json(const std::vector<Span>& spans) {
  JsonArray events;
  events.reserve(spans.size());
  for (const Span& span : spans) {
    JsonObject args;
    args.emplace_back("trace", Json(static_cast<int64_t>(span.trace_id)));
    args.emplace_back("span", Json(static_cast<int64_t>(span.span_id)));
    args.emplace_back("parent", Json(static_cast<int64_t>(span.parent_id)));
    args.emplace_back("batch", Json(span.batch));
    JsonObject event;
    event.emplace_back("name", Json(span.name));
    event.emplace_back("cat", Json("loglens"));
    event.emplace_back("ph", Json("X"));
    event.emplace_back("ts", Json(static_cast<int64_t>(span.start_us)));
    event.emplace_back("dur", Json(static_cast<int64_t>(span.duration_us)));
    event.emplace_back("pid", Json(static_cast<int64_t>(0)));
    event.emplace_back("tid", Json(static_cast<int64_t>(span.tid)));
    event.emplace_back("args", Json(std::move(args)));
    events.push_back(Json(std::move(event)));
  }
  JsonObject root;
  root.emplace_back("traceEvents", Json(std::move(events)));
  root.emplace_back("displayTimeUnit", Json("ms"));
  return Json(std::move(root));
}

}  // namespace trace
}  // namespace loglens
