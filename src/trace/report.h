#pragma once

// Turns drained trace spans into the artifacts the `loglens trace`
// subcommand and bench_pipeline_throughput expose: a per-stage critical-path
// breakdown (where does a batch's wall time go?), its JSON form, and a
// Chrome trace-event file loadable in Perfetto / chrome://tracing.
//
// The attribution model: every `<stage>.pipeline` span is one batch's
// end-to-end pass through that stage (queue wait included). Its child spans
// partition that time into components — `<stage>.queue_wait`,
// `<stage>.control` / `.route` / `.exec` / `.collect` (the engine batch
// phases), `<stage>.publish` — plus a residual `other` for instrumentation
// gaps. Coverage (= attributed / end-to-end) is the report's self-check:
// the bench gates it at 90%.

#include <cstdint>
#include <string>
#include <vector>

#include "json/json.h"
#include "trace/trace.h"

namespace loglens {
namespace trace {

// One attributed component of a stage's time, summed across batches.
struct StageComponent {
  std::string name;       // "queue_wait", "exec", "publish", "other", ...
  uint64_t total_us = 0;  // summed over every batch of the stage
};

// Aggregate attribution for one pipeline stage (one `<stage>.pipeline` span
// family, e.g. "parser" or "detector").
struct StageReport {
  std::string stage;
  uint64_t batches = 0;
  uint64_t total_us = 0;       // Σ end-to-end batch latency
  uint64_t attributed_us = 0;  // Σ components (excluding "other")
  double coverage = 0.0;       // attributed_us / total_us
  double mean_total_us = 0.0;
  double p50_total_us = 0.0;
  double p99_total_us = 0.0;
  std::vector<StageComponent> components;  // ranked by total_us, descending

  // Worst-case exemplar: the batch whose end-to-end latency is the p99.
  int64_t p99_batch = -1;
  uint64_t p99_total_us2 = 0;  // that batch's end-to-end latency
  std::vector<StageComponent> p99_breakdown;

  // Informational — these overlap `exec` (per-partition parallel work), so
  // they are reported but excluded from coverage.
  uint64_t task_us = 0;
  uint64_t pool_wait_us = 0;
};

struct Report {
  std::vector<StageReport> stages;  // stable order of first appearance
  size_t span_count = 0;
  uint64_t spans_dropped = 0;
};

// Builds the attribution report from drained spans (any order).
Report build_report(const std::vector<Span>& spans, uint64_t spans_dropped);

// Human-readable report, the `loglens trace` output.
std::string format_report(const Report& report);

// Structured form, embedded in BENCH_pipeline_profile.json.
Json report_json(const Report& report);

// Chrome trace-event JSON ({"traceEvents": [...]}, complete "X" events,
// microsecond timestamps) — load in Perfetto or chrome://tracing.
Json chrome_trace_json(const std::vector<Span>& spans);

}  // namespace trace
}  // namespace loglens
