#include "trace/trace.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/sched.h"

namespace loglens {
namespace trace {

namespace {

bool enabled_from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): runs once, inside the
  // enabled_flag() function-local static initializer, which the runtime
  // serializes — no thread observes a torn read.
  const char* value = std::getenv("LOGLENS_TRACE");
  if (value == nullptr) return true;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "off") != 0 &&
         std::strcmp(value, "false") != 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{enabled_from_env()};
  return flag;
}

std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_next_generation{1};
std::atomic<uint32_t> g_next_tid{1};

thread_local TraceContext tls_context;

// Thread-local map from collector generation to that collector's buffer
// for this thread. A plain vector: a thread touches very few collectors
// (the global registry plus per-test ones), and generations are never
// reused, so a stale entry can only miss, never alias.
struct BufferRef {
  uint64_t generation;
  SpanBuffer* buffer;
};
thread_local std::vector<BufferRef> tls_buffers;

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

uint64_t new_trace_id() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t new_span_id() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

uint32_t current_tid() {
  thread_local uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

const TraceContext& current() { return tls_context; }

ContextScope::ContextScope(const TraceContext& ctx) : saved_(tls_context) {
  tls_context = ctx;
}

ContextScope::~ContextScope() { tls_context = saved_; }

SpanBuffer::SpanBuffer(size_t capacity)
    : slots_(capacity), mask_(capacity - 1) {
  // Power-of-two capacity so head/tail wrap with a mask.
}

bool SpanBuffer::push(Span span) {
  LOGLENS_SCHED_POINT("trace.push");
  const size_t tail = tail_.load(std::memory_order_relaxed);
  const size_t head = head_.load(std::memory_order_acquire);
  if (tail - head >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[tail & mask_] = std::move(span);
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

void SpanBuffer::drain_into(std::vector<Span>& out) {
  LOGLENS_SCHED_POINT("trace.drain");
  const size_t tail = tail_.load(std::memory_order_acquire);
  size_t head = head_.load(std::memory_order_relaxed);
  for (; head != tail; ++head) {
    out.push_back(std::move(slots_[head & mask_]));
  }
  head_.store(head, std::memory_order_release);
}

SpanCollector::SpanCollector(size_t buffer_capacity)
    : buffer_capacity_(buffer_capacity),
      generation_(g_next_generation.fetch_add(1, std::memory_order_relaxed)) {}

SpanCollector::~SpanCollector() = default;

SpanBuffer* SpanCollector::buffer_for_this_thread() {
  for (const BufferRef& ref : tls_buffers) {
    if (ref.generation == generation_) return ref.buffer;
  }
  auto buffer = std::make_unique<SpanBuffer>(buffer_capacity_);
  SpanBuffer* raw = buffer.get();
  {
    RankedMutexLock lock(mu_);
    buffers_.push_back(std::move(buffer));
  }
  tls_buffers.push_back({generation_, raw});
  return raw;
}

void SpanCollector::record(Span span) {
  buffer_for_this_thread()->push(std::move(span));
}

std::vector<Span> SpanCollector::drain() {
  std::vector<Span> out;
  RankedMutexLock lock(mu_);
  for (auto& buffer : buffers_) {
    buffer->drain_into(out);
  }
  return out;
}

uint64_t SpanCollector::dropped() const {
  uint64_t total = 0;
  RankedMutexLock lock(mu_);
  for (const auto& buffer : buffers_) {
    total += buffer->dropped();
  }
  return total;
}

}  // namespace trace
}  // namespace loglens
