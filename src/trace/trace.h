#pragma once

// Batch-level pipeline tracing (docs/OBSERVABILITY.md).
//
// Every message batch gets a TraceContext — trace id, parent span id, batch
// number — stamped at produce time and carried through broker → consumer →
// engine task queue → thread pool → parser/detector jobs → anomaly store.
// Each hop records a Span (name, parent, start, duration, thread) into a
// per-thread lock-free ring (SpanBuffer); the metrics registry drains the
// rings on read (SpanCollector::drain), so the hot path never takes a lock
// to record a span.
//
// Propagation is thread-local: the code that owns a batch installs its
// context with ContextScope, and everything downstream — span recording,
// Broker::produce stamping — picks it up from current(). That keeps the
// instrumentation out of function signatures and means un-instrumented
// call paths simply start fresh traces instead of breaking.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace loglens {
namespace trace {

// Identifies the trace a piece of work belongs to and the span that caused
// it. Zero ids mean "not traced" / "no parent".
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // the span new work should parent to
  int64_t batch = -1;    // batch number, -1 before any engine sees it
};

// Tracing master switch. Seeded once from the LOGLENS_TRACE environment
// variable ("0"/"off"/"false" disable; anything else — including unset —
// enables). When off, record() and produce-time stamping are no-ops and the
// pipeline runs within noise of an untraced build (the CI overhead gate
// keeps that honest).
bool enabled();
void set_enabled(bool on);

// Process-unique, never-zero id generators (plain counters: ids only need
// to be unique within a run, and counters keep traces deterministic).
uint64_t new_trace_id();
uint64_t new_span_id();

// Small dense index for the calling thread, stable for its lifetime; used
// as the `tid` in exported traces so Perfetto groups spans by thread.
uint32_t current_tid();

// The calling thread's current context (zeroed when none is installed).
const TraceContext& current();

// RAII: installs `ctx` as the thread's current context, restoring the
// previous one on destruction. Scopes nest.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx);
  ~ContextScope();

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext saved_;
};

// One recorded hop. `name` identifies the hop ("parser.task",
// "detector.queue_wait", ...); ids tie it into the trace tree.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  int64_t batch = -1;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint32_t tid = 0;
  std::string name;
};

// Fixed-capacity single-producer single-consumer span ring. The owning
// thread pushes with a release store of the tail; the draining thread owns
// the head. A full ring drops the newest span and counts it — tracing must
// never block or grow the hot path.
class SpanBuffer {
 public:
  static constexpr size_t kDefaultCapacity = 8192;  // power of two

  explicit SpanBuffer(size_t capacity = kDefaultCapacity);

  // Producer side (owning thread only). Returns false on drop.
  bool push(Span span);

  // Consumer side (one drainer at a time). Appends drained spans to `out`.
  void drain_into(std::vector<Span>& out);

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return slots_.size(); }

 private:
  std::vector<Span> slots_;
  const size_t mask_;
  std::atomic<size_t> head_{0};  // next slot to drain (consumer-owned)
  std::atomic<size_t> tail_{0};  // next slot to fill (producer-owned)
  std::atomic<uint64_t> dropped_{0};
};

// Owns one SpanBuffer per recording thread. record() is lock-free after a
// thread's first span (the buffer pointer is cached thread-locally, keyed
// by a process-unique collector generation so a stale cache entry from a
// destroyed collector can never alias a new one). The registry calls
// drain() under its own mutex; writers must not outlive the collector —
// the same lifetime contract as the registry's metric handles.
class SpanCollector {
 public:
  explicit SpanCollector(size_t buffer_capacity = SpanBuffer::kDefaultCapacity);
  ~SpanCollector();

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  // Files a span into the calling thread's buffer (creating it on first
  // use). Safe from any thread, concurrently with drain().
  void record(Span span);

  // Moves every buffered span out, in per-thread FIFO order.
  std::vector<Span> drain();

  // Total spans dropped across all buffers (rings full).
  uint64_t dropped() const;

 private:
  SpanBuffer* buffer_for_this_thread();

  const size_t buffer_capacity_;
  const uint64_t generation_;
  mutable RankedMutex mu_{lock_rank::kTrace};
  std::vector<std::unique_ptr<SpanBuffer>> buffers_ LOGLENS_GUARDED_BY(mu_);
};

}  // namespace trace
}  // namespace loglens
