#include "automata/model.h"

#include <algorithm>
#include <sstream>

namespace loglens {

std::vector<int> Automaton::pattern_set() const {
  std::vector<int> out;
  out.reserve(states.size());
  for (const auto& [pid, _] : states) out.push_back(pid);
  return out;
}

std::string Automaton::describe() const {
  std::ostringstream out;
  out << "automaton " << id << ": " << states.size() << " states, "
      << training_instances << " training instances\n";
  out << "  begin: {";
  for (int b : begin_patterns) out << " P" << b;
  out << " }  end: {";
  for (int e : end_patterns) out << " P" << e;
  out << " }\n  states:";
  for (const auto& [pid, rule] : states) {
    out << " P" << pid << " x[" << rule.min_occurrences << ","
        << rule.max_occurrences << "]";
  }
  out << "\n  duration: [" << min_duration_ms << ", " << max_duration_ms
      << "] ms\n";
  if (!transitions.empty()) {
    out << "  transitions:";
    for (const auto& [a, b] : transitions) out << " P" << a << "->P" << b;
    out << "\n";
  }
  return out.str();
}

Json Automaton::to_json() const {
  JsonObject obj;
  obj.emplace_back("id", Json(static_cast<int64_t>(id)));
  auto int_set = [](const std::set<int>& s) {
    JsonArray arr;
    for (int v : s) arr.emplace_back(static_cast<int64_t>(v));
    return Json(std::move(arr));
  };
  obj.emplace_back("begin_patterns", int_set(begin_patterns));
  obj.emplace_back("end_patterns", int_set(end_patterns));
  JsonArray states_arr;
  for (const auto& [pid, rule] : states) {
    JsonObject s;
    s.emplace_back("pattern_id", Json(static_cast<int64_t>(pid)));
    s.emplace_back("min_occ", Json(static_cast<int64_t>(rule.min_occurrences)));
    s.emplace_back("max_occ", Json(static_cast<int64_t>(rule.max_occurrences)));
    states_arr.emplace_back(Json(std::move(s)));
  }
  obj.emplace_back("states", Json(std::move(states_arr)));
  obj.emplace_back("min_duration_ms", Json(min_duration_ms));
  obj.emplace_back("max_duration_ms", Json(max_duration_ms));
  JsonArray trans;
  for (const auto& [a, b] : transitions) {
    JsonArray pair;
    pair.emplace_back(static_cast<int64_t>(a));
    pair.emplace_back(static_cast<int64_t>(b));
    trans.emplace_back(Json(std::move(pair)));
  }
  obj.emplace_back("transitions", Json(std::move(trans)));
  obj.emplace_back("training_instances",
                   Json(static_cast<int64_t>(training_instances)));
  return Json(std::move(obj));
}

StatusOr<Automaton> Automaton::from_json(const Json& j) {
  if (!j.is_object()) return StatusOr<Automaton>::Error("automaton not an object");
  Automaton a;
  a.id = static_cast<int>(j.get_int("id"));
  auto read_set = [&j](const char* key, std::set<int>& out) {
    if (const Json* arr = j.find(key); arr != nullptr && arr->is_array()) {
      for (const auto& v : arr->as_array()) {
        if (v.is_number()) out.insert(static_cast<int>(v.as_int()));
      }
    }
  };
  read_set("begin_patterns", a.begin_patterns);
  read_set("end_patterns", a.end_patterns);
  if (const Json* arr = j.find("states"); arr != nullptr && arr->is_array()) {
    for (const auto& s : arr->as_array()) {
      StateRule rule;
      rule.pattern_id = static_cast<int>(s.get_int("pattern_id"));
      rule.min_occurrences = static_cast<int>(s.get_int("min_occ", 1));
      rule.max_occurrences = static_cast<int>(s.get_int("max_occ", 1));
      a.states[rule.pattern_id] = rule;
    }
  }
  a.min_duration_ms = j.get_int("min_duration_ms");
  a.max_duration_ms = j.get_int("max_duration_ms");
  if (const Json* arr = j.find("transitions");
      arr != nullptr && arr->is_array()) {
    for (const auto& p : arr->as_array()) {
      if (p.is_array() && p.as_array().size() == 2) {
        a.transitions.insert({static_cast<int>(p.as_array()[0].as_int()),
                              static_cast<int>(p.as_array()[1].as_int())});
      }
    }
  }
  a.training_instances =
      static_cast<size_t>(j.get_int("training_instances", 0));
  return a;
}

Json SequenceModel::to_json() const {
  JsonObject obj;
  JsonObject ids;
  for (const auto& [pid, field] : id_fields) {
    ids.emplace_back(std::to_string(pid), Json(field));
  }
  obj.emplace_back("id_fields", Json(std::move(ids)));
  JsonArray arr;
  for (const auto& a : automata) arr.push_back(a.to_json());
  obj.emplace_back("automata", Json(std::move(arr)));
  return Json(std::move(obj));
}

StatusOr<SequenceModel> SequenceModel::from_json(const Json& j) {
  if (!j.is_object()) return StatusOr<SequenceModel>::Error("model not an object");
  SequenceModel m;
  if (const Json* ids = j.find("id_fields");
      ids != nullptr && ids->is_object()) {
    for (const auto& [k, v] : ids->as_object()) {
      if (v.is_string()) m.id_fields[std::stoi(k)] = v.as_string();
    }
  }
  if (const Json* arr = j.find("automata"); arr != nullptr && arr->is_array()) {
    for (const auto& aj : arr->as_array()) {
      auto a = Automaton::from_json(aj);
      if (!a.ok()) return StatusOr<SequenceModel>(a.status());
      m.automata.push_back(std::move(a.value()));
    }
  }
  return m;
}

SequenceModel learn_sequence_model(const std::vector<ParsedLog>& training,
                                   const LearnerOptions& options) {
  SequenceModel model;
  model.id_fields = discover_id_fields(training, options.id_discovery);

  // Group logs by event ID content, preserving stream order within a group.
  struct Instance {
    std::vector<std::pair<int, int64_t>> logs;  // (pattern id, timestamp)
  };
  std::map<std::string, Instance> instances;
  for (const auto& log : training) {
    auto it = model.id_fields.find(log.pattern_id);
    if (it == model.id_fields.end()) continue;
    const Json* id_value = nullptr;
    for (const auto& [k, v] : log.fields) {
      if (k == it->second) {
        id_value = &v;
        break;
      }
    }
    if (id_value == nullptr || !id_value->is_string()) continue;
    instances[id_value->as_string()].logs.emplace_back(log.pattern_id,
                                                       log.timestamp_ms);
  }

  // Merge instances by distinct-pattern-set into automata.
  std::map<std::vector<int>, Automaton> merged;
  for (const auto& [_, inst] : instances) {
    if (inst.logs.empty()) continue;
    std::set<int> pattern_set;
    for (const auto& [pid, _ts] : inst.logs) pattern_set.insert(pid);
    std::vector<int> key(pattern_set.begin(), pattern_set.end());

    auto [it, fresh] = merged.try_emplace(key);
    Automaton& a = it->second;

    std::map<int, int> occurrences;
    for (const auto& [pid, _ts] : inst.logs) ++occurrences[pid];
    int64_t first_ts = inst.logs.front().second;
    int64_t last_ts = inst.logs.back().second;
    int64_t duration =
        (first_ts >= 0 && last_ts >= first_ts) ? last_ts - first_ts : 0;

    if (fresh) {
      a.begin_patterns.insert(inst.logs.front().first);
      a.end_patterns.insert(inst.logs.back().first);
      for (const auto& [pid, count] : occurrences) {
        a.states[pid] = StateRule{pid, count, count};
      }
      a.min_duration_ms = a.max_duration_ms = duration;
    } else {
      a.begin_patterns.insert(inst.logs.front().first);
      a.end_patterns.insert(inst.logs.back().first);
      for (const auto& [pid, count] : occurrences) {
        StateRule& rule = a.states[pid];
        rule.pattern_id = pid;
        rule.min_occurrences = std::min(rule.min_occurrences, count);
        rule.max_occurrences = std::max(rule.max_occurrences, count);
      }
      a.min_duration_ms = std::min(a.min_duration_ms, duration);
      a.max_duration_ms = std::max(a.max_duration_ms, duration);
    }
    if (options.learn_transitions) {
      for (size_t i = 1; i < inst.logs.size(); ++i) {
        a.transitions.insert({inst.logs[i - 1].first, inst.logs[i].first});
      }
    }
    ++a.training_instances;
  }

  int next_id = 1;
  for (auto& [_, a] : merged) {
    a.id = next_id++;
    model.automata.push_back(std::move(a));
  }
  return model;
}

}  // namespace loglens
