// Automatic event ID-field discovery (Section IV-A1).
//
// An event's logs are linked by an ID value that "appears the same in
// multiple logs in an event". Discovery is Apriori-flavoured:
//   1. Build a reverse index: field content -> list of (pattern id, field
//      name) pairs over all training logs containing that content.
//   2. Deduplicate the per-content lists. A list that covers all log
//      patterns is an event ID-field assignment (the paper's rule). With
//      heterogeneous event types no single list covers everything, so we
//      extend the rule with a greedy set cover: repeatedly accept the
//      candidate list covering the most still-uncovered patterns.
//
// Candidate lists are quality-filtered first: a usable ID value must occur
// at least twice with distinct contents (a constant that appears everywhere
// is not an ID), must span at least `min_patterns` patterns, and no single
// content may appear in more than `max_logs_per_content` logs.
//
// The result maps pattern id -> the field holding the event ID. Patterns
// outside the map do not participate in stateful detection.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "parser/log_parser.h"

namespace loglens {

struct IdDiscoveryOptions {
  size_t min_patterns = 2;           // a list must link at least this many
  size_t min_distinct_contents = 2;  // distinct ID values required
  // An ID value links the handful of logs of one event; values shared by
  // more logs than this (hosts, status strings, ...) are rejected.
  size_t max_logs_per_content = 24;
};

// pattern id -> field name carrying the event ID.
using IdFieldMap = std::map<int, std::string>;

IdFieldMap discover_id_fields(const std::vector<ParsedLog>& training,
                              const IdDiscoveryOptions& options = {});

}  // namespace loglens
