#include "automata/id_discovery.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace loglens {

namespace {

using PatternField = std::pair<int, std::string>;  // (pattern id, field name)

struct Candidate {
  std::vector<PatternField> pairs;  // sorted, unique
  size_t distinct_contents = 0;
  size_t max_logs_one_content = 0;
  size_t total_logs = 0;
  std::set<int> patterns;
};

}  // namespace

IdFieldMap discover_id_fields(const std::vector<ParsedLog>& training,
                              const IdDiscoveryOptions& options) {
  // Step 1: reverse index, content -> occurrences.
  struct Posting {
    std::set<PatternField> pairs;
    size_t log_count = 0;
  };
  std::unordered_map<std::string, Posting> reverse;
  std::set<int> all_patterns;
  for (const auto& log : training) {
    all_patterns.insert(log.pattern_id);
    for (const auto& [field, value] : log.fields) {
      if (!value.is_string() || value.as_string().empty()) continue;
      auto& posting = reverse[value.as_string()];
      posting.pairs.insert({log.pattern_id, field});
      ++posting.log_count;
    }
  }

  // Step 2: deduplicate per-content lists into candidates, tracking quality.
  std::map<std::vector<PatternField>, Candidate> candidates;
  for (const auto& [content, posting] : reverse) {
    std::vector<PatternField> key(posting.pairs.begin(), posting.pairs.end());
    auto& cand = candidates[key];
    if (cand.pairs.empty()) {
      cand.pairs = key;
      for (const auto& [pid, _] : key) cand.patterns.insert(pid);
    }
    ++cand.distinct_contents;
    cand.total_logs += posting.log_count;
    cand.max_logs_one_content =
        std::max(cand.max_logs_one_content, posting.log_count);
  }

  // Quality filter. A candidate must link several patterns via several
  // distinct, low-frequency contents, and must name exactly one field per
  // pattern (an ambiguous pattern->field mapping is not an ID).
  std::vector<const Candidate*> usable;
  for (const auto& [_, cand] : candidates) {
    if (cand.patterns.size() < options.min_patterns) continue;
    if (cand.distinct_contents < options.min_distinct_contents) continue;
    if (cand.max_logs_one_content > options.max_logs_per_content) continue;
    if (cand.pairs.size() != cand.patterns.size()) continue;
    usable.push_back(&cand);
  }

  // Step 3: the paper's rule — any list covering all patterns wins — then
  // greedy set cover for heterogeneous event mixes.
  IdFieldMap result;
  std::set<int> covered;
  auto adopt = [&](const Candidate& cand) {
    for (const auto& [pid, field] : cand.pairs) {
      if (!result.contains(pid)) {
        result[pid] = field;
        covered.insert(pid);
      }
    }
  };

  // Among the candidates covering every pattern, the one backed by the most
  // distinct contents is the real ID (coincidental value collisions across
  // unrelated numeric fields can also cover everything, but only via a
  // handful of contents).
  const Candidate* full = nullptr;
  for (const Candidate* cand : usable) {
    if (cand->patterns.size() != all_patterns.size()) continue;
    if (full == nullptr || cand->distinct_contents > full->distinct_contents ||
        (cand->distinct_contents == full->distinct_contents &&
         cand->pairs < full->pairs)) {
      full = cand;
    }
  }
  if (full != nullptr) {
    adopt(*full);
    return result;
  }

  // Greedy cover, strongest evidence first: a genuine per-event-type ID is
  // supported by one distinct content per event (many), while accidental
  // value collisions that happen to span several patterns are supported by
  // a handful — so distinct_contents outranks coverage gain.
  while (covered.size() < all_patterns.size()) {
    const Candidate* best = nullptr;
    size_t best_gain = 0;
    for (const Candidate* cand : usable) {
      size_t gain = 0;
      for (int pid : cand->patterns) {
        if (!covered.contains(pid)) ++gain;
      }
      if (gain == 0) continue;
      if (best == nullptr ||
          cand->distinct_contents > best->distinct_contents ||
          (cand->distinct_contents == best->distinct_contents &&
           (gain > best_gain ||
            (gain == best_gain && cand->pairs < best->pairs)))) {
        best = cand;
        best_gain = gain;
      }
    }
    if (best == nullptr) break;
    adopt(*best);
  }
  return result;
}

}  // namespace loglens
