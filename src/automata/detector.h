// Online log-sequence anomaly detection (Section IV-B) with open-state
// management and heartbeat-driven expiry (Section V-B).
//
// The detector is keyed state: every event ID content owns an open event
// accumulating (pattern, timestamp) entries. An event closes either when a
// log matching its automaton's end state arrives (validated immediately) or
// when a heartbeat shows the event has exceeded its learned max duration
// (expired — reported as a missing-end anomaly, which is exactly the class
// of anomaly that is *undetectable without heartbeats*, Figure 5).
//
// All timing uses log time: timestamps embedded in logs and in heartbeat
// messages. The detector never reads the wall clock.
//
// `update_model` swaps the rule set while *preserving open state* — the
// dynamic model update of Section V-A / Table V. Events whose patterns no
// longer belong to any automaton silently stop producing anomalies.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "automata/model.h"
#include "storage/anomaly.h"

namespace loglens {

struct DetectorOptions {
  // Expiry deadline for events that match no automaton yet.
  int64_t default_timeout_ms = 60'000;
  // Extension: flag consecutive state pairs never seen in training.
  bool check_transitions = false;
  // Robustness: order an event's logs by their embedded timestamps rather
  // than by arrival, so network-reordered logs do not fake missing-begin /
  // transition anomalies. (Logs arriving after their event's end state still
  // open a fresh event — end-state arrival closes eagerly, as in the paper.)
  bool sort_by_log_time = true;
  // Raw log lines kept per open event for anomaly reports.
  size_t max_logs_per_event = 32;
  // Memory bound on simultaneously open events (oldest evicted silently).
  size_t max_open_events = 1'000'000;
};

struct DetectorStats {
  uint64_t logs_seen = 0;
  uint64_t logs_tracked = 0;     // logs that joined an open event
  uint64_t events_closed = 0;    // closed by end-state arrival
  uint64_t events_expired = 0;   // closed by heartbeat expiry
  uint64_t heartbeats = 0;
  uint64_t evicted = 0;
};

class SequenceDetector {
 public:
  explicit SequenceDetector(SequenceModel model, DetectorOptions options = {});

  // Feeds one parsed log; returns anomalies triggered by it (possibly none).
  std::vector<Anomaly> on_log(const ParsedLog& log,
                              std::string_view source = "");

  // Feeds a heartbeat carrying the current log time; expires overdue open
  // events and returns their anomalies.
  std::vector<Anomaly> on_heartbeat(int64_t log_time_ms);

  // Swaps the model without touching open state (Section V-A).
  void update_model(SequenceModel model);

  // Checkpointing (extension): serialize/restore the open-event state, so a
  // terminated service can resume without losing in-flight events — the
  // failure mode Section V-A warns about ("all the state data is lost").
  Json snapshot_state() const;
  Status restore_state(const Json& j);

  const SequenceModel& model() const { return model_; }
  size_t open_events() const { return open_.size(); }
  const DetectorStats& stats() const { return stats_; }

 private:
  struct OpenEvent {
    std::vector<std::pair<int, int64_t>> logs;  // (pattern id, timestamp)
    std::vector<std::string> raws;
    int64_t first_ts = -1;
    int64_t last_ts = -1;
    std::string source;
  };

  // The automaton whose state set contains every observed pattern; smallest
  // state set wins, then lowest id. Null when none qualifies.
  const Automaton* candidate_for(const OpenEvent& event) const;

  // Closes the event and emits rule-violation anomalies. `at_end` is true
  // when closing was triggered by an end-state log (vs expiry/flush).
  std::vector<Anomaly> validate(const std::string& event_id,
                                const OpenEvent& event, bool at_end,
                                int64_t close_time);

  bool pattern_known(int pattern_id) const;

  SequenceModel model_;
  DetectorOptions options_;
  std::map<std::string, OpenEvent> open_;
  DetectorStats stats_;
};

}  // namespace loglens
