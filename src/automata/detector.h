// Online log-sequence anomaly detection (Section IV-B) with open-state
// management and heartbeat-driven expiry (Section V-B).
//
// The detector is keyed state: every event ID content owns an open event
// accumulating (pattern, timestamp) entries. An event closes either when a
// log matching its automaton's end state arrives (validated immediately) or
// when a heartbeat shows the event has exceeded its learned max duration
// (expired — reported as a missing-end anomaly, which is exactly the class
// of anomaly that is *undetectable without heartbeats*, Figure 5).
//
// Open state is indexed two ways:
//   - a hash map (heterogeneous string_view lookup, no per-log key
//     allocation) from event ID to the accumulated OpenEvent, and
//   - a deadline index: a lazy-deletion min-heap of
//     (expiry_deadline, generation, event_id) entries ordered by
//     (deadline, id). Every mutation that changes an event's deadline bumps
//     its generation and pushes a fresh entry; superseded entries stay in
//     the heap and are discarded when popped (stale pops). Heartbeats
//     therefore pop only actually-expired events — O(expired · log n)
//     instead of the paper's O(open) getParentStateMap() walk — and the
//     max_open_events bound evicts the earliest-deadline event (the one
//     that would expire soonest) instead of scanning.
// Events none of whose logs carried a timestamp cannot expire; they live in
// a small ordered side set and are evicted first, smallest ID first.
// Invariant: every timestamped open event has exactly one live heap entry
// (generation matches), holding its current deadline. See DESIGN.md §5.
//
// All timing uses log time: timestamps embedded in logs and in heartbeat
// messages. The detector never reads the wall clock.
//
// `update_model` swaps the rule set while *preserving open state* — the
// dynamic model update of Section V-A / Table V. Learned max-durations may
// change, so every deadline is recomputed and the heap rebuilt. Events whose
// patterns no longer belong to any automaton silently stop producing
// anomalies. `restore_state` rebuilds the index the same way, so
// snapshot/restore keeps identical expiry semantics.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "automata/model.h"
#include "common/hash.h"
#include "storage/anomaly.h"

namespace loglens {

struct DetectorOptions {
  // Expiry deadline for events that match no automaton yet.
  int64_t default_timeout_ms = 60'000;
  // Extension: flag consecutive state pairs never seen in training.
  bool check_transitions = false;
  // Robustness: order an event's logs by their embedded timestamps rather
  // than by arrival, so network-reordered logs do not fake missing-begin /
  // transition anomalies. (Logs arriving after their event's end state still
  // open a fresh event — end-state arrival closes eagerly, as in the paper.)
  bool sort_by_log_time = true;
  // Raw log lines kept per open event for anomaly reports.
  size_t max_logs_per_event = 32;
  // Memory bound on simultaneously open events. The earliest-deadline event
  // is evicted and reported as an OPEN_STATE_EVICTED anomaly.
  size_t max_open_events = 1'000'000;
};

struct DetectorStats {
  uint64_t logs_seen = 0;
  uint64_t logs_tracked = 0;     // logs that joined an open event
  uint64_t events_closed = 0;    // closed by end-state arrival
  uint64_t events_expired = 0;   // closed by heartbeat expiry
  uint64_t heartbeats = 0;
  uint64_t evicted = 0;          // evicted by the max_open_events bound
  // Deadline-index internals (not part of the detection semantics; the
  // differential test compares everything above, none of the below).
  uint64_t stale_pops = 0;       // superseded heap entries discarded
  uint64_t heap_rebuilds = 0;    // full index rebuilds (compaction,
                                 // update_model, restore_state)
};

// Builds the OPEN_STATE_EVICTED anomaly reported when the max_open_events
// bound drops an open event. Shared with the test-only reference detector so
// the differential harness can require byte-identical eviction reports while
// still computing the victim and timing independently. `deadline_ms` is -1
// for events that had no timestamped log.
Anomaly make_eviction_anomaly(const std::string& event_id,
                              const std::string& source,
                              const std::vector<std::string>& raws,
                              int automaton_id, int64_t event_last_ts,
                              int64_t close_time_ms, size_t open_events,
                              size_t max_open_events, int64_t deadline_ms);

class SequenceDetector {
 public:
  explicit SequenceDetector(SequenceModel model, DetectorOptions options = {});

  // Feeds one parsed log; returns anomalies triggered by it (possibly none).
  std::vector<Anomaly> on_log(const ParsedLog& log,
                              std::string_view source = "");

  // Feeds a heartbeat carrying the current log time; expires overdue open
  // events and returns their anomalies (ordered by event ID, as if swept in
  // ID order). Cost: O(expired · log open), not O(open).
  std::vector<Anomaly> on_heartbeat(int64_t log_time_ms);

  // Swaps the model without touching open state (Section V-A). Deadlines
  // depend on learned max-durations, so the deadline index is rebuilt.
  void update_model(SequenceModel model);

  // Checkpointing (extension): serialize/restore the open-event state, so a
  // terminated service can resume without losing in-flight events — the
  // failure mode Section V-A warns about ("all the state data is lost").
  // Snapshots are deterministic (events ordered by ID) and carry no index
  // state; restore_state recomputes every deadline and rebuilds the heap.
  // On error the detector is left unchanged.
  Json snapshot_state() const;
  Status restore_state(const Json& j);

  const SequenceModel& model() const { return model_; }
  size_t open_events() const { return open_.size(); }
  // Live + stale entries currently held by the deadline heap.
  size_t deadline_index_size() const { return heap_.size(); }
  const DetectorStats& stats() const { return stats_; }

 private:
  struct OpenEvent {
    std::vector<std::pair<int, int64_t>> logs;  // (pattern id, timestamp)
    std::vector<std::string> raws;
    int64_t first_ts = -1;
    int64_t last_ts = -1;
    std::string source;
    // Current expiry deadline (kNoDeadline while no log carried a
    // timestamp) and the generation of the live heap entry holding it.
    // Generations are drawn from a detector-wide counter, never reused:
    // event IDs recur (close + reopen under the same ID), and a per-event
    // counter restarting at 0 would let a stale entry from the previous
    // incarnation match the new one and expire it at the old deadline.
    int64_t deadline = 0;
    uint64_t generation = 0;
  };

  // Sentinel deadline for events that cannot expire (no timestamp yet).
  static constexpr int64_t kNoDeadline = INT64_MAX;

  struct DeadlineEntry {
    int64_t deadline = 0;
    uint64_t generation = 0;
    std::string id;
  };

  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return static_cast<size_t>(fnv1a(s));
    }
  };

  using OpenMap =
      std::unordered_map<std::string, OpenEvent, TransparentHash,
                         std::equal_to<>>;

  // The automaton whose state set contains every observed pattern; smallest
  // state set wins, then lowest id. Null when none qualifies.
  const Automaton* candidate_for(const OpenEvent& event) const;

  // Distinct pattern IDs of the event's logs, sorted (reused scratch).
  const std::vector<int>& observed_patterns(const OpenEvent& event) const;

  // Closes the event and emits rule-violation anomalies. `at_end` is true
  // when closing was triggered by an end-state log (vs expiry/flush).
  std::vector<Anomaly> validate(const std::string& event_id,
                                const OpenEvent& event, bool at_end,
                                int64_t close_time);

  bool pattern_known(int pattern_id) const;

  // Deadline the heartbeat sweep enforces for this event under the current
  // model (kNoDeadline when the event has no timestamped log).
  int64_t compute_deadline(const OpenEvent& event,
                           const Automaton* candidate) const;

  // Records a deadline change: bumps the generation, pushes a fresh heap
  // entry (or files the event in the no-deadline set), and compacts the
  // heap when stale entries dominate.
  void index_event(const std::string& id, OpenEvent& event, int64_t deadline,
                   bool is_new);
  void push_entry(int64_t deadline, uint64_t generation, std::string id);
  DeadlineEntry pop_entry();
  // Drops every heap/set entry and re-indexes all open events (used by
  // update_model, restore_state, and heap compaction).
  void rebuild_index();
  void maybe_compact();

  // Enforces max_open_events: evicts the earliest-deadline event (ties by
  // smallest ID; events with no deadline go first) and reports it.
  std::vector<Anomaly> maybe_evict(int64_t close_time_ms);

  SequenceModel model_;
  DetectorOptions options_;
  OpenMap open_;
  // Lazy-deletion min-heap over (deadline, id); std::push_heap/pop_heap on
  // a vector so rebuild_index can reconstruct it in O(n).
  std::vector<DeadlineEntry> heap_;
  // Events that cannot expire (no timestamped log yet), ordered by ID so
  // eviction picks deterministically.
  std::set<std::string, std::less<>> no_deadline_;
  // Source of heap-entry generations (see OpenEvent::generation).
  uint64_t generation_counter_ = 0;
  DetectorStats stats_;

  // Reused validation scratch: occurrence counts indexed by pattern ID
  // (touched slots zeroed after each validation) and the sorted distinct
  // observed-pattern set. Keeps the per-close path allocation-free once
  // warm — see tests/detector_allocation_test.cpp.
  std::vector<int> occ_counts_;
  std::vector<int> occ_touched_;
  mutable std::vector<int> observed_scratch_;
};

}  // namespace loglens
