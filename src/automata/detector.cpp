#include "automata/detector.h"

#include <algorithm>
#include <set>

namespace loglens {

SequenceDetector::SequenceDetector(SequenceModel model,
                                   DetectorOptions options)
    : model_(std::move(model)), options_(options) {}

bool SequenceDetector::pattern_known(int pattern_id) const {
  for (const auto& a : model_.automata) {
    if (a.states.contains(pattern_id)) return true;
  }
  return false;
}

const Automaton* SequenceDetector::candidate_for(
    const OpenEvent& event) const {
  std::set<int> observed;
  for (const auto& [pid, _] : event.logs) observed.insert(pid);
  const Automaton* best = nullptr;
  for (const auto& a : model_.automata) {
    bool contains_all = std::all_of(
        observed.begin(), observed.end(),
        [&a](int pid) { return a.states.contains(pid); });
    if (!contains_all) continue;
    if (best == nullptr || a.states.size() < best->states.size() ||
        (a.states.size() == best->states.size() && a.id < best->id)) {
      best = &a;
    }
  }
  return best;
}

std::vector<Anomaly> SequenceDetector::validate(const std::string& event_id,
                                                const OpenEvent& event,
                                                bool at_end,
                                                int64_t close_time) {
  std::vector<Anomaly> out;
  if (event.logs.empty()) return out;

  // Attribution: the containing automaton, or failing that the automaton
  // sharing the most patterns. No overlap at all => the event's patterns
  // were removed from the model; silently drop (Table V semantics).
  const Automaton* automaton = candidate_for(event);
  if (automaton == nullptr) {
    std::set<int> observed;
    for (const auto& [pid, _] : event.logs) observed.insert(pid);
    size_t best_overlap = 0;
    for (const auto& a : model_.automata) {
      size_t overlap = 0;
      for (int pid : observed) {
        if (a.states.contains(pid)) ++overlap;
      }
      if (overlap > best_overlap) {
        best_overlap = overlap;
        automaton = &a;
      }
    }
    if (automaton == nullptr || best_overlap == 0) return out;
  }

  // Anomalies are stamped with the event's own log time: the close time
  // when the end state arrived, or the last observed log when the event
  // expired (a heartbeat's extrapolated clock says when we *noticed*, not
  // when the event went wrong).
  const int64_t anomaly_time =
      at_end || event.last_ts < 0 ? close_time : event.last_ts;
  auto emit = [&](AnomalyType type, std::string severity, std::string reason,
                  Json details = Json(JsonObject{})) {
    Anomaly a;
    a.type = type;
    a.severity = std::move(severity);
    a.reason = std::move(reason);
    a.timestamp_ms = anomaly_time;
    a.source = event.source;
    a.event_id = event_id;
    a.automaton_id = automaton->id;
    a.logs = event.raws;
    a.details = std::move(details);
    out.push_back(std::move(a));
  };

  const int first_pattern = event.logs.front().first;
  const int last_pattern = event.logs.back().first;
  const bool begin_ok = automaton->begin_patterns.contains(first_pattern);
  const bool end_ok = at_end && automaton->end_patterns.contains(last_pattern);

  if (!begin_ok) {
    emit(AnomalyType::kMissingBeginState, "high",
         "event starts with pattern " + std::to_string(first_pattern) +
             ", which is not a begin state of automaton " +
             std::to_string(automaton->id),
         Json(JsonObject{{"first_pattern",
                          Json(static_cast<int64_t>(first_pattern))}}));
  }
  if (!end_ok) {
    emit(AnomalyType::kMissingEndState, "high",
         at_end ? "event ends with pattern " + std::to_string(last_pattern) +
                      ", which is not an end state"
                : "event expired without reaching an end state of automaton " +
                      std::to_string(automaton->id),
         Json(JsonObject{
             {"last_pattern", Json(static_cast<int64_t>(last_pattern))},
             {"expired", Json(!at_end)}}));
  }

  std::map<int, int> occurrences;
  for (const auto& [pid, _] : event.logs) ++occurrences[pid];

  for (const auto& [pid, rule] : automaton->states) {
    auto it = occurrences.find(pid);
    int count = it == occurrences.end() ? 0 : it->second;
    if (count == 0) {
      if (rule.min_occurrences >= 1 &&
          !automaton->end_patterns.contains(pid) &&
          !automaton->begin_patterns.contains(pid)) {
        emit(AnomalyType::kMissingIntermediateState, "high",
             "state for pattern " + std::to_string(pid) +
                 " never occurred (min occurrence " +
                 std::to_string(rule.min_occurrences) + ")",
             Json(JsonObject{{"pattern_id", Json(static_cast<int64_t>(pid))}}));
      }
      // A missing begin/end pattern is already covered by type 1 above.
      continue;
    }
    if (count < rule.min_occurrences || count > rule.max_occurrences) {
      emit(AnomalyType::kOccurrenceViolation, "medium",
           "pattern " + std::to_string(pid) + " occurred " +
               std::to_string(count) + " times, outside [" +
               std::to_string(rule.min_occurrences) + ", " +
               std::to_string(rule.max_occurrences) + "]",
           Json(JsonObject{{"pattern_id", Json(static_cast<int64_t>(pid))},
                           {"count", Json(static_cast<int64_t>(count))}}));
    }
  }

  if (begin_ok && end_ok && event.first_ts >= 0 && event.last_ts >= 0) {
    int64_t duration = event.last_ts - event.first_ts;
    if (duration < automaton->min_duration_ms ||
        duration > automaton->max_duration_ms) {
      emit(AnomalyType::kDurationViolation, "medium",
           "event duration " + std::to_string(duration) + " ms outside [" +
               std::to_string(automaton->min_duration_ms) + ", " +
               std::to_string(automaton->max_duration_ms) + "] ms",
           Json(JsonObject{{"duration_ms", Json(duration)}}));
    }
  }

  if (options_.check_transitions && !automaton->transitions.empty()) {
    std::set<std::pair<int, int>> reported;
    for (size_t i = 1; i < event.logs.size(); ++i) {
      std::pair<int, int> edge{event.logs[i - 1].first, event.logs[i].first};
      if (!automaton->transitions.contains(edge) &&
          reported.insert(edge).second) {
        emit(AnomalyType::kUnknownTransition, "low",
             "transition " + std::to_string(edge.first) + " -> " +
                 std::to_string(edge.second) + " never seen in training",
             Json(JsonObject{{"from", Json(static_cast<int64_t>(edge.first))},
                             {"to", Json(static_cast<int64_t>(edge.second))}}));
      }
    }
  }
  return out;
}

std::vector<Anomaly> SequenceDetector::on_log(const ParsedLog& log,
                                              std::string_view source) {
  ++stats_.logs_seen;
  auto field_it = model_.id_fields.find(log.pattern_id);
  if (field_it == model_.id_fields.end()) return {};
  if (!pattern_known(log.pattern_id)) return {};

  const Json* id_value = nullptr;
  for (const auto& [k, v] : log.fields) {
    if (k == field_it->second) {
      id_value = &v;
      break;
    }
  }
  if (id_value == nullptr || !id_value->is_string() ||
      id_value->as_string().empty()) {
    return {};
  }
  const std::string& event_id = id_value->as_string();

  ++stats_.logs_tracked;
  OpenEvent& event = open_[event_id];
  if (event.logs.empty()) {
    event.source = std::string(source);
  }
  std::pair<int, int64_t> entry{log.pattern_id, log.timestamp_ms};
  if (options_.sort_by_log_time && log.timestamp_ms >= 0) {
    auto pos = std::upper_bound(
        event.logs.begin(), event.logs.end(), entry,
        [](const auto& a, const auto& b) { return a.second < b.second; });
    event.logs.insert(pos, entry);
  } else {
    event.logs.push_back(entry);
  }
  if (log.timestamp_ms >= 0) {
    if (event.first_ts < 0 || log.timestamp_ms < event.first_ts) {
      event.first_ts = log.timestamp_ms;
    }
    if (log.timestamp_ms > event.last_ts) event.last_ts = log.timestamp_ms;
  }
  if (event.raws.size() < options_.max_logs_per_event) {
    event.raws.push_back(log.raw);
  }

  const Automaton* candidate = candidate_for(event);
  if (candidate != nullptr &&
      candidate->end_patterns.contains(log.pattern_id)) {
    ++stats_.events_closed;
    auto node = open_.extract(event_id);
    return validate(node.key(), node.mapped(), /*at_end=*/true,
                    log.timestamp_ms);
  }

  // Memory bound: evict the stalest open event.
  if (open_.size() > options_.max_open_events) {
    auto oldest = open_.begin();
    for (auto it = open_.begin(); it != open_.end(); ++it) {
      if (it->second.last_ts < oldest->second.last_ts) oldest = it;
    }
    open_.erase(oldest);
    ++stats_.evicted;
  }
  return {};
}

std::vector<Anomaly> SequenceDetector::on_heartbeat(int64_t log_time_ms) {
  ++stats_.heartbeats;
  std::vector<Anomaly> out;
  for (auto it = open_.begin(); it != open_.end();) {
    const OpenEvent& event = it->second;
    const Automaton* candidate = candidate_for(event);
    int64_t deadline;
    if (candidate != nullptr) {
      deadline = event.first_ts + candidate->max_duration_ms;
    } else {
      deadline = event.last_ts + options_.default_timeout_ms;
    }
    if (event.first_ts >= 0 && log_time_ms > deadline) {
      ++stats_.events_expired;
      auto anomalies =
          validate(it->first, event, /*at_end=*/false, log_time_ms);
      out.insert(out.end(), anomalies.begin(), anomalies.end());
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void SequenceDetector::update_model(SequenceModel model) {
  model_ = std::move(model);
}

Json SequenceDetector::snapshot_state() const {
  JsonArray events;
  for (const auto& [id, event] : open_) {
    JsonObject e;
    e.emplace_back("id", Json(id));
    e.emplace_back("source", Json(event.source));
    e.emplace_back("first_ts", Json(event.first_ts));
    e.emplace_back("last_ts", Json(event.last_ts));
    JsonArray logs;
    for (const auto& [pid, ts] : event.logs) {
      JsonArray pair;
      pair.emplace_back(static_cast<int64_t>(pid));
      pair.emplace_back(ts);
      logs.emplace_back(Json(std::move(pair)));
    }
    e.emplace_back("logs", Json(std::move(logs)));
    JsonArray raws;
    for (const auto& r : event.raws) raws.emplace_back(r);
    e.emplace_back("raws", Json(std::move(raws)));
    events.emplace_back(Json(std::move(e)));
  }
  JsonObject obj;
  obj.emplace_back("open_events", Json(std::move(events)));
  return Json(std::move(obj));
}

Status SequenceDetector::restore_state(const Json& j) {
  if (!j.is_object()) return Status::Error("state snapshot not an object");
  const Json* events = j.find("open_events");
  if (events == nullptr || !events->is_array()) {
    return Status::Error("state snapshot missing open_events");
  }
  std::map<std::string, OpenEvent> restored;
  for (const auto& e : events->as_array()) {
    if (!e.is_object()) return Status::Error("open event not an object");
    std::string id(e.get_string("id"));
    if (id.empty()) return Status::Error("open event missing id");
    OpenEvent event;
    event.source = std::string(e.get_string("source"));
    event.first_ts = e.get_int("first_ts", -1);
    event.last_ts = e.get_int("last_ts", -1);
    if (const Json* logs = e.find("logs");
        logs != nullptr && logs->is_array()) {
      for (const auto& pair : logs->as_array()) {
        if (!pair.is_array() || pair.as_array().size() != 2) {
          return Status::Error("open event log entry malformed");
        }
        event.logs.emplace_back(
            static_cast<int>(pair.as_array()[0].as_int()),
            pair.as_array()[1].as_int());
      }
    }
    if (const Json* raws = e.find("raws");
        raws != nullptr && raws->is_array()) {
      for (const auto& r : raws->as_array()) {
        if (r.is_string()) event.raws.push_back(r.as_string());
      }
    }
    restored[std::move(id)] = std::move(event);
  }
  open_ = std::move(restored);
  return Status::Ok();
}

}  // namespace loglens
