#include "automata/detector.h"

#include <algorithm>
#include <set>
#include <utility>

namespace loglens {

SequenceDetector::SequenceDetector(SequenceModel model,
                                   DetectorOptions options)
    : model_(std::move(model)), options_(options) {}

bool SequenceDetector::pattern_known(int pattern_id) const {
  for (const auto& a : model_.automata) {
    if (a.states.contains(pattern_id)) return true;
  }
  return false;
}

const std::vector<int>& SequenceDetector::observed_patterns(
    const OpenEvent& event) const {
  observed_scratch_.clear();
  for (const auto& [pid, _] : event.logs) observed_scratch_.push_back(pid);
  std::sort(observed_scratch_.begin(), observed_scratch_.end());
  observed_scratch_.erase(
      std::unique(observed_scratch_.begin(), observed_scratch_.end()),
      observed_scratch_.end());
  return observed_scratch_;
}

const Automaton* SequenceDetector::candidate_for(
    const OpenEvent& event) const {
  const std::vector<int>& observed = observed_patterns(event);
  const Automaton* best = nullptr;
  for (const auto& a : model_.automata) {
    bool contains_all = std::all_of(
        observed.begin(), observed.end(),
        [&a](int pid) { return a.states.contains(pid); });
    if (!contains_all) continue;
    if (best == nullptr || a.states.size() < best->states.size() ||
        (a.states.size() == best->states.size() && a.id < best->id)) {
      best = &a;
    }
  }
  return best;
}

Anomaly make_eviction_anomaly(const std::string& event_id,
                              const std::string& source,
                              const std::vector<std::string>& raws,
                              int automaton_id, int64_t event_last_ts,
                              int64_t close_time_ms, size_t open_events,
                              size_t max_open_events, int64_t deadline_ms) {
  Anomaly a;
  a.type = AnomalyType::kOpenStateEvicted;
  a.severity = "medium";
  a.reason = "open events exceeded the max_open_events bound (" +
             std::to_string(max_open_events) +
             "); evicted the event with the earliest expiry deadline before "
             "it reached an end state";
  a.timestamp_ms = event_last_ts >= 0 ? event_last_ts : close_time_ms;
  a.source = source;
  a.event_id = event_id;
  a.automaton_id = automaton_id;
  a.logs = raws;
  a.details = Json(JsonObject{
      {"open_events", Json(static_cast<int64_t>(open_events))},
      {"max_open_events", Json(static_cast<int64_t>(max_open_events))},
      {"deadline_ms", Json(deadline_ms)}});
  return a;
}

std::vector<Anomaly> SequenceDetector::validate(const std::string& event_id,
                                                const OpenEvent& event,
                                                bool at_end,
                                                int64_t close_time) {
  std::vector<Anomaly> out;
  if (event.logs.empty()) return out;

  // Attribution: the containing automaton, or failing that the automaton
  // sharing the most patterns. No overlap at all => the event's patterns
  // were removed from the model; silently drop (Table V semantics).
  const Automaton* automaton = candidate_for(event);
  if (automaton == nullptr) {
    const std::vector<int>& observed = observed_patterns(event);
    size_t best_overlap = 0;
    for (const auto& a : model_.automata) {
      size_t overlap = 0;
      for (int pid : observed) {
        if (a.states.contains(pid)) ++overlap;
      }
      if (overlap > best_overlap) {
        best_overlap = overlap;
        automaton = &a;
      }
    }
    if (automaton == nullptr || best_overlap == 0) return out;
  }

  // Anomalies are stamped with the event's own log time: the close time
  // when the end state arrived, or the last observed log when the event
  // expired (a heartbeat's extrapolated clock says when we *noticed*, not
  // when the event went wrong).
  const int64_t anomaly_time =
      at_end || event.last_ts < 0 ? close_time : event.last_ts;
  auto emit = [&](AnomalyType type, std::string severity, std::string reason,
                  Json details = Json(JsonObject{})) {
    Anomaly a;
    a.type = type;
    a.severity = std::move(severity);
    a.reason = std::move(reason);
    a.timestamp_ms = anomaly_time;
    a.source = event.source;
    a.event_id = event_id;
    a.automaton_id = automaton->id;
    a.logs = event.raws;
    a.details = std::move(details);
    out.push_back(std::move(a));
  };

  const int first_pattern = event.logs.front().first;
  const int last_pattern = event.logs.back().first;
  const bool begin_ok = automaton->begin_patterns.contains(first_pattern);
  const bool end_ok = at_end && automaton->end_patterns.contains(last_pattern);

  if (!begin_ok) {
    emit(AnomalyType::kMissingBeginState, "high",
         "event starts with pattern " + std::to_string(first_pattern) +
             ", which is not a begin state of automaton " +
             std::to_string(automaton->id),
         Json(JsonObject{{"first_pattern",
                          Json(static_cast<int64_t>(first_pattern))}}));
  }
  if (!end_ok) {
    emit(AnomalyType::kMissingEndState, "high",
         at_end ? "event ends with pattern " + std::to_string(last_pattern) +
                      ", which is not an end state"
                : "event expired without reaching an end state of automaton " +
                      std::to_string(automaton->id),
         Json(JsonObject{
             {"last_pattern", Json(static_cast<int64_t>(last_pattern))},
             {"expired", Json(!at_end)}}));
  }

  // Occurrence counts in a flat, reusable vector indexed by pattern ID (a
  // per-validation std::map allocated a node per distinct pattern). Touched
  // slots are zeroed before returning, so the scratch stays warm.
  for (const auto& [pid, _] : event.logs) {
    if (pid < 0) continue;  // flat index cannot host negative IDs
    if (static_cast<size_t>(pid) >= occ_counts_.size()) {
      occ_counts_.resize(static_cast<size_t>(pid) + 1, 0);
    }
    if (occ_counts_[static_cast<size_t>(pid)]++ == 0) {
      occ_touched_.push_back(pid);
    }
  }
  auto occurrence_count = [this](int pid) {
    return pid >= 0 && static_cast<size_t>(pid) < occ_counts_.size()
               ? occ_counts_[static_cast<size_t>(pid)]
               : 0;
  };

  for (const auto& [pid, rule] : automaton->states) {
    const int count = occurrence_count(pid);
    if (count == 0) {
      if (rule.min_occurrences >= 1 &&
          !automaton->end_patterns.contains(pid) &&
          !automaton->begin_patterns.contains(pid)) {
        emit(AnomalyType::kMissingIntermediateState, "high",
             "state for pattern " + std::to_string(pid) +
                 " never occurred (min occurrence " +
                 std::to_string(rule.min_occurrences) + ")",
             Json(JsonObject{{"pattern_id", Json(static_cast<int64_t>(pid))}}));
      }
      // A missing begin/end pattern is already covered by type 1 above.
      continue;
    }
    if (count < rule.min_occurrences || count > rule.max_occurrences) {
      emit(AnomalyType::kOccurrenceViolation, "medium",
           "pattern " + std::to_string(pid) + " occurred " +
               std::to_string(count) + " times, outside [" +
               std::to_string(rule.min_occurrences) + ", " +
               std::to_string(rule.max_occurrences) + "]",
           Json(JsonObject{{"pattern_id", Json(static_cast<int64_t>(pid))},
                           {"count", Json(static_cast<int64_t>(count))}}));
    }
  }

  for (int pid : occ_touched_) occ_counts_[static_cast<size_t>(pid)] = 0;
  occ_touched_.clear();

  if (begin_ok && end_ok && event.first_ts >= 0 && event.last_ts >= 0) {
    int64_t duration = event.last_ts - event.first_ts;
    if (duration < automaton->min_duration_ms ||
        duration > automaton->max_duration_ms) {
      emit(AnomalyType::kDurationViolation, "medium",
           "event duration " + std::to_string(duration) + " ms outside [" +
               std::to_string(automaton->min_duration_ms) + ", " +
               std::to_string(automaton->max_duration_ms) + "] ms",
           Json(JsonObject{{"duration_ms", Json(duration)}}));
    }
  }

  if (options_.check_transitions && !automaton->transitions.empty()) {
    std::set<std::pair<int, int>> reported;
    for (size_t i = 1; i < event.logs.size(); ++i) {
      std::pair<int, int> edge{event.logs[i - 1].first, event.logs[i].first};
      if (!automaton->transitions.contains(edge) &&
          reported.insert(edge).second) {
        emit(AnomalyType::kUnknownTransition, "low",
             "transition " + std::to_string(edge.first) + " -> " +
                 std::to_string(edge.second) + " never seen in training",
             Json(JsonObject{{"from", Json(static_cast<int64_t>(edge.first))},
                             {"to", Json(static_cast<int64_t>(edge.second))}}));
      }
    }
  }
  return out;
}

int64_t SequenceDetector::compute_deadline(const OpenEvent& event,
                                           const Automaton* candidate) const {
  if (event.first_ts < 0) return kNoDeadline;
  if (candidate != nullptr) return event.first_ts + candidate->max_duration_ms;
  return event.last_ts + options_.default_timeout_ms;
}

void SequenceDetector::push_entry(int64_t deadline, uint64_t generation,
                                  std::string id) {
  heap_.push_back(DeadlineEntry{deadline, generation, std::move(id)});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const DeadlineEntry& a, const DeadlineEntry& b) {
                   // Min-heap over (deadline, id): `a` sorts after `b`.
                   if (a.deadline != b.deadline) return a.deadline > b.deadline;
                   return a.id > b.id;
                 });
}

SequenceDetector::DeadlineEntry SequenceDetector::pop_entry() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const DeadlineEntry& a, const DeadlineEntry& b) {
                  if (a.deadline != b.deadline) return a.deadline > b.deadline;
                  return a.id > b.id;
                });
  DeadlineEntry e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

void SequenceDetector::index_event(const std::string& id, OpenEvent& event,
                                   int64_t deadline, bool is_new) {
  if (is_new) {
    event.deadline = deadline;
    if (deadline == kNoDeadline) {
      no_deadline_.insert(id);
    } else {
      event.generation = ++generation_counter_;
      push_entry(deadline, event.generation, id);
      maybe_compact();
    }
    return;
  }
  if (deadline == event.deadline) return;
  if (event.deadline == kNoDeadline) {
    // First timestamped log: the event graduates from the no-deadline set
    // into the heap. (first_ts never unsets, so the reverse cannot happen.)
    auto it = no_deadline_.find(id);
    if (it != no_deadline_.end()) no_deadline_.erase(it);
  }
  // Fresh detector-wide generation: every older heap entry for this event —
  // including any left by a previous incarnation of the same ID — is stale.
  event.generation = ++generation_counter_;
  event.deadline = deadline;
  push_entry(deadline, event.generation, id);
  maybe_compact();
}

void SequenceDetector::maybe_compact() {
  // Lazy deletion lets stale entries pile up (one per deadline change).
  // Rebuild once they outnumber live entries 2:1, which bounds heap memory
  // at O(open events) amortized.
  const size_t live = open_.size() - no_deadline_.size();
  if (heap_.size() > 64 && heap_.size() > 2 * live) rebuild_index();
}

void SequenceDetector::rebuild_index() {
  ++stats_.heap_rebuilds;
  heap_.clear();
  no_deadline_.clear();
  heap_.reserve(open_.size());
  for (auto& [id, event] : open_) {
    event.generation = ++generation_counter_;
    event.deadline = compute_deadline(event, candidate_for(event));
    if (event.deadline == kNoDeadline) {
      no_deadline_.insert(id);
    } else {
      heap_.push_back(DeadlineEntry{event.deadline, event.generation, id});
    }
  }
  std::make_heap(heap_.begin(), heap_.end(),
                 [](const DeadlineEntry& a, const DeadlineEntry& b) {
                   if (a.deadline != b.deadline) return a.deadline > b.deadline;
                   return a.id > b.id;
                 });
}

std::vector<Anomaly> SequenceDetector::maybe_evict(int64_t close_time_ms) {
  if (open_.size() <= options_.max_open_events) return {};
  // Victim: earliest deadline, ties by smallest ID; events that can never
  // expire (no timestamp) go first — they would otherwise pin memory.
  OpenMap::iterator victim = open_.end();
  if (!no_deadline_.empty()) {
    victim = open_.find(*no_deadline_.begin());
  } else {
    while (!heap_.empty()) {
      const DeadlineEntry& top = heap_.front();
      auto it = open_.find(top.id);
      if (it == open_.end() || it->second.generation != top.generation) {
        ++stats_.stale_pops;
        pop_entry();
        continue;
      }
      victim = it;
      pop_entry();
      break;
    }
  }
  if (victim == open_.end()) return {};  // unreachable if invariants hold

  const OpenEvent& event = victim->second;
  const Automaton* candidate = candidate_for(event);
  std::vector<Anomaly> out;
  out.push_back(make_eviction_anomaly(
      victim->first, event.source, event.raws,
      candidate != nullptr ? candidate->id : -1, event.last_ts, close_time_ms,
      open_.size(), options_.max_open_events,
      event.deadline == kNoDeadline ? -1 : event.deadline));
  if (event.deadline == kNoDeadline) {
    auto it = no_deadline_.find(victim->first);
    if (it != no_deadline_.end()) no_deadline_.erase(it);
  }
  open_.erase(victim);
  ++stats_.evicted;
  return out;
}

std::vector<Anomaly> SequenceDetector::on_log(const ParsedLog& log,
                                              std::string_view source) {
  ++stats_.logs_seen;
  auto field_it = model_.id_fields.find(log.pattern_id);
  if (field_it == model_.id_fields.end()) return {};
  if (!pattern_known(log.pattern_id)) return {};

  const Json* id_value = nullptr;
  for (const auto& [k, v] : log.fields) {
    if (k == field_it->second) {
      id_value = &v;
      break;
    }
  }
  if (id_value == nullptr || !id_value->is_string() ||
      id_value->as_string().empty()) {
    return {};
  }
  const std::string& event_id = id_value->as_string();

  ++stats_.logs_tracked;
  auto [map_it, inserted] = open_.try_emplace(event_id);
  OpenEvent& event = map_it->second;
  if (event.logs.empty()) {
    event.source = std::string(source);
  }
  std::pair<int, int64_t> entry{log.pattern_id, log.timestamp_ms};
  if (options_.sort_by_log_time && log.timestamp_ms >= 0) {
    auto pos = std::upper_bound(
        event.logs.begin(), event.logs.end(), entry,
        [](const auto& a, const auto& b) { return a.second < b.second; });
    event.logs.insert(pos, entry);
  } else {
    event.logs.push_back(entry);
  }
  if (log.timestamp_ms >= 0) {
    if (event.first_ts < 0 || log.timestamp_ms < event.first_ts) {
      event.first_ts = log.timestamp_ms;
    }
    if (log.timestamp_ms > event.last_ts) event.last_ts = log.timestamp_ms;
  }
  if (event.raws.size() < options_.max_logs_per_event) {
    event.raws.push_back(log.raw);
  }

  const Automaton* candidate = candidate_for(event);
  if (candidate != nullptr &&
      candidate->end_patterns.contains(log.pattern_id)) {
    ++stats_.events_closed;
    auto node = open_.extract(map_it);  // heap entries go stale with it
    if (node.mapped().deadline == kNoDeadline) {
      auto it = no_deadline_.find(node.key());
      if (it != no_deadline_.end()) no_deadline_.erase(it);
    }
    return validate(node.key(), node.mapped(), /*at_end=*/true,
                    log.timestamp_ms);
  }

  index_event(map_it->first, event, compute_deadline(event, candidate),
              inserted);

  // Memory bound: evict (and report) the earliest-deadline open event.
  return maybe_evict(log.timestamp_ms);
}

std::vector<Anomaly> SequenceDetector::on_heartbeat(int64_t log_time_ms) {
  ++stats_.heartbeats;
  // Pop actually-expired entries only; everything still open stays
  // untouched, so the sweep is O(expired · log n) — the paper's linear
  // getParentStateMap() walk is gone.
  std::vector<std::pair<std::string, OpenEvent>> expired;
  while (!heap_.empty() && heap_.front().deadline < log_time_ms) {
    DeadlineEntry top = pop_entry();
    auto it = open_.find(top.id);
    if (it == open_.end() || it->second.generation != top.generation) {
      ++stats_.stale_pops;
      continue;
    }
    ++stats_.events_expired;
    expired.emplace_back(std::move(top.id), std::move(it->second));
    open_.erase(it);
  }
  if (expired.empty()) return {};
  // Report in event-ID order, exactly as an in-order sweep would.
  std::sort(expired.begin(), expired.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Anomaly> out;
  for (const auto& [id, event] : expired) {
    auto anomalies = validate(id, event, /*at_end=*/false, log_time_ms);
    out.insert(out.end(), std::make_move_iterator(anomalies.begin()),
               std::make_move_iterator(anomalies.end()));
  }
  return out;
}

void SequenceDetector::update_model(SequenceModel model) {
  model_ = std::move(model);
  // Learned max-durations (and candidate attribution) changed under every
  // open event; recompute all deadlines and rebuild the index so heartbeat
  // semantics match a detector that had run under the new model all along.
  rebuild_index();
}

Json SequenceDetector::snapshot_state() const {
  // Deterministic order (by event ID) regardless of hash-map iteration, so
  // equal states serialize to equal bytes. No index state is written: the
  // deadlines are a function of (events, model) and restore recomputes them.
  std::vector<const OpenMap::value_type*> entries;
  entries.reserve(open_.size());
  for (const auto& kv : open_) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  JsonArray events;
  for (const auto* kv : entries) {
    const OpenEvent& event = kv->second;
    JsonObject e;
    e.emplace_back("id", Json(kv->first));
    e.emplace_back("source", Json(event.source));
    e.emplace_back("first_ts", Json(event.first_ts));
    e.emplace_back("last_ts", Json(event.last_ts));
    JsonArray logs;
    for (const auto& [pid, ts] : event.logs) {
      JsonArray pair;
      pair.emplace_back(static_cast<int64_t>(pid));
      pair.emplace_back(ts);
      logs.emplace_back(Json(std::move(pair)));
    }
    e.emplace_back("logs", Json(std::move(logs)));
    JsonArray raws;
    for (const auto& r : event.raws) raws.emplace_back(r);
    e.emplace_back("raws", Json(std::move(raws)));
    events.emplace_back(Json(std::move(e)));
  }
  JsonObject obj;
  obj.emplace_back("open_events", Json(std::move(events)));
  return Json(std::move(obj));
}

Status SequenceDetector::restore_state(const Json& j) {
  if (!j.is_object()) return Status::Error("state snapshot not an object");
  const Json* events = j.find("open_events");
  if (events == nullptr || !events->is_array()) {
    return Status::Error("state snapshot missing open_events");
  }
  OpenMap restored;
  for (const auto& e : events->as_array()) {
    if (!e.is_object()) return Status::Error("open event not an object");
    std::string id(e.get_string("id"));
    if (id.empty()) return Status::Error("open event missing id");
    OpenEvent event;
    event.source = std::string(e.get_string("source"));
    event.first_ts = e.get_int("first_ts", -1);
    event.last_ts = e.get_int("last_ts", -1);
    if (const Json* logs = e.find("logs");
        logs != nullptr && logs->is_array()) {
      for (const auto& pair : logs->as_array()) {
        if (!pair.is_array() || pair.as_array().size() != 2) {
          return Status::Error("open event log entry malformed");
        }
        event.logs.emplace_back(
            static_cast<int>(pair.as_array()[0].as_int()),
            pair.as_array()[1].as_int());
      }
    }
    if (const Json* raws = e.find("raws");
        raws != nullptr && raws->is_array()) {
      for (const auto& r : raws->as_array()) {
        if (r.is_string()) event.raws.push_back(r.as_string());
      }
    }
    restored[std::move(id)] = std::move(event);
  }
  // Commit point: nothing above touched detector state, so a malformed
  // snapshot (e.g. the chaos test's torn checkpoint) leaves it intact.
  open_ = std::move(restored);
  rebuild_index();
  return Status::Ok();
}

}  // namespace loglens
