// Event automata model (Section IV-A2, Figure 3).
//
// An automaton captures the normal shape of one event type: which pattern
// opens the event (begin state), which closes it (end state), how often each
// intermediate state may repeat (min/max occurrence), how long the whole
// event may take (min/max duration), and — as an optional extension — which
// consecutive state transitions were observed in training.
//
// Learning groups training logs by their discovered event ID content; each
// group is one event instance. Instances with the same set of distinct
// patterns merge into one automaton, and the profiled statistics become the
// detection rules ("the minimum and maximum of those statistics ... used as
// rules for detecting anomalies").
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "automata/id_discovery.h"
#include "common/status.h"
#include "json/json.h"
#include "parser/log_parser.h"

namespace loglens {

struct StateRule {
  int pattern_id = 0;
  int min_occurrences = 1;
  int max_occurrences = 1;

  friend bool operator==(const StateRule&, const StateRule&) = default;
};

struct Automaton {
  int id = 0;
  std::set<int> begin_patterns;  // observed first-log patterns
  std::set<int> end_patterns;    // observed last-log patterns
  std::map<int, StateRule> states;
  int64_t min_duration_ms = 0;
  int64_t max_duration_ms = 0;
  std::set<std::pair<int, int>> transitions;  // observed consecutive pairs
  size_t training_instances = 0;

  // The automaton identity: the sorted set of pattern ids of its states.
  std::vector<int> pattern_set() const;

  // Human-readable rendering (the model-inspection view the paper's model
  // manager gives users; the textual analogue of Figure 3).
  std::string describe() const;

  Json to_json() const;
  static StatusOr<Automaton> from_json(const Json& j);

  friend bool operator==(const Automaton&, const Automaton&) = default;
};

struct SequenceModel {
  IdFieldMap id_fields;  // pattern id -> field carrying the event ID
  std::vector<Automaton> automata;

  Json to_json() const;
  static StatusOr<SequenceModel> from_json(const Json& j);

  friend bool operator==(const SequenceModel&, const SequenceModel&) = default;
};

struct LearnerOptions {
  IdDiscoveryOptions id_discovery;
  bool learn_transitions = true;
};

// Learns the sequence model from parsed training logs (assumed to represent
// normal behaviour). Logs are consumed in stream order; within an event, the
// unified log timestamps define duration.
SequenceModel learn_sequence_model(const std::vector<ParsedLog>& training,
                                   const LearnerOptions& options = {});

}  // namespace loglens
