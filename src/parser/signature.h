// Log-signatures, pattern-signatures, and the Algorithm 1 matcher
// (Section III-B).
//
// A signature is the sequence of datatype names underlying a log or pattern:
// the log "2016/02/23 09:00:31.000 127.0.0.1 login user1" has signature
// "DATETIME IP WORD NOTSPACE". Signatures are the index key that reduces
// parsing from O(m) pattern comparisons per log to amortized O(1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/hash.h"
#include "grok/datatype.h"
#include "grok/pattern.h"
#include "grok/token.h"

namespace loglens {

// Datatype sequence of a tokenized log.
std::vector<Datatype> log_signature(const TokenizedLog& log);

// Datatype sequence of a pattern: fields contribute their declared type,
// literals the classified type of their value.
std::vector<Datatype> pattern_signature(const GrokPattern& pattern,
                                        const DatatypeClassifier& classifier);

// Renders a signature as the space-joined datatype-name string. Diagnostics
// only — the parser index keys on signature_hash + elementwise equality so
// the hot path never materializes this string.
std::string signature_key(std::span<const Datatype> signature);

// FNV-1a over the datatype sequence; the parser's index hash.
inline uint64_t signature_hash(std::span<const Datatype> signature) {
  uint64_t h = kFnvOffset;
  for (Datatype d : signature) {
    h ^= static_cast<uint64_t>(d);
    h *= kFnvPrime;
  }
  return h;
}

// Algorithm 1: can `pattern_sig` parse `log_sig`? Cell (i,j) is true when
// the first i log datatypes are parsed by the first j pattern datatypes:
//   equal datatypes or isCovered(log, pattern)  -> diagonal,
//   pattern ANYDATA wildcard                    -> up (consume a log token)
//                                                  or left (consume nothing).
// Note: the paper's pseudocode loops i,j from 1, leaving row 0 all-false;
// that would reject a leading wildcard matching zero tokens (e.g. pattern
// "ANYDATA WORD" vs log "WORD"). We seed row 0 through wildcards, which is
// the intended semantics of ".*".
bool signature_match(std::span<const Datatype> log_sig,
                     std::span<const Datatype> pattern_sig);

}  // namespace loglens
