#include "parser/signature.h"

#include "common/strings.h"

namespace loglens {

std::vector<Datatype> log_signature(const TokenizedLog& log) {
  std::vector<Datatype> sig;
  sig.reserve(log.tokens.size());
  for (const auto& t : log.tokens) sig.push_back(t.type);
  return sig;
}

std::vector<Datatype> pattern_signature(const GrokPattern& pattern,
                                        const DatatypeClassifier& classifier) {
  std::vector<Datatype> sig;
  sig.reserve(pattern.size());
  for (const auto& t : pattern.tokens()) {
    sig.push_back(t.is_field ? t.field.type : classifier.classify(t.literal));
  }
  return sig;
}

std::string signature_key(std::span<const Datatype> signature) {
  std::vector<std::string_view> names;
  names.reserve(signature.size());
  for (Datatype d : signature) names.push_back(datatype_name(d));
  return join(names, " ");
}

bool signature_match(std::span<const Datatype> log_sig,
                     std::span<const Datatype> pattern_sig) {
  const size_t r = log_sig.size();
  const size_t s = pattern_sig.size();
  // Fast path: without a wildcard the pattern must align one-to-one, so the
  // quadratic DP degenerates to an elementwise coverage check.
  bool has_wildcard = false;
  for (Datatype d : pattern_sig) {
    if (d == Datatype::kAnyData) {
      has_wildcard = true;
      break;
    }
  }
  if (!has_wildcard) {
    if (r != s) return false;
    for (size_t i = 0; i < r; ++i) {
      if (log_sig[i] != pattern_sig[i] &&
          !is_covered(log_sig[i], pattern_sig[i])) {
        return false;
      }
    }
    return true;
  }
  // Rolling two-row DP over the (r+1) x (s+1) table.
  std::vector<char> prev(s + 1, 0);
  std::vector<char> curr(s + 1, 0);
  prev[0] = 1;
  for (size_t j = 1; j <= s; ++j) {
    prev[j] = static_cast<char>(prev[j - 1] != 0 &&
                                pattern_sig[j - 1] == Datatype::kAnyData);
  }
  for (size_t i = 1; i <= r; ++i) {
    curr[0] = 0;
    for (size_t j = 1; j <= s; ++j) {
      const Datatype li = log_sig[i - 1];
      const Datatype pj = pattern_sig[j - 1];
      char v = 0;
      if (pj == Datatype::kAnyData) {
        // Wildcard: swallow the log token (up) or match empty (left).
        v = static_cast<char>(prev[j] != 0 || curr[j - 1] != 0);
      } else if (li == pj || is_covered(li, pj)) {
        v = prev[j - 1];
      }
      curr[j] = v;
    }
    std::swap(prev, curr);
  }
  return prev[s] != 0;
}

}  // namespace loglens
