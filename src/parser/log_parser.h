// The stateless log parser (Section III-B): LogLens's exemplary stateless
// anomaly detector and the building block for all downstream analytics.
//
// Given a model (the discovered GROK patterns) the parser maintains a hash
// index from log-signature to candidate-pattern-group:
//   1. compute the incoming log's signature,
//   2. on an index miss, build the group by running Algorithm 1 against all
//      m pattern signatures, sort it by datatype generality then length, and
//      cache it (an empty group is cached too),
//   3. scan the group's patterns in order until one parses the log.
// A log no pattern parses is an anomaly (type kUnparsedLog).
//
// The index keys on the hashed datatype sequence directly (no string key is
// ever built) and is bounded: entries beyond `index_capacity` evict the
// least-recently-used signature, so adversarial signature churn cannot grow
// the parser without bound. Evictions are counted in ParserStats and
// surfaced as loglens_parser_index_evictions_total.
//
// Hot-path contract: parse_into() reuses caller-owned ParsedLog storage plus
// per-instance scratch (signature buffer, matcher state), so an index-hit
// parse of a warm parser performs zero heap allocations
// (tests/parser_allocation_test.cpp holds this to exactly 0).
//
// `IndexMode::kDisabled` gives the naive O(m) scan-per-log behaviour for the
// index ablation benchmark.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "grok/datatype.h"
#include "grok/pattern.h"
#include "grok/set_matcher.h"
#include "grok/token.h"
#include "json/json.h"
#include "parser/signature.h"

#include <unordered_map>

namespace loglens {

// A successfully parsed log: the input of the stateful detector.
struct ParsedLog {
  int pattern_id = 0;
  int64_t timestamp_ms = -1;  // unified timestamp, -1 when the log has none
  JsonObject fields;          // field name -> value, in pattern order
  std::string raw;

  Json to_json() const;
};

struct ParseOutcome {
  std::optional<ParsedLog> log;  // empty => unparsed (stateless anomaly)
};

struct ParserStats {
  uint64_t logs = 0;
  uint64_t unparsed = 0;
  uint64_t index_hits = 0;
  uint64_t groups_built = 0;
  uint64_t index_evictions = 0;
  // Pattern comparisons: Algorithm 1 membership decisions during group
  // building (one per pattern per build, whether they were computed by the
  // per-pattern DP loop or by one set-matcher walk) plus (in naive mode) the
  // per-pattern model scan every log pays. This is the quantity the
  // O(mn) -> O(n) claim is about.
  uint64_t signature_comparisons = 0;
  uint64_t match_attempts = 0;
  // Set-level matcher (grok/set_matcher.h) activity. A walk decides the
  // matchability of every candidate in one pass; `set_candidates` counts the
  // patterns those walks reported matching (the capture pass then runs on
  // exactly one of them), `set_prefilter_hits` the walks where some log
  // token hit the pattern literal alphabet, and `set_fallbacks` the times a
  // walk overflowed its active-set cap (or a defensive mismatch occurred)
  // and the linear per-pattern scan ran instead.
  uint64_t set_walks = 0;
  uint64_t set_candidates = 0;
  uint64_t set_prefilter_hits = 0;
  uint64_t set_fallbacks = 0;
};

enum class IndexMode { kEnabled, kDisabled };

// kAuto: build the set-level matchers and use them on the index-miss path
// (signature walk builds the candidate group) and, for groups of at least
// set_scan_min_group patterns, on the match scan (token walk picks the one
// candidate the capture pass runs on). kDisabled: always scan linearly — the
// ablation baseline the differential tests compare against byte-for-byte.
enum class SetMatchMode { kAuto, kDisabled };

class LogParser {
 public:
  static constexpr size_t kDefaultIndexCapacity = 1u << 16;

  // Groups smaller than this are scanned linearly: with one or two
  // candidates the walk cannot beat just trying them.
  static constexpr size_t kDefaultSetScanMinGroup = 3;

  LogParser(std::vector<GrokPattern> model, const DatatypeClassifier& classifier,
            IndexMode index_mode = IndexMode::kEnabled,
            size_t index_capacity = kDefaultIndexCapacity,
            SetMatchMode set_match = SetMatchMode::kAuto);

  // Parses one preprocessed log.
  ParseOutcome parse(const TokenizedLog& log);

  // Hot-path variants: on success fill `out` in place (reusing its field and
  // raw string storage) and return true; on failure `out` is stale and must
  // not be read. The rvalue overload steals `log.raw` instead of copying it.
  bool parse_into(const TokenizedLog& log, ParsedLog& out);
  bool parse_into(TokenizedLog&& log, ParsedLog& out);

  std::vector<GrokPattern> model() const {
    std::vector<GrokPattern> out;
    out.reserve(patterns_.size());
    for (const auto& ip : patterns_) out.push_back(ip.pattern);
    return out;
  }
  size_t pattern_count() const { return patterns_.size(); }
  const ParserStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  size_t index_size() const { return index_map_.size(); }
  size_t index_capacity() const { return index_capacity_; }

  // Candidate count reported by the most recent token walk; meaningful only
  // when stats().set_walks moved during the last parse (the metrics layer
  // observes it into the loglens_grok_set_candidates histogram).
  size_t last_walk_candidates() const { return last_walk_candidates_; }

  // Test/bench hook: group-size floor below which the match scan stays
  // linear (see kDefaultSetScanMinGroup). 0 forces the walk everywhere.
  void set_set_scan_min_group(size_t n) { set_scan_min_group_ = n; }

  // Approximate resident bytes of the model + index (memory experiment),
  // including the index's hash-bucket array and per-entry node overhead.
  size_t resident_bytes() const;

 private:
  struct IndexedPattern {
    GrokPattern pattern;
    std::vector<Datatype> signature;
    int generality = 0;
  };

  // One cached signature -> candidate-group mapping. The entry owns the
  // signature storage; the index map's span key points into it (std::list
  // nodes are stable under splice, so the span stays valid for the entry's
  // lifetime).
  struct IndexEntry {
    std::vector<Datatype> sig;
    std::vector<uint32_t> group;
  };
  using LruList = std::list<IndexEntry>;

  struct SigHash {
    size_t operator()(std::span<const Datatype> s) const {
      return static_cast<size_t>(signature_hash(s));
    }
  };
  struct SigEq {
    bool operator()(std::span<const Datatype> a,
                    std::span<const Datatype> b) const {
      return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
    }
  };

  // Looks up (and on miss builds + caches) the candidate group for `sig`,
  // refreshing its LRU position. The returned reference is valid until the
  // next candidate_group call.
  const std::vector<uint32_t>& candidate_group(std::span<const Datatype> sig);

  // Shared matching core: fills out.pattern_id / timestamp_ms / fields on
  // success, leaving out.raw for the caller to settle.
  bool match_core(const TokenizedLog& log, ParsedLog& out);

  const DatatypeClassifier& classifier_;
  IndexMode index_mode_;
  size_t index_capacity_;
  std::vector<IndexedPattern> patterns_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::span<const Datatype>, LruList::iterator, SigHash,
                     SigEq>
      index_map_;
  ParserStats stats_;
  // Set-level matchers compiled once from the model (empty in
  // SetMatchMode::kDisabled): signature-level for group building on index
  // misses, token-level for the match scan over large groups.
  SetMatchMode set_match_mode_;
  size_t set_scan_min_group_ = kDefaultSetScanMinGroup;
  size_t last_walk_candidates_ = 0;
  GrokSetMatcher sig_matcher_;
  GrokSetMatcher token_matcher_;
  // Per-instance scratch reused across parse calls (hot-path contract).
  std::vector<Datatype> sig_scratch_;
  GrokMatchScratch match_scratch_;
  GrokSetScratch set_scratch_;
};

}  // namespace loglens
