// The stateless log parser (Section III-B): LogLens's exemplary stateless
// anomaly detector and the building block for all downstream analytics.
//
// Given a model (the discovered GROK patterns) the parser maintains a hash
// index from log-signature to candidate-pattern-group:
//   1. compute the incoming log's signature,
//   2. on an index miss, build the group by running Algorithm 1 against all
//      m pattern signatures, sort it by datatype generality then length, and
//      cache it (an empty group is cached too),
//   3. scan the group's patterns in order until one parses the log.
// A log no pattern parses is an anomaly (type kUnparsedLog).
//
// `IndexMode::kDisabled` gives the naive O(m) scan-per-log behaviour for the
// index ablation benchmark.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "grok/datatype.h"
#include "grok/pattern.h"
#include "grok/token.h"
#include "json/json.h"
#include "parser/signature.h"

#include <unordered_map>

namespace loglens {

// A successfully parsed log: the input of the stateful detector.
struct ParsedLog {
  int pattern_id = 0;
  int64_t timestamp_ms = -1;  // unified timestamp, -1 when the log has none
  JsonObject fields;          // field name -> value, in pattern order
  std::string raw;

  Json to_json() const;
};

struct ParseOutcome {
  std::optional<ParsedLog> log;  // empty => unparsed (stateless anomaly)
};

struct ParserStats {
  uint64_t logs = 0;
  uint64_t unparsed = 0;
  uint64_t index_hits = 0;
  uint64_t groups_built = 0;
  // Pattern comparisons: Algorithm 1 runs during group building plus full
  // pattern match attempts during group scans. This is the quantity the
  // O(mn) -> O(n) claim is about.
  uint64_t signature_comparisons = 0;
  uint64_t match_attempts = 0;
};

enum class IndexMode { kEnabled, kDisabled };

class LogParser {
 public:
  LogParser(std::vector<GrokPattern> model, const DatatypeClassifier& classifier,
            IndexMode index_mode = IndexMode::kEnabled);

  // Parses one preprocessed log.
  ParseOutcome parse(const TokenizedLog& log);

  std::vector<GrokPattern> model() const {
    std::vector<GrokPattern> out;
    out.reserve(patterns_.size());
    for (const auto& ip : patterns_) out.push_back(ip.pattern);
    return out;
  }
  size_t pattern_count() const { return patterns_.size(); }
  const ParserStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  // Approximate resident bytes of the model + index (memory experiment).
  size_t resident_bytes() const;

 private:
  struct IndexedPattern {
    GrokPattern pattern;
    std::vector<Datatype> signature;
    int generality = 0;
  };

  // Builds (and caches) the candidate group for a log signature; returns the
  // sorted list of pattern indices.
  const std::vector<uint32_t>& candidate_group(
      const std::vector<Datatype>& sig);

  const DatatypeClassifier& classifier_;
  IndexMode index_mode_;
  std::vector<IndexedPattern> patterns_;
  std::unordered_map<std::string, std::vector<uint32_t>> index_;
  ParserStats stats_;
};

}  // namespace loglens
