#include "parser/log_parser.h"

#include <algorithm>

#include "common/time.h"

namespace loglens {

Json ParsedLog::to_json() const {
  JsonObject obj;
  obj.emplace_back("_pattern_id", Json(static_cast<int64_t>(pattern_id)));
  if (timestamp_ms >= 0) {
    obj.emplace_back("_timestamp", Json(format_canonical(timestamp_ms)));
  }
  for (const auto& [k, v] : fields) obj.emplace_back(k, v);
  return Json(std::move(obj));
}

LogParser::LogParser(std::vector<GrokPattern> model,
                     const DatatypeClassifier& classifier,
                     IndexMode index_mode, size_t index_capacity,
                     SetMatchMode set_match)
    : classifier_(classifier),
      index_mode_(index_mode),
      index_capacity_(std::max<size_t>(1, index_capacity)),
      set_match_mode_(set_match) {
  patterns_.reserve(model.size());
  for (auto& p : model) {
    IndexedPattern ip;
    ip.signature = pattern_signature(p, classifier_);
    ip.generality = p.generality_score();
    ip.pattern = std::move(p);
    patterns_.push_back(std::move(ip));
  }
  if (set_match_mode_ == SetMatchMode::kAuto) {
    std::vector<GrokPattern> pats;
    std::vector<std::vector<Datatype>> sigs;
    pats.reserve(patterns_.size());
    sigs.reserve(patterns_.size());
    for (const auto& ip : patterns_) {
      pats.push_back(ip.pattern);
      sigs.push_back(ip.signature);
    }
    token_matcher_ = GrokSetMatcher::compile_tokens(pats);
    sig_matcher_ = GrokSetMatcher::compile_signatures(sigs);
  }
}

const std::vector<uint32_t>& LogParser::candidate_group(
    std::span<const Datatype> sig) {
  auto it = index_map_.find(sig);
  if (it != index_map_.end()) {
    ++stats_.index_hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->group;
  }
  ++stats_.groups_built;
  IndexEntry entry;
  entry.sig.assign(sig.begin(), sig.end());
  // One signature-level walk decides Algorithm 1 membership for every
  // pattern at once — the index-miss cost drops from O(patterns) DPs to
  // ~O(signature length). The walk makes the same per-pattern membership
  // decisions the DP loop would, so it contributes the same
  // signature_comparisons count; only its cost differs.
  if (set_match_mode_ == SetMatchMode::kAuto &&
      sig_matcher_.match_signature(sig, set_scratch_)) {
    stats_.signature_comparisons += patterns_.size();
    entry.group.assign(set_scratch_.result.begin(), set_scratch_.result.end());
  } else {
    if (set_match_mode_ == SetMatchMode::kAuto) ++stats_.set_fallbacks;
    for (uint32_t pi = 0; pi < patterns_.size(); ++pi) {
      ++stats_.signature_comparisons;
      if (signature_match(sig, patterns_[pi].signature)) {
        entry.group.push_back(pi);
      }
    }
  }
  // "Patterns are sorted in the ascending order of datatype's generality and
  // length": most specific first; shorter patterns break ties.
  std::sort(entry.group.begin(), entry.group.end(),
            [this](uint32_t a, uint32_t b) {
              const auto& pa = patterns_[a];
              const auto& pb = patterns_[b];
              if (pa.generality != pb.generality) {
                return pa.generality < pb.generality;
              }
              if (pa.pattern.size() != pb.pattern.size()) {
                return pa.pattern.size() < pb.pattern.size();
              }
              return a < b;
            });
  if (index_map_.size() >= index_capacity_) {
    index_map_.erase(std::span<const Datatype>(lru_.back().sig));
    lru_.pop_back();
    ++stats_.index_evictions;
  }
  lru_.push_front(std::move(entry));
  index_map_.emplace(std::span<const Datatype>(lru_.front().sig),
                     lru_.begin());
  return lru_.front().group;
}

bool LogParser::match_core(const TokenizedLog& log, ParsedLog& out) {
  ++stats_.logs;
  sig_scratch_.clear();
  for (const auto& t : log.tokens) sig_scratch_.push_back(t.type);

  const GrokPattern* matched = nullptr;
  if (index_mode_ == IndexMode::kEnabled) {
    const std::vector<uint32_t>& group = candidate_group(sig_scratch_);
    bool scanned = false;
    if (set_match_mode_ == SetMatchMode::kAuto &&
        group.size() >= set_scan_min_group_) {
      // One token-level walk decides which candidates actually match; the
      // capture pass then runs on just the first group-ordered one of them
      // — the same pattern the linear scan would have stopped at, because
      // the walk is exact (grok_token_matches on both sides).
      if (token_matcher_.match_tokens(log.tokens, classifier_, set_scratch_)) {
        ++stats_.set_walks;
        stats_.set_candidates += set_scratch_.result.size();
        if (set_scratch_.prefilter_hit) ++stats_.set_prefilter_hits;
        last_walk_candidates_ = set_scratch_.result.size();
        scanned = true;
        for (uint32_t pi : group) {
          if (!std::binary_search(set_scratch_.result.begin(),
                                  set_scratch_.result.end(), pi)) {
            continue;
          }
          ++stats_.match_attempts;
          if (patterns_[pi].pattern.match_into(log.tokens, classifier_,
                                               &out.fields, match_scratch_)) {
            matched = &patterns_[pi].pattern;
          } else {
            // Should be unreachable (the walk said this pattern matches).
            // Stay safe: fall through to the full linear scan.
            scanned = false;
            ++stats_.set_fallbacks;
          }
          break;
        }
      } else {
        ++stats_.set_fallbacks;
      }
    }
    if (!scanned && matched == nullptr) {
      for (uint32_t pi : group) {
        ++stats_.match_attempts;
        if (patterns_[pi].pattern.match_into(log.tokens, classifier_,
                                             &out.fields, match_scratch_)) {
          matched = &patterns_[pi].pattern;
          break;
        }
      }
    }
  } else {
    // Naive baseline behaviour: try every pattern in model order. Each scan
    // step is a pattern comparison — the cost the signature index amortizes
    // away — so it counts toward signature_comparisons too.
    for (auto& ip : patterns_) {
      ++stats_.signature_comparisons;
      ++stats_.match_attempts;
      if (ip.pattern.match_into(log.tokens, classifier_, &out.fields,
                                match_scratch_)) {
        matched = &ip.pattern;
        break;
      }
    }
  }

  if (matched == nullptr) {
    ++stats_.unparsed;
    return false;
  }
  out.pattern_id = matched->id();
  out.timestamp_ms = log.timestamp_ms;
  return true;
}

bool LogParser::parse_into(const TokenizedLog& log, ParsedLog& out) {
  if (!match_core(log, out)) return false;
  out.raw.assign(log.raw);
  return true;
}

bool LogParser::parse_into(TokenizedLog&& log, ParsedLog& out) {
  if (!match_core(log, out)) return false;
  out.raw.swap(log.raw);
  return true;
}

ParseOutcome LogParser::parse(const TokenizedLog& log) {
  ParsedLog parsed;
  if (!match_core(log, parsed)) return {};
  parsed.raw = log.raw;
  return ParseOutcome{std::move(parsed)};
}

size_t LogParser::resident_bytes() const {
  size_t total = sizeof(*this);
  total += sig_matcher_.resident_bytes() + token_matcher_.resident_bytes();
  for (const auto& ip : patterns_) {
    total += sizeof(ip) + ip.signature.capacity() * sizeof(Datatype);
    for (const auto& t : ip.pattern.tokens()) {
      total += sizeof(t) + t.literal.capacity() + t.field.name.capacity();
    }
  }
  // Index: the hash table's bucket array, then per entry one map node (hash
  // cache + chain pointer + key/value pair) and one doubly-linked list node
  // around the entry's owned signature and group storage.
  total += index_map_.bucket_count() * sizeof(void*);
  constexpr size_t kMapNodeOverhead =
      sizeof(void*) + sizeof(size_t) +
      sizeof(std::pair<std::span<const Datatype>, LruList::iterator>);
  constexpr size_t kListNodeOverhead = 2 * sizeof(void*);
  for (const auto& e : lru_) {
    total += kMapNodeOverhead + kListNodeOverhead + sizeof(IndexEntry) +
             e.sig.capacity() * sizeof(Datatype) +
             e.group.capacity() * sizeof(uint32_t);
  }
  return total;
}

}  // namespace loglens
