#include "parser/log_parser.h"

#include <algorithm>

#include "common/time.h"

namespace loglens {

Json ParsedLog::to_json() const {
  JsonObject obj;
  obj.emplace_back("_pattern_id", Json(static_cast<int64_t>(pattern_id)));
  if (timestamp_ms >= 0) {
    obj.emplace_back("_timestamp", Json(format_canonical(timestamp_ms)));
  }
  for (const auto& [k, v] : fields) obj.emplace_back(k, v);
  return Json(std::move(obj));
}

LogParser::LogParser(std::vector<GrokPattern> model,
                     const DatatypeClassifier& classifier,
                     IndexMode index_mode, size_t index_capacity)
    : classifier_(classifier),
      index_mode_(index_mode),
      index_capacity_(std::max<size_t>(1, index_capacity)) {
  patterns_.reserve(model.size());
  for (auto& p : model) {
    IndexedPattern ip;
    ip.signature = pattern_signature(p, classifier_);
    ip.generality = p.generality_score();
    ip.pattern = std::move(p);
    patterns_.push_back(std::move(ip));
  }
}

const std::vector<uint32_t>& LogParser::candidate_group(
    std::span<const Datatype> sig) {
  auto it = index_map_.find(sig);
  if (it != index_map_.end()) {
    ++stats_.index_hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->group;
  }
  ++stats_.groups_built;
  IndexEntry entry;
  entry.sig.assign(sig.begin(), sig.end());
  for (uint32_t pi = 0; pi < patterns_.size(); ++pi) {
    ++stats_.signature_comparisons;
    if (signature_match(sig, patterns_[pi].signature)) {
      entry.group.push_back(pi);
    }
  }
  // "Patterns are sorted in the ascending order of datatype's generality and
  // length": most specific first; shorter patterns break ties.
  std::sort(entry.group.begin(), entry.group.end(),
            [this](uint32_t a, uint32_t b) {
              const auto& pa = patterns_[a];
              const auto& pb = patterns_[b];
              if (pa.generality != pb.generality) {
                return pa.generality < pb.generality;
              }
              if (pa.pattern.size() != pb.pattern.size()) {
                return pa.pattern.size() < pb.pattern.size();
              }
              return a < b;
            });
  if (index_map_.size() >= index_capacity_) {
    index_map_.erase(std::span<const Datatype>(lru_.back().sig));
    lru_.pop_back();
    ++stats_.index_evictions;
  }
  lru_.push_front(std::move(entry));
  index_map_.emplace(std::span<const Datatype>(lru_.front().sig),
                     lru_.begin());
  return lru_.front().group;
}

bool LogParser::match_core(const TokenizedLog& log, ParsedLog& out) {
  ++stats_.logs;
  sig_scratch_.clear();
  for (const auto& t : log.tokens) sig_scratch_.push_back(t.type);

  const GrokPattern* matched = nullptr;
  if (index_mode_ == IndexMode::kEnabled) {
    for (uint32_t pi : candidate_group(sig_scratch_)) {
      ++stats_.match_attempts;
      if (patterns_[pi].pattern.match_into(log.tokens, classifier_,
                                           &out.fields, match_scratch_)) {
        matched = &patterns_[pi].pattern;
        break;
      }
    }
  } else {
    // Naive baseline behaviour: try every pattern in model order. Each scan
    // step is a pattern comparison — the cost the signature index amortizes
    // away — so it counts toward signature_comparisons too.
    for (auto& ip : patterns_) {
      ++stats_.signature_comparisons;
      ++stats_.match_attempts;
      if (ip.pattern.match_into(log.tokens, classifier_, &out.fields,
                                match_scratch_)) {
        matched = &ip.pattern;
        break;
      }
    }
  }

  if (matched == nullptr) {
    ++stats_.unparsed;
    return false;
  }
  out.pattern_id = matched->id();
  out.timestamp_ms = log.timestamp_ms;
  return true;
}

bool LogParser::parse_into(const TokenizedLog& log, ParsedLog& out) {
  if (!match_core(log, out)) return false;
  out.raw.assign(log.raw);
  return true;
}

bool LogParser::parse_into(TokenizedLog&& log, ParsedLog& out) {
  if (!match_core(log, out)) return false;
  out.raw.swap(log.raw);
  return true;
}

ParseOutcome LogParser::parse(const TokenizedLog& log) {
  ParsedLog parsed;
  if (!match_core(log, parsed)) return {};
  parsed.raw = log.raw;
  return ParseOutcome{std::move(parsed)};
}

size_t LogParser::resident_bytes() const {
  size_t total = sizeof(*this);
  for (const auto& ip : patterns_) {
    total += sizeof(ip) + ip.signature.capacity() * sizeof(Datatype);
    for (const auto& t : ip.pattern.tokens()) {
      total += sizeof(t) + t.literal.capacity() + t.field.name.capacity();
    }
  }
  // Index: the hash table's bucket array, then per entry one map node (hash
  // cache + chain pointer + key/value pair) and one doubly-linked list node
  // around the entry's owned signature and group storage.
  total += index_map_.bucket_count() * sizeof(void*);
  constexpr size_t kMapNodeOverhead =
      sizeof(void*) + sizeof(size_t) +
      sizeof(std::pair<std::span<const Datatype>, LruList::iterator>);
  constexpr size_t kListNodeOverhead = 2 * sizeof(void*);
  for (const auto& e : lru_) {
    total += kMapNodeOverhead + kListNodeOverhead + sizeof(IndexEntry) +
             e.sig.capacity() * sizeof(Datatype) +
             e.group.capacity() * sizeof(uint32_t);
  }
  return total;
}

}  // namespace loglens
