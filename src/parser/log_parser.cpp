#include "parser/log_parser.h"

#include <algorithm>

#include "common/time.h"

namespace loglens {

Json ParsedLog::to_json() const {
  JsonObject obj;
  obj.emplace_back("_pattern_id", Json(static_cast<int64_t>(pattern_id)));
  if (timestamp_ms >= 0) {
    obj.emplace_back("_timestamp", Json(format_canonical(timestamp_ms)));
  }
  for (const auto& [k, v] : fields) obj.emplace_back(k, v);
  return Json(std::move(obj));
}

LogParser::LogParser(std::vector<GrokPattern> model,
                     const DatatypeClassifier& classifier,
                     IndexMode index_mode)
    : classifier_(classifier), index_mode_(index_mode) {
  patterns_.reserve(model.size());
  for (auto& p : model) {
    IndexedPattern ip;
    ip.signature = pattern_signature(p, classifier_);
    ip.generality = p.generality_score();
    ip.pattern = std::move(p);
    patterns_.push_back(std::move(ip));
  }
}

const std::vector<uint32_t>& LogParser::candidate_group(
    const std::vector<Datatype>& sig) {
  std::string key = signature_key(sig);
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++stats_.index_hits;
    return it->second;
  }
  ++stats_.groups_built;
  std::vector<uint32_t> group;
  for (uint32_t pi = 0; pi < patterns_.size(); ++pi) {
    ++stats_.signature_comparisons;
    if (signature_match(sig, patterns_[pi].signature)) {
      group.push_back(pi);
    }
  }
  // "Patterns are sorted in the ascending order of datatype's generality and
  // length": most specific first; shorter patterns break ties.
  std::sort(group.begin(), group.end(), [this](uint32_t a, uint32_t b) {
    const auto& pa = patterns_[a];
    const auto& pb = patterns_[b];
    if (pa.generality != pb.generality) return pa.generality < pb.generality;
    if (pa.pattern.size() != pb.pattern.size()) {
      return pa.pattern.size() < pb.pattern.size();
    }
    return a < b;
  });
  return index_.emplace(std::move(key), std::move(group)).first->second;
}

ParseOutcome LogParser::parse(const TokenizedLog& log) {
  ++stats_.logs;
  std::vector<Datatype> sig = log_signature(log);

  ParsedLog parsed;
  const GrokPattern* matched = nullptr;

  if (index_mode_ == IndexMode::kEnabled) {
    for (uint32_t pi : candidate_group(sig)) {
      ++stats_.match_attempts;
      JsonObject fields;
      if (patterns_[pi].pattern.match(log.tokens, classifier_, &fields)) {
        matched = &patterns_[pi].pattern;
        parsed.fields = std::move(fields);
        break;
      }
    }
  } else {
    // Naive baseline behaviour: try every pattern in model order.
    for (auto& ip : patterns_) {
      ++stats_.match_attempts;
      JsonObject fields;
      if (ip.pattern.match(log.tokens, classifier_, &fields)) {
        matched = &ip.pattern;
        parsed.fields = std::move(fields);
        break;
      }
    }
  }

  if (matched == nullptr) {
    ++stats_.unparsed;
    return {};
  }
  parsed.pattern_id = matched->id();
  parsed.timestamp_ms = log.timestamp_ms;
  parsed.raw = log.raw;
  return ParseOutcome{std::move(parsed)};
}

size_t LogParser::resident_bytes() const {
  size_t total = sizeof(*this);
  for (const auto& ip : patterns_) {
    total += sizeof(ip) + ip.signature.capacity() * sizeof(Datatype);
    for (const auto& t : ip.pattern.tokens()) {
      total += sizeof(t) + t.literal.capacity() + t.field.name.capacity();
    }
  }
  for (const auto& [k, v] : index_) {
    total += sizeof(std::pair<std::string, std::vector<uint32_t>>) +
             k.capacity() + v.capacity() * sizeof(uint32_t);
  }
  return total;
}

}  // namespace loglens
