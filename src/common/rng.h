// Deterministic, seedable random number generator (splitmix64 + xoshiro256**)
// used by every synthetic data generator so experiments are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace loglens {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) { return next() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform() < p; }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[below(items.size())];
  }

  // Random lowercase hex string of length n (for synthetic ids/uuids). The
  // first character is always a letter and the second always a digit, so a
  // bare hex token never classifies as NUMBER or WORD — generated corpora
  // stay datatype-stable (it is NOTSPACE, like real mixed ids).
  std::string hex(size_t n) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(n, '0');
    for (auto& c : out) c = kDigits[below(16)];
    if (n > 0) out[0] = static_cast<char>('a' + below(6));
    if (n > 1) out[1] = static_cast<char>('0' + below(10));
    return out;
  }

  // Random alphanumeric identifier of length n starting with a letter.
  std::string ident(size_t n) {
    static constexpr std::string_view kAlpha =
        "abcdefghijklmnopqrstuvwxyz";
    static constexpr std::string_view kAlnum =
        "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string out;
    out.reserve(n);
    out.push_back(kAlpha[below(kAlpha.size())]);
    while (out.size() < n) out.push_back(kAlnum[below(kAlnum.size())]);
    return out;
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4]{};
};

}  // namespace loglens
