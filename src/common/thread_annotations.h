// Clang thread-safety (capability) analysis macros.
//
// These wrap the Clang `-Wthread-safety` attributes so the concurrent core
// can state its locking discipline as compile-time facts: which fields a
// mutex guards (LOGLENS_GUARDED_BY), which methods must be called with a
// lock held (LOGLENS_REQUIRES), and which RAII types acquire/release a
// capability (LOGLENS_ACQUIRE / LOGLENS_RELEASE / LOGLENS_SCOPED_CAPABILITY).
// Under Clang the static analysis enforces them (CI builds the tree with
// `-Wthread-safety -Werror=thread-safety`; see docs/STATIC_ANALYSIS.md); on
// other compilers every macro expands to nothing.
//
// libstdc++'s std::mutex / std::lock_guard carry no attributes, so the
// analysis cannot see them. Annotated classes therefore hold a RankedMutex
// (common/lock_rank.h) — itself a LOGLENS_CAPABILITY — and lock it with
// RankedMutexLock, the annotated scoped guard.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define LOGLENS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LOGLENS_THREAD_ANNOTATION(x)  // no-op on non-Clang compilers
#endif

// Declares a class to be a capability (a lock). The string names the
// capability kind in diagnostics, conventionally "mutex".
#define LOGLENS_CAPABILITY(x) LOGLENS_THREAD_ANNOTATION(capability(x))

// Declares an RAII class whose constructor acquires a capability and whose
// destructor releases it (std::lock_guard-shaped types).
#define LOGLENS_SCOPED_CAPABILITY LOGLENS_THREAD_ANNOTATION(scoped_lockable)

// Field attribute: reads and writes require holding `x`.
#define LOGLENS_GUARDED_BY(x) LOGLENS_THREAD_ANNOTATION(guarded_by(x))

// Pointer field attribute: the pointed-to data requires holding `x` (the
// pointer itself is unguarded).
#define LOGLENS_PT_GUARDED_BY(x) LOGLENS_THREAD_ANNOTATION(pt_guarded_by(x))

// Function attribute: the caller must hold the listed capabilities.
#define LOGLENS_REQUIRES(...) \
  LOGLENS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function attribute: the caller must NOT hold the listed capabilities
// (the function acquires them itself; catches self-deadlock).
#define LOGLENS_EXCLUDES(...) \
  LOGLENS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function attribute: the function acquires the capability and returns
// without releasing it (lock functions, scoped-guard constructors).
#define LOGLENS_ACQUIRE(...) \
  LOGLENS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// Function attribute: the function releases the capability (unlock
// functions, scoped-guard destructors).
#define LOGLENS_RELEASE(...) \
  LOGLENS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Function attribute: acquires the capability iff the return value equals
// the first argument (try_lock).
#define LOGLENS_TRY_ACQUIRE(...) \
  LOGLENS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Function attribute: returns a reference to the named capability, letting
// accessor-exposed mutexes participate in the analysis.
#define LOGLENS_RETURN_CAPABILITY(x) \
  LOGLENS_THREAD_ANNOTATION(lock_returned(x))

// Asserts at runtime that the capability is held, telling the analysis so
// (for code reachable only with the lock held where the proof is dynamic).
#define LOGLENS_ASSERT_CAPABILITY(x) \
  LOGLENS_THREAD_ANNOTATION(assert_capability(x))

// Escape hatch: disables the analysis for one function. Use only where the
// locking pattern is deliberately irregular, with a comment saying why.
#define LOGLENS_NO_THREAD_SAFETY_ANALYSIS \
  LOGLENS_THREAD_ANNOTATION(no_thread_safety_analysis)
