// Deterministic schedule exploration for the concurrent core.
//
// A ScheduleController serializes the process onto one runnable thread at a
// time and decides, at every synchronization point, which thread runs next —
// driven entirely by a seeded PRNG. Each seed therefore names exactly one
// thread interleaving, and any interleaving that fails (deadlock, invariant
// violation, step-bound blowout) is replayed by re-running with the same
// seed. The scheduling policy is PCT (probabilistic concurrency testing):
// every thread gets a random priority at registration, the highest-priority
// runnable thread always runs, and at d randomly chosen step indices the
// running thread is demoted below everyone else. PCT finds any bug of
// "depth" d with probability >= 1/(n * k^(d-1)) per seed, so a few hundred
// seeds cover the shallow races that matter in practice.
//
// The controller sees the core through three funnels:
//
//   1. RankedMutex lock/unlock/try_lock (common/lock_rank.h) — every mutex
//      acquisition in the concurrent core is already routed through the
//      instrumented lock path, so mutex contention becomes a deterministic
//      block/wake decision instead of an OS race.
//   2. LOGLENS_SCHED_POINT("site") — explicit yield points at the core's
//      atomics, cv waits, and backoff sites. The sched::cv_* wrappers below
//      virtualize condition-variable waits; sched::sleep_for_* turns
//      sleeps into virtual-time delays so exploration never wall-clock
//      sleeps.
//   3. sched::spawn_named — thread creation handshakes with the controller
//      so registration order (and therefore priority assignment) is
//      deterministic.
//
// Everything is compiled out unless LOGLENS_SCHED_POINTS is 1 (defaults to
// the same Debug/ASan/TSan detection as LOGLENS_LOCK_RANK_CHECKS); when
// compiled in but no controller is attached, every hook is one relaxed
// atomic load. Release builds carry zero cost — the CI perf ratchet proves
// it.
//
// See docs/STATIC_ANALYSIS.md §5 for the model, the seed-replay workflow,
// and how this composes with lock ranks and TSan.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/clock.h"

// LOGLENS_SCHED_POINTS: 1 compiles the schedule-point hooks in, 0 removes
// them entirely (RankedMutex and LOGLENS_SCHED_POINT() compile to exactly
// the uninstrumented code). Same default detection as
// LOGLENS_LOCK_RANK_CHECKS: on for Debug and ASan/TSan builds, off
// otherwise. Do not force it per-target: the core libraries are compiled
// with the build-wide default, and a mismatch would be an ODR violation.
#ifndef LOGLENS_SCHED_POINTS
#if !defined(NDEBUG)
#define LOGLENS_SCHED_POINTS 1
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LOGLENS_SCHED_POINTS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LOGLENS_SCHED_POINTS 1
#else
#define LOGLENS_SCHED_POINTS 0
#endif
#else
#define LOGLENS_SCHED_POINTS 0
#endif
#endif

namespace loglens {
namespace sched {

// True when this build compiled the schedule-point hooks into the core
// libraries. Non-inline on purpose: it reports how *sched.cpp* was built,
// which is the flavor that matters, regardless of the including TU's flags.
bool points_compiled_in();

struct Options {
  // The PRNG seed. One seed == one reproducible interleaving.
  uint64_t seed = 0;
  // d in the PCT model: how many random priority-change points to plant.
  // Bugs that need d ordered scheduling decisions to manifest are found
  // with d-1 change points; 3 covers the usual check-then-act races.
  int priority_change_points = 3;
  // The step window [1, horizon] the change points are drawn from. Should
  // be on the order of the scenario's expected step count.
  uint64_t change_point_horizon = 4000;
  // Hard bound on scheduling decisions; exceeding it is a failure (a
  // livelock or a runaway scenario), reported with the seed and trace.
  uint64_t max_steps = 200000;
  // Real-time backstop: if no scheduling decision happens for this long
  // (e.g. a thread blocked outside the controller's view never returns),
  // fail with a full dump instead of hanging until the ctest timeout.
  int64_t stall_timeout_ms = 60000;
};

// The schedule explorer. Test-only; one instance may be attached at a time.
//
//   ScheduleController c({.seed = 42});
//   c.attach();              // registers the calling thread as "main"
//   ... run the scenario: spawn threads with sched::spawn_named ...
//   c.detach();              // every spawned thread must have exited
//
// On deadlock / step-bound / stall the controller prints the seed, a
// per-thread state dump, and the schedule-trace tail to stderr (and to
// $LOGLENS_SCHED_FAILURE_FILE if set, for CI artifact upload), then aborts.
class ScheduleController {
 public:
  explicit ScheduleController(const Options& options);
  ~ScheduleController();

  ScheduleController(const ScheduleController&) = delete;
  ScheduleController& operator=(const ScheduleController&) = delete;

  // Installs this controller as the process-wide scheduler and registers
  // the calling thread. Aborts if another controller is attached or the
  // build compiled the hooks out (branch on points_compiled_in() first).
  // Also installs a virtual trace_clock source; restored by detach().
  void attach();

  // Uninstalls the controller. Every thread registered since attach() must
  // have finished; aborts (with a dump) otherwise.
  void detach();

  uint64_t seed() const;
  // Scheduling decisions made so far.
  uint64_t steps() const;
  // Order-sensitive hash of every scheduling decision; two runs of the
  // same seed over the same scenario must produce equal hashes (the
  // explorer test asserts this).
  uint64_t trace_hash() const;
  // Human-readable tail of the schedule trace (most recent last).
  std::string trace_tail(size_t max_entries) const;

  class Impl;
  // Internal surface for the instrumentation shims below.
  Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

namespace internal {

// The attached controller, or nullptr. Relaxed/acquire loads only: hooks
// observe attach/detach eventually; tests attach before spawning and
// detach after joining, so no hook races the transition.
extern std::atomic<ScheduleController*> g_active;

// Out-of-line hook bodies (sched.cpp) — defined unconditionally so every
// build flavor links, whichever way LOGLENS_SCHED_POINTS went per TU.
void point(ScheduleController* c, const char* site);
void mutex_lock(ScheduleController* c, std::mutex& mu, const void* id,
                int rank);
bool mutex_try_lock(ScheduleController* c, std::mutex& mu, const void* id,
                    int rank);
void mutex_unlocked(ScheduleController* c, const void* id);
void cv_prepare(ScheduleController* c, const void* cv);
void cv_block(ScheduleController* c, const void* cv);
void cv_block_for(ScheduleController* c, const void* cv, uint64_t rel_us);
void cv_notify(ScheduleController* c, const void* cv);
void sleep_virtual(ScheduleController* c, uint64_t us);
std::thread spawn(ScheduleController* c, std::string name,
                  std::function<void()> fn);
void region_leave(ScheduleController* c);
void region_enter(ScheduleController* c);

}  // namespace internal

// The attached controller, or nullptr (one relaxed atomic load).
inline ScheduleController* active() {
  return internal::g_active.load(std::memory_order_acquire);
}

// Sleeps `us` microseconds. Under an attached controller this is a virtual
// delay: the thread blocks until virtual time reaches the deadline, and
// virtual time only advances when no thread is runnable — so exploration
// never wall-clock sleeps. Under ScopedVirtualDelays (no controller) the
// delay is added to the clock offset and returns immediately. Otherwise it
// is a real sleep. This is the only sanctioned sleep in src/ — the lint
// bans std::this_thread::sleep_for/yield everywhere else so every blocking
// site is a schedule point.
void sleep_for_us(uint64_t us);
inline void sleep_for_ms(uint64_t ms) { sleep_for_us(ms * 1000); }

// Creates a thread the controller can schedule deterministically: the
// parent blocks until the child has registered (so registration order ==
// spawn order == priority-assignment order), then the child waits to be
// scheduled. Without an attached controller this is exactly
// std::thread(fn).
std::thread spawn_named(std::string name, std::function<void()> fn);

// Marks a real blocking operation the controller cannot see through
// (thread::join of a managed thread, blocking I/O). While inside, the
// thread does not count toward deadlock detection, and the controller may
// go idle waiting for it to return. Without a controller: no-op.
class BlockingRegion {
 public:
  BlockingRegion();
  ~BlockingRegion();
  BlockingRegion(const BlockingRegion&) = delete;
  BlockingRegion& operator=(const BlockingRegion&) = delete;

 private:
  ScheduleController* controller_;
};

// Controller-free virtual delays: while in scope, sched::sleep_for_* adds
// the delay to a process-wide trace_clock offset instead of sleeping, so
// fault-delay chaos tests stop burning real seconds but timestamps still
// move. Works in every build flavor (runtime switch, no macro). Not
// composable with an attached ScheduleController (which virtualizes time
// itself) — attach() wins if both are active.
class ScopedVirtualDelays {
 public:
  ScopedVirtualDelays();
  ~ScopedVirtualDelays();
  ScopedVirtualDelays(const ScopedVirtualDelays&) = delete;
  ScopedVirtualDelays& operator=(const ScopedVirtualDelays&) = delete;

  // Total microseconds of virtual delay consumed since process start
  // (test hook: proves the delay fault actually "slept").
  static uint64_t delayed_us();
};

// --- condition-variable shims ------------------------------------------
//
// Under a controller, a cv wait is: register as a waiter (while still
// holding the lockable — the controller serializes, so there is no lost
// wakeup between registering and blocking), release the lock, block until
// a sched::cv_notify_* or a virtual-time deadline readies us, then
// reacquire through the instrumented lock path (itself a schedule point,
// matching real post-wakeup lock contention). notify_one is treated as
// notify_all: every wait site rechecks its predicate in a loop, so the
// extra wakeups are legal spurious wakeups — and exploring them is the
// point. Without a controller these compile to the plain cv calls.

template <typename Cv, typename Lock>
void cv_wait(Cv& cv, Lock& lock) {
#if LOGLENS_SCHED_POINTS
  if (ScheduleController* c = active()) {
    internal::cv_prepare(c, &cv);
    lock.unlock();
    internal::cv_block(c, &cv);
    lock.lock();
    return;
  }
#endif
  cv.wait(lock);
}

template <typename Cv, typename Lock, typename Rep, typename Period>
void cv_wait_for(Cv& cv, Lock& lock,
                 std::chrono::duration<Rep, Period> timeout) {
#if LOGLENS_SCHED_POINTS
  if (ScheduleController* c = active()) {
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(timeout)
            .count();
    internal::cv_prepare(c, &cv);
    lock.unlock();
    internal::cv_block_for(c, &cv,
                           us > 0 ? static_cast<uint64_t>(us) : 0);
    lock.lock();
    return;
  }
#endif
  cv.wait_for(lock, timeout);
}

template <typename Cv>
void cv_notify_all(Cv& cv) {
#if LOGLENS_SCHED_POINTS
  if (ScheduleController* c = active()) internal::cv_notify(c, &cv);
#endif
  cv.notify_all();
}

template <typename Cv>
void cv_notify_one(Cv& cv) {
#if LOGLENS_SCHED_POINTS
  if (ScheduleController* c = active()) internal::cv_notify(c, &cv);
#endif
  cv.notify_one();
}

}  // namespace sched
}  // namespace loglens

// Explicit schedule point. Place at atomics, lock-free fast paths, and any
// site where "another thread runs here" is an interleaving worth
// exploring. `site` must be a string literal; it names the point in the
// schedule trace. No-op unless a controller is attached; compiles to
// nothing when LOGLENS_SCHED_POINTS is 0.
#if LOGLENS_SCHED_POINTS
#define LOGLENS_SCHED_POINT(site)                                       \
  do {                                                                  \
    if (::loglens::sched::ScheduleController* loglens_sched_c =         \
            ::loglens::sched::active()) {                               \
      ::loglens::sched::internal::point(loglens_sched_c, site);         \
    }                                                                   \
  } while (0)
#else
#define LOGLENS_SCHED_POINT(site) \
  do {                            \
  } while (0)
#endif
