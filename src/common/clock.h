#pragma once

// Monotonic-microsecond clock shim. Every timestamp on the hot path (spans,
// queue-wait stamps, contention samples, batch timers) funnels through
// trace_clock::now_us() so tests can substitute a deterministic source and
// the lint gate can ban direct std::chrono::steady_clock::now() calls in
// src/ (tools/lint.py). This header is the one place in src/ allowed to name
// steady_clock.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace loglens {
namespace trace_clock {

using NowFn = uint64_t (*)();

namespace internal {

inline std::atomic<NowFn>& source() {
  static std::atomic<NowFn> fn{nullptr};
  return fn;
}

inline uint64_t real_now_us() {
  static const auto kEpoch = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - kEpoch)
          .count());
}

}  // namespace internal

// Microseconds since process start (monotonic), or whatever the installed
// test source returns.
inline uint64_t now_us() {
  NowFn fn = internal::source().load(std::memory_order_relaxed);
  return fn != nullptr ? fn() : internal::real_now_us();
}

// Test hook: install a fake time source (nullptr restores the real clock).
// Not meant for production code; swaps take effect on the next now_us().
inline void set_source(NowFn fn) {
  internal::source().store(fn, std::memory_order_relaxed);
}

}  // namespace trace_clock
}  // namespace loglens
