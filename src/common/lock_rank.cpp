#include "common/lock_rank.h"

#include <cstdio>
#include <cstdlib>

namespace loglens {
namespace lock_rank {
namespace internal {

// The messages name both ranks so the failing nesting is identifiable from
// the abort line alone; docs/STATIC_ANALYSIS.md maps ranks back to mutexes.

void rank_violation_abort(int acquiring, int held) {
  std::fprintf(stderr,
               "loglens lock rank violation: acquiring rank %d while holding "
               "rank %d (acquire order must be strictly increasing)\n",
               acquiring, held);
  std::abort();
}

void rank_overflow_abort(int acquiring) {
  std::fprintf(stderr,
               "loglens lock rank overflow: acquiring rank %d with %d locks "
               "already held\n",
               acquiring, 16);
  std::abort();
}

void rank_release_abort(int releasing) {
  std::fprintf(stderr,
               "loglens lock rank error: releasing rank %d that this thread "
               "does not hold\n",
               releasing);
  std::abort();
}

}  // namespace internal
}  // namespace lock_rank
}  // namespace loglens
