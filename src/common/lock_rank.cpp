#include "common/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace loglens {
namespace lock_rank {

namespace {

// One fixed slot per known rank plus a catch-all for ad-hoc test ranks.
// Slots are plain atomics so the contended path stays allocation- and
// lock-free (a contended acquisition is exactly where taking another lock
// would distort the measurement).
struct Slot {
  int rank;
  const char* name;
  std::atomic<uint64_t> contended{0};
  std::atomic<uint64_t> wait_us_total{0};
  std::atomic<uint64_t> wait_us_max{0};
};

Slot g_slots[] = {
    {kServiceRecover, "kServiceRecover"},
    {kEngineRun, "kEngineRun"},
    {kEngineControl, "kEngineControl"},
    {kBroadcastDriver, "kBroadcastDriver"},
    {kBroadcastCache, "kBroadcastCache"},
    {kThreadPool, "kThreadPool"},
    {kConsumerGroup, "kConsumerGroup"},
    {kConsumer, "kConsumer"},
    {kBrokerWait, "kBrokerWait"},
    {kBroker, "kBroker"},
    {kBrokerPartition, "kBrokerPartition"},
    {kStorageFlush, "kStorageFlush"},
    {kFaults, "kFaults"},
    {kStorage, "kStorage"},
    {kJobState, "kJobState"},
    {kMetrics, "kMetrics"},
    {kTrace, "kTrace"},
    {-1, "other"},  // must stay last: record_contention falls through to it
};

constexpr int kSlotCount = sizeof(g_slots) / sizeof(g_slots[0]);

Slot& slot_for(int rank) {
  for (int i = 0; i < kSlotCount - 1; ++i) {
    if (g_slots[i].rank == rank) return g_slots[i];
  }
  return g_slots[kSlotCount - 1];
}

}  // namespace

std::vector<ContentionStat> contention_profile() {
  std::vector<ContentionStat> out;
  for (Slot& slot : g_slots) {
    const uint64_t contended = slot.contended.load(std::memory_order_relaxed);
    if (contended == 0) continue;
    ContentionStat stat;
    stat.rank = slot.rank;
    stat.name = slot.name;
    stat.contended = contended;
    stat.wait_us_total = slot.wait_us_total.load(std::memory_order_relaxed);
    stat.wait_us_max = slot.wait_us_max.load(std::memory_order_relaxed);
    out.push_back(stat);
  }
  return out;
}

void contention_reset() {
  for (Slot& slot : g_slots) {
    slot.contended.store(0, std::memory_order_relaxed);
    slot.wait_us_total.store(0, std::memory_order_relaxed);
    slot.wait_us_max.store(0, std::memory_order_relaxed);
  }
}

const char* rank_name(int rank) { return slot_for(rank).name; }

namespace internal {

void record_contention(int rank, uint64_t wait_us) {
  Slot& slot = slot_for(rank);
  slot.contended.fetch_add(1, std::memory_order_relaxed);
  slot.wait_us_total.fetch_add(wait_us, std::memory_order_relaxed);
  uint64_t seen = slot.wait_us_max.load(std::memory_order_relaxed);
  while (seen < wait_us && !slot.wait_us_max.compare_exchange_weak(
                               seen, wait_us, std::memory_order_relaxed)) {
  }
}

// The messages name both ranks so the failing nesting is identifiable from
// the abort line alone; docs/STATIC_ANALYSIS.md maps ranks back to mutexes.

void rank_violation_abort(int acquiring, int held) {
  std::fprintf(stderr,
               "loglens lock rank violation: acquiring rank %d while holding "
               "rank %d (acquire order must be strictly increasing)\n",
               acquiring, held);
  std::abort();
}

void rank_overflow_abort(int acquiring) {
  std::fprintf(stderr,
               "loglens lock rank overflow: acquiring rank %d with %d locks "
               "already held\n",
               acquiring, 16);
  std::abort();
}

void rank_release_abort(int releasing) {
  std::fprintf(stderr,
               "loglens lock rank error: releasing rank %d that this thread "
               "does not hold\n",
               releasing);
  std::abort();
}

}  // namespace internal
}  // namespace lock_rank
}  // namespace loglens
