// String utilities shared across LogLens modules.
//
// All functions are pure and allocate only when they must return owned data;
// splitting returns string_views into the caller's buffer, so the input must
// outlive the result.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace loglens {

// Splits `text` on any character contained in `delims`, dropping empty
// pieces. Views point into `text`.
std::vector<std::string_view> split_any(std::string_view text,
                                        std::string_view delims);

// Allocation-free core of split_any: calls `fn(piece)` for each non-empty
// piece, views pointing into `text`.
template <typename Fn>
void for_each_split_any(std::string_view text, std::string_view delims,
                        Fn&& fn) {
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() ||
        delims.find(text[i]) != std::string_view::npos) {
      if (i > start) fn(text.substr(start, i - start));
      start = i + 1;
    }
  }
}

// Splits `text` on the exact separator string, keeping empty pieces.
std::vector<std::string_view> split_exact(std::string_view text,
                                          std::string_view sep);

// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

// ASCII case conversion (locale-independent).
std::string to_lower(std::string_view text);
char ascii_lower(char c);

bool iequals(std::string_view a, std::string_view b);

// True if every character of `text` satisfies the ASCII digit test.
bool all_digits(std::string_view text);

// Parses a non-negative integer; returns -1 on failure/overflow. Useful for
// small fields (month, day, hour) where -1 is never valid.
int parse_small_int(std::string_view text);

// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

}  // namespace loglens
