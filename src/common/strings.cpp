#include "common/strings.h"

#include <algorithm>
#include <cctype>

namespace loglens {

std::vector<std::string_view> split_any(std::string_view text,
                                        std::string_view delims) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || delims.find(text[i]) != std::string_view::npos) {
      if (i > start) out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_exact(std::string_view text,
                                          std::string_view sep) {
  std::vector<std::string_view> out;
  if (sep.empty()) {
    out.push_back(text);
    return out;
  }
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + sep.size();
  }
  return out;
}

namespace {
template <typename Vec>
std::string join_impl(const Vec& parts, std::string_view sep) {
  std::string out;
  size_t total = 0;
  for (const auto& p : parts) total += p.size() + sep.size();
  out.reserve(total);
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}
}  // namespace

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return join_impl(parts, sep);
}

std::string_view trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), ascii_lower);
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

bool all_digits(std::string_view text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(),
                     [](char c) { return c >= '0' && c <= '9'; });
}

int parse_small_int(std::string_view text) {
  if (!all_digits(text) || text.size() > 9) return -1;
  int value = 0;
  for (char c : text) value = value * 10 + (c - '0');
  return value;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

}  // namespace loglens
