#include "common/time.h"

#include <cstdio>

namespace loglens {

int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);              // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;   // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;             // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void civil_from_days(int64_t z, int& y, int& m, int& d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);           // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);           // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                // [0, 11]
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
  y = static_cast<int>(yy + (m <= 2));
}

int64_t to_epoch_millis(const CivilTime& t) {
  const int64_t days = days_from_civil(t.year, t.month, t.day);
  return ((days * 24 + t.hour) * 60 + t.minute) * 60000 + t.second * 1000 +
         t.millis;
}

CivilTime from_epoch_millis(int64_t ms) {
  int64_t days = ms / 86400000;
  int64_t rem = ms % 86400000;
  if (rem < 0) {
    rem += 86400000;
    --days;
  }
  CivilTime t;
  civil_from_days(days, t.year, t.month, t.day);
  t.hour = static_cast<int>(rem / 3600000);
  rem %= 3600000;
  t.minute = static_cast<int>(rem / 60000);
  rem %= 60000;
  t.second = static_cast<int>(rem / 1000);
  t.millis = static_cast<int>(rem % 1000);
  return t;
}

std::string format_canonical(const CivilTime& t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d/%02d/%02d %02d:%02d:%02d.%03d", t.year,
                t.month, t.day, t.hour, t.minute, t.second, t.millis);
  return buf;
}

std::string format_canonical(int64_t epoch_millis) {
  return format_canonical(from_epoch_millis(epoch_millis));
}

void format_canonical_to(int64_t epoch_millis, std::string& out) {
  const CivilTime t = from_epoch_millis(epoch_millis);
  // Hand-rolled "%04d/%02d/%02d %02d:%02d:%02d.%03d": this runs once per
  // parsed log line, and snprintf re-parses the format string every call.
  char buf[23];
  auto put2 = [](char* p, int v) {
    p[0] = static_cast<char>('0' + v / 10);
    p[1] = static_cast<char>('0' + v % 10);
  };
  const int y = t.year;
  buf[0] = static_cast<char>('0' + (y / 1000) % 10);
  buf[1] = static_cast<char>('0' + (y / 100) % 10);
  buf[2] = static_cast<char>('0' + (y / 10) % 10);
  buf[3] = static_cast<char>('0' + y % 10);
  buf[4] = '/';
  put2(buf + 5, t.month);
  buf[7] = '/';
  put2(buf + 8, t.day);
  buf[10] = ' ';
  put2(buf + 11, t.hour);
  buf[13] = ':';
  put2(buf + 14, t.minute);
  buf[16] = ':';
  put2(buf + 17, t.second);
  buf[19] = '.';
  put2(buf + 20, t.millis / 10);
  buf[22] = static_cast<char>('0' + t.millis % 10);
  out.assign(buf, sizeof(buf));
}

bool is_leap_year(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[month - 1];
}

bool is_valid_civil(const CivilTime& t) {
  return t.month >= 1 && t.month <= 12 && t.day >= 1 &&
         t.day <= days_in_month(t.year, t.month) && t.hour >= 0 &&
         t.hour <= 23 && t.minute >= 0 && t.minute <= 59 && t.second >= 0 &&
         t.second <= 59 && t.millis >= 0 && t.millis <= 999;
}

}  // namespace loglens
