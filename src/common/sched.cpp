#include "common/sched.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/lock_rank.h"
#include "common/rng.h"

namespace loglens {
namespace sched {

namespace internal {
std::atomic<ScheduleController*> g_active{nullptr};
}  // namespace internal

bool points_compiled_in() { return LOGLENS_SCHED_POINTS != 0; }

namespace {

// Virtual time while a controller is attached (trace_clock source).
std::atomic<uint64_t> g_virtual_now_us{0};

uint64_t virtual_now_us() {
  return g_virtual_now_us.load(std::memory_order_relaxed);
}

// Controller-free virtual-delay mode (ScopedVirtualDelays).
std::atomic<int> g_delay_mode{0};
std::atomic<uint64_t> g_delay_offset_us{0};
std::atomic<uint64_t> g_delay_total_us{0};

uint64_t offset_now_us() {
  return trace_clock::internal::real_now_us() +
         g_delay_offset_us.load(std::memory_order_relaxed);
}

enum class State {
  kRunning,       // holds the run token
  kReady,         // runnable, waiting to be chosen
  kBlockedMutex,  // waiting for a RankedMutex held by another thread
  kBlockedCv,     // waiting for a cv notify (or a virtual deadline)
  kSleeping,      // virtual sleep until deadline_us
  kOutside,       // in a BlockingRegion: really blocked, out of our view
  kFinished,
};

const char* state_name(State s) {
  switch (s) {
    case State::kRunning: return "running";
    case State::kReady: return "ready";
    case State::kBlockedMutex: return "blocked-mutex";
    case State::kBlockedCv: return "blocked-cv";
    case State::kSleeping: return "sleeping";
    case State::kOutside: return "outside";
    case State::kFinished: return "finished";
  }
  return "?";
}

struct ThreadRec {
  std::string name;
  uint64_t reg_index = 0;
  uint64_t priority = 0;
  State state = State::kReady;
  const char* site = "start";       // last schedule point this thread hit
  const void* wait_mutex = nullptr;
  int wait_rank = 0;
  const void* wait_cv = nullptr;
  const void* armed_cv = nullptr;   // between cv_prepare and cv_block
  bool cv_signaled = false;
  bool has_deadline = false;
  uint64_t deadline_us = 0;
};

struct TraceEntry {
  uint64_t step = 0;
  const ThreadRec* chosen = nullptr;
  const char* from_site = "-";  // the yielder's site at decision time
};

// Registration cache: which controller instance this thread registered
// with. The epoch disambiguates a new Impl allocated at a freed one's
// address (controllers are created/destroyed once per seed).
struct TlsSlot {
  void* impl = nullptr;
  ThreadRec* rec = nullptr;
  uint64_t epoch = 0;
};
thread_local TlsSlot tls_slot;

std::atomic<uint64_t> g_epoch_counter{0};

uint64_t fnv1a(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr size_t kTraceRing = 512;

}  // namespace

class ScheduleController::Impl {
 public:
  Impl(ScheduleController* owner, const Options& opts)
      : owner_(owner),
        opts_(opts),
        epoch_(g_epoch_counter.fetch_add(1) + 1),
        rng_(opts.seed) {
    const uint64_t horizon = std::max<uint64_t>(1, opts_.change_point_horizon);
    for (int i = 0; i < opts_.priority_change_points; ++i) {
      change_points_.push_back(1 + rng_.below(horizon));
    }
    std::sort(change_points_.begin(), change_points_.end());
    demote_next_ = static_cast<uint64_t>(
        std::max(0, opts_.priority_change_points));
  }

  void attach() {
    if (!points_compiled_in()) {
      die("sched: attach() in a build with LOGLENS_SCHED_POINTS compiled "
          "out; branch on sched::points_compiled_in() first");
    }
    ScheduleController* expected = nullptr;
    if (!internal::g_active.compare_exchange_strong(expected, owner_)) {
      die("sched: a ScheduleController is already attached");
    }
    std::unique_lock<std::mutex> lk(mu_);
    g_virtual_now_us.store(trace_clock::internal::real_now_us(),
                           std::memory_order_relaxed);
    prev_clock_ = trace_clock::internal::source().load();
    trace_clock::set_source(&virtual_now_us);
    ThreadRec* me = register_locked("main");
    me->state = State::kRunning;
    current_ = me;
    touch_progress_locked();
  }

  void detach() {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec* me = self_or_null();
    if (me == nullptr || current_ != me) {
      fail_locked("detach() from a thread that does not hold the run token");
    }
    for (const ThreadRec& r : recs_) {
      if (&r != me && r.state != State::kFinished) {
        fail_locked("detach() while a registered thread is still live");
      }
    }
    internal::g_active.store(nullptr, std::memory_order_release);
    trace_clock::set_source(prev_clock_);
    me->state = State::kFinished;
    current_ = nullptr;
    tls_slot = TlsSlot{};
  }

  uint64_t seed() const { return opts_.seed; }

  uint64_t steps() const {
    std::unique_lock<std::mutex> lk(mu_);
    return steps_;
  }

  uint64_t trace_hash() const {
    std::unique_lock<std::mutex> lk(mu_);
    return hash_;
  }

  std::string trace_tail(size_t max_entries) const {
    std::unique_lock<std::mutex> lk(mu_);
    return trace_tail_locked(max_entries);
  }

  // --- hook bodies ------------------------------------------------------

  void yield(const char* site) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec* me = self(lk);
    me->site = site;
    me->state = State::kReady;
    yield_common(me, lk);
  }

  void acquire_mutex(std::mutex& mu, const void* id, int rank) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      ThreadRec* me = self(lk);
      me->site = lock_rank::rank_name(rank);
      me->state = State::kReady;
      yield_common(me, lk);  // preemption point before the acquisition
    }
    while (!mu.try_lock()) {
      std::unique_lock<std::mutex> lk(mu_);
      ThreadRec* me = self(lk);
      me->state = State::kBlockedMutex;
      me->wait_mutex = id;
      me->wait_rank = rank;
      yield_common(me, lk);
    }
  }

  bool try_mutex(std::mutex& mu, const void* id, int rank) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      ThreadRec* me = self(lk);
      me->site = lock_rank::rank_name(rank);
      me->state = State::kReady;
      yield_common(me, lk);
    }
    (void)id;
    return mu.try_lock();
  }

  void mutex_unlocked(const void* id) {
    std::unique_lock<std::mutex> lk(mu_);
    bool woke = false;
    for (ThreadRec& r : recs_) {
      if (r.state == State::kBlockedMutex && r.wait_mutex == id) {
        r.state = State::kReady;
        r.wait_mutex = nullptr;
        woke = true;
      }
    }
    if (woke && current_ == nullptr) schedule_locked(nullptr);
  }

  void cv_prepare(const void* cv) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec* me = self(lk);
    me->armed_cv = cv;
    me->cv_signaled = false;
  }

  void cv_block(const void* cv, bool timed, uint64_t rel_us) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec* me = self(lk);
    me->armed_cv = nullptr;
    me->site = "cv.wait";
    if (me->cv_signaled) {
      me->state = State::kReady;
    } else {
      me->state = State::kBlockedCv;
      me->wait_cv = cv;
      me->has_deadline = timed;
      if (timed) {
        me->deadline_us =
            g_virtual_now_us.load(std::memory_order_relaxed) + rel_us;
      }
    }
    yield_common(me, lk);
  }

  void cv_notify(const void* cv) {
    std::unique_lock<std::mutex> lk(mu_);
    bool woke = false;
    for (ThreadRec& r : recs_) {
      if (r.armed_cv == cv) r.cv_signaled = true;
      if (r.state == State::kBlockedCv && r.wait_cv == cv) {
        r.state = State::kReady;
        r.wait_cv = nullptr;
        r.has_deadline = false;
        woke = true;
      }
    }
    if (woke && current_ == nullptr) schedule_locked(nullptr);
  }

  void sleep_virtual(uint64_t us) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec* me = self(lk);
    me->site = "sleep";
    me->state = State::kSleeping;
    me->has_deadline = true;
    me->deadline_us = g_virtual_now_us.load(std::memory_order_relaxed) + us;
    yield_common(me, lk);
  }

  void region_leave() {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec* me = self(lk);
    me->site = "blocking-region";
    me->state = State::kOutside;
    ++outside_;
    // Hand the token on, but do NOT wait: the caller proceeds into its
    // real blocking operation.
    if (current_ == me) schedule_locked(me);
  }

  void region_enter() {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec* me = self(lk);
    --outside_;
    me->state = State::kReady;
    if (current_ == nullptr) schedule_locked(nullptr);
    wait_scheduled(me, lk);
  }

  std::thread spawn(std::string name, std::function<void()> fn) {
    auto started = std::make_shared<std::atomic<bool>>(false);
    std::thread t(
        [this, name = std::move(name), fn = std::move(fn), started]() {
          {
            std::unique_lock<std::mutex> lk(mu_);
            ThreadRec* me = register_locked(name);
            started->store(true, std::memory_order_release);
            cv_.notify_all();
            wait_scheduled(me, lk);
          }
          fn();
          thread_exit();
        });
    // Parent (the token holder) blocks until the child has registered, so
    // registration order — and therefore priority assignment — is exactly
    // spawn order, independent of OS thread startup latency.
    std::unique_lock<std::mutex> lk(mu_);
    while (!started->load(std::memory_order_acquire)) cv_.wait(lk);
    return t;
  }

  void thread_exit() {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec* me = self_or_null();
    if (me == nullptr) return;
    me->state = State::kFinished;
    tls_slot = TlsSlot{};
    if (current_ == me) schedule_locked(nullptr);
  }

 private:
  ThreadRec* self_or_null() {
    if (tls_slot.impl == this && tls_slot.epoch == epoch_) {
      return tls_slot.rec;
    }
    return nullptr;
  }

  // The calling thread's record, registering it on first contact. In
  // normal use every thread arrives via attach() or spawn(); registration
  // here is a fallback so an unexpected thread fails loudly in the dump
  // (as "anon-N") instead of corrupting state.
  ThreadRec* self(std::unique_lock<std::mutex>&) {
    ThreadRec* me = self_or_null();
    if (me != nullptr) return me;
    return register_locked("anon-" + std::to_string(recs_.size()));
  }

  ThreadRec* register_locked(std::string name) {
    recs_.emplace_back();
    ThreadRec& r = recs_.back();
    r.name = std::move(name);
    r.reg_index = recs_.size() - 1;
    // PCT initial priorities live strictly above every demotion value
    // (demotions hand out d, d-1, ..., 1).
    r.priority = demote_floor() + 1 + rng_.next() % 1000000000ULL;
    r.state = State::kReady;
    tls_slot = TlsSlot{this, &r, epoch_};
    cv_.notify_all();
    return &r;
  }

  uint64_t demote_floor() const {
    return static_cast<uint64_t>(std::max(0, opts_.priority_change_points));
  }

  // me's state has been set by the caller (ready / blocked / sleeping).
  // Advances the schedule if this thread held the token (or nobody does),
  // then blocks until this thread is chosen to run.
  void yield_common(ThreadRec* me, std::unique_lock<std::mutex>& lk) {
    if (current_ == me) {
      schedule_locked(me);
    } else if (current_ == nullptr) {
      schedule_locked(nullptr);
    }
    wait_scheduled(me, lk);
  }

  void wait_scheduled(ThreadRec* me, std::unique_lock<std::mutex>& lk) {
    while (current_ != me) {
      if (cv_.wait_for(lk, std::chrono::milliseconds(250)) ==
          std::cv_status::timeout) {
        // Self-heal: if the schedule went idle while we became runnable
        // (a wake delivered from an Outside thread), restart it.
        if (current_ == nullptr && me->state == State::kReady) {
          schedule_locked(nullptr);
          continue;
        }
        check_stall_locked();
      }
    }
    me->state = State::kRunning;
    me->wait_mutex = nullptr;
    me->wait_cv = nullptr;
    me->has_deadline = false;
  }

  // The heart of the explorer: one scheduling decision. Called with mu_
  // held by the token holder (yielder), or with yielder == nullptr when
  // the token is free (idle wake, thread exit).
  void schedule_locked(ThreadRec* yielder) {
    ++steps_;
    if (steps_ > opts_.max_steps) {
      fail_locked("step bound exceeded (livelock, or raise max_steps)");
    }
    // PCT priority-change point: demote the yielding thread below every
    // initial priority, so a lower-priority thread preempts it here.
    if (yielder != nullptr && next_change_ < change_points_.size() &&
        steps_ >= change_points_[next_change_]) {
      yielder->priority = demote_next_ > 0 ? demote_next_-- : 0;
      ++next_change_;
    }
    for (;;) {
      ThreadRec* best = nullptr;
      for (ThreadRec& r : recs_) {
        if (r.state != State::kReady) continue;
        if (best == nullptr || r.priority > best->priority ||
            (r.priority == best->priority &&
             r.reg_index < best->reg_index)) {
          best = &r;
        }
      }
      if (best != nullptr) {
        current_ = best;
        record_decision_locked(yielder, best);
        cv_.notify_all();
        return;
      }
      // Nobody runnable: advance virtual time to the earliest deadline.
      uint64_t min_deadline = UINT64_MAX;
      for (const ThreadRec& r : recs_) {
        if ((r.state == State::kSleeping ||
             (r.state == State::kBlockedCv && r.has_deadline)) &&
            r.deadline_us < min_deadline) {
          min_deadline = r.deadline_us;
        }
      }
      if (min_deadline != UINT64_MAX) {
        uint64_t now = g_virtual_now_us.load(std::memory_order_relaxed);
        if (min_deadline > now) {
          g_virtual_now_us.store(min_deadline, std::memory_order_relaxed);
          now = min_deadline;
        }
        for (ThreadRec& r : recs_) {
          if ((r.state == State::kSleeping ||
               (r.state == State::kBlockedCv && r.has_deadline)) &&
              r.deadline_us <= now) {
            r.state = State::kReady;
            r.wait_cv = nullptr;
            r.has_deadline = false;
          }
        }
        continue;
      }
      if (outside_ > 0) {
        // A thread is blocked in the real world; go idle until it
        // returns (region_enter restarts the schedule).
        current_ = nullptr;
        touch_progress_locked();
        cv_.notify_all();
        return;
      }
      bool any_live = false;
      for (const ThreadRec& r : recs_) {
        if (r.state != State::kFinished) {
          any_live = true;
          break;
        }
      }
      if (!any_live) {
        current_ = nullptr;
        cv_.notify_all();
        return;
      }
      fail_locked("deadlock: every live thread is blocked");
    }
  }

  void record_decision_locked(const ThreadRec* yielder,
                              const ThreadRec* chosen) {
    TraceEntry& e = trace_[trace_next_++ % kTraceRing];
    e.step = steps_;
    e.chosen = chosen;
    e.from_site = yielder != nullptr ? yielder->site : "-";
    hash_ = fnv1a(hash_, &steps_, sizeof(steps_));
    hash_ = fnv1a(hash_, &chosen->reg_index, sizeof(chosen->reg_index));
    hash_ = fnv1a(hash_, e.from_site, std::char_traits<char>::length(e.from_site));
    touch_progress_locked();
  }

  void touch_progress_locked() {
    last_progress_real_us_ = trace_clock::internal::real_now_us();
  }

  void check_stall_locked() {
    const uint64_t now = trace_clock::internal::real_now_us();
    const uint64_t limit =
        static_cast<uint64_t>(opts_.stall_timeout_ms) * 1000;
    if (opts_.stall_timeout_ms > 0 &&
        now - last_progress_real_us_ > limit) {
      fail_locked("stall: no scheduling progress within the timeout "
                  "(a thread is blocked outside the controller's view)");
    }
  }

  std::string trace_tail_locked(size_t max_entries) const {
    const size_t have = std::min<size_t>(trace_next_, kTraceRing);
    const size_t n = std::min(max_entries, have);
    std::string out;
    for (size_t i = have - n; i < have; ++i) {
      const TraceEntry& e =
          trace_[(trace_next_ - have + i) % kTraceRing];
      out += "    step ";
      out += std::to_string(e.step);
      out += ": run ";
      out += e.chosen->name;
      out += " (after ";
      out += e.from_site;
      out += ")\n";
    }
    return out;
  }

  [[noreturn]] void fail_locked(const char* reason) {
    std::string report = "\nloglens sched: FAILURE: ";
    report += reason;
    report += "\n  seed=";
    report += std::to_string(opts_.seed);
    report += " steps=";
    report += std::to_string(steps_);
    report += "\n  replay: LOGLENS_SCHED_SEED=";
    report += std::to_string(opts_.seed);
    report += " ./sched_explorer_test  (or --sched-seed=";
    report += std::to_string(opts_.seed);
    report += ")\n  threads:\n";
    for (const ThreadRec& r : recs_) {
      report += "    ";
      report += r.name;
      report += ": ";
      report += state_name(r.state);
      report += " @ ";
      report += r.site;
      if (r.state == State::kBlockedMutex) {
        report += " waiting on ";
        report += lock_rank::rank_name(r.wait_rank);
      }
      report += "\n";
    }
    report += "  schedule tail:\n";
    report += trace_tail_locked(48);
    die(report.c_str());
  }

  [[noreturn]] static void die(const char* msg) {
    std::fputs(msg, stderr);
    std::fputc('\n', stderr);
    // NOLINTNEXTLINE(concurrency-mt-unsafe): abort path, already fatal.
    if (const char* path = std::getenv("LOGLENS_SCHED_FAILURE_FILE")) {
      if (std::FILE* f = std::fopen(path, "ae")) {
        std::fputs(msg, f);
        std::fputc('\n', f);
        std::fclose(f);
      }
    }
    std::abort();
  }

  ScheduleController* const owner_;
  const Options opts_;
  const uint64_t epoch_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Rng rng_;
  std::deque<ThreadRec> recs_;  // stable addresses
  ThreadRec* current_ = nullptr;
  int outside_ = 0;
  uint64_t steps_ = 0;
  uint64_t hash_ = 0xcbf29ce484222325ULL;
  std::vector<uint64_t> change_points_;
  size_t next_change_ = 0;
  uint64_t demote_next_ = 0;
  TraceEntry trace_[kTraceRing];
  size_t trace_next_ = 0;
  uint64_t last_progress_real_us_ = 0;
  trace_clock::NowFn prev_clock_ = nullptr;
};

ScheduleController::ScheduleController(const Options& options)
    : impl_(new Impl(this, options)) {}

ScheduleController::~ScheduleController() = default;

void ScheduleController::attach() { impl_->attach(); }
void ScheduleController::detach() { impl_->detach(); }
uint64_t ScheduleController::seed() const { return impl_->seed(); }
uint64_t ScheduleController::steps() const { return impl_->steps(); }
uint64_t ScheduleController::trace_hash() const {
  return impl_->trace_hash();
}
std::string ScheduleController::trace_tail(size_t max_entries) const {
  return impl_->trace_tail(max_entries);
}

namespace internal {

void point(ScheduleController* c, const char* site) {
  c->impl().yield(site);
}
void mutex_lock(ScheduleController* c, std::mutex& mu, const void* id,
                int rank) {
  c->impl().acquire_mutex(mu, id, rank);
}
bool mutex_try_lock(ScheduleController* c, std::mutex& mu, const void* id,
                    int rank) {
  return c->impl().try_mutex(mu, id, rank);
}
void mutex_unlocked(ScheduleController* c, const void* id) {
  c->impl().mutex_unlocked(id);
}
void cv_prepare(ScheduleController* c, const void* cv) {
  c->impl().cv_prepare(cv);
}
void cv_block(ScheduleController* c, const void* cv) {
  c->impl().cv_block(cv, /*timed=*/false, 0);
}
void cv_block_for(ScheduleController* c, const void* cv, uint64_t rel_us) {
  c->impl().cv_block(cv, /*timed=*/true, rel_us);
}
void cv_notify(ScheduleController* c, const void* cv) {
  c->impl().cv_notify(cv);
}
void sleep_virtual(ScheduleController* c, uint64_t us) {
  c->impl().sleep_virtual(us);
}
std::thread spawn(ScheduleController* c, std::string name,
                  std::function<void()> fn) {
  return c->impl().spawn(std::move(name), std::move(fn));
}
void region_leave(ScheduleController* c) { c->impl().region_leave(); }
void region_enter(ScheduleController* c) { c->impl().region_enter(); }

}  // namespace internal

void sleep_for_us(uint64_t us) {
  if (points_compiled_in()) {
    if (ScheduleController* c = active()) {
      internal::sleep_virtual(c, us);
      return;
    }
  }
  if (g_delay_mode.load(std::memory_order_acquire) > 0) {
    g_delay_offset_us.fetch_add(us, std::memory_order_relaxed);
    g_delay_total_us.fetch_add(us, std::memory_order_relaxed);
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

std::thread spawn_named(std::string name, std::function<void()> fn) {
  if (points_compiled_in()) {
    if (ScheduleController* c = active()) {
      return internal::spawn(c, std::move(name), std::move(fn));
    }
  }
  return std::thread(std::move(fn));
}

BlockingRegion::BlockingRegion() : controller_(nullptr) {
  if (!points_compiled_in()) return;
  if (ScheduleController* c = active()) {
    controller_ = c;
    internal::region_leave(c);
  }
}

BlockingRegion::~BlockingRegion() {
  if (controller_ != nullptr) internal::region_enter(controller_);
}

ScopedVirtualDelays::ScopedVirtualDelays() {
  if (g_delay_mode.fetch_add(1, std::memory_order_acq_rel) == 0) {
    trace_clock::set_source(&offset_now_us);
  }
}

ScopedVirtualDelays::~ScopedVirtualDelays() {
  if (g_delay_mode.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    trace_clock::set_source(nullptr);
  }
}

uint64_t ScopedVirtualDelays::delayed_us() {
  return g_delay_total_us.load(std::memory_order_relaxed);
}

}  // namespace sched
}  // namespace loglens
