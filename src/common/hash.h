// FNV-1a hashing for signature strings and hash-combine for composite keys.
#pragma once

#include <cstdint>
#include <string_view>

namespace loglens {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr uint64_t fnv1a(std::string_view data, uint64_t seed = kFnvOffset) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

constexpr uint64_t hash_combine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace loglens
