// Runtime lock-rank (lock-order) checking for the concurrent core.
//
// The Clang thread-safety analysis (common/thread_annotations.h) proves that
// guarded data is only touched with its own mutex held, but it is
// per-capability: it cannot see that thread A acquires broker-then-metrics
// while thread B acquires metrics-then-broker. Deadlocks of that shape are
// exactly what a *rank* discipline prevents: every mutex in the concurrent
// core carries an explicit rank from the hierarchy below, and a thread may
// only acquire a mutex whose rank is strictly greater than every rank it
// already holds. An acquisition that violates the order aborts immediately
// (in checked builds) with both ranks named — turning a once-in-a-blue-moon
// deadlock into a deterministic unit-test failure.
//
// RankedMutex wraps std::mutex and performs the per-thread bookkeeping in
// lock()/unlock(); RankedMutexLock is the annotated scoped guard the
// concurrent core uses instead of std::lock_guard (which the Clang analysis
// cannot see on libstdc++). Checking is compiled in for Debug and
// ASan/TSan builds and compiles to a plain std::mutex passthrough in
// Release (LOGLENS_LOCK_RANK_CHECKS below) — zero cost on the hot path.
//
// The rank hierarchy (outermost first; see docs/STATIC_ANALYSIS.md for the
// full table with the nestings that pin each value):
//
//   kServiceRecover < kEngineRun < kEngineControl < kBroadcastDriver,
//   kBroadcastCache < kThreadPool < kConsumerGroup, kConsumer < kBrokerWait
//   < kBroker < kBrokerPartition < kStorageFlush < kFaults < kStorage
//   < kJobState < kMetrics < kTrace
//
// Trace is the innermost rank because the metrics registry drains the span
// collector (kTrace) while holding its own mutex (kMetrics), and every
// subsystem may bump a counter while holding its own lock; the service's
// recovery lock is the outermost because recovery drives the whole pipeline
// (engines, broker, stores).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "common/sched.h"
#include "common/thread_annotations.h"

// LOGLENS_LOCK_RANK_CHECKS: 1 compiles the rank bookkeeping in, 0 makes
// RankedMutex a zero-overhead std::mutex wrapper. Defaults: on for Debug
// (no NDEBUG) and for ASan/TSan instrumented builds, off otherwise. Tests
// override it per-target (tests/CMakeLists.txt) to pin both behaviours.
#ifndef LOGLENS_LOCK_RANK_CHECKS
#if !defined(NDEBUG)
#define LOGLENS_LOCK_RANK_CHECKS 1
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LOGLENS_LOCK_RANK_CHECKS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LOGLENS_LOCK_RANK_CHECKS 1
#else
#define LOGLENS_LOCK_RANK_CHECKS 0
#endif
#else
#define LOGLENS_LOCK_RANK_CHECKS 0
#endif
#endif

// LOGLENS_MUTEX_PROFILE: 1 makes every contended RankedMutex acquisition
// record a wait-time sample against its rank (lock_rank::contention_profile
// below). Uncontended acquisitions pay one try_lock — nothing else — so the
// profile is cheap enough to leave on wherever rank checks are on, and CI's
// bench-smoke forces it on in Release (-DLOGLENS_MUTEX_PROFILE=ON) so the
// throughput benchmark doubles as a contention census.
#ifndef LOGLENS_MUTEX_PROFILE
#define LOGLENS_MUTEX_PROFILE LOGLENS_LOCK_RANK_CHECKS
#endif

namespace loglens {

namespace lock_rank {

// The lock hierarchy. Gaps leave room for new subsystems; what matters is
// the order, which encodes every legal nesting in the codebase. A thread
// holding rank R may only acquire ranks strictly greater than R.
inline constexpr int kServiceRecover = 100;   // LogLensService::recover_mu_
inline constexpr int kEngineRun = 200;        // StreamEngine::run_mu_
inline constexpr int kEngineControl = 300;    // StreamEngine::control_mu_
inline constexpr int kBroadcastDriver = 400;  // Broadcast<T>::driver_mu_
inline constexpr int kBroadcastCache = 410;   // Broadcast<T>::Cache::mu
inline constexpr int kThreadPool = 500;       // ThreadPool::mu_
inline constexpr int kConsumerGroup = 600;    // ConsumerGroup::mu_
inline constexpr int kConsumer = 650;         // Consumer::mu_
// Below kBroker: a blocked waiter re-resolves the topic (kBroker) each time
// it wakes, so the waiter mutex must be acquirable first.
inline constexpr int kBrokerWait = 690;       // Broker::wait_mu_
inline constexpr int kBroker = 700;           // Broker::mu_ (topic map)
inline constexpr int kBrokerPartition = 710;  // Broker Partition::mu
// Below kFaults: the segment writer consults the FaultInjector (and then
// takes kStorage to publish) while holding the flush lock.
inline constexpr int kStorageFlush = 740;     // DocumentStore::flush_mu_
inline constexpr int kFaults = 750;           // FaultInjector::mu_
inline constexpr int kStorage = 800;          // DocumentStore / ModelStore
inline constexpr int kJobState = 850;         // JobRunner::error_mu_
inline constexpr int kMetrics = 900;          // MetricsRegistry::mu_
inline constexpr int kTrace = 950;            // SpanCollector::mu_ (leaf)

// True when this build performs rank checking (tests branch on it).
constexpr bool checks_enabled() { return LOGLENS_LOCK_RANK_CHECKS != 0; }

// True when contended acquisitions record wait-time samples.
constexpr bool profiling_enabled() { return LOGLENS_MUTEX_PROFILE != 0; }

// One row of the contention profile: how often a mutex of this rank was
// contended (lock() found it held) and how long those waits took.
struct ContentionStat {
  int rank = 0;
  const char* name = "";
  uint64_t contended = 0;
  uint64_t wait_us_total = 0;
  uint64_t wait_us_max = 0;
};

// Rows with at least one contended acquisition, outermost rank first.
// Always linkable; empty unless profiling_enabled().
std::vector<ContentionStat> contention_profile();

// Zeroes every contention counter (bench / test isolation).
void contention_reset();

// Human name for a rank constant ("kBroker"), or "other" for unknown ranks.
const char* rank_name(int rank);

namespace internal {

// Out-of-line so the abort path (fprintf + abort) stays off the inlined
// fast path. Defined unconditionally in lock_rank.cpp so every build
// flavor links, whichever way LOGLENS_LOCK_RANK_CHECKS went.
[[noreturn]] void rank_violation_abort(int acquiring, int held);
[[noreturn]] void rank_overflow_abort(int acquiring);
[[noreturn]] void rank_release_abort(int releasing);

// Files one contended-acquisition sample. Out-of-line and unconditionally
// defined (lock_rank.cpp) — only the call site is compiled out when
// profiling is off.
void record_contention(int rank, uint64_t wait_us);

}  // namespace internal

#if LOGLENS_LOCK_RANK_CHECKS

namespace internal {

// Per-thread set of held ranks. A fixed array suffices: the deepest legal
// chain in the hierarchy is far shorter than kMaxHeld, and overflow aborts
// rather than silently dropping checks.
inline constexpr int kMaxHeld = 16;

struct HeldRanks {
  int ranks[kMaxHeld];
  int depth = 0;
};

inline thread_local HeldRanks tls_held;

inline void note_acquire(int rank) {
  HeldRanks& held = tls_held;
  for (int i = 0; i < held.depth; ++i) {
    if (held.ranks[i] >= rank) rank_violation_abort(rank, held.ranks[i]);
  }
  if (held.depth >= kMaxHeld) rank_overflow_abort(rank);
  held.ranks[held.depth++] = rank;
}

inline void note_release(int rank) {
  HeldRanks& held = tls_held;
  // Search newest-first: releases are almost always LIFO, but unique_lock /
  // condition-variable waits may release out of order legally.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.ranks[i] == rank) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.ranks[j] = held.ranks[j + 1];
      }
      --held.depth;
      return;
    }
  }
  rank_release_abort(rank);
}

}  // namespace internal

// Ranks currently held by the calling thread (test hook).
inline int held_count() { return internal::tls_held.depth; }

#else  // !LOGLENS_LOCK_RANK_CHECKS

inline int held_count() { return 0; }

#endif

}  // namespace lock_rank

// std::mutex with an explicit position in the lock hierarchy. In checked
// builds every acquisition verifies the rank order against the calling
// thread's held set; in release builds lock()/unlock() are plain
// passthroughs. Carries the Clang `capability` attribute so members can be
// LOGLENS_GUARDED_BY it and methods LOGLENS_REQUIRES it.
class LOGLENS_CAPABILITY("mutex") RankedMutex {
 public:
  explicit RankedMutex(int rank) : rank_(rank) {}

  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() LOGLENS_ACQUIRE() {
#if LOGLENS_LOCK_RANK_CHECKS
    lock_rank::internal::note_acquire(rank_);
#endif
#if LOGLENS_SCHED_POINTS
    // Under an attached ScheduleController the acquisition becomes a
    // deterministic scheduling decision: yield, then try_lock/block until
    // the controller runs us with the mutex free (common/sched.h).
    if (sched::ScheduleController* c = sched::active()) {
      sched::internal::mutex_lock(c, mu_, this, rank_);
      return;
    }
#endif
#if LOGLENS_MUTEX_PROFILE
    // Contention probe: an uncontended acquisition is one try_lock; a
    // contended one additionally times the blocking wait.
    if (!mu_.try_lock()) {
      const uint64_t t0 = trace_clock::now_us();
      mu_.lock();
      lock_rank::internal::record_contention(rank_,
                                             trace_clock::now_us() - t0);
    }
#else
    mu_.lock();
#endif
  }

  void unlock() LOGLENS_RELEASE() {
    mu_.unlock();
#if LOGLENS_SCHED_POINTS
    // Readies any thread the controller parked on this mutex.
    if (sched::ScheduleController* c = sched::active()) {
      sched::internal::mutex_unlocked(c, this);
    }
#endif
#if LOGLENS_LOCK_RANK_CHECKS
    lock_rank::internal::note_release(rank_);
#endif
  }

  bool try_lock() LOGLENS_TRY_ACQUIRE(true) {
#if LOGLENS_SCHED_POINTS
    if (sched::ScheduleController* c = sched::active()) {
      if (!sched::internal::mutex_try_lock(c, mu_, this, rank_)) {
        return false;
      }
#if LOGLENS_LOCK_RANK_CHECKS
      lock_rank::internal::note_acquire(rank_);
#endif
      return true;
    }
#endif
    if (!mu_.try_lock()) return false;
#if LOGLENS_LOCK_RANK_CHECKS
    lock_rank::internal::note_acquire(rank_);
#endif
    return true;
  }

  int rank() const { return rank_; }

 private:
  std::mutex mu_;
  const int rank_;
};

// Annotated scoped guard for RankedMutex — the concurrent core's
// std::lock_guard. Also satisfies BasicLockable so it can be handed to
// std::condition_variable_any::wait, which unlocks/relocks it around the
// blocking wait; those two methods are deliberately unannotated (the
// analysis cannot model a wait's release-and-reacquire, and treating the
// lock as continuously held is exactly the post-wait truth).
class LOGLENS_SCOPED_CAPABILITY RankedMutexLock {
 public:
  explicit RankedMutexLock(RankedMutex& mu) LOGLENS_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }

  ~RankedMutexLock() LOGLENS_RELEASE() {
    if (owned_) mu_.unlock();
  }

  RankedMutexLock(const RankedMutexLock&) = delete;
  RankedMutexLock& operator=(const RankedMutexLock&) = delete;

  // For condition_variable_any only — see the class comment.
  void lock() {
    mu_.lock();
    owned_ = true;
  }
  void unlock() {
    owned_ = false;
    mu_.unlock();
  }

 private:
  RankedMutex& mu_;
  bool owned_ = true;
};

}  // namespace loglens
