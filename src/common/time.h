// Civil time <-> epoch-milliseconds conversion.
//
// LogLens never consults the wall clock inside algorithms: all anomaly logic
// runs on "log time" — timestamps embedded in the logs themselves (Section
// V-B of the paper). This header provides the value type those timestamps
// unify to, plus formatting in the paper's canonical layout
// "yyyy/MM/dd HH:mm:ss.SSS". All conversions are timezone-free (UTC).
#pragma once

#include <cstdint>
#include <string>

namespace loglens {

struct CivilTime {
  int year = 1970;
  int month = 1;   // 1..12
  int day = 1;     // 1..31
  int hour = 0;    // 0..23
  int minute = 0;  // 0..59
  int second = 0;  // 0..59
  int millis = 0;  // 0..999

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
int64_t days_from_civil(int y, int m, int d);

// Inverse of days_from_civil.
void civil_from_days(int64_t z, int& y, int& m, int& d);

// Milliseconds since the epoch for a civil time.
int64_t to_epoch_millis(const CivilTime& t);

CivilTime from_epoch_millis(int64_t ms);

// Canonical LogLens timestamp format: "yyyy/MM/dd HH:mm:ss.SSS".
std::string format_canonical(int64_t epoch_millis);
std::string format_canonical(const CivilTime& t);
// Assigns into `out`, reusing its storage (hot-path variant).
void format_canonical_to(int64_t epoch_millis, std::string& out);

// True if the fields form a real calendar date/time (leap years honoured).
bool is_valid_civil(const CivilTime& t);

int days_in_month(int year, int month);
bool is_leap_year(int year);

}  // namespace loglens
