// Lightweight error propagation used at module boundaries.
//
// Library code reports recoverable failures (malformed pattern text, bad
// user configuration, parse errors in stored models) through StatusOr rather
// than exceptions, so callers in the streaming hot path never pay for
// unwinding machinery. Programming errors still assert.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace loglens {

class Status {
 public:
  Status() = default;  // OK
  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return !message_.has_value(); }
  const std::string& message() const {
    static const std::string kOk = "OK";
    return message_ ? *message_ : kOk;
  }

 private:
  std::optional<std::string> message_;
};

template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT: implicit by design
  StatusOr(Status status) : value_(std::move(status)) {}   // NOLINT
  static StatusOr Error(std::string message) {
    return StatusOr(Status::Error(std::move(message)));
  }

  bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(value_);
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace loglens
