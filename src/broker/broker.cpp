#include "broker/broker.h"

#include <chrono>
#include <thread>

#include "common/clock.h"
#include "trace/trace.h"

namespace loglens {

namespace {
// Produce-side retry budget for injected (or, in a networked broker,
// transient) append failures. Capped exponential backoff: 1, 2, 4, 8 ms.
constexpr int kProduceMaxAttempts = 5;
constexpr int64_t kProduceBackoffCapMs = 8;

void produce_backoff(int attempt) {
  int64_t ms = std::min<int64_t>(kProduceBackoffCapMs, 1LL << (attempt - 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}
}  // namespace

Broker::TopicData& Broker::topic_data_locked(const std::string& topic,
                                             size_t partitions) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    it = topics_.emplace(topic, TopicData{}).first;
    it->second.partitions.resize(partitions);
    MetricLabels labels{{"topic", topic}};
    it->second.produced =
        &metrics_->counter("loglens_broker_messages_produced_total", labels,
                           "Messages appended per topic");
    it->second.fetched =
        &metrics_->counter("loglens_broker_messages_fetched_total", labels,
                           "Messages returned by fetches per topic");
    metrics_
        ->gauge("loglens_broker_topics", {},
                "Topics that exist on this broker")
        .set(static_cast<int64_t>(topics_.size()));
  }
  return it->second;
}

Status Broker::create_topic(const std::string& topic, size_t partitions) {
  if (partitions == 0) return Status::Error("topic needs >= 1 partition");
  RankedMutexLock lock(mu_);
  auto it = topics_.find(topic);
  if (it != topics_.end()) {
    if (it->second.partitions.size() != partitions) {
      return Status::Error("topic '" + topic +
                           "' exists with a different partition count");
    }
    return Status::Ok();
  }
  topic_data_locked(topic, partitions);
  return Status::Ok();
}

Status Broker::produce(const std::string& topic, Message message,
                       std::optional<size_t> partition) {
  if (faults_ != nullptr) {
    // Client-style producer retries: absorb injected append failures here so
    // every producer call site inherits resilience. The loop runs before the
    // broker lock (the backoff sleep must not serialize other producers).
    for (int attempt = 1; faults_->check(kFaultSiteProduce) ==
                          FaultAction::kThrow;
         ++attempt) {
      if (attempt >= kProduceMaxAttempts) {
        return Status::Error("produce to '" + topic +
                             "' failed after retries");
      }
      metrics_
          ->counter("loglens_broker_produce_retries_total",
                    {{"topic", topic}}, "Produce attempts that were retried")
          .inc();
      produce_backoff(attempt);
    }
  }
  if (trace::enabled()) {
    // Stamp trace identity at the pipeline edge: inherit the producer's
    // context (so a batch's outputs chain to the span that made them) or
    // start a fresh trace for un-instrumented producers. Redelivered /
    // re-produced messages keep their identity, but the enqueue timestamp
    // is per-produce — queue wait is a property of this append.
    if (message.trace_id == 0) {
      const trace::TraceContext& ctx = trace::current();
      if (ctx.trace_id != 0) {
        message.trace_id = ctx.trace_id;
        message.parent_span = ctx.span_id;
      } else {
        message.trace_id = trace::new_trace_id();
      }
    }
    message.enqueue_us = trace_clock::now_us();
  }
  RankedMutexLock lock(mu_);
  TopicData& data = topic_data_locked(topic, 1);
  auto& parts = data.partitions;
  size_t p;
  if (partition.has_value()) {
    if (*partition >= parts.size()) {
      return Status::Error("partition out of range");
    }
    p = *partition;
  } else {
    p = message.key.empty() ? 0 : fnv1a(message.key) % parts.size();
  }
  if (message.seq < 0) {
    message.seq = static_cast<int64_t>(parts[p].size());
  }
  parts[p].push_back(std::move(message));
  data.produced->inc();
  cv_.notify_all();
  return Status::Ok();
}

bool Broker::fetch_fault() const {
  if (faults_ == nullptr) return false;
  // kDelay already slept inside check() (a stalled broker); kThrow maps to
  // a transient empty result the caller's next poll retries.
  return faults_->check(kFaultSiteFetch) == FaultAction::kThrow;
}

std::vector<Message> Broker::fetch(const std::string& topic, size_t partition,
                                   uint64_t offset, size_t max) const {
  if (fetch_fault()) {
    metrics_
        ->counter("loglens_broker_fetch_errors_total", {{"topic", topic}},
                  "Fetches failed transiently (injected)")
        .inc();
    return {};
  }
  RankedMutexLock lock(mu_);
  std::vector<Message> out;
  auto it = topics_.find(topic);
  if (it == topics_.end() || partition >= it->second.partitions.size()) {
    return out;
  }
  const auto& log = it->second.partitions[partition];
  for (uint64_t i = offset; i < log.size() && out.size() < max; ++i) {
    out.push_back(log[i]);
  }
  if (!out.empty()) it->second.fetched->inc(out.size());
  return out;
}

std::vector<Message> Broker::fetch_blocking(const std::string& topic,
                                            size_t partition, uint64_t offset,
                                            size_t max,
                                            int64_t timeout_ms) const {
  if (fetch_fault()) {
    metrics_
        ->counter("loglens_broker_fetch_errors_total", {{"topic", topic}},
                  "Fetches failed transiently (injected)")
        .inc();
    return {};
  }
  RankedMutexLock lock(mu_);
  const uint64_t deadline_us =
      trace_clock::now_us() + static_cast<uint64_t>(timeout_ms) * 1000;
  // Explicit wait loop (not the predicate overload): the analysis checks a
  // predicate lambda as its own function, where the guarded reads would not
  // be covered by the lock held here.
  for (;;) {
    auto ready_it = topics_.find(topic);
    if (ready_it != topics_.end() &&
        partition < ready_it->second.partitions.size() &&
        ready_it->second.partitions[partition].size() > offset) {
      break;
    }
    const uint64_t now_us = trace_clock::now_us();
    if (now_us >= deadline_us) break;
    if (cv_.wait_for(lock, std::chrono::microseconds(
                               deadline_us - now_us)) ==
        std::cv_status::timeout) {
      break;
    }
  }
  std::vector<Message> out;
  auto it = topics_.find(topic);
  if (it == topics_.end() || partition >= it->second.partitions.size()) {
    return out;
  }
  const auto& log = it->second.partitions[partition];
  for (uint64_t i = offset; i < log.size() && out.size() < max; ++i) {
    out.push_back(log[i]);
  }
  if (!out.empty()) it->second.fetched->inc(out.size());
  return out;
}

size_t Broker::partition_count(const std::string& topic) const {
  RankedMutexLock lock(mu_);
  auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.partitions.size();
}

uint64_t Broker::end_offset(const std::string& topic, size_t partition) const {
  RankedMutexLock lock(mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end() || partition >= it->second.partitions.size()) {
    return 0;
  }
  return it->second.partitions[partition].size();
}

std::vector<std::string> Broker::topics() const {
  RankedMutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(topics_.size());
  for (const auto& [name, _] : topics_) out.push_back(name);
  return out;
}

ConsumerGroup::ConsumerGroup(Broker& broker, std::string group,
                             std::string topic)
    : broker_(broker), group_(std::move(group)), topic_(std::move(topic)) {}

size_t ConsumerGroup::join() {
  RankedMutexLock lock(mu_);
  return member_count_++;
}

std::vector<size_t> ConsumerGroup::assignment(size_t member) const {
  RankedMutexLock lock(mu_);
  std::vector<size_t> out;
  size_t partitions = broker_.partition_count(topic_);
  if (member_count_ == 0) return out;
  for (size_t p = member % member_count_; p < partitions;
       p += member_count_) {
    out.push_back(p);
  }
  return out;
}

std::vector<Message> ConsumerGroup::poll(size_t member, size_t max) {
  std::vector<size_t> mine = assignment(member);
  std::vector<Message> out;
  RankedMutexLock lock(mu_);
  for (size_t p : mine) {
    if (out.size() >= max) break;
    uint64_t& offset = offsets_[p];
    auto batch = broker_.fetch(topic_, p, offset, max - out.size());
    offset += batch.size();
    for (auto& m : batch) out.push_back(std::move(m));
  }
  return out;
}

size_t ConsumerGroup::members() const {
  RankedMutexLock lock(mu_);
  return member_count_;
}

Consumer::Consumer(Broker& broker, std::string topic)
    : broker_(broker), topic_(std::move(topic)) {
  offsets_.resize(std::max<size_t>(1, broker_.partition_count(topic_)), 0);
}

std::vector<Message> Consumer::poll(size_t max) {
  RankedMutexLock lock(mu_);
  if (offsets_.size() < broker_.partition_count(topic_)) {
    offsets_.resize(broker_.partition_count(topic_), 0);
  }
  std::vector<Message> out;
  for (size_t p = 0; p < offsets_.size() && out.size() < max; ++p) {
    auto batch =
        broker_.fetch(topic_, p, offsets_[p], max - out.size());
    offsets_[p] += batch.size();
    consumed_ += batch.size();
    for (auto& m : batch) out.push_back(std::move(m));
  }
  return out;
}

std::vector<Message> Consumer::poll_blocking(size_t max, int64_t timeout_ms) {
  auto out = poll(max);
  if (!out.empty()) return out;
  // Block on partition 0's growth as a wakeup signal, then re-poll all. The
  // blocking fetch runs unlocked so lag()/offsets() monitoring never stalls
  // behind the wait.
  uint64_t offset0;
  {
    RankedMutexLock lock(mu_);
    offset0 = offsets_.empty() ? 0 : offsets_[0];
  }
  (void)broker_.fetch_blocking(topic_, 0, offset0, 1, timeout_ms);
  return poll(max);
}

uint64_t Consumer::consumed() const {
  RankedMutexLock lock(mu_);
  return consumed_;
}

std::vector<uint64_t> Consumer::offsets() const {
  RankedMutexLock lock(mu_);
  return offsets_;
}

void Consumer::seek(const std::vector<uint64_t>& offsets) {
  RankedMutexLock lock(mu_);
  if (offsets_.size() < offsets.size()) offsets_.resize(offsets.size(), 0);
  for (size_t p = 0; p < offsets.size(); ++p) offsets_[p] = offsets[p];
}

bool Consumer::caught_up() const {
  RankedMutexLock lock(mu_);
  for (size_t p = 0; p < offsets_.size(); ++p) {
    if (offsets_[p] < broker_.end_offset(topic_, p)) return false;
  }
  return true;
}

uint64_t Consumer::lag() const {
  RankedMutexLock lock(mu_);
  uint64_t total = 0;
  size_t partitions = broker_.partition_count(topic_);
  for (size_t p = 0; p < partitions; ++p) {
    uint64_t end = broker_.end_offset(topic_, p);
    uint64_t offset = p < offsets_.size() ? offsets_[p] : 0;
    if (end > offset) total += end - offset;
  }
  return total;
}

}  // namespace loglens
