#include "broker/broker.h"

#include <chrono>
#include <limits>

#include "common/clock.h"
#include "common/sched.h"
#include "trace/trace.h"

namespace loglens {

namespace {
// Produce-side retry budget for injected (or, in a networked broker,
// transient) append failures. Capped exponential backoff: 1, 2, 4, 8 ms.
constexpr int kProduceMaxAttempts = 5;
constexpr int64_t kProduceBackoffCapMs = 8;

// Sentinel offset for wait_for_data: no partition can ever exceed it, so an
// entry holding it is effectively unwatched.
constexpr uint64_t kIgnorePartition = std::numeric_limits<uint64_t>::max();

void produce_backoff(int attempt) {
  int64_t ms = std::min<int64_t>(kProduceBackoffCapMs, 1LL << (attempt - 1));
  // Virtual under a ScheduleController / ScopedVirtualDelays: backoff is a
  // schedule point, not a wall-clock stall (common/sched.h).
  sched::sleep_for_ms(static_cast<uint64_t>(ms));
}
}  // namespace

Broker::TopicData& Broker::topic_data_locked(const std::string& topic,
                                             size_t partitions) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    it = topics_.emplace(topic, TopicData{}).first;
    it->second.partitions.reserve(partitions);
    for (size_t p = 0; p < partitions; ++p) {
      it->second.partitions.push_back(std::make_unique<Partition>());
    }
    MetricLabels labels{{"topic", topic}};
    it->second.produced =
        &metrics_->counter("loglens_broker_messages_produced_total", labels,
                           "Messages appended per topic");
    it->second.fetched =
        &metrics_->counter("loglens_broker_messages_fetched_total", labels,
                           "Messages returned by fetches per topic");
    it->second.batch_produces =
        &metrics_->counter("loglens_broker_batch_produces_total", labels,
                           "produce_batch calls that appended messages");
    metrics_
        ->gauge("loglens_broker_topics", {},
                "Topics that exist on this broker")
        .set(static_cast<int64_t>(topics_.size()));
  }
  return it->second;
}

Broker::TopicData* Broker::resolve_topic(const std::string& topic,
                                         size_t partitions) {
  RankedMutexLock lock(mu_);
  return &topic_data_locked(topic, partitions);
}

const Broker::TopicData* Broker::find_topic(const std::string& topic) const {
  RankedMutexLock lock(mu_);
  auto it = topics_.find(topic);
  return it == topics_.end() ? nullptr : &it->second;
}

Status Broker::create_topic(const std::string& topic, size_t partitions) {
  if (partitions == 0) return Status::Error("topic needs >= 1 partition");
  RankedMutexLock lock(mu_);
  auto it = topics_.find(topic);
  if (it != topics_.end()) {
    if (it->second.partitions.size() != partitions) {
      return Status::Error("topic '" + topic +
                           "' exists with a different partition count");
    }
    return Status::Ok();
  }
  topic_data_locked(topic, partitions);
  return Status::Ok();
}

bool Broker::produce_fault_retries(const std::string& topic) {
  if (faults_ == nullptr) return true;
  // Client-style producer retries: absorb injected append failures here so
  // every producer call site inherits resilience. The loop runs before any
  // broker lock (the backoff sleep must not serialize other producers).
  for (int attempt = 1;
       faults_->check(kFaultSiteProduce) == FaultAction::kThrow; ++attempt) {
    if (attempt >= kProduceMaxAttempts) return false;
    metrics_
        ->counter("loglens_broker_produce_retries_total", {{"topic", topic}},
                  "Produce attempts that were retried")
        .inc();
    produce_backoff(attempt);
  }
  return true;
}

void Broker::stamp_trace(Message& message) {
  if (!trace::enabled()) return;
  // Stamp trace identity at the pipeline edge: inherit the producer's
  // context (so a batch's outputs chain to the span that made them) or
  // start a fresh trace for un-instrumented producers. Redelivered /
  // re-produced messages keep their identity, but the enqueue timestamp
  // is per-produce — queue wait is a property of this append.
  if (message.trace_id == 0) {
    const trace::TraceContext& ctx = trace::current();
    if (ctx.trace_id != 0) {
      message.trace_id = ctx.trace_id;
      message.parent_span = ctx.span_id;
    } else {
      message.trace_id = trace::new_trace_id();
    }
  }
  message.enqueue_us = trace_clock::now_us();
}

void Broker::notify_waiters() const {
  // Pairs with the waiter's register-then-recheck in wait_for_data: the
  // end-offset publish (sequenced before this load) and the waiter count
  // are both seq_cst, so either this produce observes the waiter here or
  // the waiter observes the new end offset on its post-registration
  // recheck. The uncontended produce pays exactly this one load.
  LOGLENS_SCHED_POINT("broker.notify_waiters");
  if (waiters_.load(std::memory_order_seq_cst) == 0) return;
  // Empty critical section: a waiter that saw no data but has not yet
  // parked still holds wait_mu_; acquiring it here means every registered
  // waiter is inside wait() (or past its recheck) when we notify.
  { RankedMutexLock lock(wait_mu_); }
  sched::cv_notify_all(wait_cv_);
}

Status Broker::produce(const std::string& topic, Message message,
                       std::optional<size_t> partition) {
  if (!produce_fault_retries(topic)) {
    return Status::Error("produce to '" + topic + "' failed after retries");
  }
  stamp_trace(message);
  TopicData* data = resolve_topic(topic, 1);
  auto& parts = data->partitions;
  size_t p;
  if (partition.has_value()) {
    if (*partition >= parts.size()) {
      return Status::Error("partition out of range");
    }
    p = *partition;
  } else {
    p = message.key.empty() ? 0 : fnv1a(message.key) % parts.size();
  }
  Partition& part = *parts[p];
  {
    RankedMutexLock lock(part.mu);
    if (message.seq < 0) {
      message.seq = static_cast<int64_t>(part.log.size());
    }
    part.log.push_back(std::move(message));
    part.end.store(part.log.size(), std::memory_order_seq_cst);
    LOGLENS_SCHED_POINT("broker.end_publish");
  }
  data->produced->inc();
  notify_waiters();
  return Status::Ok();
}

Status Broker::produce_batch(const std::string& topic,
                             std::vector<Message> batch,
                             std::vector<Message>* failed) {
  if (batch.empty()) return Status::Ok();
  TopicData* data = resolve_topic(topic, 1);
  const size_t nparts = data->partitions.size();
  // The per-message produce semantics (fault retries, trace stamping, key
  // hashing) stay exactly per-message; only the partition append is grouped.
  size_t nfailed = 0;
  size_t appended = 0;
  if (nparts == 1) {
    // Single-partition fast path: no routing pass. Retries and stamping
    // run per message (compacting over any failures), then one lock
    // appends the survivors in order.
    size_t keep = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!produce_fault_retries(topic)) {
        if (failed != nullptr) failed->push_back(std::move(batch[i]));
        ++nfailed;
        continue;
      }
      stamp_trace(batch[i]);
      if (keep != i) batch[keep] = std::move(batch[i]);
      ++keep;
    }
    if (keep > 0) {
      Partition& part = *data->partitions[0];
      RankedMutexLock lock(part.mu);
      part.log.reserve(part.log.size() + keep);
      for (size_t i = 0; i < keep; ++i) {
        Message& m = batch[i];
        if (m.seq < 0) m.seq = static_cast<int64_t>(part.log.size());
        part.log.push_back(std::move(m));
      }
      part.end.store(part.log.size(), std::memory_order_seq_cst);
      appended = keep;
    }
  } else {
    std::vector<std::vector<size_t>> route(nparts);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!produce_fault_retries(topic)) {
        if (failed != nullptr) failed->push_back(std::move(batch[i]));
        ++nfailed;
        continue;
      }
      stamp_trace(batch[i]);
      const Message& m = batch[i];
      route[m.key.empty() ? 0 : fnv1a(m.key) % nparts].push_back(i);
    }
    for (size_t p = 0; p < nparts; ++p) {
      if (route[p].empty()) continue;
      Partition& part = *data->partitions[p];
      RankedMutexLock lock(part.mu);
      part.log.reserve(part.log.size() + route[p].size());
      for (size_t i : route[p]) {
        Message& m = batch[i];
        if (m.seq < 0) m.seq = static_cast<int64_t>(part.log.size());
        part.log.push_back(std::move(m));
      }
      part.end.store(part.log.size(), std::memory_order_seq_cst);
      appended += route[p].size();
    }
  }
  if (appended > 0) {
    data->produced->inc(static_cast<uint64_t>(appended));
    data->batch_produces->inc();
    notify_waiters();
  }
  if (nfailed > 0) {
    return Status::Error("produce_batch to '" + topic + "': " +
                         std::to_string(nfailed) +
                         " message(s) failed after retries");
  }
  return Status::Ok();
}

bool Broker::fetch_fault(const std::string& topic) const {
  if (faults_ == nullptr) return false;
  // kDelay already slept inside check() (a stalled broker); kThrow maps to
  // a transient empty result the caller's next poll retries.
  if (faults_->check(kFaultSiteFetch) != FaultAction::kThrow) return false;
  metrics_
      ->counter("loglens_broker_fetch_errors_total", {{"topic", topic}},
                "Fetches failed transiently (injected)")
      .inc();
  return true;
}

std::vector<Message> Broker::copy_out(const TopicData& data, size_t partition,
                                      uint64_t offset, size_t max) {
  const Partition& part = *data.partitions[partition];
  std::vector<Message> out;
  RankedMutexLock lock(part.mu);
  const uint64_t end = part.log.size();
  if (offset >= end || max == 0) return out;
  const uint64_t take = std::min<uint64_t>(end - offset, max);
  out.reserve(take);
  for (uint64_t i = offset; i < offset + take; ++i) {
    out.push_back(part.log[i]);
  }
  data.fetched->inc(out.size());
  return out;
}

std::vector<Message> Broker::fetch(const std::string& topic, size_t partition,
                                   uint64_t offset, size_t max) const {
  if (fetch_fault(topic)) return {};
  const TopicData* data = find_topic(topic);
  if (data == nullptr || partition >= data->partitions.size()) return {};
  return copy_out(*data, partition, offset, max);
}

std::vector<Message> Broker::fetch_blocking(const std::string& topic,
                                            size_t partition, uint64_t offset,
                                            size_t max,
                                            int64_t timeout_ms) const {
  // Fault check once at entry (like a connection-level error); the re-fetch
  // after each wakeup is internal and must not re-roll the dice.
  if (fetch_fault(topic)) return {};
  const uint64_t deadline_us =
      trace_clock::now_us() +
      (timeout_ms > 0 ? static_cast<uint64_t>(timeout_ms) * 1000 : 0);
  for (;;) {
    const TopicData* data = find_topic(topic);
    if (data != nullptr && partition < data->partitions.size()) {
      auto out = copy_out(*data, partition, offset, max);
      if (!out.empty()) return out;
    }
    const uint64_t now_us = trace_clock::now_us();
    if (now_us >= deadline_us) return {};
    // Watch only the requested partition; sibling partitions are pinned to
    // the ignore sentinel so their traffic cannot spin this wait.
    const size_t nparts = data == nullptr ? 0 : data->partitions.size();
    std::vector<uint64_t> offsets(std::max(nparts, partition + 1),
                                  kIgnorePartition);
    offsets[partition] = offset;
    (void)wait_for_data(
        topic, offsets,
        static_cast<int64_t>((deadline_us - now_us + 999) / 1000));
  }
}

bool Broker::wait_for_data(const std::string& topic,
                           const std::vector<uint64_t>& offsets,
                           int64_t timeout_ms) const {
  auto has_data = [&]() {
    const TopicData* data = find_topic(topic);
    if (data == nullptr) return false;
    for (size_t p = 0; p < data->partitions.size(); ++p) {
      const uint64_t off = p < offsets.size() ? offsets[p] : 0;
      if (data->partitions[p]->end.load(std::memory_order_seq_cst) > off) {
        return true;
      }
    }
    return false;
  };
  LOGLENS_SCHED_POINT("broker.wait_check");
  if (has_data()) return true;
  if (timeout_ms <= 0) return false;
  const uint64_t deadline_us =
      trace_clock::now_us() + static_cast<uint64_t>(timeout_ms) * 1000;
  // Register, then recheck: a produce that published its end offset before
  // reading waiters_ == 0 is caught by the recheck below (both sides
  // seq_cst); one that read waiters_ > 0 takes wait_mu_ and notifies.
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  LOGLENS_SCHED_POINT("broker.wait_registered");
  bool ready = false;
  {
    RankedMutexLock lock(wait_mu_);
    for (;;) {
      // Explicit wait loop (not the predicate overload): the analysis
      // checks a predicate lambda as its own function, and the topic
      // re-resolve inside has_data takes mu_ — legal here only because
      // kBrokerWait < kBroker.
      if (has_data()) {
        ready = true;
        break;
      }
      const uint64_t now_us = trace_clock::now_us();
      if (now_us >= deadline_us) break;
      sched::cv_wait_for(wait_cv_, lock,
                         std::chrono::microseconds(deadline_us - now_us));
    }
  }
  waiters_.fetch_sub(1, std::memory_order_seq_cst);
  return ready;
}

size_t Broker::partition_count(const std::string& topic) const {
  const TopicData* data = find_topic(topic);
  return data == nullptr ? 0 : data->partitions.size();
}

uint64_t Broker::end_offset(const std::string& topic, size_t partition) const {
  LOGLENS_SCHED_POINT("broker.end_offset");
  const TopicData* data = find_topic(topic);
  if (data == nullptr || partition >= data->partitions.size()) return 0;
  return data->partitions[partition]->end.load(std::memory_order_acquire);
}

std::vector<std::string> Broker::topics() const {
  RankedMutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(topics_.size());
  for (const auto& [name, _] : topics_) out.push_back(name);
  return out;
}

ConsumerGroup::ConsumerGroup(Broker& broker, std::string group,
                             std::string topic)
    : broker_(broker), group_(std::move(group)), topic_(std::move(topic)) {}

size_t ConsumerGroup::join() {
  RankedMutexLock lock(mu_);
  return member_count_++;
}

std::vector<size_t> ConsumerGroup::assignment(size_t member) const {
  RankedMutexLock lock(mu_);
  std::vector<size_t> out;
  size_t partitions = broker_.partition_count(topic_);
  if (member_count_ == 0) return out;
  for (size_t p = member % member_count_; p < partitions;
       p += member_count_) {
    out.push_back(p);
  }
  return out;
}

std::vector<Message> ConsumerGroup::poll(size_t member, size_t max) {
  std::vector<size_t> mine = assignment(member);
  std::vector<Message> out;
  RankedMutexLock lock(mu_);
  for (size_t p : mine) {
    if (out.size() >= max) break;
    uint64_t& offset = offsets_[p];
    auto batch = broker_.fetch(topic_, p, offset, max - out.size());
    offset += batch.size();
    for (auto& m : batch) out.push_back(std::move(m));
  }
  return out;
}

size_t ConsumerGroup::members() const {
  RankedMutexLock lock(mu_);
  return member_count_;
}

Consumer::Consumer(Broker& broker, std::string topic,
                   MetricsRegistry* metrics)
    : broker_(broker), topic_(std::move(topic)) {
  offsets_.resize(std::max<size_t>(1, broker_.partition_count(topic_)), 0);
  if (metrics != nullptr) {
    MetricLabels labels{{"topic", topic_}};
    queue_depth_ = &metrics->gauge(
        "loglens_consumer_queue_depth", labels,
        "Messages buffered on the broker past this consumer's offsets");
    commits_total_ = &metrics->counter(
        "loglens_consumer_offset_commits_total", labels,
        "Batched offset commits (one per non-empty poll)");
    committed_records_total_ = &metrics->counter(
        "loglens_consumer_committed_records_total", labels,
        "Messages covered by batched offset commits");
  }
}

std::vector<Message> Consumer::poll(size_t max) {
  std::vector<Message> out;
  {
    RankedMutexLock lock(mu_);
    if (offsets_.size() < broker_.partition_count(topic_)) {
      offsets_.resize(broker_.partition_count(topic_), 0);
    }
    for (size_t p = 0; p < offsets_.size() && out.size() < max; ++p) {
      auto batch = broker_.fetch(topic_, p, offsets_[p], max - out.size());
      // Batched offset commit: the whole fetch advances this partition's
      // offset once, inside one critical section — not one bookkeeping
      // write per message.
      offsets_[p] += batch.size();
      consumed_ += batch.size();
      if (out.empty()) {
        out = std::move(batch);
      } else {
        out.reserve(out.size() + batch.size());
        for (auto& m : batch) out.push_back(std::move(m));
      }
    }
  }
  if (!out.empty() && commits_total_ != nullptr) {
    commits_total_->inc();
    committed_records_total_->inc(out.size());
  }
  update_queue_depth();
  return out;
}

std::vector<Message> Consumer::poll_blocking(size_t max, int64_t timeout_ms,
                                             size_t min_messages) {
  if (max == 0) return {};
  if (min_messages == 0) min_messages = 1;
  if (min_messages > max) min_messages = max;
  const uint64_t deadline_us =
      trace_clock::now_us() +
      (timeout_ms > 0 ? static_cast<uint64_t>(timeout_ms) * 1000 : 0);
  std::vector<Message> out = poll(max);
  // Accumulate toward the low watermark: park on the broker's waiter CV
  // (woken by a produce to any partition, not a timeout sweep) and drain
  // again, until either min_messages are in hand or the deadline passes.
  // The wait runs unlocked, so lag()/offsets() monitoring never stalls
  // behind it.
  while (out.size() < min_messages) {
    LOGLENS_SCHED_POINT("consumer.poll_park");
    const uint64_t now_us = trace_clock::now_us();
    if (now_us >= deadline_us) break;
    std::vector<uint64_t> offsets;
    {
      RankedMutexLock lock(mu_);
      offsets = offsets_;
    }
    (void)broker_.wait_for_data(
        topic_, offsets,
        static_cast<int64_t>((deadline_us - now_us + 999) / 1000));
    auto more = poll(max - out.size());
    if (out.empty()) {
      out = std::move(more);
    } else {
      for (auto& m : more) out.push_back(std::move(m));
    }
  }
  return out;
}

uint64_t Consumer::consumed() const {
  RankedMutexLock lock(mu_);
  return consumed_;
}

std::vector<uint64_t> Consumer::offsets() const {
  RankedMutexLock lock(mu_);
  return offsets_;
}

void Consumer::seek(const std::vector<uint64_t>& offsets) {
  RankedMutexLock lock(mu_);
  if (offsets_.size() < offsets.size()) offsets_.resize(offsets.size(), 0);
  for (size_t p = 0; p < offsets.size(); ++p) offsets_[p] = offsets[p];
}

bool Consumer::caught_up() const {
  RankedMutexLock lock(mu_);
  for (size_t p = 0; p < offsets_.size(); ++p) {
    if (offsets_[p] < broker_.end_offset(topic_, p)) return false;
  }
  return true;
}

uint64_t Consumer::lag() const {
  RankedMutexLock lock(mu_);
  uint64_t total = 0;
  size_t partitions = broker_.partition_count(topic_);
  for (size_t p = 0; p < partitions; ++p) {
    uint64_t end = broker_.end_offset(topic_, p);
    uint64_t offset = p < offsets_.size() ? offsets_[p] : 0;
    if (end > offset) total += end - offset;
  }
  return total;
}

void Consumer::update_queue_depth() {
  if (queue_depth_ == nullptr) return;
  queue_depth_->set(static_cast<int64_t>(lag()));
}

}  // namespace loglens
