// Message record shared by the broker and the streaming engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace loglens {

// Base of the typed in-process payload fast path. Stage boundaries ship
// structured records (parsed logs, anomalies) as a refcounted immutable
// object attached to the Message, so a consumer in the same process reads
// the producer's object instead of re-parsing `value` — and every broker
// fetch copies one shared_ptr instead of a serialized string. The JSON
// `value` remains the durable wire form (see service/wire.h for the
// concrete payload types and the JSON fallback rules).
struct MessagePayload {
  virtual ~MessagePayload() = default;
};

// Control-channel tags (the paper routes heartbeats on the same data channel
// "with a specific tag to indicate that it is a heartbeat message").
inline constexpr const char* kTagData = "";
inline constexpr const char* kTagHeartbeat = "heartbeat";
inline constexpr const char* kTagControl = "control";
// Periodic self-describing health reports (JobRunner metrics reports).
inline constexpr const char* kTagMetrics = "metrics";

struct Message {
  std::string key;        // partitioning key (e.g. event id or source)
  std::string value;      // payload (raw log line or serialized instruction)
  int64_t timestamp_ms = -1;  // log time, not wall time
  std::string tag;        // kTagData / kTagHeartbeat / kTagControl
  std::string source;     // originating log source
  // Delivery identity, not content: a per-source-monotonic sequence number.
  // The broker stamps it (with the partition append offset) on the first
  // produce of a message that carries none; pipeline stages that re-emit a
  // message derive the child's seq from the parent's, so one logical record
  // keeps one identity across stages. The detector task's at-least-once
  // dedup guard compares these (see docs/FAULTS.md). -1 = unassigned.
  int64_t seq = -1;

  // Trace metadata (trace/trace.h), stamped by Broker::produce: the trace
  // this message belongs to (inherited from the producer's TraceContext, or
  // fresh at the pipeline edge), the producer-side span downstream work
  // parents to, and the produce timestamp that lets the consumer attribute
  // queue wait. Like seq, redelivery preserves them. 0 = untraced.
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  uint64_t enqueue_us = 0;

  // Optional typed payload (immutable, shared across fetched copies). When
  // set, `value` may be empty — readers go through the wire.h decoders,
  // which prefer the payload and fall back to parsing `value`.
  std::shared_ptr<const MessagePayload> payload;

  // Equality is content equality; seq and the trace fields are delivery
  // metadata (a redelivered copy of a message is still the same message).
  friend bool operator==(const Message& a, const Message& b) {
    return a.key == b.key && a.value == b.value &&
           a.timestamp_ms == b.timestamp_ms && a.tag == b.tag &&
           a.source == b.source;
  }
};

}  // namespace loglens
