// Message record shared by the broker and the streaming engine.
#pragma once

#include <cstdint>
#include <string>

namespace loglens {

// Control-channel tags (the paper routes heartbeats on the same data channel
// "with a specific tag to indicate that it is a heartbeat message").
inline constexpr const char* kTagData = "";
inline constexpr const char* kTagHeartbeat = "heartbeat";
inline constexpr const char* kTagControl = "control";
// Periodic self-describing health reports (JobRunner metrics reports).
inline constexpr const char* kTagMetrics = "metrics";

struct Message {
  std::string key;        // partitioning key (e.g. event id or source)
  std::string value;      // payload (raw log line or serialized instruction)
  int64_t timestamp_ms = -1;  // log time, not wall time
  std::string tag;        // kTagData / kTagHeartbeat / kTagControl
  std::string source;     // originating log source

  friend bool operator==(const Message&, const Message&) = default;
};

}  // namespace loglens
