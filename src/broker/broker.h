// In-process message broker — the Kafka substitute.
//
// LogLens uses Kafka "for shipping logs and communicating among different
// components" (Section II-B): agents publish raw logs, the log manager and
// parser consume them, and control messages (model instructions, heartbeats)
// ride a tagged channel. This broker reproduces the delivery semantics those
// components rely on: named topics, a fixed partition count per topic,
// strictly ordered append-only partitions, offset-based consumption, and
// blocking polls with timeouts. Everything is in-process and thread-safe.
//
// Hot-path layout: the topic map is guarded by a registry mutex (kBroker)
// that appends and fetches touch only to resolve a stable TopicData pointer;
// each partition then carries its own mutex (kBrokerPartition), so producers
// and consumers of different partitions never contend, and a whole batch
// crosses one partition lock once (`produce_batch`/`fetch`). Blocking reads
// park on a broker-wide condition variable (kBrokerWait) that producers only
// signal when a waiter is registered — the uncontended produce pays one
// relaxed atomic load for it. Partition end offsets are additionally
// published as atomics so lag monitors read them without any lock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/message.h"
#include "common/hash.h"
#include "common/lock_rank.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "faults/fault_injector.h"
#include "metrics/metrics.h"

namespace loglens {

class Broker {
 public:
  // `metrics`: where produce/fetch rates are reported (nullptr -> global).
  // `faults`: optional injector consulted at kFaultSiteProduce /
  // kFaultSiteFetch (nullptr -> no injection, no overhead).
  explicit Broker(MetricsRegistry* metrics = nullptr,
                  FaultInjector* faults = nullptr)
      : metrics_(&registry_or_global(metrics)), faults_(faults) {}
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // Creates `topic` with `partitions` partitions; idempotent when the
  // partition count matches, an error otherwise.
  Status create_topic(const std::string& topic, size_t partitions = 1)
      LOGLENS_EXCLUDES(mu_);

  // Appends to the partition chosen by hash(key) (or to `partition` when
  // explicitly given). Creating on demand with 1 partition keeps simple
  // pipelines simple. A message arriving without a seq is stamped with its
  // partition append offset; a message that already carries one keeps it
  // (that is how a record's identity survives stage re-publication).
  //
  // Injected produce faults are absorbed here with a capped-backoff retry
  // loop — like a Kafka client's producer retries — so the dozens of
  // producer call sites stay oblivious. Only an exhausted retry budget
  // surfaces as an error Status.
  Status produce(const std::string& topic, Message message,
                 std::optional<size_t> partition = std::nullopt)
      LOGLENS_EXCLUDES(mu_);

  // Batch append: routes every message exactly like produce() (key hash,
  // seq stamping, trace stamping, per-message fault retries) but groups the
  // appends so each touched partition is locked once per call instead of
  // once per message. Messages whose produce-fault retry budget is spent
  // are moved into `*failed` (appended; never silently dropped) when it is
  // non-null, and the Status reports how many failed. Delivery order within
  // a partition follows batch order.
  Status produce_batch(const std::string& topic, std::vector<Message> batch,
                       std::vector<Message>* failed = nullptr)
      LOGLENS_EXCLUDES(mu_);

  // Copies up to `max` messages from [offset, ...) of a partition. Returns
  // fewer (possibly zero) when the partition is short. Injected fetch faults
  // surface as a delay (broker stall) or an empty result (transient fetch
  // error; offsets are caller-held, so the caller's next poll retries) —
  // never an exception. Only the one partition's mutex is taken.
  std::vector<Message> fetch(const std::string& topic, size_t partition,
                             uint64_t offset, size_t max) const
      LOGLENS_EXCLUDES(mu_);

  // Blocks until at least one message is available past `offset` or
  // `timeout_ms` elapses.
  std::vector<Message> fetch_blocking(const std::string& topic,
                                      size_t partition, uint64_t offset,
                                      size_t max, int64_t timeout_ms) const
      LOGLENS_EXCLUDES(mu_);

  // Blocks until any partition p of `topic` has end_offset > offsets[p]
  // (true), or `timeout_ms` elapses (false). Partitions beyond the offsets
  // vector count as offset 0; a topic that does not exist yet simply waits
  // (its first produce wakes the waiter). This is the condition-variable
  // wakeup the prefetching Consumer parks on instead of sleep-polling.
  bool wait_for_data(const std::string& topic,
                     const std::vector<uint64_t>& offsets,
                     int64_t timeout_ms) const LOGLENS_EXCLUDES(mu_);

  size_t partition_count(const std::string& topic) const LOGLENS_EXCLUDES(mu_);
  uint64_t end_offset(const std::string& topic, size_t partition) const
      LOGLENS_EXCLUDES(mu_);
  std::vector<std::string> topics() const LOGLENS_EXCLUDES(mu_);

 private:
  // One partition: an append-only ordered log under its own lock, with the
  // end offset mirrored in an atomic (published after the append) so
  // monitors and blocked waiters read progress without taking the lock.
  struct Partition {
    mutable RankedMutex mu{lock_rank::kBrokerPartition};
    std::vector<Message> log LOGLENS_GUARDED_BY(mu);
    std::atomic<uint64_t> end{0};
  };

  struct TopicData {
    // Fixed at creation; unique_ptr slots keep Partition addresses stable,
    // so callers may hold a Partition* after releasing mu_.
    std::vector<std::unique_ptr<Partition>> partitions;
    // Per-topic rate counters, resolved once at topic creation.
    Counter* produced = nullptr;
    Counter* fetched = nullptr;
    Counter* batch_produces = nullptr;
  };

  TopicData& topic_data_locked(const std::string& topic, size_t partitions)
      LOGLENS_REQUIRES(mu_);
  // Resolves (creating on demand) the topic and returns a stable pointer;
  // topics are never deleted, so the pointer outlives the lock.
  TopicData* resolve_topic(const std::string& topic, size_t partitions)
      LOGLENS_EXCLUDES(mu_);
  // Read-only resolve: nullptr when the topic does not exist.
  const TopicData* find_topic(const std::string& topic) const
      LOGLENS_EXCLUDES(mu_);
  // Copies [offset, offset+max) of one partition under that partition's
  // lock only, bumping the topic fetch counter.
  static std::vector<Message> copy_out(const TopicData& data, size_t partition,
                                       uint64_t offset, size_t max);
  // Runs the client-style produce retry loop against the produce fault
  // site; false when the retry budget is exhausted (message undeliverable).
  bool produce_fault_retries(const std::string& topic) LOGLENS_EXCLUDES(mu_);
  // Stamps trace identity at the pipeline edge (no-op when tracing is off).
  static void stamp_trace(Message& message);
  // Wakes blocked waiters iff any are registered (one relaxed load when
  // none are).
  void notify_waiters() const LOGLENS_EXCLUDES(wait_mu_);
  // Consults the fetch fault site; true when this fetch should fail empty.
  // Runs before any lock is taken (the injected delay must not stall the
  // broker).
  bool fetch_fault(const std::string& topic) const;

  MetricsRegistry* metrics_;
  FaultInjector* faults_ = nullptr;
  // Topic registry only: held to find/create topics and resolve partition
  // pointers, never across an append or a copy-out. Consumers (kConsumer)
  // and groups (kConsumerGroup) resolve topics while holding their own
  // locks, and topic creation registers metrics (kMetrics) under this one —
  // hence kConsumer* < kBroker < kMetrics.
  mutable RankedMutex mu_{lock_rank::kBroker};
  std::map<std::string, TopicData> topics_ LOGLENS_GUARDED_BY(mu_);

  // Blocking-read rendezvous. Waiters register themselves (waiters_), then
  // re-check partition end atomics under wait_mu_; producers take wait_mu_
  // empty-handed (kBrokerWait < kBroker lets a waiter re-resolve topics
  // while registered) and only when waiters_ > 0.
  // _any: the plain std::condition_variable only accepts
  // std::unique_lock<std::mutex>, which the analysis cannot see.
  mutable RankedMutex wait_mu_{lock_rank::kBrokerWait};
  mutable std::condition_variable_any wait_cv_;
  mutable std::atomic<int> waiters_{0};
};

// Coordinated consumption: members of one group share a topic's partitions
// (each partition is owned by exactly one member, Kafka-style), so a
// multi-process stage can split a topic's load without double-reading.
// Offsets live on the broker, keyed by (group, topic, partition).
class ConsumerGroup {
 public:
  ConsumerGroup(Broker& broker, std::string group, std::string topic);

  // Joins the group; returns a member id used for polling.
  size_t join() LOGLENS_EXCLUDES(mu_);

  // Polls the partitions assigned to `member` (round-robin assignment over
  // the current membership), advancing the shared offsets.
  std::vector<Message> poll(size_t member, size_t max) LOGLENS_EXCLUDES(mu_);

  size_t members() const LOGLENS_EXCLUDES(mu_);
  // Partitions currently assigned to `member`.
  std::vector<size_t> assignment(size_t member) const LOGLENS_EXCLUDES(mu_);

 private:
  Broker& broker_;
  std::string group_;
  std::string topic_;
  // poll() fetches from the broker while holding this, pinning
  // kConsumerGroup < kBroker.
  mutable RankedMutex mu_{lock_rank::kConsumerGroup};
  size_t member_count_ LOGLENS_GUARDED_BY(mu_) = 0;
  // partition -> next offset
  std::map<size_t, uint64_t> offsets_ LOGLENS_GUARDED_BY(mu_);
};

// A stateful reader tracking its own offsets across all partitions of one
// topic (a single-member consumer group). Thread-safe: the job runner polls
// from its driver thread while monitoring threads read lag()/offsets(), so
// the offset table is guarded by its own (kConsumer-ranked) mutex.
//
// poll_blocking is the backpressure-aware prefetch path: it parks on the
// broker's waiter condition variable (woken by a produce to *any*
// partition, not a timeout sweep) and keeps accumulating until the low
// watermark `min_messages` is reached or the deadline passes — batch
// formation under load, low latency when traffic is thin. The consumer
// never buffers internally, so `max` is the high watermark on memory it
// holds per poll. When constructed with a registry it exports
// `loglens_consumer_queue_depth{topic=...}` (lag after each poll) and
// offset-commit counters (one commit per non-empty poll — batched, not
// per-message).
class Consumer {
 public:
  Consumer(Broker& broker, std::string topic,
           MetricsRegistry* metrics = nullptr);

  // Round-robins over partitions, advancing offsets; returns up to `max`
  // messages (empty when caught up). Offsets advance once per poll under a
  // single critical section — the batched offset commit.
  std::vector<Message> poll(size_t max) LOGLENS_EXCLUDES(mu_);
  std::vector<Message> poll_blocking(size_t max, int64_t timeout_ms,
                                     size_t min_messages = 1)
      LOGLENS_EXCLUDES(mu_);

  // Total messages consumed so far.
  uint64_t consumed() const LOGLENS_EXCLUDES(mu_);
  // True when every partition is fully consumed *right now*.
  bool caught_up() const LOGLENS_EXCLUDES(mu_);
  // Messages currently buffered past this consumer's offsets (queue depth).
  uint64_t lag() const LOGLENS_EXCLUDES(mu_);

  // Offset checkpointing: the per-partition next-read offsets (a snapshot —
  // by value, since the table may grow concurrently), and a seek that
  // rewinds (or forwards) them. A consumer seeked to offsets saved before a
  // crash redelivers everything after that point, in order — at-least-once
  // replay (see docs/FAULTS.md). A short vector leaves the remaining
  // partitions untouched.
  std::vector<uint64_t> offsets() const LOGLENS_EXCLUDES(mu_);
  void seek(const std::vector<uint64_t>& offsets) LOGLENS_EXCLUDES(mu_);

 private:
  // Re-reads lag and updates the queue-depth gauge (no-op without metrics).
  void update_queue_depth() LOGLENS_EXCLUDES(mu_);

  Broker& broker_;
  std::string topic_;
  // Held while fetching (kConsumer < kBroker) so a poll's
  // read-fetch-advance is atomic against seeks and lag reads.
  mutable RankedMutex mu_{lock_rank::kConsumer};
  std::vector<uint64_t> offsets_ LOGLENS_GUARDED_BY(mu_);
  uint64_t consumed_ LOGLENS_GUARDED_BY(mu_) = 0;
  // Optional observability (resolved once at construction).
  Gauge* queue_depth_ = nullptr;
  Counter* commits_total_ = nullptr;
  Counter* committed_records_total_ = nullptr;
};

}  // namespace loglens
