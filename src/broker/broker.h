// In-process message broker — the Kafka substitute.
//
// LogLens uses Kafka "for shipping logs and communicating among different
// components" (Section II-B): agents publish raw logs, the log manager and
// parser consume them, and control messages (model instructions, heartbeats)
// ride a tagged channel. This broker reproduces the delivery semantics those
// components rely on: named topics, a fixed partition count per topic,
// strictly ordered append-only partitions, offset-based consumption, and
// blocking polls with timeouts. Everything is in-process and thread-safe.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "broker/message.h"
#include "common/hash.h"
#include "common/status.h"
#include "metrics/metrics.h"

namespace loglens {

class Broker {
 public:
  // `metrics`: where produce/fetch rates are reported (nullptr -> global).
  explicit Broker(MetricsRegistry* metrics = nullptr)
      : metrics_(&registry_or_global(metrics)) {}
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // Creates `topic` with `partitions` partitions; idempotent when the
  // partition count matches, an error otherwise.
  Status create_topic(const std::string& topic, size_t partitions = 1);

  // Appends to the partition chosen by hash(key) (or to `partition` when
  // explicitly given). Creating on demand with 1 partition keeps simple
  // pipelines simple.
  Status produce(const std::string& topic, Message message,
                 std::optional<size_t> partition = std::nullopt);

  // Copies up to `max` messages from [offset, ...) of a partition. Returns
  // fewer (possibly zero) when the partition is short.
  std::vector<Message> fetch(const std::string& topic, size_t partition,
                             uint64_t offset, size_t max) const;

  // Blocks until at least one message is available past `offset` or
  // `timeout_ms` elapses.
  std::vector<Message> fetch_blocking(const std::string& topic,
                                      size_t partition, uint64_t offset,
                                      size_t max, int64_t timeout_ms) const;

  size_t partition_count(const std::string& topic) const;
  uint64_t end_offset(const std::string& topic, size_t partition) const;
  std::vector<std::string> topics() const;

 private:
  struct TopicData {
    std::vector<std::vector<Message>> partitions;
    // Per-topic rate counters, resolved once at topic creation.
    Counter* produced = nullptr;
    Counter* fetched = nullptr;
  };

  TopicData& topic_data_locked(const std::string& topic, size_t partitions);

  MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::map<std::string, TopicData> topics_;
};

// Coordinated consumption: members of one group share a topic's partitions
// (each partition is owned by exactly one member, Kafka-style), so a
// multi-process stage can split a topic's load without double-reading.
// Offsets live on the broker, keyed by (group, topic, partition).
class ConsumerGroup {
 public:
  ConsumerGroup(Broker& broker, std::string group, std::string topic);

  // Joins the group; returns a member id used for polling.
  size_t join();

  // Polls the partitions assigned to `member` (round-robin assignment over
  // the current membership), advancing the shared offsets.
  std::vector<Message> poll(size_t member, size_t max);

  size_t members() const;
  // Partitions currently assigned to `member`.
  std::vector<size_t> assignment(size_t member) const;

 private:
  Broker& broker_;
  std::string group_;
  std::string topic_;
  mutable std::mutex mu_;
  size_t member_count_ = 0;
  std::map<size_t, uint64_t> offsets_;  // partition -> next offset
};

// A stateful reader tracking its own offsets across all partitions of one
// topic (a single-member consumer group).
class Consumer {
 public:
  Consumer(Broker& broker, std::string topic);

  // Round-robins over partitions, advancing offsets; returns up to `max`
  // messages (empty when caught up).
  std::vector<Message> poll(size_t max);
  std::vector<Message> poll_blocking(size_t max, int64_t timeout_ms);

  // Total messages consumed so far.
  uint64_t consumed() const { return consumed_; }
  // True when every partition is fully consumed *right now*.
  bool caught_up() const;
  // Messages currently buffered past this consumer's offsets (queue depth).
  uint64_t lag() const;

 private:
  Broker& broker_;
  std::string topic_;
  std::vector<uint64_t> offsets_;
  uint64_t consumed_ = 0;
};

}  // namespace loglens
