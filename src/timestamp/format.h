// SimpleDateFormat-subset timestamp formats (Section III-A2).
//
// The paper specifies timestamp formats in Java SimpleDateFormat notation
// ("yyyy/MM/dd HH:mm:ss.SSS"). A format compiles into per-token element
// sequences: formats may contain spaces, in which case they span multiple
// whitespace-separated tokens of the log ("Feb 23, 2016 09:00:31" is four
// tokens). Matching is structural — digit-width ranges, month/weekday name
// tables, literal separators — followed by calendar validation.
//
// Supported specifiers: yyyy yy MM M MMM MMMM dd d HH H hh h mm ss SSS
// EEE EEEE a. Any other character is a literal. Formats without a date
// default to 2000/01/01; without a year, to year 2000 (documented in
// DESIGN.md; the sequence detector only uses time *differences*, so the
// default never affects results).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace loglens {

class TimestampFormat {
 public:
  // Compiles `format`; fails on unsupported specifier runs (e.g. "yyy").
  static StatusOr<TimestampFormat> compile(std::string_view format);

  // Number of whitespace-separated tokens this format spans.
  size_t token_span() const { return token_elements_.size(); }

  // Attempts to match tokens[0 .. span-1]; on success returns the civil time.
  std::optional<CivilTime> match(
      const std::vector<std::string_view>& tokens, size_t start) const;

  const std::string& text() const { return text_; }

  // Cheap prefilter on the first token: character class of the first byte
  // and token length bounds. Used before running the full structural match.
  bool first_token_plausible(std::string_view token) const;

  // True when the first element of the first token is numeric (recognizer
  // buckets formats by first-byte class so a token only meets formats of
  // its own class).
  bool first_is_digit() const { return first_is_digit_; }

  // True when a token consisting solely of digits could match this format's
  // first token — i.e. every first-token element is numeric or a digit
  // literal ("d MMM yyyy ..." qualifies: its first token is a bare day).
  bool first_token_can_be_all_digits() const { return first_all_digits_; }

  // First-token length bounds, exposed so the recognizer can index formats
  // by token length instead of probing each one.
  size_t first_min_len() const { return first_min_len_; }
  size_t first_max_len() const { return first_max_len_; }

  // For digit-leading formats: the first non-digit literal of the first
  // token ('/', '-', '.', ':'), or 0 when the first token has none before
  // any non-literal element. If a digit-led token matches this format, the
  // elements before that literal consume only digits, so the token's first
  // non-digit character must BE the literal — a one-character test that
  // rules out an IP ("10.0.0.5", first non-digit '.') against every slash-
  // and colon-separated format without a structural match.
  char first_sep() const { return first_sep_; }

 private:
  struct Element {
    enum class Kind {
      kLiteral,    // single character
      kYear4, kYear2,
      kMonthNum,   // width_min..width_max digits
      kMonthName3, kMonthNameFull,
      kDay, kHour24, kHour12, kMinute, kSecond, kMillis,
      kWeekday3, kWeekdayFull,
      kAmPm,
    };
    Kind kind;
    char literal = 0;
    int width_min = 1;
    int width_max = 2;
  };

  bool match_token(std::string_view token, const std::vector<Element>& elems,
                   size_t ei, size_t pos, CivilTime& t, int& hour12,
                   int& ampm) const;

  std::string text_;
  std::vector<std::vector<Element>> token_elements_;
  bool first_is_digit_ = false;   // first element of first token is numeric
  bool first_all_digits_ = false;  // first token may be all digits
  char first_sep_ = 0;  // first non-digit literal of the first token, or 0
  size_t first_min_len_ = 0;
  size_t first_max_len_ = 0;
  bool has_year_ = false;
  bool has_date_ = false;
};

}  // namespace loglens
