// Timestamp recognition over token streams, with the paper's two
// optimizations: matched-format caching and keyword prefiltering
// (Section III-A2, evaluated in Section VI-A — up to 22x over linear scan,
// 19.4x of which comes from caching).
//
// The recognizer holds a list of compiled formats: the 89 predefined ones
// (or the user's own list, which replaces the predefined set per the paper),
// plus any user additions. `match_at` tries to recognize a timestamp
// starting at a given token, returning the number of tokens it spans and the
// unified epoch-milliseconds value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "timestamp/format.h"

namespace loglens {

struct TimestampMatch {
  size_t span = 0;         // tokens consumed
  int64_t epoch_ms = 0;    // unified value
  size_t format_index = 0; // which format matched
};

struct RecognizerOptions {
  bool use_cache = true;   // move-to-front cache of recently matched formats
  bool use_filter = true;  // keyword/shape prefilter before trying formats
};

struct RecognizerStats {
  uint64_t calls = 0;
  uint64_t cache_hits = 0;
  uint64_t filtered_out = 0;   // calls rejected by the keyword prefilter
  uint64_t formats_tried = 0;  // full structural matches attempted
};

class TimestampRecognizer {
 public:
  explicit TimestampRecognizer(RecognizerOptions options = {},
                               std::vector<std::string> user_formats = {});

  // The paper's 89 predefined SimpleDateFormat strings.
  static const std::vector<std::string>& predefined_formats();

  // Adds a format to the active list (paper: "users can also add new formats
  // in the predefined list"). Invalid formats are reported, not ignored.
  Status add_format(std::string_view format);

  // Tries to recognize a timestamp at tokens[index].
  std::optional<TimestampMatch> match_at(
      const std::vector<std::string_view>& tokens, size_t index);

  size_t format_count() const { return formats_.size(); }
  const RecognizerStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  bool keyword_filter_pass(std::string_view token) const;
  std::optional<TimestampMatch> try_format(
      const std::vector<std::string_view>& tokens, size_t index, size_t fi);
  // Files format `fi` into the first-byte-class scan lists below.
  void index_format(size_t fi);

  RecognizerOptions options_;
  std::vector<TimestampFormat> formats_;
  std::vector<size_t> cache_;  // format indices, most-recently-matched first
  // Linear-scan candidates, bucketed by the first token's leading byte
  // class. Digit-led formats are further indexed by first-token length
  // (digit_first_by_len_[L] holds every format whose first token can be L
  // chars), so a digit-led log token meets only the handful of formats its
  // length admits — not all 69 digit-led predefined formats. Alpha-led
  // formats stay a flat list: the keyword prefilter already rejects most
  // word tokens outright.
  std::vector<std::vector<size_t>> digit_first_by_len_;
  std::vector<size_t> alpha_first_;
  RecognizerStats stats_;
};

}  // namespace loglens
