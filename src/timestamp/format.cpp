#include "timestamp/format.h"

#include <array>
#include <cctype>

#include "common/strings.h"

namespace loglens {

namespace {

constexpr std::array<std::string_view, 12> kMonths = {
    "january", "february", "march",     "april",   "may",      "june",
    "july",    "august",   "september", "october", "november", "december"};

constexpr std::array<std::string_view, 7> kWeekdays = {
    "monday", "tuesday", "wednesday", "thursday",
    "friday", "saturday", "sunday"};

// Case-insensitive name lookup. `exact3` means the token piece is exactly the
// 3-letter abbreviation; otherwise the full name must match.
int name_index(std::string_view piece, bool exact3,
               const std::string_view* names, size_t count) {
  std::string lower = to_lower(piece);
  for (size_t i = 0; i < count; ++i) {
    if (exact3) {
      if (lower.size() == 3 && names[i].substr(0, 3) == lower) {
        return static_cast<int>(i);
      }
    } else if (lower == names[i]) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

StatusOr<TimestampFormat> TimestampFormat::compile(std::string_view format) {
  TimestampFormat out;
  out.text_ = std::string(format);
  for (std::string_view chunk : split_any(format, " ")) {
    std::vector<Element> elems;
    size_t i = 0;
    while (i < chunk.size()) {
      char c = chunk[i];
      size_t run = 1;
      while (i + run < chunk.size() && chunk[i + run] == c) ++run;
      Element e{Element::Kind::kLiteral, c, 1, 2};
      bool is_field = true;
      switch (c) {
        case 'y':
          if (run == 4) e.kind = Element::Kind::kYear4;
          else if (run == 2) e.kind = Element::Kind::kYear2;
          else return StatusOr<TimestampFormat>::Error(
                   "unsupported year width in format: " + std::string(format));
          out.has_year_ = true;
          break;
        case 'M':
          if (run <= 2) {
            e.kind = Element::Kind::kMonthNum;
            e.width_min = static_cast<int>(run);
            e.width_max = 2;
          } else if (run == 3) {
            e.kind = Element::Kind::kMonthName3;
          } else {
            e.kind = Element::Kind::kMonthNameFull;
          }
          out.has_date_ = true;
          break;
        case 'd':
          e.kind = Element::Kind::kDay;
          e.width_min = static_cast<int>(run);
          e.width_max = 2;
          out.has_date_ = true;
          break;
        case 'H':
          e.kind = Element::Kind::kHour24;
          e.width_min = static_cast<int>(run);
          e.width_max = 2;
          break;
        case 'h':
          e.kind = Element::Kind::kHour12;
          e.width_min = static_cast<int>(run);
          e.width_max = 2;
          break;
        case 'm':
          e.kind = Element::Kind::kMinute;
          e.width_min = static_cast<int>(run);
          e.width_max = 2;
          break;
        case 's':
          e.kind = Element::Kind::kSecond;
          e.width_min = static_cast<int>(run);
          e.width_max = 2;
          break;
        case 'S':
          e.kind = Element::Kind::kMillis;
          e.width_min = static_cast<int>(run);
          e.width_max = 3;
          break;
        case 'E':
          e.kind = run >= 4 ? Element::Kind::kWeekdayFull
                            : Element::Kind::kWeekday3;
          break;
        case 'a':
          e.kind = Element::Kind::kAmPm;
          break;
        default:
          is_field = false;
          // Emit each literal character separately.
          for (size_t k = 0; k < run; ++k) {
            elems.push_back({Element::Kind::kLiteral, c, 1, 1});
          }
          break;
      }
      if (is_field) elems.push_back(e);
      i += run;
    }
    if (!elems.empty()) out.token_elements_.push_back(std::move(elems));
  }
  if (out.token_elements_.empty()) {
    return StatusOr<TimestampFormat>::Error("empty timestamp format");
  }

  // Precompute the first-token prefilter data.
  const auto& first = out.token_elements_.front();
  size_t min_len = 0;
  size_t max_len = 0;
  for (const auto& e : first) {
    switch (e.kind) {
      case Element::Kind::kLiteral:
        min_len += 1;
        max_len += 1;
        break;
      case Element::Kind::kYear4:
        min_len += 4;
        max_len += 4;
        break;
      case Element::Kind::kYear2:
        min_len += 2;
        max_len += 2;
        break;
      case Element::Kind::kMonthName3:
      case Element::Kind::kWeekday3:
        min_len += 3;
        max_len += 3;
        break;
      case Element::Kind::kMonthNameFull:
        min_len += 3;
        max_len += 9;
        break;
      case Element::Kind::kWeekdayFull:
        min_len += 6;
        max_len += 9;
        break;
      case Element::Kind::kAmPm:
        min_len += 2;
        max_len += 2;
        break;
      default:
        min_len += static_cast<size_t>(e.width_min);
        max_len += static_cast<size_t>(e.width_max);
        break;
    }
  }
  out.first_min_len_ = min_len;
  out.first_max_len_ = max_len;
  out.first_all_digits_ = true;
  for (const auto& e : first) {
    const bool numeric =
        e.kind == Element::Kind::kYear4 || e.kind == Element::Kind::kYear2 ||
        e.kind == Element::Kind::kMonthNum || e.kind == Element::Kind::kDay ||
        e.kind == Element::Kind::kHour24 || e.kind == Element::Kind::kHour12 ||
        e.kind == Element::Kind::kMinute || e.kind == Element::Kind::kSecond ||
        e.kind == Element::Kind::kMillis ||
        (e.kind == Element::Kind::kLiteral &&
         std::isdigit(static_cast<unsigned char>(e.literal)) != 0);
    if (!numeric) {
      out.first_all_digits_ = false;
      break;
    }
  }
  // First non-digit literal reachable through numeric elements only: until
  // a name/AM-PM element intervenes, every matched character before the
  // literal is a digit, so the literal pins the token's first non-digit.
  for (const auto& e : first) {
    const bool numeric =
        e.kind == Element::Kind::kYear4 || e.kind == Element::Kind::kYear2 ||
        e.kind == Element::Kind::kMonthNum || e.kind == Element::Kind::kDay ||
        e.kind == Element::Kind::kHour24 || e.kind == Element::Kind::kHour12 ||
        e.kind == Element::Kind::kMinute || e.kind == Element::Kind::kSecond ||
        e.kind == Element::Kind::kMillis;
    if (numeric) continue;
    if (e.kind == Element::Kind::kLiteral &&
        std::isdigit(static_cast<unsigned char>(e.literal)) == 0) {
      out.first_sep_ = e.literal;
    }
    break;
  }
  const auto& fe = first.front();
  out.first_is_digit_ =
      fe.kind != Element::Kind::kMonthName3 &&
      fe.kind != Element::Kind::kMonthNameFull &&
      fe.kind != Element::Kind::kWeekday3 &&
      fe.kind != Element::Kind::kWeekdayFull &&
      fe.kind != Element::Kind::kAmPm &&
      !(fe.kind == Element::Kind::kLiteral &&
        !std::isdigit(static_cast<unsigned char>(fe.literal)));
  return out;
}

bool TimestampFormat::first_token_plausible(std::string_view token) const {
  if (token.size() < first_min_len_ || token.size() > first_max_len_) {
    return false;
  }
  if (token.empty()) return false;
  bool starts_digit = std::isdigit(static_cast<unsigned char>(token[0])) != 0;
  return starts_digit == first_is_digit_;
}

bool TimestampFormat::match_token(std::string_view token,
                                  const std::vector<Element>& elems, size_t ei,
                                  size_t pos, CivilTime& t, int& hour12,
                                  int& ampm) const {
  if (ei == elems.size()) return pos == token.size();
  const Element& e = elems[ei];

  auto try_number = [&](int lo, int hi, int& slot) {
    // Greedy: widest digit run first, then backtrack.
    for (int w = e.width_max; w >= e.width_min; --w) {
      if (pos + static_cast<size_t>(w) > token.size()) continue;
      std::string_view piece = token.substr(pos, static_cast<size_t>(w));
      int v = parse_small_int(piece);
      if (v < lo || v > hi) continue;
      int saved = slot;
      slot = v;
      if (match_token(token, elems, ei + 1, pos + static_cast<size_t>(w), t,
                      hour12, ampm)) {
        return true;
      }
      slot = saved;
    }
    return false;
  };

  switch (e.kind) {
    case Element::Kind::kLiteral:
      return pos < token.size() && token[pos] == e.literal &&
             match_token(token, elems, ei + 1, pos + 1, t, hour12, ampm);
    case Element::Kind::kYear4: {
      if (pos + 4 > token.size()) return false;
      int v = parse_small_int(token.substr(pos, 4));
      if (v < 1900 || v > 2199) return false;
      int saved = t.year;
      t.year = v;
      if (match_token(token, elems, ei + 1, pos + 4, t, hour12, ampm)) {
        return true;
      }
      t.year = saved;
      return false;
    }
    case Element::Kind::kYear2: {
      if (pos + 2 > token.size()) return false;
      int v = parse_small_int(token.substr(pos, 2));
      if (v < 0) return false;
      int saved = t.year;
      t.year = 2000 + v;
      if (match_token(token, elems, ei + 1, pos + 2, t, hour12, ampm)) {
        return true;
      }
      t.year = saved;
      return false;
    }
    case Element::Kind::kMonthNum:
      return try_number(1, 12, t.month);
    case Element::Kind::kDay:
      return try_number(1, 31, t.day);
    case Element::Kind::kHour24:
      return try_number(0, 23, t.hour);
    case Element::Kind::kHour12:
      return try_number(1, 12, hour12);
    case Element::Kind::kMinute:
      return try_number(0, 59, t.minute);
    case Element::Kind::kSecond:
      return try_number(0, 59, t.second);
    case Element::Kind::kMillis:
      return try_number(0, 999, t.millis);
    case Element::Kind::kMonthName3:
    case Element::Kind::kMonthNameFull: {
      bool exact3 = e.kind == Element::Kind::kMonthName3;
      // Try name lengths longest-first for full names; 3 for abbreviations.
      size_t max_take = exact3 ? 3 : 9;
      size_t min_take = 3;
      for (size_t take = max_take; take >= min_take; --take) {
        if (pos + take > token.size()) continue;
        int idx = name_index(token.substr(pos, take), exact3, kMonths.data(),
                             kMonths.size());
        if (idx < 0) continue;
        int saved = t.month;
        t.month = idx + 1;
        if (match_token(token, elems, ei + 1, pos + take, t, hour12, ampm)) {
          return true;
        }
        t.month = saved;
        if (exact3) break;
      }
      return false;
    }
    case Element::Kind::kWeekday3:
    case Element::Kind::kWeekdayFull: {
      bool exact3 = e.kind == Element::Kind::kWeekday3;
      size_t max_take = exact3 ? 3 : 9;
      for (size_t take = max_take; take >= 3; --take) {
        if (pos + take > token.size()) continue;
        if (name_index(token.substr(pos, take), exact3, kWeekdays.data(),
                       kWeekdays.size()) < 0) {
          continue;
        }
        if (match_token(token, elems, ei + 1, pos + take, t, hour12, ampm)) {
          return true;
        }
        if (exact3) break;
      }
      return false;
    }
    case Element::Kind::kAmPm: {
      if (pos + 2 > token.size()) return false;
      std::string lower = to_lower(token.substr(pos, 2));
      int v;
      if (lower == "am") v = 0;
      else if (lower == "pm") v = 1;
      else return false;
      int saved = ampm;
      ampm = v;
      if (match_token(token, elems, ei + 1, pos + 2, t, hour12, ampm)) {
        return true;
      }
      ampm = saved;
      return false;
    }
  }
  return false;
}

std::optional<CivilTime> TimestampFormat::match(
    const std::vector<std::string_view>& tokens, size_t start) const {
  if (start + token_elements_.size() > tokens.size()) return std::nullopt;
  CivilTime t;
  t.year = 2000;
  t.month = 1;
  t.day = 1;
  int hour12 = -1;
  int ampm = -1;
  for (size_t k = 0; k < token_elements_.size(); ++k) {
    if (!match_token(tokens[start + k], token_elements_[k], 0, 0, t, hour12,
                     ampm)) {
      return std::nullopt;
    }
  }
  if (hour12 >= 0) {
    if (ampm < 0) return std::nullopt;  // 12-hour clock requires AM/PM
    t.hour = (hour12 % 12) + (ampm == 1 ? 12 : 0);
  }
  if (!is_valid_civil(t)) return std::nullopt;
  return t;
}

}  // namespace loglens
