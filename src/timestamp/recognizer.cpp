#include "timestamp/recognizer.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace loglens {

namespace {

std::vector<std::string> build_predefined() {
  std::vector<std::string> out;

  // Group A (48): numeric dates in four orders x three separators, with four
  // time shapes. First-listed order wins ties, so the canonical
  // "yyyy/MM/dd ..." is preferred over the ambiguous "yyyy/dd/MM ...".
  const char* date_orders[] = {"yyyy{0}MM{0}dd", "MM{0}dd{0}yyyy",
                               "dd{0}MM{0}yyyy", "yyyy{0}dd{0}MM"};
  const char* seps = "/-.";
  const char* times_a[] = {"HH:mm:ss", "HH:mm:ss.SSS", "HH:mm:ss,SSS",
                           "HH:mm"};
  for (const char* order : date_orders) {
    for (size_t s = 0; s < 3; ++s) {
      std::string date = replace_all(order, "{0}", std::string(1, seps[s]));
      for (const char* t : times_a) {
        out.push_back(date + " " + t);
      }
    }
  }

  // Group B (12): month-name dates.
  const char* name_dates[] = {"MMM d, yyyy", "MMM d yyyy", "d MMM yyyy",
                              "yyyy MMM d"};
  const char* times_b[] = {"HH:mm:ss", "HH:mm:ss.SSS", "HH:mm"};
  for (const char* d : name_dates) {
    for (const char* t : times_b) {
      out.push_back(std::string(d) + " " + t);
    }
  }

  // Group C (12): dateless month/day forms (paper example: "MM/dd HH:mm:ss",
  // "dd/MM HH:mm:ss:SSS").
  const char* short_dates[] = {"MM/dd", "dd/MM", "MM-dd", "dd-MM"};
  const char* times_c[] = {"HH:mm:ss", "HH:mm:ss.SSS", "HH:mm:ss:SSS"};
  for (const char* d : short_dates) {
    for (const char* t : times_c) {
      out.push_back(std::string(d) + " " + t);
    }
  }

  // Group D (4): syslog-style month-name without year.
  for (const char* d : {"MMM d", "MMM dd"}) {
    for (const char* t : {"HH:mm:ss", "HH:mm:ss.SSS"}) {
      out.push_back(std::string(d) + " " + t);
    }
  }

  // Group E (2): single-token ISO 8601.
  out.push_back("yyyy-MM-ddTHH:mm:ss");
  out.push_back("yyyy-MM-ddTHH:mm:ss.SSS");

  // Group F (3): ctime / RFC-822 style with weekday.
  out.push_back("EEE MMM d HH:mm:ss yyyy");
  out.push_back("EEE MMM dd HH:mm:ss yyyy");
  out.push_back("EEE d MMM yyyy HH:mm:ss");

  // Group G (4): 12-hour clocks.
  out.push_back("MM/dd/yyyy hh:mm:ss a");
  out.push_back("dd/MM/yyyy hh:mm:ss a");
  out.push_back("MM/dd/yyyy hh:mm a");
  out.push_back("MMM d, yyyy hh:mm:ss a");

  // Group H (3): time-only.
  out.push_back("HH:mm:ss");
  out.push_back("HH:mm:ss.SSS");
  out.push_back("HH:mm:ss,SSS");

  // Group I (1): Apache common-log-format timestamp.
  out.push_back("dd/MMM/yyyy:HH:mm:ss");

  return out;  // 48 + 12 + 12 + 4 + 2 + 3 + 4 + 3 + 1 = 89
}

}  // namespace

const std::vector<std::string>& TimestampRecognizer::predefined_formats() {
  static const std::vector<std::string> kFormats = build_predefined();
  return kFormats;
}

TimestampRecognizer::TimestampRecognizer(RecognizerOptions options,
                                         std::vector<std::string> user_formats)
    : options_(options) {
  // Per the paper: user-specified formats replace the predefined list; the
  // predefined list is the fallback when the user provides none.
  const std::vector<std::string>& sources =
      user_formats.empty() ? predefined_formats() : user_formats;
  formats_.reserve(sources.size());
  for (const auto& f : sources) {
    auto compiled = TimestampFormat::compile(f);
    if (!compiled.ok()) std::abort();  // predefined formats must compile
    formats_.push_back(std::move(compiled.value()));
    index_format(formats_.size() - 1);
  }
}

void TimestampRecognizer::index_format(size_t fi) {
  const TimestampFormat& f = formats_[fi];
  if (!f.first_is_digit()) {
    alpha_first_.push_back(fi);
    return;
  }
  if (f.first_max_len() >= digit_first_by_len_.size()) {
    digit_first_by_len_.resize(f.first_max_len() + 1);
  }
  for (size_t len = f.first_min_len(); len <= f.first_max_len(); ++len) {
    digit_first_by_len_[len].push_back(fi);
  }
}

Status TimestampRecognizer::add_format(std::string_view format) {
  auto compiled = TimestampFormat::compile(format);
  if (!compiled.ok()) return compiled.status();
  formats_.push_back(std::move(compiled.value()));
  index_format(formats_.size() - 1);
  return Status::Ok();
}

bool TimestampRecognizer::keyword_filter_pass(std::string_view token) const {
  if (token.empty()) return false;
  // Tokens starting with a digit can open any numeric format.
  if (std::isdigit(static_cast<unsigned char>(token[0])) != 0) return true;
  // Otherwise the token must begin with a month or weekday keyword.
  if (token.size() < 3) return false;
  static constexpr const char* kKeywords[] = {
      "jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep",
      "oct", "nov", "dec", "mon", "tue", "wed", "thu", "fri", "sat", "sun"};
  char a = ascii_lower(token[0]);
  if (a < 'a' || a > 'z') return false;
  // First-letter bitmask over the 19 keywords: the typical word token
  // ("user", "error", ...) is rejected in one shift instead of walking the
  // whole list three characters at a time.
  static constexpr uint32_t kFirstLetters = [] {
    uint32_t mask = 0;
    for (const char* k : kKeywords) mask |= 1u << (k[0] - 'a');
    return mask;
  }();
  if (((kFirstLetters >> (a - 'a')) & 1u) == 0) return false;
  char b = ascii_lower(token[1]);
  char c = ascii_lower(token[2]);
  for (const char* k : kKeywords) {
    if (a == k[0] && b == k[1] && c == k[2]) return true;
  }
  return false;
}

std::optional<TimestampMatch> TimestampRecognizer::try_format(
    const std::vector<std::string_view>& tokens, size_t index, size_t fi) {
  ++stats_.formats_tried;
  auto civil = formats_[fi].match(tokens, index);
  if (!civil) return std::nullopt;
  return TimestampMatch{formats_[fi].token_span(), to_epoch_millis(*civil),
                        fi};
}

std::optional<TimestampMatch> TimestampRecognizer::match_at(
    const std::vector<std::string_view>& tokens, size_t index) {
  ++stats_.calls;
  std::string_view first = tokens[index];
  const bool starts_digit =
      !first.empty() &&
      std::isdigit(static_cast<unsigned char>(first[0])) != 0;
  // For digit-led tokens, the first non-digit character (0 when the token
  // is purely digits). A format whose first token has a literal separator
  // can only match when that separator IS this character — see
  // TimestampFormat::first_sep. This is what rejects the bulk of
  // digit-leading non-timestamp tokens (IPs, versions, counters) without a
  // structural match attempt.
  char sep = 0;
  if (starts_digit) {
    for (char c : first) {
      if (c < '0' || c > '9') {
        sep = c;
        break;
      }
    }
  }
  if (options_.use_filter && !keyword_filter_pass(first)) {
    ++stats_.filtered_out;
    return std::nullopt;
  }
  auto plausible = [&](const TimestampFormat& f) {
    if (!options_.use_filter) return true;
    if (!f.first_token_plausible(first)) return false;
    return !starts_digit || f.first_sep() == 0 || f.first_sep() == sep;
  };

  // Cache pass: formats that matched recently, most recent first.
  if (options_.use_cache) {
    for (size_t ci = 0; ci < cache_.size(); ++ci) {
      size_t fi = cache_[ci];
      if (!plausible(formats_[fi])) continue;
      if (auto m = try_format(tokens, index, fi)) {
        ++stats_.cache_hits;
        // Move to front.
        cache_.erase(cache_.begin() + static_cast<ptrdiff_t>(ci));
        cache_.insert(cache_.begin(), fi);
        return m;
      }
    }
  }

  // Linear scan over non-cached formats. With the prefilter on, only the
  // bucket matching the token's leading byte class is walked (a digit-led
  // token can never open a month-name format, and vice versa), and digit
  // buckets are further keyed by token length.
  static const std::vector<size_t> kNone;
  const std::vector<size_t>* pool = nullptr;
  std::vector<size_t> all;
  if (options_.use_filter) {
    if (starts_digit) {
      pool = first.size() < digit_first_by_len_.size()
                 ? &digit_first_by_len_[first.size()]
                 : &kNone;
    } else {
      pool = &alpha_first_;
    }
  } else {
    all.resize(formats_.size());
    for (size_t fi = 0; fi < formats_.size(); ++fi) all[fi] = fi;
    pool = &all;
  }
  for (size_t fi : *pool) {
    if (options_.use_cache &&
        std::find(cache_.begin(), cache_.end(), fi) != cache_.end()) {
      continue;
    }
    if (!plausible(formats_[fi])) continue;
    if (auto m = try_format(tokens, index, fi)) {
      if (options_.use_cache) {
        cache_.insert(cache_.begin(), fi);
        if (cache_.size() > 16) cache_.pop_back();
      }
      return m;
    }
  }
  return std::nullopt;
}

}  // namespace loglens
