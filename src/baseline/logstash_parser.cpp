#include "baseline/logstash_parser.h"

#include <cstdio>

#include "common/strings.h"

namespace loglens {

namespace {

// Escapes a literal token for inclusion in a regex.
void append_escaped(std::string& out, std::string_view literal) {
  for (char c : literal) {
    switch (c) {
      case '\\': case '.': case '[': case ']': case '(': case ')':
      case '{': case '}': case '*': case '+': case '?': case '|':
      case '^': case '$':
        out.push_back('\\');
        [[fallthrough]];
      default:
        out.push_back(c);
    }
  }
}

std::string_view datatype_regex(Datatype t) {
  switch (t) {
    case Datatype::kWord: return "[a-zA-Z]+";
    case Datatype::kNumber: return "-?[0-9]+(?:\\.[0-9]+)?";
    case Datatype::kIp:
      return "[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}";
    case Datatype::kNotSpace: return "\\S+";
    case Datatype::kDateTime:
      return "[0-9]{4}/[0-9]{2}/[0-9]{2} "
             "[0-9]{2}:[0-9]{2}:[0-9]{2}\\.[0-9]{3}";
    case Datatype::kAnyData: return ".*";
  }
  return "\\S+";
}

}  // namespace

std::string LogstashParser::pattern_to_regex(const GrokPattern& pattern) {
  std::string out;
  bool first = true;
  bool prev_wild = false;
  for (const auto& t : pattern.tokens()) {
    const bool wild = t.is_field && t.field.type == Datatype::kAnyData;
    // ANYDATA may span zero tokens, so it absorbs its surrounding spaces
    // (\s*(.*?)\s*) instead of being joined with a mandatory ' '.
    if (!first && !wild && !prev_wild) out.push_back(' ');
    first = false;
    prev_wild = wild;
    if (wild) {
      out.append("\\s*(.*?)\\s*");
    } else if (t.is_field) {
      out.push_back('(');
      out.append(datatype_regex(t.field.type));
      out.push_back(')');
    } else {
      append_escaped(out, t.literal);
    }
  }
  return out;
}

LogstashParser::LogstashParser(const std::vector<GrokPattern>& model) {
  compiled_.reserve(model.size());
  for (const auto& p : model) {
    Compiled c;
    c.pattern_id = p.id();
    std::string source = pattern_to_regex(p);
    auto re = Regex::compile(source);
    if (!re.ok()) {
      // A drop silently shrinks the baseline and skews Table IV; make it
      // loud and countable instead of invisible.
      std::fprintf(stderr,
                   "loglens: logstash baseline dropped pattern %d "
                   "(regex %s): %s\n",
                   p.id(), source.c_str(), re.status().message().c_str());
      ++stats_.patterns_dropped;
      continue;
    }
    c.regex = std::move(re.value());
    for (const auto& t : p.tokens()) {
      if (t.is_field) c.field_names.push_back(t.field.name);
    }
    compiled_.push_back(std::move(c));
  }
}

ParseOutcome LogstashParser::parse(const TokenizedLog& log) {
  ++stats_.logs;
  // Rejoin the normalized tokens; both engines see the same text.
  std::vector<std::string_view> views;
  views.reserve(log.tokens.size());
  for (const auto& t : log.tokens) views.push_back(t.text);
  std::string line = join(views, " ");

  for (auto& c : compiled_) {
    ++stats_.regex_attempts;
    RegexMatch m;
    if (!c.regex.full_match(line, m)) continue;
    ParsedLog parsed;
    parsed.pattern_id = c.pattern_id;
    parsed.timestamp_ms = log.timestamp_ms;
    parsed.raw = log.raw;
    for (size_t g = 0; g < c.field_names.size() && g < m.groups.size(); ++g) {
      parsed.fields.emplace_back(c.field_names[g],
                                 Json(m.group_text(line, g)));
    }
    return ParseOutcome{std::move(parsed)};
  }
  ++stats_.unparsed;
  return {};
}

size_t LogstashParser::resident_bytes() const {
  size_t total = sizeof(*this);
  for (const auto& c : compiled_) {
    total += sizeof(c) + c.regex.compiled_bytes();
    for (const auto& f : c.field_names) total += f.capacity();
  }
  return total;
}

}  // namespace loglens
