// Logstash-style GROK parser — the baseline of Table IV.
//
// Logstash parses a log by compiling every GROK pattern to a regular
// expression and trying them one after another until one matches. There is
// no signature index and no candidate grouping, so the per-log cost grows
// linearly with the number of patterns — which is exactly why the paper's
// Table IV shows it collapsing on the 3234- and 2012-pattern datasets.
//
// Our baseline reproduces that algorithmic shape on top of regexlite. Both
// engines consume the same preprocessed token stream (rejoined with single
// spaces, timestamps unified), so the comparison isolates the matching
// strategy rather than tokenization differences; see DESIGN.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grok/pattern.h"
#include "parser/log_parser.h"
#include "regexlite/regex.h"

namespace loglens {

struct LogstashStats {
  uint64_t logs = 0;
  uint64_t unparsed = 0;
  uint64_t regex_attempts = 0;
  // Model patterns whose generated regex failed to compile at construction.
  // Each drop silently shrinks the baseline's pattern set — skewing the
  // Table IV comparison — so it is logged to stderr and counted here for
  // tests to assert zero. A property of construction, not of a measurement
  // window: reset_stats() preserves it.
  uint64_t patterns_dropped = 0;
};

class LogstashParser {
 public:
  explicit LogstashParser(const std::vector<GrokPattern>& model);

  // Linear scan: first pattern whose compiled regex full-matches wins.
  ParseOutcome parse(const TokenizedLog& log);

  // The regex source compiled for one pattern (exposed for tests).
  static std::string pattern_to_regex(const GrokPattern& pattern);

  const LogstashStats& stats() const { return stats_; }
  void reset_stats() {
    const uint64_t dropped = stats_.patterns_dropped;
    stats_ = {};
    stats_.patterns_dropped = dropped;
  }
  size_t pattern_count() const { return compiled_.size(); }

  // Resident bytes of the compiled regex set (memory experiment).
  size_t resident_bytes() const;

 private:
  struct Compiled {
    int pattern_id = 0;
    Regex regex;
    std::vector<std::string> field_names;  // capture-group order
  };

  std::vector<Compiled> compiled_;
  LogstashStats stats_;
};

}  // namespace loglens
