// Wire encoding between pipeline stages.
//
// The parser stage publishes parsed logs (and stateless anomalies) to the
// "parsed" topic; the detector stage publishes anomalies to the "anomalies"
// topic. Single-line JSON in Message::value is the durable wire form; the
// hot path between in-process stages additionally rides the broker's typed
// payload fast path (broker/message.h):
//
//  - parsed logs travel payload-only (`value` empty): the parser moves its
//    ParsedLog into a refcounted ParsedPayload and the detector reads it by
//    pointer — no JSON dump, no JSON parse, no deep copy per fetch. A
//    parsed message that somehow arrives without a payload (a hand-built
//    test message, a future cross-process transport) falls back to the JSON
//    decoder.
//  - anomalies keep the serialized `value` (they are rare, durable output —
//    the anomaly store rebuilds from the topic after recovery, and tests
//    compare values) and carry the payload besides, so in-process readers
//    still skip the re-parse.
//
// Decoders always prefer the payload and fall back to parsing `value`.
#pragma once

#include <memory>
#include <string>

#include "broker/message.h"
#include "common/status.h"
#include "parser/log_parser.h"
#include "storage/anomaly.h"

namespace loglens {

inline constexpr const char* kTagAnomaly = "anomaly";

struct ParsedPayload final : MessagePayload {
  explicit ParsedPayload(ParsedLog l) : log(std::move(l)) {}
  ParsedLog log;
};

struct AnomalyPayload final : MessagePayload {
  explicit AnomalyPayload(Anomaly a) : anomaly(std::move(a)) {}
  Anomaly anomaly;
};

// ParsedLog <-> Message. `key` is the event-id content when known (for keyed
// partitioning in the detector stage), otherwise the source. The && overload
// is the parser's hot path (moves the log into the payload); the const&
// overload copies.
Message parsed_to_message(ParsedLog&& log, std::string key,
                          std::string source);
Message parsed_to_message(const ParsedLog& log, std::string key,
                          std::string source);
StatusOr<ParsedLog> parsed_from_message(const Message& m);
// Zero-copy read: the payload's ParsedLog, or nullptr when this message
// carries none (then go through parsed_from_message).
const ParsedLog* parsed_payload_view(const Message& m);

Message anomaly_to_message(const Anomaly& anomaly);
StatusOr<Anomaly> anomaly_from_message(const Message& m);
const Anomaly* anomaly_payload_view(const Message& m);

}  // namespace loglens
