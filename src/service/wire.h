// Wire encoding between pipeline stages.
//
// The parser stage publishes parsed logs (and stateless anomalies) to the
// "parsed" topic; the detector stage publishes anomalies to the "anomalies"
// topic. Payloads are single-line JSON.
#pragma once

#include <string>

#include "broker/message.h"
#include "common/status.h"
#include "parser/log_parser.h"
#include "storage/anomaly.h"

namespace loglens {

inline constexpr const char* kTagAnomaly = "anomaly";

// ParsedLog <-> Message. `key` is the event-id content when known (for keyed
// partitioning in the detector stage), otherwise the source.
Message parsed_to_message(const ParsedLog& log, std::string key,
                          std::string source);
StatusOr<ParsedLog> parsed_from_message(const Message& m);

Message anomaly_to_message(const Anomaly& anomaly);
StatusOr<Anomaly> anomaly_from_message(const Message& m);

}  // namespace loglens
