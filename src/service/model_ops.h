// Model Builder, Model Manager, and Model Controller (Figure 1).
//
// Builder: turns a corpus of "correct" training logs into the composite
// model — discovers GROK patterns (LogMine), parses the corpus with them,
// discovers event ID fields, and learns the automata.
//
// Manager: versioned model lifecycle on top of the model store — store,
// rebuild, and *edit* (the Section III-A4 / Table V human-in-the-loop hook:
// load, mutate, store as a new version, notify the controller).
//
// Controller: translates add/update/delete instructions into rebroadcasts
// applied to the running engines between micro-batches — the zero-downtime
// model update of Section V-A.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "detectors/keyword.h"
#include "logmine/discoverer.h"
#include "service/model.h"
#include "service/tasks.h"
#include "storage/stores.h"
#include "streaming/engine.h"
#include "tokenize/preprocessor.h"

namespace loglens {

struct BuildOptions {
  DiscoveryOptions discovery;
  PreprocessorOptions preprocessor;
  LearnerOptions learner;
  // Extension detectors (opt-in): learn KPI ranges per (pattern, field) and
  // the severity-keyword allowlist from the training corpus.
  bool learn_field_ranges = false;
  bool learn_keywords = false;
  FieldRangeOptions field_ranges;
  KeywordDetectorOptions keywords;
};

struct BuildResult {
  CompositeModel model;
  size_t training_logs = 0;
  size_t unparsed_training_logs = 0;  // sanity: should be 0
  double discovery_seconds = 0;       // pattern discovery wall time
  double total_seconds = 0;
};

class ModelBuilder {
 public:
  explicit ModelBuilder(BuildOptions options = {});

  BuildResult build(const std::vector<std::string>& training_lines) const;

  // Incremental variant: seeds pattern discovery with an existing pattern
  // set (PatternDiscoverer::discover_incremental) — lines a known pattern
  // already parses skip clustering, and new patterns extend the set with ids
  // continuing after the known ones. The sequence model and extension
  // detectors are still relearned from the full corpus. With `known_patterns`
  // empty this is exactly build().
  BuildResult build(const std::vector<std::string>& training_lines,
                    std::vector<GrokPattern> known_patterns) const;

 private:
  BuildOptions options_;
};

struct ModelInstruction {
  enum class Op { kAdd, kUpdate, kDelete };
  Op op = Op::kUpdate;
  std::string model_name;
};

class ModelController {
 public:
  // Every (engine, broadcast) pair receives each applied model.
  struct Target {
    StreamEngine* engine;
    std::shared_ptr<ModelBroadcast> broadcast;
  };

  ModelController(ModelStore& store, std::vector<Target> targets);

  // Reads the named model from the store and schedules the rebroadcast; the
  // engines pick it up before their next micro-batch.
  Status apply(const ModelInstruction& instruction);

  uint64_t instructions_applied() const { return applied_; }

 private:
  ModelStore& store_;
  std::vector<Target> targets_;
  uint64_t applied_ = 0;
};

class ModelManager {
 public:
  ModelManager(ModelStore& store, ModelController& controller);

  // Stores a model version and pushes an update instruction.
  int deploy(const std::string& name, const CompositeModel& model);

  // Human/automated edit: load latest, mutate, store, push update.
  Status edit(const std::string& name,
              const std::function<void(CompositeModel&)>& mutate);

  // Periodic relearning hook (the "rebuild using the last seven days of
  // logs" flow): rebuild from archived logs of a source and deploy.
  StatusOr<BuildResult> rebuild(const std::string& name, LogStore& logs,
                                const std::string& source,
                                const ModelBuilder& builder);

  // Like rebuild, but seeds discovery with the latest deployed version's
  // patterns (when one exists): stable pattern ids survive the relearn, and
  // discovery cost scales with the *novel* portion of the archive, not its
  // size. Falls back to a full build for a model never deployed.
  StatusOr<BuildResult> rebuild_incremental(const std::string& name,
                                            LogStore& logs,
                                            const std::string& source,
                                            const ModelBuilder& builder);

  StatusOr<CompositeModel> get(const std::string& name) const;
  void remove(const std::string& name);

 private:
  ModelStore& store_;
  ModelController& controller_;
};

}  // namespace loglens
