#include "service/tasks.h"

namespace loglens {

namespace {

Preprocessor make_preprocessor(PreprocessorOptions options) {
  auto pre = Preprocessor::create(std::move(options));
  if (pre.ok()) return std::move(pre.value());
  // Invalid user split rules: degrade to defaults rather than dropping logs.
  return std::move(Preprocessor::create({}).value());
}

}  // namespace

ParserTask::ParserTask(std::shared_ptr<ModelBroadcast> model, size_t partition,
                       ParserTaskOptions options)
    : model_(std::move(model)),
      partition_(partition),
      options_(std::move(options)),
      preprocessor_(make_preprocessor(options_.preprocessor)) {}

void ParserTask::refresh_model(size_t partition) {
  auto fresh = model_->value(partition);
  if (fresh == current_ && parser_ != nullptr) return;
  current_ = std::move(fresh);
  parser_ = std::make_unique<LogParser>(current_->patterns,
                                        preprocessor_.classifier());
  id_fields_ = current_->sequence.id_fields;
  keywords_.reset();
  if (options_.check_keywords && current_->keyword_model.is_object() &&
      !current_->keyword_model.as_object().empty()) {
    auto detector =
        KeywordDetector::from_json(current_->keyword_model, options_.keywords);
    if (detector.ok()) {
      keywords_ =
          std::make_unique<KeywordDetector>(std::move(detector.value()));
    }
  }
}

void ParserTask::process(const Message& message, TaskContext& ctx) {
  if (message.tag == kTagHeartbeat) {
    // Pass heartbeats downstream exactly once (partition 0); the detector
    // engine's partitioner re-duplicates them across its own partitions.
    if (partition_ == 0) ctx.emit(message);
    return;
  }
  if (message.tag == kTagControl) return;

  refresh_model(partition_);
  TokenizedLog tokenized = preprocessor_.process(message.value);

  // Extension: stateless keyword detection on the raw line.
  if (keywords_ != nullptr) {
    if (auto alert = keywords_->check(message.value, message.source,
                                      tokenized.timestamp_ms)) {
      ctx.emit(anomaly_to_message(*alert));
    }
  }

  ParseOutcome outcome = parser_->parse(tokenized);
  if (!outcome.log.has_value()) {
    Anomaly a;
    a.type = AnomalyType::kUnparsedLog;
    a.severity = "medium";
    a.reason = "no discovered pattern parses this log";
    a.timestamp_ms = tokenized.timestamp_ms;
    a.source = message.source;
    a.logs = {message.value};
    ctx.emit(anomaly_to_message(a));
    return;
  }

  ParsedLog& parsed = *outcome.log;

  // Extension: KPI range checks on the parsed fields.
  if (options_.check_field_ranges &&
      current_->field_ranges.tracked_fields() > 0) {
    for (const auto& a :
         current_->field_ranges.check(parsed, message.source)) {
      ctx.emit(anomaly_to_message(a));
    }
  }

  // Keyed partitioning for the stateful stage: use the event id when this
  // pattern has one, so an event's logs land on one detector partition.
  std::string key = message.source;
  if (auto it = id_fields_.find(parsed.pattern_id); it != id_fields_.end()) {
    for (const auto& [k, v] : parsed.fields) {
      if (k == it->second && v.is_string() && !v.as_string().empty()) {
        key = v.as_string();
        break;
      }
    }
  }
  ctx.emit(parsed_to_message(parsed, std::move(key), message.source));
}

DetectorTask::DetectorTask(std::shared_ptr<ModelBroadcast> model,
                           size_t partition, DetectorOptions options)
    : model_(std::move(model)), partition_(partition), options_(options) {}

void DetectorTask::refresh_model(size_t partition) {
  auto fresh = model_->value(partition);
  if (fresh == current_ && detector_ != nullptr) return;
  current_ = std::move(fresh);
  if (detector_ == nullptr) {
    detector_ =
        std::make_unique<SequenceDetector>(current_->sequence, options_);
  } else {
    // Dynamic model update: swap rules, keep open states (Section V-A).
    detector_->update_model(current_->sequence);
  }
}

void DetectorTask::process(const Message& message, TaskContext& ctx) {
  if (message.tag == kTagAnomaly) {
    ctx.emit(message);  // stateless anomalies pass through to the sink
    return;
  }
  if (message.tag == kTagControl) return;
  refresh_model(partition_);

  std::vector<Anomaly> anomalies;
  if (message.tag == kTagHeartbeat) {
    anomalies = detector_->on_heartbeat(message.timestamp_ms);
  } else {
    auto parsed = parsed_from_message(message);
    if (!parsed.ok()) return;  // malformed payloads are dropped
    anomalies = detector_->on_log(parsed.value(), message.source);
  }
  for (const auto& a : anomalies) {
    ctx.emit(anomaly_to_message(a));
  }
}

}  // namespace loglens
