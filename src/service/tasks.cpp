#include "service/tasks.h"

#include <algorithm>

#include "metrics/timer.h"

namespace loglens {

namespace {

Preprocessor make_preprocessor(PreprocessorOptions options) {
  auto pre = Preprocessor::create(std::move(options));
  if (pre.ok()) return std::move(pre.value());
  // Invalid user split rules: degrade to defaults rather than dropping logs.
  return std::move(Preprocessor::create({}).value());
}

// Counter delta since the last sync. The underlying stats structs reset to
// zero when a parser/detector is rebuilt (model update, restore), in which
// case the whole new value is the delta.
uint64_t stat_delta(uint64_t current, uint64_t last) {
  return current >= last ? current - last : current;
}

}  // namespace

ParserTask::ParserTask(std::shared_ptr<ModelBroadcast> model, size_t partition,
                       ParserTaskOptions options, MetricsRegistry* metrics)
    : model_(std::move(model)),
      partition_(partition),
      options_(std::move(options)),
      preprocessor_(make_preprocessor(options_.preprocessor)) {
  MetricsRegistry& registry = registry_or_global(metrics);
  MetricLabels labels{{"partition", std::to_string(partition)}};
  logs_total_ = &registry.counter("loglens_parser_logs_total", labels,
                                  "Log lines fed to the parser stage");
  unparsed_total_ =
      &registry.counter("loglens_parser_unparsed_total", labels,
                        "Logs no pattern parses (stateless anomalies)");
  index_hits_total_ = &registry.counter("loglens_parser_index_hits_total",
                                        labels, "Signature-index hits");
  index_misses_total_ =
      &registry.counter("loglens_parser_index_misses_total", labels,
                        "Signature-index misses (candidate groups built)");
  index_evictions_total_ =
      &registry.counter("loglens_parser_index_evictions_total", labels,
                        "Signature-index entries evicted by the LRU bound");
  match_attempts_total_ =
      &registry.counter("loglens_parser_match_attempts_total", labels,
                        "Full pattern match attempts");
  stateless_anomalies_total_ =
      &registry.counter("loglens_parser_stateless_anomalies_total", labels,
                        "Anomalies emitted by the stateless stage");
  regex_budget_exhausted_total_ = &registry.counter(
      "loglens_regex_budget_exhausted_total", labels,
      "Regex match attempts abandoned on VM step-budget exhaustion");
  grok_set_prefilter_hits_total_ = &registry.counter(
      "loglens_grok_set_prefilter_hits_total", labels,
      "Set-matcher walks where a log token hit the pattern literal alphabet");
  grok_set_fallbacks_total_ = &registry.counter(
      "loglens_grok_set_fallbacks_total", labels,
      "Set-matcher walks abandoned to the linear per-pattern scan");
  grok_set_candidates_ =
      &registry.histogram("loglens_grok_set_candidates", labels,
                          "Matching candidates reported per set-matcher walk");
  parse_latency_us_ =
      &registry.histogram("loglens_parser_parse_latency_us", labels,
                          "Per-log parse latency (index lookup + matching)");
}

void ParserTask::refresh_model(size_t partition) {
  auto fresh = model_->value(partition);
  if (fresh == current_ && parser_ != nullptr) return;
  if (parser_ != nullptr) sync_stats();  // flush before the stats reset
  current_ = std::move(fresh);
  parser_ = std::make_unique<LogParser>(current_->patterns,
                                        preprocessor_.classifier(),
                                        IndexMode::kEnabled,
                                        options_.parser_index_capacity);
  synced_ = {};
  id_fields_ = current_->sequence.id_fields;
  keywords_.reset();
  if (options_.check_keywords && current_->keyword_model.is_object() &&
      !current_->keyword_model.as_object().empty()) {
    auto detector =
        KeywordDetector::from_json(current_->keyword_model, options_.keywords);
    if (detector.ok()) {
      keywords_ =
          std::make_unique<KeywordDetector>(std::move(detector.value()));
    }
  }
}

void ParserTask::sync_stats() {
  if (parser_ == nullptr) return;
  const ParserStats& stats = parser_->stats();
  logs_total_->inc(stat_delta(stats.logs, synced_.logs));
  unparsed_total_->inc(stat_delta(stats.unparsed, synced_.unparsed));
  index_hits_total_->inc(stat_delta(stats.index_hits, synced_.index_hits));
  index_misses_total_->inc(
      stat_delta(stats.groups_built, synced_.groups_built));
  index_evictions_total_->inc(
      stat_delta(stats.index_evictions, synced_.index_evictions));
  match_attempts_total_->inc(
      stat_delta(stats.match_attempts, synced_.match_attempts));
  grok_set_prefilter_hits_total_->inc(
      stat_delta(stats.set_prefilter_hits, synced_.set_prefilter_hits));
  grok_set_fallbacks_total_->inc(
      stat_delta(stats.set_fallbacks, synced_.set_fallbacks));
  synced_ = stats;
  // Budget exhaustion lives on the regex instances this task owns (the
  // classifier's Table I regexes + user split rules), never on a global, so
  // summing per task cannot double-count across partitions.
  const uint64_t exhausted =
      preprocessor_.classifier().budget_exhausted_total() +
      preprocessor_.split_rule_budget_exhausted_total();
  regex_budget_exhausted_total_->inc(
      stat_delta(exhausted, synced_regex_exhausted_));
  synced_regex_exhausted_ = exhausted;
}

void ParserTask::on_batch_end(TaskContext& /*ctx*/) { sync_stats(); }

void ParserTask::process(const Message& message, TaskContext& ctx) {
  if (message.tag == kTagHeartbeat) {
    // Pass heartbeats downstream exactly once (partition 0); the detector
    // engine's partitioner re-duplicates them across its own partitions.
    if (partition_ == 0) ctx.emit(message);
    return;
  }
  if (message.tag == kTagControl) return;

  refresh_model(partition_);

  // Delivery identity for emitted children: 32 seq slots per input log keep
  // child seqs per-source monotonic, so the detector's dedup guard can
  // recognize a redelivered copy after an at-least-once replay. Inputs
  // without a seq (never brokered) emit seq-less children.
  int emit_index = 0;
  auto emit = [&](Message m) {
    if (message.seq >= 0) {
      m.seq = message.seq * 32 + std::min(emit_index, 31);
      ++emit_index;
    }
    ctx.emit(std::move(m));
  };

  preprocessor_.process_into(message.value, tokenized_);

  // Extension: stateless keyword detection on the raw line.
  if (keywords_ != nullptr) {
    if (auto alert = keywords_->check(message.value, message.source,
                                      tokenized_.timestamp_ms)) {
      stateless_anomalies_total_->inc();
      emit(anomaly_to_message(*alert));
    }
  }

  const uint64_t walks_before = parser_->stats().set_walks;
  const bool parsed_ok = [&] {
    ScopedTimer timer(parse_latency_us_);
    return parser_->parse_into(std::move(tokenized_), parsed_);
  }();
  if (parser_->stats().set_walks != walks_before) {
    grok_set_candidates_->record(parser_->last_walk_candidates());
  }
  if (!parsed_ok) {
    Anomaly a;
    a.type = AnomalyType::kUnparsedLog;
    a.severity = "medium";
    a.reason = "no discovered pattern parses this log";
    a.timestamp_ms = tokenized_.timestamp_ms;
    a.source = message.source;
    a.logs = {message.value};
    stateless_anomalies_total_->inc();
    emit(anomaly_to_message(a));
    return;
  }

  ParsedLog& parsed = parsed_;

  // Extension: KPI range checks on the parsed fields.
  if (options_.check_field_ranges &&
      current_->field_ranges.tracked_fields() > 0) {
    for (const auto& a :
         current_->field_ranges.check(parsed, message.source)) {
      stateless_anomalies_total_->inc();
      emit(anomaly_to_message(a));
    }
  }

  // Keyed partitioning for the stateful stage: use the event id when this
  // pattern has one, so an event's logs land on one detector partition.
  std::string key = message.source;
  if (auto it = id_fields_.find(parsed.pattern_id); it != id_fields_.end()) {
    for (const auto& [k, v] : parsed.fields) {
      if (k == it->second && v.is_string() && !v.as_string().empty()) {
        key = v.as_string();
        break;
      }
    }
  }
  // Moving the scratch ParsedLog into the payload is safe: the next
  // parse_into fully rewrites it (emit_fields resizes, raw/ids reassigned).
  emit(parsed_to_message(std::move(parsed_), std::move(key), message.source));
}

DetectorTask::DetectorTask(std::shared_ptr<ModelBroadcast> model,
                           size_t partition, DetectorOptions options,
                           MetricsRegistry* metrics)
    : model_(std::move(model)), partition_(partition), options_(options) {
  MetricsRegistry& registry = registry_or_global(metrics);
  MetricLabels labels{{"partition", std::to_string(partition)}};
  logs_total_ = &registry.counter("loglens_detector_logs_total", labels,
                                  "Parsed logs fed to the detector stage");
  tracked_total_ =
      &registry.counter("loglens_detector_tracked_total", labels,
                        "Logs that joined an open event (state transitions)");
  heartbeats_total_ = &registry.counter("loglens_detector_heartbeats_total",
                                        labels, "Heartbeat sweeps executed");
  events_closed_total_ =
      &registry.counter("loglens_detector_events_closed_total", labels,
                        "Events closed by end-state arrival");
  events_expired_total_ =
      &registry.counter("loglens_detector_events_expired_total", labels,
                        "Events expired by heartbeat sweeps");
  evicted_total_ = &registry.counter(
      "loglens_detector_open_evictions_total", labels,
      "Open events evicted by the max_open_events bound (each also emits an "
      "OPEN_STATE_EVICTED anomaly)");
  stale_pops_total_ = &registry.counter(
      "loglens_detector_stale_pops_total", labels,
      "Superseded deadline-heap entries discarded by lazy deletion");
  heap_rebuilds_total_ = &registry.counter(
      "loglens_detector_heap_rebuilds_total", labels,
      "Deadline-index rebuilds (compaction, model update, restore)");
  anomalies_total_ =
      &registry.counter("loglens_detector_anomalies_total", labels,
                        "Anomalies emitted by the stateful stage");
  dedup_skipped_total_ = &registry.counter(
      "loglens_detector_dedup_skipped_total", labels,
      "Redelivered messages skipped by the at-least-once dedup guard");
  open_events_ = &registry.gauge("loglens_detector_open_events", labels,
                                 "Open events held at the last batch end");
  deadline_heap_size_ = &registry.gauge(
      "loglens_detector_deadline_heap_size", labels,
      "Deadline-heap entries (live + stale) at the last batch end");
}

void DetectorTask::refresh_model(size_t partition) {
  auto fresh = model_->value(partition);
  if (fresh == current_ && detector_ != nullptr) return;
  current_ = std::move(fresh);
  if (detector_ == nullptr) {
    detector_ =
        std::make_unique<SequenceDetector>(current_->sequence, options_);
  } else {
    // Dynamic model update: swap rules, keep open states (Section V-A).
    detector_->update_model(current_->sequence);
  }
}

void DetectorTask::sync_stats() {
  if (detector_ == nullptr) return;
  const DetectorStats& stats = detector_->stats();
  logs_total_->inc(stat_delta(stats.logs_seen, synced_.logs_seen));
  tracked_total_->inc(stat_delta(stats.logs_tracked, synced_.logs_tracked));
  heartbeats_total_->inc(stat_delta(stats.heartbeats, synced_.heartbeats));
  events_closed_total_->inc(
      stat_delta(stats.events_closed, synced_.events_closed));
  events_expired_total_->inc(
      stat_delta(stats.events_expired, synced_.events_expired));
  evicted_total_->inc(stat_delta(stats.evicted, synced_.evicted));
  stale_pops_total_->inc(stat_delta(stats.stale_pops, synced_.stale_pops));
  heap_rebuilds_total_->inc(
      stat_delta(stats.heap_rebuilds, synced_.heap_rebuilds));
  synced_ = stats;
  open_events_->set(static_cast<int64_t>(detector_->open_events()));
  deadline_heap_size_->set(
      static_cast<int64_t>(detector_->deadline_index_size()));
}

void DetectorTask::on_batch_end(TaskContext& /*ctx*/) { sync_stats(); }

void DetectorTask::process(const Message& message, TaskContext& ctx) {
  if (message.tag == kTagControl) return;
  // Dedup guard (data and anomaly messages only — heartbeats are idempotent
  // sweeps and carry no per-source identity). Within a partition the seqs a
  // source delivers are strictly increasing, so seq <= watermark means this
  // exact copy was already applied: an engine retry after a mid-mutation
  // throw, or an offset replay without a matching state rollback.
  if (message.seq >= 0 &&
      (message.tag == kTagData || message.tag == kTagAnomaly)) {
    auto [it, inserted] = seen_seq_.try_emplace(message.source, -1);
    if (!inserted && message.seq <= it->second) {
      dedup_skipped_total_->inc();
      return;
    }
    it->second = message.seq;
  }
  if (message.tag == kTagAnomaly) {
    ctx.emit(message);  // stateless anomalies pass through to the sink
    return;
  }
  refresh_model(partition_);

  std::vector<Anomaly> anomalies;
  if (message.tag == kTagHeartbeat) {
    anomalies = detector_->on_heartbeat(message.timestamp_ms);
  } else if (const ParsedLog* view = parsed_payload_view(message)) {
    // Typed-payload fast path: read the parser's ParsedLog in place — no
    // JSON parse, no field copies.
    anomalies = detector_->on_log(*view, message.source);
  } else {
    auto parsed = parsed_from_message(message);
    if (!parsed.ok()) return;  // malformed payloads are dropped
    anomalies = detector_->on_log(parsed.value(), message.source);
  }
  anomalies_total_->inc(anomalies.size());
  for (const auto& a : anomalies) {
    ctx.emit(anomaly_to_message(a));
  }
}

}  // namespace loglens
