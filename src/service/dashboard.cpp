#include "service/dashboard.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/time.h"

namespace loglens {

std::string Dashboard::render() const {
  std::ostringstream out;
  auto all = anomalies_.all();
  out << "=== LogLens Dashboard ===\n";
  out << "archived logs: " << logs_.size() << "\n";
  out << "models:";
  for (const auto& name : models_.names()) {
    auto entry = models_.latest(name);
    out << " " << name << "(v" << (entry ? entry->version : 0) << ")";
  }
  out << "\nanomalies: " << all.size() << "\n";

  std::map<std::string, size_t> by_type;
  std::map<std::string, size_t> by_source;
  std::map<std::string, size_t> by_severity;
  for (const auto& a : all) {
    ++by_type[std::string(anomaly_type_name(a.type))];
    ++by_source[a.source.empty() ? "<unknown>" : a.source];
    ++by_severity[a.severity];
  }
  out << "  by type:\n";
  for (const auto& [k, v] : by_type) out << "    " << k << ": " << v << "\n";
  out << "  by source:\n";
  for (const auto& [k, v] : by_source) out << "    " << k << ": " << v << "\n";
  out << "  by severity:\n";
  for (const auto& [k, v] : by_severity) {
    out << "    " << k << ": " << v << "\n";
  }
  return out.str();
}

std::string Dashboard::render_metrics() const {
  return metrics_->render_prometheus();
}

Json Dashboard::metrics_snapshot() const { return metrics_->snapshot_json(); }

std::string Dashboard::render_stage_latency() const {
  std::ostringstream out;
  out << "stage latency (trace-derived, us)\n";
  const char* stages[] = {"parser", "detector"};
  // Histogram family -> which label key the stage value rides under (jobs
  // label queue_wait/publish with "job"; engines label route/pool_wait and
  // batch duration with "stage").
  const std::pair<const char*, const char*> rows[] = {
      {"loglens_trace_queue_wait_us", "job"},
      {"loglens_engine_batch_duration_us", "stage"},
      {"loglens_trace_route_us", "stage"},
      {"loglens_trace_pool_wait_us", "stage"},
      {"loglens_trace_publish_us", "job"},
  };
  bool any = false;
  for (const char* stage : stages) {
    bool header = false;
    for (const auto& [family, label] : rows) {
      const Histogram* h =
          metrics_->find_histogram(family, {{label, stage}});
      if (h == nullptr || h->count() == 0) continue;
      if (!header) {
        out << "  " << stage << ":\n";
        header = true;
        any = true;
      }
      Histogram::Snapshot snap = h->snapshot();
      char line[160];
      std::snprintf(line, sizeof(line),
                    "    %-34s p50 %10.0f  p99 %10.0f  (n=%llu)\n", family,
                    snap.p50, snap.p99,
                    static_cast<unsigned long long>(snap.count));
      out << line;
    }
  }
  if (!any) out << "  no batches traced yet\n";
  return out.str();
}

std::string Dashboard::render_timeline(int64_t from_ms, int64_t to_ms,
                                       int64_t bucket_ms) const {
  std::ostringstream out;
  if (bucket_ms <= 0 || to_ms <= from_ms) return out.str();
  size_t buckets = static_cast<size_t>((to_ms - from_ms) / bucket_ms) + 1;
  std::vector<size_t> counts(buckets, 0);
  for (const auto& a : anomalies_.all()) {
    if (a.timestamp_ms < from_ms || a.timestamp_ms > to_ms) continue;
    ++counts[static_cast<size_t>((a.timestamp_ms - from_ms) / bucket_ms)];
  }
  size_t peak = *std::max_element(counts.begin(), counts.end());
  if (peak == 0) peak = 1;
  out << "anomaly timeline (" << format_canonical(from_ms) << " .. "
      << format_canonical(to_ms) << ", " << bucket_ms / 1000 << "s buckets)\n";
  for (size_t b = 0; b < buckets; ++b) {
    size_t bar = counts[b] * 50 / peak;
    out << format_canonical(from_ms + static_cast<int64_t>(b) * bucket_ms)
        << " | " << std::string(bar, '#') << " " << counts[b] << "\n";
  }
  return out.str();
}

std::string Dashboard::render_source_spikes(AnomalyType type, int64_t from_ms,
                                            int64_t to_ms) const {
  std::ostringstream out;
  Query q;
  q.clauses.push_back(
      QueryClause::Term("type", std::string(anomaly_type_name(type))));
  q.clauses.push_back(QueryClause::Range("timestamp_ms", from_ms, to_ms));
  QueryStats stats;
  std::map<std::string, size_t> by_source;
  for (const auto& doc : anomalies_.query_docs(q, &stats)) {
    std::string source(doc.get_string("source"));
    ++by_source[source.empty() ? "<unknown>" : source];
  }
  out << "source spikes: " << anomaly_type_name(type) << " in ["
      << format_canonical(from_ms) << " .. " << format_canonical(to_ms)
      << "]\n";
  if (by_source.empty()) {
    out << "  none\n";
  } else {
    // Leaderboard: heaviest sources first, ties in name order.
    std::vector<std::pair<std::string, size_t>> rows(by_source.begin(),
                                                     by_source.end());
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    size_t peak = rows.front().second;
    for (const auto& [source, n] : rows) {
      out << "  " << source << " | " << std::string(n * 40 / peak, '#') << " "
          << n << "\n";
    }
  }
  out << "  (segments: " << stats.segments_considered << " considered, "
      << stats.segments_pruned << " pruned; docs scanned: "
      << stats.docs_scanned << ")\n";
  return out.str();
}

std::string Dashboard::render_recent(size_t limit) const {
  std::ostringstream out;
  auto all = anomalies_.all();
  size_t start = all.size() > limit ? all.size() - limit : 0;
  for (size_t i = start; i < all.size(); ++i) {
    const Anomaly& a = all[i];
    out << "[" << a.severity << "] " << anomaly_type_name(a.type);
    if (a.timestamp_ms >= 0) out << " @ " << format_canonical(a.timestamp_ms);
    if (!a.event_id.empty()) out << " event=" << a.event_id;
    if (!a.source.empty()) out << " source=" << a.source;
    out << "\n    " << a.reason << "\n";
    for (const auto& l : a.logs) {
      out << "      > " << l << "\n";
      if (&l - a.logs.data() >= 2) {  // cap the echo at three lines
        out << "      ...\n";
        break;
      }
    }
  }
  return out.str();
}

}  // namespace loglens
