// Visualization Dashboard (Figure 1), terminal edition.
//
// Combines information from the log store, model store, and anomaly store
// into human-readable summaries: anomaly counts by type/source/severity, a
// per-minute anomaly timeline (the textual analogue of the paper's Figure 6
// cluster plot), recent anomaly detail, and the model inventory. Ad-hoc
// queries pass through to the anomaly store.
#pragma once

#include <string>

#include "metrics/metrics.h"
#include "storage/stores.h"

namespace loglens {

class Dashboard {
 public:
  Dashboard(const AnomalyStore& anomalies, const ModelStore& models,
            const LogStore& logs, const MetricsRegistry* metrics = nullptr)
      : anomalies_(anomalies),
        models_(models),
        logs_(logs),
        metrics_(metrics != nullptr ? metrics : &MetricsRegistry::global()) {}

  // Multi-line textual summary of system status.
  std::string render() const;

  // Prometheus-style text exposition of every pipeline metric (engine,
  // parser, detector, broker, jobs, heartbeats).
  std::string render_metrics() const;

  // The same data as a machine-readable JSON snapshot (plus recent spans).
  Json metrics_snapshot() const;

  // Trace-derived stage-latency table: per-hop p50/p99 (queue wait, batch
  // duration, routing, pool wait, publish) from the tracing histograms the
  // jobs and engines record. Rows appear once a stage has processed a batch.
  std::string render_stage_latency() const;

  // Anomaly-count-per-bucket timeline over [from_ms, to_ms]; the text bar
  // chart that surfaces temporal anomaly clusters.
  std::string render_timeline(int64_t from_ms, int64_t to_ms,
                              int64_t bucket_ms) const;

  // Detail listing of the most recent `limit` anomalies.
  std::string render_recent(size_t limit) const;

  // The LogRouter-style ad-hoc query panel: "which sources spiked <type>
  // in [from_ms, to_ms]?" — a term + range query served straight from the
  // anomaly store's segment engine (zone maps prune segments outside the
  // window), rendered as a per-source leaderboard.
  std::string render_source_spikes(AnomalyType type, int64_t from_ms,
                                   int64_t to_ms) const;

 private:
  const AnomalyStore& anomalies_;
  const ModelStore& models_;
  const LogStore& logs_;
  const MetricsRegistry* metrics_;
};

}  // namespace loglens
