#include "service/agent.h"

namespace loglens {

Agent::Agent(Broker& broker, AgentOptions options)
    : broker_(broker), options_(std::move(options)) {}

void Agent::send_line(std::string_view line) {
  Message m;
  m.key = options_.source;
  m.value = std::string(line);
  m.tag = kTagData;
  m.source = options_.source;
  broker_.produce(options_.topic, std::move(m));
  ++lines_sent_;
}

void Agent::replay(const std::vector<std::string>& lines) {
  for (const auto& l : lines) send_line(l);
}

}  // namespace loglens
