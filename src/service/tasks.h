// The two streaming stages as partition tasks: the stateless parser stage
// and the stateful sequence-detector stage.
//
// Each task reads the composite model through a rebroadcastable Broadcast
// variable. A task detects a model update by pointer identity of the pulled
// value: the parser stage rebuilds its (stateless) LogParser; the detector
// stage calls SequenceDetector::update_model, which swaps rules while
// preserving every open state — the zero-downtime behaviour of Section V-A.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "automata/detector.h"
#include "detectors/field_range.h"
#include "detectors/keyword.h"
#include "metrics/metrics.h"
#include "parser/log_parser.h"
#include "service/model.h"
#include "service/wire.h"
#include "streaming/engine.h"
#include "tokenize/preprocessor.h"

namespace loglens {

using ModelBroadcast = Broadcast<CompositeModel>;

struct ParserTaskOptions {
  PreprocessorOptions preprocessor;
  // Bound on the parser's signature index (LRU-evicted beyond this).
  size_t parser_index_capacity = LogParser::kDefaultIndexCapacity;
  // Run the extension detectors when the model carries them.
  bool check_field_ranges = true;
  bool check_keywords = true;
  KeywordDetectorOptions keywords;
};

class ParserTask : public PartitionTask {
 public:
  ParserTask(std::shared_ptr<ModelBroadcast> model, size_t partition,
             ParserTaskOptions options = {},
             MetricsRegistry* metrics = nullptr);

  void process(const Message& message, TaskContext& ctx) override;
  void on_batch_end(TaskContext& ctx) override;

  const ParserStats* parser_stats() const {
    return parser_ ? &parser_->stats() : nullptr;
  }

 private:
  void refresh_model(size_t partition);
  void sync_stats();

  std::shared_ptr<ModelBroadcast> model_;
  size_t partition_;
  ParserTaskOptions options_;
  Preprocessor preprocessor_;
  std::shared_ptr<const CompositeModel> current_;
  std::unique_ptr<LogParser> parser_;
  IdFieldMap id_fields_;
  std::unique_ptr<KeywordDetector> keywords_;

  // Metric handles + the last ParserStats values already pushed to them
  // (the parser is rebuilt on model updates, which resets its stats).
  Counter* logs_total_ = nullptr;
  Counter* unparsed_total_ = nullptr;
  Counter* index_hits_total_ = nullptr;
  Counter* index_misses_total_ = nullptr;
  Counter* index_evictions_total_ = nullptr;
  Counter* match_attempts_total_ = nullptr;
  Counter* stateless_anomalies_total_ = nullptr;
  Counter* regex_budget_exhausted_total_ = nullptr;
  Counter* grok_set_prefilter_hits_total_ = nullptr;
  Counter* grok_set_fallbacks_total_ = nullptr;
  Histogram* grok_set_candidates_ = nullptr;
  Histogram* parse_latency_us_ = nullptr;
  ParserStats synced_;
  // Last regex budget-exhaustion total pushed (classifier + split rules;
  // per-task counters, so the sync cannot double-count across partitions).
  uint64_t synced_regex_exhausted_ = 0;

  // Reused per-message buffers: process_into/parse_into fill these in place,
  // keeping the steady-state parse path allocation-free.
  TokenizedLog tokenized_;
  ParsedLog parsed_;
};

class DetectorTask : public PartitionTask {
 public:
  DetectorTask(std::shared_ptr<ModelBroadcast> model, size_t partition,
               DetectorOptions options = {},
               MetricsRegistry* metrics = nullptr);

  void process(const Message& message, TaskContext& ctx) override;
  void on_batch_end(TaskContext& ctx) override;

  size_t open_events() const {
    return detector_ ? detector_->open_events() : 0;
  }
  // Checkpointing hooks (called between batches by the service).
  Json snapshot_state() const {
    return detector_ ? detector_->snapshot_state()
                     : Json(JsonObject{{"open_events", Json(JsonArray{})}});
  }
  Status restore_state(const Json& j, const CompositeModel& model) {
    if (detector_ == nullptr) {
      detector_ = std::make_unique<SequenceDetector>(model.sequence, options_);
      current_.reset();  // next refresh re-pulls and update_model()s
    }
    // After a state rollback the replayed copies ARE the authoritative
    // input again — forget the watermarks or they would all be skipped.
    seen_seq_.clear();
    return detector_->restore_state(j);
  }
  const DetectorStats* detector_stats() const {
    return detector_ ? &detector_->stats() : nullptr;
  }

 private:
  void refresh_model(size_t partition);
  void sync_stats();

  std::shared_ptr<ModelBroadcast> model_;
  size_t partition_;
  DetectorOptions options_;
  std::shared_ptr<const CompositeModel> current_;
  std::unique_ptr<SequenceDetector> detector_;
  // At-least-once dedup guard: highest Message::seq already processed per
  // source. Redelivered copies (engine retry after a mid-mutation throw, or
  // offset replay after recovery without a state rollback) are skipped so
  // the detector never double-applies a log. Heartbeats/control are exempt
  // (idempotent); cleared by restore_state (the rollback re-legitimizes
  // replays).
  std::map<std::string, int64_t> seen_seq_;

  Counter* logs_total_ = nullptr;
  Counter* tracked_total_ = nullptr;
  Counter* heartbeats_total_ = nullptr;
  Counter* events_closed_total_ = nullptr;
  Counter* events_expired_total_ = nullptr;
  Counter* evicted_total_ = nullptr;
  Counter* stale_pops_total_ = nullptr;
  Counter* heap_rebuilds_total_ = nullptr;
  Counter* anomalies_total_ = nullptr;
  Counter* dedup_skipped_total_ = nullptr;
  Gauge* open_events_ = nullptr;
  Gauge* deadline_heap_size_ = nullptr;
  DetectorStats synced_;
};

}  // namespace loglens
