// LogLensService: the fully wired system of Figure 1.
//
//   agents -> [ingest] -> LogManager -> [logs] -> parser engine ->
//   [parsed] -> detector engine -> [anomalies] -> anomaly store
//
// plus the model side (builder -> store -> manager -> controller ->
// rebroadcast into both engines) and the heartbeat controller feeding
// predicted log time into [parsed].
//
// Two modes:
//   - start()/stop(): background JobRunners — the deployed service.
//   - drain(): synchronous end-to-end processing of everything queued —
//     what the experiments use for determinism.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "faults/fault_injector.h"
#include "service/agent.h"
#include "service/heartbeat.h"
#include "service/log_manager.h"
#include "service/model_ops.h"
#include "service/tasks.h"
#include "storage/stores.h"
#include "streaming/engine.h"
#include "streaming/job.h"

namespace loglens {

struct ServiceOptions {
  size_t parser_partitions = 2;
  size_t detector_partitions = 2;
  size_t workers = 2;
  ParserTaskOptions parser;
  DetectorOptions detector;
  std::string model_name = "default";
  BuildOptions build;
  // Observability: registry every component reports into (nullptr -> the
  // process-wide global one) and how often each JobRunner publishes a JSON
  // health report to the "metrics" topic (0 disables the reports).
  MetricsRegistry* metrics = nullptr;
  size_t metrics_report_every = 64;
  // Fault tolerance (docs/FAULTS.md). `faults` is threaded into the broker
  // and both engines; poison messages land on `dead_letter_topic`.
  // `checkpoint_path` names the file checkpoint()/recover() use; with
  // `supervise`, start() also launches a watchdog thread that calls
  // recover() whenever a runner reports a fatal batch.
  FaultInjector* faults = nullptr;
  size_t task_max_attempts = 4;
  // Tiered storage (docs/DESIGN.md §6). `storage.dir` is the base segment
  // directory: the log archive flushes under <dir>/logs and the anomaly
  // store under <dir>/anomalies (empty keeps both in-memory, the seed
  // behaviour). Unset `storage.metrics`/`storage.faults` inherit the
  // service-level ones above.
  DocumentStoreOptions storage;
  std::string dead_letter_topic = "dead_letters";
  std::string checkpoint_path;
  bool supervise = false;
  int64_t supervise_interval_ms = 20;
};

class LogLensService {
 public:
  explicit LogLensService(ServiceOptions options = {});
  ~LogLensService();

  // Builds the model from training lines, stores it, and deploys it to the
  // pipeline.
  BuildResult train(const std::vector<std::string>& training_lines);

  // Creates an agent shipping into this service.
  Agent make_agent(const std::string& source);

  // Asynchronous service mode.
  void start();
  void stop();

  // Synchronous mode: process everything currently queued, end to end.
  void drain();

  // Heartbeat controller ticks (also see HeartbeatController docs). Call
  // drain() afterwards (or rely on the background runners) so the detector
  // consumes the emitted heartbeats.
  size_t heartbeat_tick() { return heartbeat_.tick(); }
  size_t heartbeat_advance(int64_t ms) { return heartbeat_.tick_advance(ms); }

  Broker& broker() { return broker_; }
  ModelManager& models() { return *model_manager_; }
  AnomalyStore& anomalies() { return anomaly_store_; }
  LogStore& log_store() { return log_manager_.log_store(); }
  LogManager& log_manager() { return log_manager_; }
  ModelStore& model_store() { return model_store_; }

  size_t open_events();
  const std::string& model_name() const { return options_.model_name; }

  // Checkpointing (extension): persist the deployed model and every
  // detector partition's open-event state to a JSON file, and restore it
  // into a (fresh) service — possibly with a different partition count; open
  // events are re-sharded by their event id. Call on a quiesced service
  // (stopped or drained).
  Status checkpoint(const std::string& path);
  Status restore(const std::string& path);

  // Crash recovery: re-restores the checkpoint at
  // ServiceOptions::checkpoint_path *into the running service* — deployed
  // model, detector state, and the consumer offsets recorded at checkpoint
  // time (at-least-once redelivery; the detector's dedup guard and the
  // anomaly-store rollback below keep outputs exactly-once). The anomaly
  // store is rebuilt from the checkpointed prefix of the anomalies topic and
  // the sink skips ahead past any post-checkpoint output (the replay
  // re-emits it). Called by the supervisor thread when a runner fails; also
  // callable directly (e.g. chaos tests simulating a hard crash).
  Status recover() LOGLENS_EXCLUDES(recover_mu_);

  // True while either job runner is parked on a fatal batch.
  bool failed() const {
    return parser_runner_->failed() || detector_runner_->failed();
  }
  uint64_t recoveries() const { return recoveries_.load(); }

  // Post-facto analysis (Figure 1's Log Storage role: "stored logs can be
  // used ... for future log replaying to perform further analysis"): re-runs
  // detection over a source's archived logs — with the *currently deployed*
  // model — without touching the live pipeline's state or anomaly store.
  // Optional [from_ms, to_ms] bounds filter on the logs' embedded
  // timestamps (logs without one always pass). The replay ends with a far-
  // future heartbeat so open events are fully resolved.
  struct ReplayResult {
    size_t logs = 0;
    size_t unparsed = 0;
    std::vector<Anomaly> anomalies;
  };
  StatusOr<ReplayResult> replay_archive(const std::string& source,
                                        int64_t from_ms = INT64_MIN,
                                        int64_t to_ms = INT64_MAX);

 private:
  void sink_drain();
  Status restore_internal(const std::string& path, bool in_place);
  void supervisor_loop();

  ServiceOptions options_;
  Broker broker_;
  LogManager log_manager_;
  std::shared_ptr<ModelBroadcast> parser_broadcast_;
  std::shared_ptr<ModelBroadcast> detector_broadcast_;
  std::unique_ptr<StreamEngine> parser_engine_;
  std::unique_ptr<StreamEngine> detector_engine_;
  std::unique_ptr<JobRunner> parser_runner_;
  std::unique_ptr<JobRunner> detector_runner_;
  HeartbeatController heartbeat_;
  ModelStore model_store_;
  std::unique_ptr<ModelController> model_controller_;
  std::unique_ptr<ModelManager> model_manager_;
  AnomalyStore anomaly_store_;
  Consumer anomaly_sink_;
  std::atomic<bool> running_{false};

  // Crash supervisor (see ServiceOptions::supervise).
  std::thread supervisor_;
  std::atomic<bool> supervising_{false};
  // Serializes recover() callers. The outermost rank in the hierarchy:
  // recovery drives engines, the broker, consumers, and the stores while
  // holding it, so it must be acquired before any of their locks.
  RankedMutex recover_mu_{lock_rank::kServiceRecover};
  std::atomic<uint64_t> recoveries_{0};
  Counter* recoveries_total_ = nullptr;
};

}  // namespace loglens
