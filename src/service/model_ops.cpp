#include "service/model_ops.h"

#include "common/clock.h"

namespace loglens {

ModelBuilder::ModelBuilder(BuildOptions options)
    : options_(std::move(options)) {}

BuildResult ModelBuilder::build(
    const std::vector<std::string>& training_lines) const {
  return build(training_lines, {});
}

BuildResult ModelBuilder::build(
    const std::vector<std::string>& training_lines,
    std::vector<GrokPattern> known_patterns) const {
  BuildResult result;
  result.training_logs = training_lines.size();
  const uint64_t t0 = trace_clock::now_us();

  auto pre = Preprocessor::create(options_.preprocessor);
  if (!pre.ok()) pre = Preprocessor::create({});
  Preprocessor& preprocessor = pre.value();

  std::vector<TokenizedLog> tokenized;
  tokenized.reserve(training_lines.size());
  for (const auto& line : training_lines) {
    tokenized.push_back(preprocessor.process(line));
  }

  const uint64_t t1 = trace_clock::now_us();
  PatternDiscoverer discoverer(options_.discovery, preprocessor.classifier());
  result.model.patterns =
      known_patterns.empty()
          ? discoverer.discover(tokenized)
          : discoverer.discover_incremental(tokenized,
                                            std::move(known_patterns));
  const uint64_t t2 = trace_clock::now_us();
  result.discovery_seconds = static_cast<double>(t2 - t1) / 1e6;

  // Parse the training corpus with the discovered model to feed the
  // sequence learner (and as a sanity check: everything should parse).
  LogParser parser(result.model.patterns, preprocessor.classifier());
  std::vector<ParsedLog> parsed;
  parsed.reserve(tokenized.size());
  for (const auto& log : tokenized) {
    auto outcome = parser.parse(log);
    if (outcome.log.has_value()) {
      parsed.push_back(std::move(*outcome.log));
    } else {
      ++result.unparsed_training_logs;
    }
  }

  result.model.sequence = learn_sequence_model(parsed, options_.learner);

  if (options_.learn_field_ranges) {
    FieldRangeModel ranges(options_.field_ranges);
    for (const auto& log : parsed) ranges.learn(log);
    result.model.field_ranges = std::move(ranges);
  }
  if (options_.learn_keywords) {
    KeywordDetector keywords(options_.keywords);
    for (const auto& line : training_lines) keywords.observe_normal(line);
    result.model.keyword_model = keywords.to_json();
  }

  result.total_seconds =
      static_cast<double>(trace_clock::now_us() - t0) / 1e6;
  return result;
}

ModelController::ModelController(ModelStore& store, std::vector<Target> targets)
    : store_(store), targets_(std::move(targets)) {}

Status ModelController::apply(const ModelInstruction& instruction) {
  CompositeModel model;  // kDelete deploys an empty model
  if (instruction.op != ModelInstruction::Op::kDelete) {
    auto entry = store_.latest(instruction.model_name);
    if (!entry.has_value()) {
      return Status::Error("model not found: " + instruction.model_name);
    }
    auto parsed = CompositeModel::from_json(entry->blob);
    if (!parsed.ok()) return parsed.status();
    model = std::move(parsed.value());
  }
  for (auto& target : targets_) {
    auto broadcast = target.broadcast;
    CompositeModel copy = model;
    target.engine->enqueue_control(
        [broadcast, copy = std::move(copy)]() mutable {
          broadcast->update(std::move(copy));
        });
  }
  ++applied_;
  return Status::Ok();
}

ModelManager::ModelManager(ModelStore& store, ModelController& controller)
    : store_(store), controller_(controller) {}

int ModelManager::deploy(const std::string& name, const CompositeModel& model) {
  int version = store_.put(name, model.to_json());
  controller_.apply({version == 1 ? ModelInstruction::Op::kAdd
                                  : ModelInstruction::Op::kUpdate,
                     name});
  return version;
}

Status ModelManager::edit(
    const std::string& name,
    const std::function<void(CompositeModel&)>& mutate) {
  auto current = get(name);
  if (!current.ok()) return current.status();
  CompositeModel model = std::move(current.value());
  mutate(model);
  deploy(name, model);
  return Status::Ok();
}

StatusOr<BuildResult> ModelManager::rebuild(const std::string& name,
                                            LogStore& logs,
                                            const std::string& source,
                                            const ModelBuilder& builder) {
  std::vector<std::string> lines = logs.fetch(source);
  if (lines.empty()) {
    return StatusOr<BuildResult>::Error("no archived logs for source: " +
                                        source);
  }
  BuildResult result = builder.build(lines);
  deploy(name, result.model);
  return result;
}

StatusOr<BuildResult> ModelManager::rebuild_incremental(
    const std::string& name, LogStore& logs, const std::string& source,
    const ModelBuilder& builder) {
  std::vector<std::string> lines = logs.fetch(source);
  if (lines.empty()) {
    return StatusOr<BuildResult>::Error("no archived logs for source: " +
                                        source);
  }
  std::vector<GrokPattern> known;
  if (auto current = get(name); current.ok()) {
    known = std::move(current.value().patterns);
  }
  BuildResult result = builder.build(lines, std::move(known));
  deploy(name, result.model);
  return result;
}

StatusOr<CompositeModel> ModelManager::get(const std::string& name) const {
  auto entry = store_.latest(name);
  if (!entry.has_value()) {
    return StatusOr<CompositeModel>::Error("model not found: " + name);
  }
  return CompositeModel::from_json(entry->blob);
}

void ModelManager::remove(const std::string& name) {
  store_.remove(name);
  controller_.apply({ModelInstruction::Op::kDelete, name});
}

}  // namespace loglens
