// Heartbeat Controller (Section V-B).
//
// Stateful anomaly detection is event-driven: with no incoming logs, an open
// state whose end never arrives would stay open forever and its anomaly
// would never be reported. Wall-clock timeouts cannot help because anomaly
// logic runs on *log time*, which may run faster or slower than real time.
// The paper's fix is an external controller that, for each active source,
// periodically emits a dummy (heartbeat) message whose timestamp is
// *predicted log time*, extrapolated from the last observed log and the
// source's log rate.
//
// This controller watches the parsed-log topic with its own consumer (so it
// steals nothing from the pipeline), tracks per-source last timestamp, mean
// inter-log gap, and mean logs-per-tick, and on tick() publishes one
// heartbeat per active source carrying the extrapolated timestamp. The
// engine's custom partitioner then fans each heartbeat out to every
// partition (engine.cpp), which triggers the open-state sweep.
//
// Thread-safety contract: unsynchronized by design — tick()/tick_advance()
// are driven from a single caller (the service's control flow or a test).
// The broker produce/fetch calls inside are themselves thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "broker/broker.h"
#include "metrics/metrics.h"

namespace loglens {

struct HeartbeatOptions {
  std::string watch_topic = "parsed";
  std::string emit_topic = "parsed";
  // Lower bound on how far one tick advances predicted time when a source
  // has gone quiet (so expiry is reached even for slow sources).
  int64_t min_advance_ms = 1000;
};

class HeartbeatController {
 public:
  HeartbeatController(Broker& broker, HeartbeatOptions options = {},
                      MetricsRegistry* metrics = nullptr);

  // Observes new parsed logs (updating per-source clocks), then emits one
  // heartbeat per active source. Returns the number of heartbeats emitted.
  size_t tick();

  // Test/replay hook: force-advance all sources by `ms` of log time and emit.
  size_t tick_advance(int64_t ms);

  size_t active_sources() const { return sources_.size(); }

 private:
  struct SourceClock {
    int64_t last_ts = -1;        // last embedded timestamp seen
    int64_t predicted_ts = -1;   // extrapolated current log time
    double avg_gap_ms = 0;       // EMA of inter-log gaps
    double avg_logs_per_tick = 0;
    uint64_t logs_since_tick = 0;
    uint64_t logs_total = 0;
  };

  void observe_new_logs();
  size_t emit_all();

  Broker& broker_;
  HeartbeatOptions options_;
  Consumer consumer_;
  std::map<std::string, SourceClock> sources_;

  MetricsRegistry* registry_ = nullptr;
  Counter* ticks_total_ = nullptr;
  Counter* emitted_total_ = nullptr;
  Gauge* active_sources_ = nullptr;
};

}  // namespace loglens
