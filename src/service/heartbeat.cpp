#include "service/heartbeat.h"

#include <algorithm>

#include "metrics/timer.h"

namespace loglens {

HeartbeatController::HeartbeatController(Broker& broker,
                                         HeartbeatOptions options,
                                         MetricsRegistry* metrics)
    : broker_(broker),
      options_(std::move(options)),
      consumer_(broker, options_.watch_topic) {
  registry_ = &registry_or_global(metrics);
  ticks_total_ = &registry_->counter("loglens_heartbeat_ticks_total", {},
                                     "Heartbeat controller sweeps");
  emitted_total_ = &registry_->counter("loglens_heartbeat_emitted_total", {},
                                       "Heartbeat messages emitted");
  active_sources_ = &registry_->gauge("loglens_heartbeat_active_sources", {},
                                      "Sources with a live log-time clock");
}

void HeartbeatController::observe_new_logs() {
  constexpr double kAlpha = 0.2;  // EMA weight for gap estimation
  // Under fault injection an empty poll can be an injected fetch failure
  // rather than an empty topic, so gate on consumer lag (with a bounded
  // retry budget — the next tick resumes from the same offsets anyway).
  // Stopping early here is what silently suppresses heartbeats: a source
  // whose clock is never observed is skipped by emit_all().
  for (int empty_polls = 0; consumer_.lag() > 0 && empty_polls < 100;) {
    auto batch = consumer_.poll(4096);
    if (batch.empty()) {
      ++empty_polls;
      continue;
    }
    for (const auto& m : batch) {
      if (m.tag != kTagData || m.source.empty() || m.timestamp_ms < 0) {
        continue;
      }
      SourceClock& clock = sources_[m.source];
      if (clock.last_ts >= 0 && m.timestamp_ms > clock.last_ts) {
        double gap = static_cast<double>(m.timestamp_ms - clock.last_ts);
        clock.avg_gap_ms = clock.avg_gap_ms == 0
                               ? gap
                               : (1 - kAlpha) * clock.avg_gap_ms + kAlpha * gap;
      }
      clock.last_ts = std::max(clock.last_ts, m.timestamp_ms);
      clock.predicted_ts = std::max(clock.predicted_ts, clock.last_ts);
      ++clock.logs_since_tick;
      ++clock.logs_total;
    }
  }
}

size_t HeartbeatController::emit_all() {
  ScopedSpan span(registry_, "heartbeat.emit");
  ticks_total_->inc();
  active_sources_->set(static_cast<int64_t>(sources_.size()));
  size_t emitted = 0;
  for (auto& [source, clock] : sources_) {
    if (clock.predicted_ts < 0) continue;
    Message hb;
    hb.key = source;
    hb.value = "";
    hb.timestamp_ms = clock.predicted_ts;
    hb.tag = kTagHeartbeat;
    hb.source = source;
    broker_.produce(options_.emit_topic, std::move(hb));
    ++emitted;
  }
  emitted_total_->inc(emitted);
  return emitted;
}

size_t HeartbeatController::tick() {
  observe_new_logs();
  constexpr double kAlpha = 0.3;
  for (auto& [_, clock] : sources_) {
    clock.avg_logs_per_tick =
        clock.avg_logs_per_tick == 0
            ? static_cast<double>(clock.logs_since_tick)
            : (1 - kAlpha) * clock.avg_logs_per_tick +
                  kAlpha * static_cast<double>(clock.logs_since_tick);
    if (clock.logs_since_tick == 0 && clock.last_ts >= 0) {
      // Quiet source: extrapolate by rate (expected logs/tick x mean gap),
      // bounded below so expiry is eventually reached.
      auto advance = static_cast<int64_t>(clock.avg_logs_per_tick *
                                          clock.avg_gap_ms);
      clock.predicted_ts += std::max(advance, options_.min_advance_ms);
    }
    clock.logs_since_tick = 0;
  }
  return emit_all();
}

size_t HeartbeatController::tick_advance(int64_t ms) {
  observe_new_logs();
  for (auto& [_, clock] : sources_) {
    if (clock.predicted_ts >= 0) clock.predicted_ts += ms;
    clock.logs_since_tick = 0;
  }
  return emit_all();
}

}  // namespace loglens
