#include "service/service.h"

#include <fstream>

#include "common/hash.h"

namespace loglens {

LogLensService::LogLensService(ServiceOptions options)
    : options_(std::move(options)),
      broker_(options_.metrics),
      log_manager_(broker_, LogManagerOptions{"ingest", "logs"}),
      heartbeat_(broker_, HeartbeatOptions{"parsed", "parsed"},
                 options_.metrics),
      anomaly_sink_(broker_, "anomalies") {
  broker_.create_topic("ingest", 1);
  broker_.create_topic("logs", 1);
  broker_.create_topic("parsed", 1);
  broker_.create_topic("anomalies", 1);
  broker_.create_topic("metrics", 1);

  parser_broadcast_ = std::make_shared<ModelBroadcast>(
      1, CompositeModel{}, options_.parser_partitions);
  detector_broadcast_ = std::make_shared<ModelBroadcast>(
      2, CompositeModel{}, options_.detector_partitions);

  EngineOptions parser_opts;
  parser_opts.partitions = options_.parser_partitions;
  parser_opts.workers = options_.workers;
  parser_opts.metrics = options_.metrics;
  parser_opts.stage = "parser";
  // Stateless stage: partition by source so one source's timestamp-format
  // cache stays hot on one partition.
  parser_opts.partitioner = [](const Message& m, size_t n) {
    return m.source.empty() ? 0 : static_cast<size_t>(fnv1a(m.source) % n);
  };
  parser_engine_ = std::make_unique<StreamEngine>(
      parser_opts, [this](size_t p) -> std::unique_ptr<PartitionTask> {
        return std::make_unique<ParserTask>(parser_broadcast_, p,
                                            options_.parser, options_.metrics);
      });

  EngineOptions detector_opts;
  detector_opts.partitions = options_.detector_partitions;
  detector_opts.workers = options_.workers;
  detector_opts.metrics = options_.metrics;
  detector_opts.stage = "detector";
  // Stateful stage: default key-hash partitioner; the parser stage keys
  // parsed logs by event id, so an event's logs share a partition.
  detector_engine_ = std::make_unique<StreamEngine>(
      detector_opts, [this](size_t p) -> std::unique_ptr<PartitionTask> {
        return std::make_unique<DetectorTask>(
            detector_broadcast_, p, options_.detector, options_.metrics);
      });

  JobOptions parser_job;
  parser_job.input_topic = "logs";
  parser_job.output_topic = "parsed";
  parser_job.batch_size = 2048;
  parser_job.name = "parser";
  parser_job.metrics_report_every = options_.metrics_report_every;
  parser_job.metrics = options_.metrics;
  parser_runner_ =
      std::make_unique<JobRunner>(broker_, *parser_engine_, parser_job);
  JobOptions detector_job = parser_job;
  detector_job.input_topic = "parsed";
  detector_job.output_topic = "anomalies";
  detector_job.name = "detector";
  detector_runner_ =
      std::make_unique<JobRunner>(broker_, *detector_engine_, detector_job);

  model_controller_ = std::make_unique<ModelController>(
      model_store_,
      std::vector<ModelController::Target>{
          {parser_engine_.get(), parser_broadcast_},
          {detector_engine_.get(), detector_broadcast_}});
  model_manager_ =
      std::make_unique<ModelManager>(model_store_, *model_controller_);
}

LogLensService::~LogLensService() { stop(); }

BuildResult LogLensService::train(
    const std::vector<std::string>& training_lines) {
  ModelBuilder builder(options_.build);
  BuildResult result = builder.build(training_lines);
  model_manager_->deploy(options_.model_name, result.model);
  if (!running_) drain();  // let the rebroadcast land immediately
  return result;
}

Agent LogLensService::make_agent(const std::string& source) {
  return Agent(broker_, AgentOptions{source, "ingest"});
}

void LogLensService::start() {
  if (running_) return;
  running_ = true;
  parser_runner_->start();
  detector_runner_->start();
}

void LogLensService::stop() {
  if (!running_) return;
  parser_runner_->stop();
  detector_runner_->stop();
  running_ = false;
  drain();
}

void LogLensService::sink_drain() {
  for (auto batch = anomaly_sink_.poll(4096); !batch.empty();
       batch = anomaly_sink_.poll(4096)) {
    for (const auto& m : batch) {
      auto a = anomaly_from_message(m);
      if (a.ok()) anomaly_store_.add(a.value());
    }
  }
}

void LogLensService::drain() {
  // One pass can enqueue work for the next stage, so loop to a fixed point.
  for (int round = 0; round < 8; ++round) {
    size_t moved = log_manager_.drain();
    if (!running_) {
      parser_runner_->drain();
      detector_runner_->drain();
    }
    sink_drain();
    if (moved == 0 && round > 0) break;
  }
}

Status LogLensService::checkpoint(const std::string& path) {
  JsonObject obj;
  obj.emplace_back("model_name", Json(options_.model_name));
  auto entry = model_store_.latest(options_.model_name);
  obj.emplace_back("model", entry ? entry->blob : Json(nullptr));
  JsonArray events;
  for (size_t p = 0; p < detector_engine_->partitions(); ++p) {
    auto* task = dynamic_cast<DetectorTask*>(&detector_engine_->task(p));
    if (task == nullptr) continue;
    Json snap = task->snapshot_state();
    if (const Json* open = snap.find("open_events");
        open != nullptr && open->is_array()) {
      for (const auto& e : open->as_array()) events.push_back(e);
    }
  }
  obj.emplace_back("open_events", Json(std::move(events)));
  std::ofstream out(path);
  if (!out) return Status::Error("cannot write checkpoint: " + path);
  out << Json(std::move(obj)).dump() << "\n";
  return out ? Status::Ok() : Status::Error("checkpoint write failed");
}

Status LogLensService::restore(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::Error("cannot open checkpoint: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto j = Json::parse(text);
  if (!j.ok()) return j.status();
  const Json* model_blob = j->find("model");
  if (model_blob == nullptr || !model_blob->is_object()) {
    return Status::Error("checkpoint missing model");
  }
  auto model = CompositeModel::from_json(*model_blob);
  if (!model.ok()) return model.status();
  model_manager_->deploy(options_.model_name, model.value());
  if (!running_) drain();  // land the rebroadcast

  // Re-shard the open events over this service's detector partitions using
  // the same key hash the engine's partitioner applies to event ids.
  const size_t n = detector_engine_->partitions();
  std::vector<JsonArray> shards(n);
  if (const Json* events = j->find("open_events");
      events != nullptr && events->is_array()) {
    for (const auto& e : events->as_array()) {
      std::string_view id = e.get_string("id");
      size_t p = id.empty() ? 0 : static_cast<size_t>(fnv1a(id) % n);
      shards[p].push_back(e);
    }
  }
  for (size_t p = 0; p < n; ++p) {
    auto* task = dynamic_cast<DetectorTask*>(&detector_engine_->task(p));
    if (task == nullptr) continue;
    JsonObject slice;
    slice.emplace_back("open_events", Json(std::move(shards[p])));
    Status s = task->restore_state(Json(std::move(slice)), model.value());
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

StatusOr<LogLensService::ReplayResult> LogLensService::replay_archive(
    const std::string& source, int64_t from_ms, int64_t to_ms) {
  auto model = model_manager_->get(options_.model_name);
  if (!model.ok()) return StatusOr<ReplayResult>(model.status());
  std::vector<std::string> lines = log_manager_.log_store().fetch(source);
  if (lines.empty()) {
    return StatusOr<ReplayResult>::Error("no archived logs for source: " +
                                         source);
  }

  auto pre = Preprocessor::create(options_.parser.preprocessor);
  if (!pre.ok()) pre = Preprocessor::create({});
  LogParser parser(model->patterns, pre->classifier());
  SequenceDetector detector(model->sequence, options_.detector);

  ReplayResult result;
  int64_t max_ts = -1;
  for (const auto& line : lines) {
    TokenizedLog tokenized = pre->process(line);
    if (tokenized.timestamp_ms >= 0 &&
        (tokenized.timestamp_ms < from_ms || tokenized.timestamp_ms > to_ms)) {
      continue;
    }
    ++result.logs;
    max_ts = std::max(max_ts, tokenized.timestamp_ms);
    auto outcome = parser.parse(tokenized);
    if (!outcome.log.has_value()) {
      ++result.unparsed;
      Anomaly a;
      a.type = AnomalyType::kUnparsedLog;
      a.reason = "no pattern parses this archived log";
      a.timestamp_ms = tokenized.timestamp_ms;
      a.source = source;
      a.logs = {line};
      result.anomalies.push_back(std::move(a));
      continue;
    }
    auto found = detector.on_log(*outcome.log, source);
    result.anomalies.insert(result.anomalies.end(), found.begin(),
                            found.end());
  }
  if (max_ts >= 0) {
    auto expired = detector.on_heartbeat(max_ts + 365LL * 24 * 3600 * 1000);
    result.anomalies.insert(result.anomalies.end(), expired.begin(),
                            expired.end());
  }
  return result;
}

size_t LogLensService::open_events() {
  size_t total = 0;
  for (size_t p = 0; p < detector_engine_->partitions(); ++p) {
    auto* task = dynamic_cast<DetectorTask*>(&detector_engine_->task(p));
    if (task != nullptr) total += task->open_events();
  }
  return total;
}

}  // namespace loglens
