#include "service/service.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/clock.h"
#include "common/hash.h"
#include "common/sched.h"
#include "trace/trace.h"

namespace loglens {

namespace {

// Per-role tiered-store options: each store flushes under its own
// subdirectory of storage.dir, labels its metrics by role, and inherits the
// service-level registry/injector unless explicitly overridden.
DocumentStoreOptions role_store_options(const ServiceOptions& o,
                                        const char* role) {
  DocumentStoreOptions s = o.storage;
  if (!s.dir.empty()) s.dir += std::string("/") + role;
  s.name = role;
  if (s.metrics == nullptr) s.metrics = o.metrics;
  if (s.faults == nullptr) s.faults = o.faults;
  return s;
}

LogManagerOptions log_manager_options(const ServiceOptions& o) {
  LogManagerOptions lm{"ingest", "logs"};
  lm.store = role_store_options(o, "logs");
  return lm;
}

}  // namespace

LogLensService::LogLensService(ServiceOptions options)
    : options_(std::move(options)),
      broker_(options_.metrics, options_.faults),
      log_manager_(broker_, log_manager_options(options_)),
      heartbeat_(broker_, HeartbeatOptions{"parsed", "parsed"},
                 options_.metrics),
      anomaly_store_(role_store_options(options_, "anomalies")),
      anomaly_sink_(broker_, "anomalies") {
  broker_.create_topic("ingest", 1);
  broker_.create_topic("logs", 1);
  broker_.create_topic("parsed", 1);
  broker_.create_topic("anomalies", 1);
  broker_.create_topic("metrics", 1);
  if (!options_.dead_letter_topic.empty()) {
    broker_.create_topic(options_.dead_letter_topic, 1);
  }
  recoveries_total_ = &registry_or_global(options_.metrics)
                           .counter("loglens_service_recoveries_total", {},
                                    "Successful checkpoint recoveries");

  parser_broadcast_ = std::make_shared<ModelBroadcast>(
      1, CompositeModel{}, options_.parser_partitions);
  detector_broadcast_ = std::make_shared<ModelBroadcast>(
      2, CompositeModel{}, options_.detector_partitions);

  EngineOptions parser_opts;
  parser_opts.partitions = options_.parser_partitions;
  parser_opts.workers = options_.workers;
  parser_opts.metrics = options_.metrics;
  parser_opts.stage = "parser";
  parser_opts.faults = options_.faults;
  parser_opts.task_max_attempts = options_.task_max_attempts;
  // Stateless stage: partition by source so one source's timestamp-format
  // cache stays hot on one partition.
  parser_opts.partitioner = [](const Message& m, size_t n) {
    return m.source.empty() ? 0 : static_cast<size_t>(fnv1a(m.source) % n);
  };
  parser_engine_ = std::make_unique<StreamEngine>(
      parser_opts, [this](size_t p) -> std::unique_ptr<PartitionTask> {
        return std::make_unique<ParserTask>(parser_broadcast_, p,
                                            options_.parser, options_.metrics);
      });

  EngineOptions detector_opts;
  detector_opts.partitions = options_.detector_partitions;
  detector_opts.workers = options_.workers;
  detector_opts.metrics = options_.metrics;
  detector_opts.stage = "detector";
  detector_opts.faults = options_.faults;
  detector_opts.task_max_attempts = options_.task_max_attempts;
  // Stateful stage: default key-hash partitioner; the parser stage keys
  // parsed logs by event id, so an event's logs share a partition.
  detector_engine_ = std::make_unique<StreamEngine>(
      detector_opts, [this](size_t p) -> std::unique_ptr<PartitionTask> {
        return std::make_unique<DetectorTask>(
            detector_broadcast_, p, options_.detector, options_.metrics);
      });

  JobOptions parser_job;
  parser_job.input_topic = "logs";
  parser_job.output_topic = "parsed";
  parser_job.batch_size = 2048;
  parser_job.name = "parser";
  parser_job.metrics_report_every = options_.metrics_report_every;
  parser_job.metrics = options_.metrics;
  parser_job.dead_letter_topic = options_.dead_letter_topic;
  parser_runner_ =
      std::make_unique<JobRunner>(broker_, *parser_engine_, parser_job);
  JobOptions detector_job = parser_job;
  detector_job.input_topic = "parsed";
  detector_job.output_topic = "anomalies";
  detector_job.name = "detector";
  detector_runner_ =
      std::make_unique<JobRunner>(broker_, *detector_engine_, detector_job);

  model_controller_ = std::make_unique<ModelController>(
      model_store_,
      std::vector<ModelController::Target>{
          {parser_engine_.get(), parser_broadcast_},
          {detector_engine_.get(), detector_broadcast_}});
  model_manager_ =
      std::make_unique<ModelManager>(model_store_, *model_controller_);
}

LogLensService::~LogLensService() { stop(); }

BuildResult LogLensService::train(
    const std::vector<std::string>& training_lines) {
  ModelBuilder builder(options_.build);
  BuildResult result = builder.build(training_lines);
  model_manager_->deploy(options_.model_name, result.model);
  if (!running_) drain();  // let the rebroadcast land immediately
  return result;
}

Agent LogLensService::make_agent(const std::string& source) {
  return Agent(broker_, AgentOptions{source, "ingest"});
}

void LogLensService::start() {
  if (running_.exchange(true)) return;
  parser_runner_->start();
  detector_runner_->start();
  if (options_.supervise && !options_.checkpoint_path.empty() &&
      !supervising_.exchange(true)) {
    supervisor_ = sched::spawn_named("supervisor", [this] { supervisor_loop(); });
  }
}

void LogLensService::stop() {
  // Supervisor first: it restarts runners on failure, so it must be gone
  // before the runners are told to stay down.
  if (supervising_.exchange(false) && supervisor_.joinable()) {
    sched::BlockingRegion joining;
    supervisor_.join();
  }
  if (!running_.exchange(false)) return;
  parser_runner_->stop();
  detector_runner_->stop();
  drain();
}

void LogLensService::supervisor_loop() {
  while (supervising_.load()) {
    sched::sleep_for_ms(static_cast<uint64_t>(options_.supervise_interval_ms));
    LOGLENS_SCHED_POINT("service.supervise_tick");
    if (!supervising_.load()) return;
    if (parser_runner_->failed() || detector_runner_->failed()) {
      // Failed recovery (e.g. the checkpoint file is being faulted too) is
      // retried on the next tick.
      (void)recover();
    }
  }
}

void LogLensService::sink_drain() {
  for (auto batch = anomaly_sink_.poll(4096); !batch.empty();
       batch = anomaly_sink_.poll(4096)) {
    // The store-side terminus of the trace: absorb this batch under the
    // context of the message that produced it, so the sink span chains to
    // the detector's pipeline span.
    trace::TraceContext ctx;
    const uint64_t start_us = trace_clock::now_us();
    if (trace::enabled()) {
      for (const auto& m : batch) {
        if (m.trace_id != 0) {
          ctx.trace_id = m.trace_id;
          ctx.span_id = m.parent_span;
          break;
        }
      }
    }
    trace::ContextScope scope(ctx);
    for (const auto& m : batch) {
      auto a = anomaly_from_message(m);
      if (a.ok()) anomaly_store_.add(a.value());
    }
    registry_or_global(options_.metrics)
        .record_span("sink.flush", start_us,
                     trace_clock::now_us() - start_us);
  }
}

void LogLensService::drain() {
  // One pass can enqueue work for the next stage, so loop to a fixed point:
  // nothing moved AND nothing is still buffered. The lag checks matter under
  // fault injection, where an empty poll can be an injected fetch fault
  // rather than an empty topic. A round that parks a runner recovers in
  // place (checkpoint configured) and keeps draining — the rewound offsets
  // are reprocessed by later rounds.
  for (int round = 0; round < 32; ++round) {
    size_t moved = log_manager_.drain();
    bool recovered = false;
    bool idle = true;
    if (!running_.load()) {
      parser_runner_->drain();
      detector_runner_->drain();
      if (parser_runner_->failed() || detector_runner_->failed()) {
        if (options_.checkpoint_path.empty()) break;  // leave failure visible
        recovered = recover().ok();
        if (!recovered) break;  // cannot repair; don't spin
      }
      idle = parser_runner_->input_lag() == 0 &&
             detector_runner_->input_lag() == 0;
    }
    sink_drain();
    if (moved == 0 && !recovered && idle && log_manager_.input_lag() == 0 &&
        anomaly_sink_.caught_up() && round > 0) {
      break;
    }
  }
}

Status LogLensService::checkpoint(const std::string& path) {
  JsonObject obj;
  obj.emplace_back("model_name", Json(options_.model_name));
  auto entry = model_store_.latest(options_.model_name);
  obj.emplace_back("model", entry ? entry->blob : Json(nullptr));
  JsonArray events;
  for (size_t p = 0; p < detector_engine_->partitions(); ++p) {
    auto* task = dynamic_cast<DetectorTask*>(&detector_engine_->task(p));
    if (task == nullptr) continue;
    Json snap = task->snapshot_state();
    if (const Json* open = snap.find("open_events");
        open != nullptr && open->is_array()) {
      for (const auto& e : open->as_array()) events.push_back(e);
    }
  }
  obj.emplace_back("open_events", Json(std::move(events)));
  // Broker positions at checkpoint time; recover() rewinds to these. Only
  // meaningful on a quiesced service (header contract), where they form a
  // consistent cut with the detector state above.
  auto offsets_json = [](const std::vector<uint64_t>& offsets) {
    JsonArray arr;
    for (uint64_t o : offsets) arr.push_back(Json(static_cast<int64_t>(o)));
    return Json(std::move(arr));
  };
  JsonObject offsets;
  offsets.emplace_back("parser",
                       offsets_json(parser_runner_->consumer_offsets()));
  offsets.emplace_back("detector",
                       offsets_json(detector_runner_->consumer_offsets()));
  offsets.emplace_back("anomaly_sink", offsets_json(anomaly_sink_.offsets()));
  obj.emplace_back("offsets", Json(std::move(offsets)));

  std::string payload = Json(std::move(obj)).dump() + "\n";
  const std::string tmp = path + ".tmp";
  FaultAction fault = options_.faults != nullptr
                          ? options_.faults->check(kFaultSiteCheckpointWrite)
                          : FaultAction::kNone;
  if (fault == FaultAction::kThrow) {
    return Status::Error("checkpoint write failed (injected)");
  }
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::Error("cannot write checkpoint: " + tmp);
    if (fault == FaultAction::kTornWrite) {
      // Simulated crash mid-write: half the payload, no rename. The
      // previous checkpoint at `path` stays intact — this is exactly what
      // the tmp+rename protocol exists for.
      out << payload.substr(0, payload.size() / 2);
      return Status::Error("checkpoint write torn (injected)");
    }
    out << payload;
    if (!out) return Status::Error("checkpoint write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Error("cannot publish checkpoint: " + path);
  }
  return Status::Ok();
}

Status LogLensService::restore(const std::string& path) {
  return restore_internal(path, /*in_place=*/false);
}

Status LogLensService::restore_internal(const std::string& path,
                                        bool in_place) {
  std::ifstream in(path);
  if (!in) return Status::Error("cannot open checkpoint: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto j = Json::parse(text);
  if (!j.ok()) return j.status();
  const Json* model_blob = j->find("model");
  if (model_blob == nullptr || !model_blob->is_object()) {
    return Status::Error("checkpoint missing model");
  }
  auto model = CompositeModel::from_json(*model_blob);
  if (!model.ok()) return model.status();
  model_manager_->deploy(options_.model_name, model.value());
  if (!running_.load()) {
    // Land the rebroadcast without consuming queued input: control ops are
    // applied at the head of a batch, so empty batches suffice (a plain
    // drain() here would replay input before the offsets below are rewound).
    try {
      parser_engine_->run_batch({});
      detector_engine_->run_batch({});
    } catch (const std::exception& e) {
      return Status::Error(std::string("restore rebroadcast failed: ") +
                           e.what());
    }
  }

  // Re-shard the open events over this service's detector partitions using
  // the same key hash the engine's partitioner applies to event ids.
  const size_t n = detector_engine_->partitions();
  std::vector<JsonArray> shards(n);
  if (const Json* events = j->find("open_events");
      events != nullptr && events->is_array()) {
    for (const auto& e : events->as_array()) {
      std::string_view id = e.get_string("id");
      size_t p = id.empty() ? 0 : static_cast<size_t>(fnv1a(id) % n);
      shards[p].push_back(e);
    }
  }
  for (size_t p = 0; p < n; ++p) {
    auto* task = dynamic_cast<DetectorTask*>(&detector_engine_->task(p));
    if (task == nullptr) continue;
    JsonObject slice;
    slice.emplace_back("open_events", Json(std::move(shards[p])));
    Status s = task->restore_state(Json(std::move(slice)), model.value());
    if (!s.ok()) return s;
  }
  if (!in_place) return Status::Ok();

  // In-place recovery: rewind the pipeline to the checkpoint's cut.
  const Json* offsets = j->find("offsets");
  if (offsets == nullptr || !offsets->is_object()) {
    return Status::Error("checkpoint missing offsets (pre-recovery format?)");
  }
  auto offsets_of = [&](const char* key) {
    std::vector<uint64_t> out;
    if (const Json* arr = offsets->find(key);
        arr != nullptr && arr->is_array()) {
      for (const auto& o : arr->as_array()) {
        out.push_back(o.is_int() ? static_cast<uint64_t>(o.as_int()) : 0);
      }
    }
    return out;
  };
  parser_runner_->seek(offsets_of("parser"));
  detector_runner_->seek(offsets_of("detector"));

  // Exactly-once output despite the at-least-once replay: roll the anomaly
  // store back to the checkpointed prefix of the topic and skip the sink
  // past everything currently appended — the replay re-emits the
  // post-checkpoint anomalies.
  anomaly_store_.clear();
  std::vector<uint64_t> sink_offsets = offsets_of("anomaly_sink");
  const size_t parts = broker_.partition_count("anomalies");
  std::vector<uint64_t> topic_end(parts, 0);
  for (size_t p = 0; p < parts; ++p) {
    topic_end[p] = broker_.end_offset("anomalies", p);
    const uint64_t upto = p < sink_offsets.size() ? sink_offsets[p] : 0;
    std::vector<Message> prefix;
    // fetch() is itself a fault site; retry until the full prefix arrives.
    for (int attempt = 0; attempt < 100 && prefix.size() < upto; ++attempt) {
      prefix = broker_.fetch("anomalies", p, 0, upto);
    }
    if (prefix.size() < upto) {
      return Status::Error("cannot re-read checkpointed anomalies");
    }
    for (const auto& m : prefix) {
      auto a = anomaly_from_message(m);
      if (a.ok()) anomaly_store_.add(a.value());
    }
  }
  anomaly_sink_.seek(topic_end);
  return Status::Ok();
}

Status LogLensService::recover() {
  LOGLENS_SCHED_POINT("service.recover");
  RankedMutexLock lock(recover_mu_);
  if (options_.checkpoint_path.empty()) {
    return Status::Error("no checkpoint_path configured");
  }
  const bool was_running = running_.exchange(false);
  if (was_running) {
    parser_runner_->stop();
    detector_runner_->stop();
  }
  Status s = restore_internal(options_.checkpoint_path, /*in_place=*/true);
  if (s.ok()) {
    parser_runner_->clear_failure();
    detector_runner_->clear_failure();
    recoveries_.fetch_add(1);
    recoveries_total_->inc();
  }
  if (was_running) {
    running_.store(true);
    parser_runner_->start();
    detector_runner_->start();
  }
  return s;
}

StatusOr<LogLensService::ReplayResult> LogLensService::replay_archive(
    const std::string& source, int64_t from_ms, int64_t to_ms) {
  auto model = model_manager_->get(options_.model_name);
  if (!model.ok()) return StatusOr<ReplayResult>(model.status());
  std::vector<std::string> lines = log_manager_.log_store().fetch(source);
  if (lines.empty()) {
    return StatusOr<ReplayResult>::Error("no archived logs for source: " +
                                         source);
  }

  auto pre = Preprocessor::create(options_.parser.preprocessor);
  if (!pre.ok()) pre = Preprocessor::create({});
  LogParser parser(model->patterns, pre->classifier());
  SequenceDetector detector(model->sequence, options_.detector);

  ReplayResult result;
  int64_t max_ts = -1;
  for (const auto& line : lines) {
    TokenizedLog tokenized = pre->process(line);
    if (tokenized.timestamp_ms >= 0 &&
        (tokenized.timestamp_ms < from_ms || tokenized.timestamp_ms > to_ms)) {
      continue;
    }
    ++result.logs;
    max_ts = std::max(max_ts, tokenized.timestamp_ms);
    auto outcome = parser.parse(tokenized);
    if (!outcome.log.has_value()) {
      ++result.unparsed;
      Anomaly a;
      a.type = AnomalyType::kUnparsedLog;
      a.reason = "no pattern parses this archived log";
      a.timestamp_ms = tokenized.timestamp_ms;
      a.source = source;
      a.logs = {line};
      result.anomalies.push_back(std::move(a));
      continue;
    }
    auto found = detector.on_log(*outcome.log, source);
    result.anomalies.insert(result.anomalies.end(), found.begin(),
                            found.end());
  }
  if (max_ts >= 0) {
    auto expired = detector.on_heartbeat(max_ts + 365LL * 24 * 3600 * 1000);
    result.anomalies.insert(result.anomalies.end(), expired.begin(),
                            expired.end());
  }
  return result;
}

size_t LogLensService::open_events() {
  size_t total = 0;
  for (size_t p = 0; p < detector_engine_->partitions(); ++p) {
    auto* task = dynamic_cast<DetectorTask*>(&detector_engine_->task(p));
    if (task != nullptr) total += task->open_events();
  }
  return total;
}

}  // namespace loglens
