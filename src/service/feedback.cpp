#include "service/feedback.h"

#include <algorithm>

#include "tokenize/preprocessor.h"

namespace loglens {

GrokPattern pattern_from_line(std::string_view raw, int pattern_id) {
  Preprocessor pre = std::move(Preprocessor::create({}).value());
  TokenizedLog log = pre.process(raw);
  std::vector<GrokToken> tokens;
  tokens.reserve(log.tokens.size());
  for (const Token& t : log.tokens) {
    // WORD tokens are the stable vocabulary of a log line; everything else
    // (numbers, ips, ids, timestamps) is data and becomes a typed field.
    if (t.type == Datatype::kWord) {
      tokens.push_back(GrokToken::make_literal(t.text));
    } else {
      tokens.push_back(GrokToken::make_field(t.type));
    }
  }
  GrokPattern pattern(std::move(tokens));
  pattern.assign_field_ids(pattern_id);
  return pattern;
}

namespace {

// Applies the model edit for one accepted anomaly; fills `description`.
Status apply_feedback(CompositeModel& model, const Anomaly& anomaly,
                      std::string& description) {
  Status edit_status = Status::Ok();
  [&] {
    auto automaton_of = [&model](int id) -> Automaton* {
      for (auto& a : model.sequence.automata) {
        if (a.id == id) return &a;
      }
      return nullptr;
    };
    auto fail = [&edit_status](std::string what) {
      edit_status = Status::Error(std::move(what));
    };

    switch (anomaly.type) {
      case AnomalyType::kUnparsedLog: {
        if (anomaly.logs.empty()) {
          fail("unparsed-log anomaly carries no log line");
          return;
        }
        int next_id = 1;
        for (const auto& p : model.patterns) {
          next_id = std::max(next_id, p.id() + 1);
        }
        GrokPattern pattern = pattern_from_line(anomaly.logs.front(), next_id);
        if (pattern.size() == 0) {
          fail("log line produced an empty pattern");
          return;
        }
        description = "added pattern P" + std::to_string(next_id) + ": " +
                      pattern.to_string();
        model.patterns.push_back(std::move(pattern));
        return;
      }
      case AnomalyType::kMissingBeginState: {
        Automaton* a = automaton_of(anomaly.automaton_id);
        int pattern = static_cast<int>(anomaly.details.get_int("first_pattern", -1));
        if (a == nullptr || pattern < 0) {
          fail("missing automaton or first_pattern detail");
          return;
        }
        a->begin_patterns.insert(pattern);
        description = "automaton " + std::to_string(a->id) +
                      ": accepted P" + std::to_string(pattern) +
                      " as a begin state";
        return;
      }
      case AnomalyType::kMissingEndState: {
        Automaton* a = automaton_of(anomaly.automaton_id);
        int pattern = static_cast<int>(anomaly.details.get_int("last_pattern", -1));
        if (a == nullptr || pattern < 0) {
          fail("missing automaton or last_pattern detail");
          return;
        }
        a->end_patterns.insert(pattern);
        description = "automaton " + std::to_string(a->id) +
                      ": accepted P" + std::to_string(pattern) +
                      " as an end state";
        return;
      }
      case AnomalyType::kMissingIntermediateState: {
        Automaton* a = automaton_of(anomaly.automaton_id);
        int pattern = static_cast<int>(anomaly.details.get_int("pattern_id", -1));
        if (a == nullptr || !a->states.contains(pattern)) {
          fail("missing automaton or pattern_id detail");
          return;
        }
        a->states[pattern].min_occurrences = 0;
        description = "automaton " + std::to_string(a->id) + ": state P" +
                      std::to_string(pattern) + " is now optional";
        return;
      }
      case AnomalyType::kOccurrenceViolation: {
        Automaton* a = automaton_of(anomaly.automaton_id);
        int pattern = static_cast<int>(anomaly.details.get_int("pattern_id", -1));
        int count = static_cast<int>(anomaly.details.get_int("count", -1));
        if (a == nullptr || !a->states.contains(pattern) || count < 0) {
          fail("missing automaton, pattern_id, or count detail");
          return;
        }
        StateRule& rule = a->states[pattern];
        rule.min_occurrences = std::min(rule.min_occurrences, count);
        rule.max_occurrences = std::max(rule.max_occurrences, count);
        description = "automaton " + std::to_string(a->id) + ": state P" +
                      std::to_string(pattern) + " occurrence widened to [" +
                      std::to_string(rule.min_occurrences) + ", " +
                      std::to_string(rule.max_occurrences) + "]";
        return;
      }
      case AnomalyType::kDurationViolation: {
        Automaton* a = automaton_of(anomaly.automaton_id);
        int64_t duration = anomaly.details.get_int("duration_ms", -1);
        if (a == nullptr || duration < 0) {
          fail("missing automaton or duration_ms detail");
          return;
        }
        a->min_duration_ms = std::min(a->min_duration_ms, duration);
        a->max_duration_ms = std::max(a->max_duration_ms, duration);
        description = "automaton " + std::to_string(a->id) +
                      ": duration widened to [" +
                      std::to_string(a->min_duration_ms) + ", " +
                      std::to_string(a->max_duration_ms) + "] ms";
        return;
      }
      case AnomalyType::kUnknownTransition: {
        Automaton* a = automaton_of(anomaly.automaton_id);
        int from = static_cast<int>(anomaly.details.get_int("from", -1));
        int to = static_cast<int>(anomaly.details.get_int("to", -1));
        if (a == nullptr || from < 0 || to < 0) {
          fail("missing automaton or transition details");
          return;
        }
        a->transitions.insert({from, to});
        description = "automaton " + std::to_string(a->id) +
                      ": accepted transition P" + std::to_string(from) +
                      " -> P" + std::to_string(to);
        return;
      }
      case AnomalyType::kKeywordAlert: {
        std::string_view token = anomaly.details.get_string("token");
        if (token.empty()) {
          fail("missing token detail");
          return;
        }
        if (!model.keyword_model.is_object()) {
          model.keyword_model = Json(JsonObject{});
        }
        const Json* allow = model.keyword_model.find("allowlist");
        JsonArray list = allow != nullptr && allow->is_array()
                             ? allow->as_array()
                             : JsonArray{};
        list.emplace_back(token);
        model.keyword_model.set("allowlist", Json(std::move(list)));
        description = "allowlisted keyword token '" + std::string(token) + "'";
        return;
      }
      case AnomalyType::kValueOutOfRange: {
        int pattern = static_cast<int>(anomaly.details.get_int("pattern_id", -1));
        std::string field(anomaly.details.get_string("field"));
        const Json* value = anomaly.details.find("value");
        if (pattern < 0 || field.empty() || value == nullptr ||
            !value->is_number()) {
          fail("missing range details");
          return;
        }
        if (!model.field_ranges.widen(pattern, field, value->as_double())) {
          fail("field not tracked: " + field);
          return;
        }
        description = "widened range of pattern " + std::to_string(pattern) +
                      " field " + field + " to include " +
                      std::to_string(value->as_double());
        return;
      }
    }
    fail("unsupported anomaly type");
  }();
  return edit_status;
}

}  // namespace

StatusOr<std::string> FeedbackHandler::accept_as_normal(
    const Anomaly& anomaly) {
  auto current = manager_.get(model_name_);
  if (!current.ok()) return StatusOr<std::string>(current.status());
  CompositeModel model = std::move(current.value());
  std::string description;
  Status status = apply_feedback(model, anomaly, description);
  if (!status.ok()) return StatusOr<std::string>(status);
  manager_.deploy(model_name_, model);  // new version, live rebroadcast
  return description;
}

}  // namespace loglens
