// The composite LogLens model: everything the streaming stages need, bundled
// as one broadcastable, JSON-serializable blob.
//
// The model builder produces this from training logs; the model store keeps
// versions of it; the model controller rebroadcasts it into the running
// pipeline. It carries the discovered GROK pattern set (stateless parser
// model) and the sequence model (ID fields + automata).
#pragma once

#include <string>
#include <vector>

#include "automata/model.h"
#include "common/status.h"
#include "detectors/field_range.h"
#include "grok/pattern.h"
#include "json/json.h"

namespace loglens {

struct CompositeModel {
  std::vector<GrokPattern> patterns;
  SequenceModel sequence;
  // Optional extension detectors (empty when the builder did not learn
  // them): KPI range profiles and the keyword allowlist.
  FieldRangeModel field_ranges;
  Json keyword_model = Json(JsonObject{});

  Json to_json() const;
  static StatusOr<CompositeModel> from_json(const Json& j);

  friend bool operator==(const CompositeModel&, const CompositeModel&) = default;
};

// Pattern-set (de)serialization, reused by model editing tools.
Json patterns_to_json(const std::vector<GrokPattern>& patterns);
StatusOr<std::vector<GrokPattern>> patterns_from_json(const Json& j);

}  // namespace loglens
