// Closing the human-validation loop.
//
// The paper's lesson learned: "we have to provide options to users for
// incorporating their domain knowledge during model building as well as
// allow them to edit automatically generated models to improve the accuracy
// of the anomaly detection results" (Section VIII). Anomalies sit in the
// anomaly store "for human validation" — this component is what a validating
// human clicks: marking an anomaly as *normal behaviour* turns its
// structured details into the precise model edit that stops that behaviour
// from alarming, deployed live through the model manager (so the running
// pipeline picks it up between micro-batches).
//
// Edit per anomaly type:
//   UNPARSED_LOG            -> learn a pattern from the log line and add it
//   MISSING_BEGIN_STATE     -> accept the observed first pattern as a begin
//   MISSING_END_STATE       -> accept the observed last pattern as an end
//   MISSING_INTERMEDIATE    -> drop that state's minimum occurrence to 0
//   OCCURRENCE_VIOLATION    -> widen the state's min/max to the observed count
//   DURATION_VIOLATION      -> widen the automaton's duration window
//   UNKNOWN_TRANSITION      -> add the observed transition
//   KEYWORD_ALERT           -> allowlist the offending token
//   VALUE_OUT_OF_RANGE      -> widen the field's learned range
#pragma once

#include <string>

#include "service/model_ops.h"
#include "storage/anomaly.h"

namespace loglens {

class FeedbackHandler {
 public:
  FeedbackHandler(ModelManager& manager, std::string model_name)
      : manager_(manager), model_name_(std::move(model_name)) {}

  // Marks `anomaly` as normal behaviour; edits and redeploys the model.
  // Returns a description of the edit applied.
  StatusOr<std::string> accept_as_normal(const Anomaly& anomaly);

 private:
  ModelManager& manager_;
  std::string model_name_;
};

// The pattern-learning half of UNPARSED_LOG feedback, exposed for reuse:
// builds a GROK pattern from one raw line by keeping WORD tokens as literals
// and generalizing everything else to its datatype.
GrokPattern pattern_from_line(std::string_view raw, int pattern_id);

}  // namespace loglens
