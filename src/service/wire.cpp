#include "service/wire.h"

namespace loglens {

Message parsed_to_message(const ParsedLog& log, std::string key,
                          std::string source) {
  JsonObject obj;
  obj.emplace_back("pattern_id", Json(static_cast<int64_t>(log.pattern_id)));
  obj.emplace_back("ts", Json(log.timestamp_ms));
  obj.emplace_back("raw", Json(log.raw));
  JsonObject fields;
  for (const auto& [k, v] : log.fields) fields.emplace_back(k, v);
  obj.emplace_back("fields", Json(std::move(fields)));

  Message m;
  m.key = std::move(key);
  m.value = Json(std::move(obj)).dump();
  m.timestamp_ms = log.timestamp_ms;
  m.tag = kTagData;
  m.source = std::move(source);
  return m;
}

StatusOr<ParsedLog> parsed_from_message(const Message& m) {
  auto j = Json::parse(m.value);
  if (!j.ok()) return StatusOr<ParsedLog>(j.status());
  const Json& obj = j.value();
  ParsedLog log;
  log.pattern_id = static_cast<int>(obj.get_int("pattern_id"));
  log.timestamp_ms = obj.get_int("ts", -1);
  log.raw = std::string(obj.get_string("raw"));
  if (const Json* fields = obj.find("fields");
      fields != nullptr && fields->is_object()) {
    log.fields = fields->as_object();
  }
  return log;
}

Message anomaly_to_message(const Anomaly& anomaly) {
  Message m;
  m.key = anomaly.event_id.empty() ? anomaly.source : anomaly.event_id;
  m.value = anomaly.to_json().dump();
  m.timestamp_ms = anomaly.timestamp_ms;
  m.tag = kTagAnomaly;
  m.source = anomaly.source;
  return m;
}

StatusOr<Anomaly> anomaly_from_message(const Message& m) {
  auto j = Json::parse(m.value);
  if (!j.ok()) return StatusOr<Anomaly>(j.status());
  return Anomaly::from_json(j.value());
}

}  // namespace loglens
