#include "service/wire.h"

namespace loglens {

namespace {

Message parsed_envelope(const ParsedLog& log, std::string key,
                        std::string source) {
  Message m;
  m.key = std::move(key);
  m.timestamp_ms = log.timestamp_ms;
  m.tag = kTagData;
  m.source = std::move(source);
  return m;
}

}  // namespace

Message parsed_to_message(ParsedLog&& log, std::string key,
                          std::string source) {
  Message m = parsed_envelope(log, std::move(key), std::move(source));
  m.payload = std::make_shared<const ParsedPayload>(std::move(log));
  return m;
}

Message parsed_to_message(const ParsedLog& log, std::string key,
                          std::string source) {
  Message m = parsed_envelope(log, std::move(key), std::move(source));
  m.payload = std::make_shared<const ParsedPayload>(log);
  return m;
}

const ParsedLog* parsed_payload_view(const Message& m) {
  auto* p = dynamic_cast<const ParsedPayload*>(m.payload.get());
  return p == nullptr ? nullptr : &p->log;
}

StatusOr<ParsedLog> parsed_from_message(const Message& m) {
  if (const ParsedLog* log = parsed_payload_view(m)) return *log;
  auto j = Json::parse(m.value);
  if (!j.ok()) return StatusOr<ParsedLog>(j.status());
  const Json& obj = j.value();
  ParsedLog log;
  log.pattern_id = static_cast<int>(obj.get_int("pattern_id"));
  log.timestamp_ms = obj.get_int("ts", -1);
  log.raw = std::string(obj.get_string("raw"));
  if (const Json* fields = obj.find("fields");
      fields != nullptr && fields->is_object()) {
    log.fields = fields->as_object();
  }
  return log;
}

Message anomaly_to_message(const Anomaly& anomaly) {
  Message m;
  m.key = anomaly.event_id.empty() ? anomaly.source : anomaly.event_id;
  m.value = anomaly.to_json().dump();
  m.timestamp_ms = anomaly.timestamp_ms;
  m.tag = kTagAnomaly;
  m.source = anomaly.source;
  m.payload = std::make_shared<const AnomalyPayload>(anomaly);
  return m;
}

const Anomaly* anomaly_payload_view(const Message& m) {
  auto* p = dynamic_cast<const AnomalyPayload*>(m.payload.get());
  return p == nullptr ? nullptr : &p->anomaly;
}

StatusOr<Anomaly> anomaly_from_message(const Message& m) {
  if (const Anomaly* a = anomaly_payload_view(m)) return *a;
  auto j = Json::parse(m.value);
  if (!j.ok()) return StatusOr<Anomaly>(j.status());
  return Anomaly::from_json(j.value());
}

}  // namespace loglens
