// Agent (Figure 1): the daemon that collects logs at a source and ships them
// to the log manager's ingest topic. Our agent doubles as the paper's replay
// agent ("we have developed an agent, which emulates the log streaming
// behavior"): it pushes stored lines as a stream, preserving order.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "broker/broker.h"

namespace loglens {

struct AgentOptions {
  std::string source;          // log source name, stamped on every message
  std::string topic = "ingest";
};

class Agent {
 public:
  Agent(Broker& broker, AgentOptions options);

  // Ships one raw log line.
  void send_line(std::string_view line);

  // Replays a whole corpus in order.
  void replay(const std::vector<std::string>& lines);

  uint64_t lines_sent() const { return lines_sent_; }
  const std::string& source() const { return options_.source; }

 private:
  Broker& broker_;
  AgentOptions options_;
  uint64_t lines_sent_ = 0;
};

}  // namespace loglens
