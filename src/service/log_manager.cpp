#include "service/log_manager.h"

namespace loglens {

LogManager::LogManager(Broker& broker, LogManagerOptions options)
    : broker_(broker),
      options_(std::move(options)),
      consumer_(broker, options_.input_topic),
      store_(options_.store) {}

size_t LogManager::pump() {
  auto batch = consumer_.poll(options_.max_forward_per_pump);
  for (auto& m : batch) {
    if (!m.source.empty()) sources_.insert(m.source);
    if (options_.archive) {
      store_.add(m.source, m.value, m.timestamp_ms);
    }
  }
  const size_t n = batch.size();
  if (n > 0) {
    // Forward as one batch: one partition-lock crossing per pump, not per
    // log line.
    (void)broker_.produce_batch(options_.output_topic, std::move(batch));
  }
  forwarded_ += n;
  return n;
}

size_t LogManager::drain() {
  size_t total = 0;
  for (size_t n = pump(); n > 0; n = pump()) total += n;
  return total;
}

}  // namespace loglens
