#include "service/model.h"

namespace loglens {

Json patterns_to_json(const std::vector<GrokPattern>& patterns) {
  JsonArray arr;
  arr.reserve(patterns.size());
  for (const auto& p : patterns) {
    JsonObject obj;
    obj.emplace_back("id", Json(static_cast<int64_t>(p.id())));
    obj.emplace_back("grok", Json(p.to_string()));
    arr.emplace_back(Json(std::move(obj)));
  }
  return Json(std::move(arr));
}

StatusOr<std::vector<GrokPattern>> patterns_from_json(const Json& j) {
  if (!j.is_array()) {
    return StatusOr<std::vector<GrokPattern>>::Error("patterns not an array");
  }
  std::vector<GrokPattern> out;
  out.reserve(j.as_array().size());
  for (const auto& pj : j.as_array()) {
    auto p = GrokPattern::parse(pj.get_string("grok"));
    if (!p.ok()) return StatusOr<std::vector<GrokPattern>>(p.status());
    p.value().set_id(static_cast<int>(pj.get_int("id")));
    out.push_back(std::move(p.value()));
  }
  return out;
}

Json CompositeModel::to_json() const {
  JsonObject obj;
  obj.emplace_back("patterns", patterns_to_json(patterns));
  obj.emplace_back("sequence", sequence.to_json());
  obj.emplace_back("field_ranges", field_ranges.to_json());
  obj.emplace_back("keywords", keyword_model);
  return Json(std::move(obj));
}

StatusOr<CompositeModel> CompositeModel::from_json(const Json& j) {
  if (!j.is_object()) {
    return StatusOr<CompositeModel>::Error("model not an object");
  }
  CompositeModel m;
  const Json* pj = j.find("patterns");
  if (pj == nullptr) return StatusOr<CompositeModel>::Error("missing patterns");
  auto patterns = patterns_from_json(*pj);
  if (!patterns.ok()) return StatusOr<CompositeModel>(patterns.status());
  m.patterns = std::move(patterns.value());
  if (const Json* sj = j.find("sequence"); sj != nullptr) {
    auto seq = SequenceModel::from_json(*sj);
    if (!seq.ok()) return StatusOr<CompositeModel>(seq.status());
    m.sequence = std::move(seq.value());
  }
  if (const Json* rj = j.find("field_ranges"); rj != nullptr) {
    auto ranges = FieldRangeModel::from_json(*rj);
    if (!ranges.ok()) return StatusOr<CompositeModel>(ranges.status());
    m.field_ranges = std::move(ranges.value());
  }
  if (const Json* kj = j.find("keywords"); kj != nullptr) {
    m.keyword_model = *kj;
  }
  return m;
}

}  // namespace loglens
