// Log Manager (Figure 1): receives logs from agents, controls the incoming
// rate, identifies log sources, archives raw logs to the log store, and
// forwards them to the parser's input topic.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "broker/broker.h"
#include "storage/stores.h"

namespace loglens {

struct LogManagerOptions {
  std::string input_topic = "ingest";
  std::string output_topic = "logs";
  // Rate control: at most this many logs are forwarded per pump() call;
  // excess stays buffered in the broker until the next pump.
  size_t max_forward_per_pump = 65536;
  bool archive = true;  // store raw logs in the log store
  // Tiered-engine configuration for the archive (segment dir, flush and
  // compaction policy). Default: in-memory.
  DocumentStoreOptions store;
};

class LogManager {
 public:
  LogManager(Broker& broker, LogManagerOptions options = {});

  // Moves up to the rate limit of buffered logs from ingest to the parser
  // topic. Returns the number forwarded.
  size_t pump();

  // Drains the ingest topic completely (repeated pumps).
  size_t drain();

  // Logs still buffered on the ingest topic. Under fault injection an empty
  // poll inside drain() can be an injected fetch failure, so callers chasing
  // a fixed point must gate on this rather than on drain() returning 0.
  uint64_t input_lag() const { return consumer_.lag(); }

  const std::set<std::string>& sources() const { return sources_; }
  LogStore& log_store() { return store_; }
  uint64_t forwarded() const { return forwarded_; }

 private:
  Broker& broker_;
  LogManagerOptions options_;
  Consumer consumer_;
  LogStore store_;
  std::set<std::string> sources_;
  uint64_t forwarded_ = 0;
};

}  // namespace loglens
