#include "metrics/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <thread>

namespace loglens {

namespace {

// Escapes a label value for the Prometheus text format.
std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string render_labels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += labels[i].first + "=\"" + escape_label(labels[i].second) + "\"";
  }
  out.push_back('}');
  return out;
}

// Same, but with room for an extra injected label (quantile="...").
std::string render_labels_extra(const MetricLabels& labels,
                                const std::string& extra) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += k + "=\"" + escape_label(v) + "\",";
  }
  out += extra + "}";
  return out;
}

Json labels_json(const MetricLabels& labels) {
  JsonObject obj;
  for (const auto& [k, v] : labels) obj.emplace_back(k, Json(v));
  return Json(std::move(obj));
}

}  // namespace

size_t Counter::shard_index() {
  static std::atomic<size_t> next{0};
  thread_local const size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

uint64_t Counter::value() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

size_t Histogram::bucket_of(uint64_t v) {
  if (v < 16) return static_cast<size_t>(v);
  size_t m = static_cast<size_t>(std::bit_width(v)) - 1;  // >= 4
  size_t sub = static_cast<size_t>((v >> (m - 4)) & 15);
  return 16 + (m - 4) * 16 + sub;
}

uint64_t Histogram::bucket_lo(size_t b) {
  if (b < 16) return b;
  size_t m = (b - 16) / 16 + 4;
  uint64_t sub = (b - 16) % 16;
  return (uint64_t{1} << m) + sub * (uint64_t{1} << (m - 4));
}

uint64_t Histogram::bucket_width(size_t b) {
  if (b < 16) return 1;
  size_t m = (b - 16) / 16 + 4;
  return uint64_t{1} << (m - 4);
}

void Histogram::record(uint64_t value) {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  // Copy the buckets once and derive everything from the copy, so the
  // percentiles are internally consistent even while writers race.
  uint64_t local[kBuckets];
  uint64_t count = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    local[b] = buckets_[b].load(std::memory_order_relaxed);
    count += local[b];
  }
  Snapshot snap;
  snap.count = count;
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (count == 0) return snap;
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);

  auto percentile = [&](double q) {
    auto target = static_cast<uint64_t>(std::ceil(q * count));
    if (target == 0) target = 1;
    uint64_t cum = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      if (local[b] == 0) continue;
      cum += local[b];
      if (cum >= target) {
        // Linear interpolation inside the bucket.
        double frac = static_cast<double>(target - (cum - local[b])) /
                      static_cast<double>(local[b]);
        double v = static_cast<double>(bucket_lo(b)) +
                   frac * static_cast<double>(bucket_width(b));
        return std::clamp(v, static_cast<double>(snap.min),
                          static_cast<double>(snap.max));
      }
    }
    return static_cast<double>(snap.max);
  };
  snap.p50 = percentile(0.50);
  snap.p90 = percentile(0.90);
  snap.p95 = percentile(0.95);
  snap.p99 = percentile(0.99);
  return snap;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* kGlobal = new MetricsRegistry();
  return *kGlobal;
}

template <typename M>
M& MetricsRegistry::lookup(std::map<Key, std::unique_ptr<M>>& families,
                           const std::string& name, MetricLabels labels,
                           const std::string& help) {
  std::sort(labels.begin(), labels.end());
  Key key{name, std::move(labels)};
  auto it = families.find(key);
  if (it == families.end()) {
    it = families.emplace(std::move(key), std::make_unique<M>()).first;
    if (!help.empty()) help_.emplace(name, help);
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, MetricLabels labels,
                                  const std::string& help) {
  RankedMutexLock lock(mu_);
  return lookup(counters_, name, std::move(labels), help);
}

Gauge& MetricsRegistry::gauge(const std::string& name, MetricLabels labels,
                              const std::string& help) {
  RankedMutexLock lock(mu_);
  return lookup(gauges_, name, std::move(labels), help);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      MetricLabels labels,
                                      const std::string& help) {
  RankedMutexLock lock(mu_);
  return lookup(histograms_, name, std::move(labels), help);
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 MetricLabels labels) const {
  std::sort(labels.begin(), labels.end());
  RankedMutexLock lock(mu_);
  auto it = histograms_.find(Key{name, std::move(labels)});
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::record_span(std::string name, uint64_t start_us,
                                  uint64_t duration_us) {
  if (!trace::enabled()) return;
  trace::Span span;
  span.name = std::move(name);
  span.start_us = start_us;
  span.duration_us = duration_us;
  const trace::TraceContext& ctx = trace::current();
  span.trace_id = ctx.trace_id;
  span.parent_id = ctx.span_id;
  span.batch = ctx.batch;
  span.span_id = trace::new_span_id();
  span.tid = trace::current_tid();
  span_collector_.record(std::move(span));
}

void MetricsRegistry::record_span(trace::Span span) {
  if (!trace::enabled()) return;
  span_collector_.record(std::move(span));
}

void MetricsRegistry::drain_spans_locked() const {
  std::vector<trace::Span> drained = span_collector_.drain();
  if (drained.empty()) return;
  // Per-thread buffers drain in per-thread FIFO order; interleave them by
  // start time so readers see one coherent timeline.
  std::stable_sort(drained.begin(), drained.end(),
                   [](const trace::Span& a, const trace::Span& b) {
                     return a.start_us < b.start_us;
                   });
  for (auto& span : drained) trace_spans_.push_back(std::move(span));
  if (trace_spans_.size() > kTraceRing) {
    trace_spans_.erase(
        trace_spans_.begin(),
        trace_spans_.begin() +
            static_cast<ptrdiff_t>(trace_spans_.size() - kTraceRing));
  }
}

std::vector<SpanRecord> MetricsRegistry::recent_spans() const {
  RankedMutexLock lock(mu_);
  drain_spans_locked();
  const size_t n = std::min(trace_spans_.size(), kSpanRing);
  std::vector<SpanRecord> out;
  out.reserve(n);
  for (size_t i = trace_spans_.size() - n; i < trace_spans_.size(); ++i) {
    const trace::Span& span = trace_spans_[i];
    out.push_back(SpanRecord{span.name, span.start_us, span.duration_us});
  }
  return out;
}

std::vector<trace::Span> MetricsRegistry::take_trace_spans() {
  RankedMutexLock lock(mu_);
  drain_spans_locked();
  std::vector<trace::Span> out;
  out.swap(trace_spans_);
  return out;
}

std::string MetricsRegistry::render_prometheus() const {
  RankedMutexLock lock(mu_);
  std::ostringstream out;
  // `help` is passed in rather than captured: the Clang analysis treats a
  // lambda body as a separate function, so reading the guarded help_ map
  // inside one would (rightly) fail the capability check.
  auto header = [&out](const std::map<std::string, std::string>& help,
                       const std::string& name, const char* type,
                       const std::string* last) {
    if (last != nullptr && *last == name) return;
    if (auto it = help.find(name); it != help.end()) {
      out << "# HELP " << name << " " << it->second << "\n";
    }
    out << "# TYPE " << name << " " << type << "\n";
  };

  std::string last;
  for (const auto& [key, c] : counters_) {
    header(help_, key.name, "counter", &last);
    last = key.name;
    out << key.name << render_labels(key.labels) << " " << c->value() << "\n";
  }
  last.clear();
  for (const auto& [key, g] : gauges_) {
    header(help_, key.name, "gauge", &last);
    last = key.name;
    out << key.name << render_labels(key.labels) << " " << g->value() << "\n";
  }
  last.clear();
  for (const auto& [key, h] : histograms_) {
    header(help_, key.name, "summary", &last);
    last = key.name;
    Histogram::Snapshot s = h->snapshot();
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", s.p50}, {"0.9", s.p90}, {"0.95", s.p95}, {"0.99", s.p99}};
    for (const auto& [q, v] : quantiles) {
      out << key.name
          << render_labels_extra(key.labels,
                                 std::string("quantile=\"") + q + "\"")
          << " " << v << "\n";
    }
    out << key.name << "_sum" << render_labels(key.labels) << " " << s.sum
        << "\n";
    out << key.name << "_count" << render_labels(key.labels) << " " << s.count
        << "\n";
  }
  return out.str();
}

Json MetricsRegistry::snapshot_json() const {
  RankedMutexLock lock(mu_);
  JsonArray counters;
  for (const auto& [key, c] : counters_) {
    JsonObject obj;
    obj.emplace_back("name", Json(key.name));
    obj.emplace_back("labels", labels_json(key.labels));
    obj.emplace_back("value", Json(static_cast<int64_t>(c->value())));
    counters.push_back(Json(std::move(obj)));
  }
  JsonArray gauges;
  for (const auto& [key, g] : gauges_) {
    JsonObject obj;
    obj.emplace_back("name", Json(key.name));
    obj.emplace_back("labels", labels_json(key.labels));
    obj.emplace_back("value", Json(g->value()));
    gauges.push_back(Json(std::move(obj)));
  }
  JsonArray histograms;
  for (const auto& [key, h] : histograms_) {
    Histogram::Snapshot s = h->snapshot();
    JsonObject obj;
    obj.emplace_back("name", Json(key.name));
    obj.emplace_back("labels", labels_json(key.labels));
    obj.emplace_back("count", Json(static_cast<int64_t>(s.count)));
    obj.emplace_back("sum", Json(static_cast<int64_t>(s.sum)));
    obj.emplace_back("min", Json(static_cast<int64_t>(s.min)));
    obj.emplace_back("max", Json(static_cast<int64_t>(s.max)));
    obj.emplace_back("p50", Json(s.p50));
    obj.emplace_back("p90", Json(s.p90));
    obj.emplace_back("p95", Json(s.p95));
    obj.emplace_back("p99", Json(s.p99));
    histograms.push_back(Json(std::move(obj)));
  }
  drain_spans_locked();
  JsonArray spans;
  const size_t window = std::min(trace_spans_.size(), kSpanRing);
  for (size_t i = trace_spans_.size() - window; i < trace_spans_.size(); ++i) {
    const trace::Span& rec = trace_spans_[i];
    JsonObject obj;
    obj.emplace_back("name", Json(rec.name));
    obj.emplace_back("start_us", Json(static_cast<int64_t>(rec.start_us)));
    obj.emplace_back("duration_us",
                     Json(static_cast<int64_t>(rec.duration_us)));
    spans.push_back(Json(std::move(obj)));
  }
  JsonObject root;
  root.emplace_back("counters", Json(std::move(counters)));
  root.emplace_back("gauges", Json(std::move(gauges)));
  root.emplace_back("histograms", Json(std::move(histograms)));
  root.emplace_back("spans", Json(std::move(spans)));
  return Json(std::move(root));
}

void MetricsRegistry::reset() {
  RankedMutexLock lock(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
  drain_spans_locked();  // pull pending spans out of the buffers, then drop
  trace_spans_.clear();
}

}  // namespace loglens
