// Scoped timers and lightweight tracing spans.
//
// `ScopedTimer` records an elapsed-microseconds sample into a Histogram on
// destruction — wrap a hot-path section in one and the latency distribution
// shows up in the registry. `ScopedSpan` additionally files a named
// SpanRecord into the registry's ring buffer; spans are for coarse stages
// (a micro-batch, a heartbeat sweep, a model rebroadcast), never for
// per-message work.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "metrics/metrics.h"

namespace loglens {

// Microseconds on the steady clock since process start (well, since the
// first call — only differences matter).
inline uint64_t steady_now_us() {
  static const auto kEpoch = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - kEpoch)
                                   .count());
}

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->record(elapsed_us());
  }

  uint64_t elapsed_us() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

class ScopedSpan {
 public:
  // `histogram` is optional: pass one to get the span's duration into a
  // latency distribution as well as the trace ring.
  ScopedSpan(MetricsRegistry* registry, std::string name,
             Histogram* histogram = nullptr)
      : registry_(registry),
        name_(std::move(name)),
        histogram_(histogram),
        start_us_(steady_now_us()) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    uint64_t duration = steady_now_us() - start_us_;
    if (histogram_ != nullptr) histogram_->record(duration);
    if (registry_ != nullptr) {
      registry_->record_span(std::move(name_), start_us_, duration);
    }
  }

 private:
  MetricsRegistry* registry_;
  std::string name_;
  Histogram* histogram_;
  uint64_t start_us_;
};

}  // namespace loglens
