// Scoped timers and lightweight tracing spans.
//
// `ScopedTimer` records an elapsed-microseconds sample into a Histogram on
// destruction — wrap a hot-path section in one and the latency distribution
// shows up in the registry. `ScopedSpan` additionally files a named span
// into the registry's per-thread buffers (inheriting the thread's current
// TraceContext); spans are for coarse stages (a micro-batch, a heartbeat
// sweep, a model rebroadcast), never for per-message work.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "common/clock.h"
#include "metrics/metrics.h"

namespace loglens {

// Microseconds on the (mockable) monotonic clock since process start.
// Kept as the metrics-facing name for the trace_clock shim.
inline uint64_t steady_now_us() { return trace_clock::now_us(); }

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_us_(trace_clock::now_us()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->record(elapsed_us());
  }

  uint64_t elapsed_us() const { return trace_clock::now_us() - start_us_; }

 private:
  Histogram* histogram_;
  uint64_t start_us_;
};

class ScopedSpan {
 public:
  // `histogram` is optional: pass one to get the span's duration into a
  // latency distribution as well as the trace buffers.
  ScopedSpan(MetricsRegistry* registry, std::string name,
             Histogram* histogram = nullptr)
      : registry_(registry),
        name_(std::move(name)),
        histogram_(histogram),
        start_us_(trace_clock::now_us()) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    uint64_t duration = trace_clock::now_us() - start_us_;
    if (histogram_ != nullptr) histogram_->record(duration);
    if (registry_ != nullptr) {
      registry_->record_span(std::move(name_), start_us_, duration);
    }
  }

 private:
  MetricsRegistry* registry_;
  std::string name_;
  Histogram* histogram_;
  uint64_t start_us_;
};

}  // namespace loglens
