// Low-overhead, thread-safe metrics for the streaming pipeline.
//
// The paper's evaluation is all about measured runtime behaviour (parser
// throughput vs Logstash, heartbeat sweeps, zero-downtime model updates);
// this subsystem is the measurement substrate. Three primitives:
//
//   Counter   — monotonically increasing, sharded over cacheline-padded
//               atomics so concurrent partition workers never contend on
//               one cell. Reads sum the shards.
//   Gauge     — a point-in-time int64 (open states, consumer lag).
//   Histogram — fixed-bucket log-scale (16 sub-buckets per power of two,
//               ≤ 12.5% relative bucket width) with lock-free recording
//               and p50/p90/p95/p99 snapshots.
//
// `MetricsRegistry` owns named metric families with Prometheus-style
// labels. Registration takes a mutex; the returned references are stable
// for the registry's lifetime, so hot paths resolve handles once (at task
// construction) and then only touch atomics. The registry renders as
// Prometheus text exposition (`render_prometheus`) and as a JSON snapshot
// (`snapshot_json`), and retains completed tracing spans (trace/trace.h)
// for per-stage latency forensics: the hot path files spans into per-thread
// lock-free buffers, and readers drain them on demand.
//
// Metric naming convention (see docs/OBSERVABILITY.md):
//   loglens_<subsystem>_<quantity>[_total|_us]
// with `_total` for counters and `_us` (microseconds) for histograms.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "json/json.h"
#include "trace/trace.h"

namespace loglens {

// Label set, e.g. {{"stage", "parser"}, {"partition", "0"}}. Kept sorted by
// the registry so equal sets compare equal regardless of insertion order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(uint64_t n = 1) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const;
  void reset();

 private:
  // Enough shards to keep a handful of partition workers off each other's
  // cachelines; the shard is picked per thread, not per call.
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  static size_t shard_index();
  Shard shards_[kShards];
};

class Gauge {
 public:
  void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

class Histogram {
 public:
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double p50 = 0;
    double p90 = 0;
    double p95 = 0;
    double p99 = 0;
  };

  void record(uint64_t value);
  Snapshot snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void reset();

  // Bucket layout: values 0..15 get exact buckets; above that, each power
  // of two [2^m, 2^(m+1)) splits into 16 equal sub-buckets, bounding the
  // relative error of an interpolated percentile to ~6% of the value. (The
  // earlier 4-sub-bucket layout put ~33%-wide buckets under tail
  // percentiles: a batch-latency p99 interpolated to exactly 65536 — a
  // bucket edge, not a measurement.)
  static constexpr size_t kBuckets = 16 + 60 * 16;
  static size_t bucket_of(uint64_t v);
  static uint64_t bucket_lo(size_t b);
  static uint64_t bucket_width(size_t b);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// One completed tracing span in the legacy dashboard shape (see ScopedSpan
// in timer.h). Full spans — with trace/parent ids — live in trace::Span;
// this is the projection recent_spans()/snapshot_json() keep exposing.
struct SpanRecord {
  std::string name;
  uint64_t start_us = 0;  // steady time since process start
  uint64_t duration_us = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide default registry. Components take a `MetricsRegistry*`
  // and fall back to this when given nullptr.
  static MetricsRegistry& global();

  // Looks up or creates a metric. References stay valid for the registry's
  // lifetime; `help` is kept from the first registration of a name.
  Counter& counter(const std::string& name, MetricLabels labels = {},
                   const std::string& help = "") LOGLENS_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name, MetricLabels labels = {},
               const std::string& help = "") LOGLENS_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name, MetricLabels labels = {},
                       const std::string& help = "") LOGLENS_EXCLUDES(mu_);

  // Read-only lookup (nullptr when the family was never registered) for
  // renderers that must not create empty series as a side effect.
  const Histogram* find_histogram(const std::string& name,
                                  MetricLabels labels = {}) const
      LOGLENS_EXCLUDES(mu_);

  // Files a completed span into the calling thread's lock-free buffer
  // (trace::SpanCollector) — no mutex on this path. The simple overload
  // inherits trace/parent ids from trace::current() and allocates a fresh
  // span id; the trace::Span overload is for callers that pre-allocated
  // ids to parent child spans under. Both are no-ops while tracing is
  // disabled (trace::set_enabled).
  void record_span(std::string name, uint64_t start_us, uint64_t duration_us);
  void record_span(trace::Span span);

  // Newest spans (≤ kSpanRing, oldest first), drained from every thread's
  // buffer. Same shape the dashboard has always consumed.
  std::vector<SpanRecord> recent_spans() const LOGLENS_EXCLUDES(mu_);

  // Drains and moves out every retained span (full trace form, ≤ kTraceRing,
  // sorted by start time). The trace report and bench profile consume this.
  std::vector<trace::Span> take_trace_spans() LOGLENS_EXCLUDES(mu_);

  // Spans lost to full per-thread buffers since construction; a non-zero
  // value means reports under-count and readers should drain more often.
  uint64_t spans_dropped() const { return span_collector_.dropped(); }

  // Prometheus text exposition: counters and gauges as single samples,
  // histograms as summaries (quantile series + _sum + _count).
  std::string render_prometheus() const LOGLENS_EXCLUDES(mu_);

  // Structured snapshot of every metric plus the span ring.
  Json snapshot_json() const LOGLENS_EXCLUDES(mu_);

  // Zeroes every metric in place (handles stay valid) and clears spans.
  void reset() LOGLENS_EXCLUDES(mu_);

 private:
  struct Key {
    std::string name;
    MetricLabels labels;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };

  template <typename M>
  M& lookup(std::map<Key, std::unique_ptr<M>>& familes,
            const std::string& name, MetricLabels labels,
            const std::string& help) LOGLENS_REQUIRES(mu_);

  // Dashboard window (recent_spans / snapshot_json keep exposing at most
  // this many) and the full retention cap for take_trace_spans().
  static constexpr size_t kSpanRing = 256;
  static constexpr size_t kTraceRing = 65536;

  // Moves freshly buffered spans from the collector into trace_spans_,
  // oldest dropped beyond kTraceRing.
  void drain_spans_locked() const LOGLENS_REQUIRES(mu_);

  // Metrics registration holds its own lock while resolving handles (e.g.
  // the broker resolving per-topic counters), so only kTrace — the span
  // collector drained under mu_ — may be acquired beyond this one.
  mutable RankedMutex mu_{lock_rank::kMetrics};
  std::map<Key, std::unique_ptr<Counter>> counters_ LOGLENS_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ LOGLENS_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_
      LOGLENS_GUARDED_BY(mu_);
  std::map<std::string, std::string> help_ LOGLENS_GUARDED_BY(mu_);
  // Per-thread lock-free buffers (hot path) and the drained, time-ordered
  // retention ring readers consume.
  mutable trace::SpanCollector span_collector_;
  mutable std::vector<trace::Span> trace_spans_ LOGLENS_GUARDED_BY(mu_);
};

// Resolves an optional registry pointer to a usable registry.
inline MetricsRegistry& registry_or_global(MetricsRegistry* m) {
  return m != nullptr ? *m : MetricsRegistry::global();
}

}  // namespace loglens
