#include "faults/fault_injector.h"

#include "common/hash.h"
#include "common/sched.h"

namespace loglens {

const char* fault_action_name(FaultAction action) {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kThrow:
      return "throw";
    case FaultAction::kDelay:
      return "delay";
    case FaultAction::kTornWrite:
      return "torn_write";
  }
  return "unknown";
}

FaultInjector::FaultInjector(uint64_t seed, MetricsRegistry* metrics)
    : seed_(seed), metrics_(&registry_or_global(metrics)) {}

FaultInjector::Site& FaultInjector::site_locked(const std::string& name) {
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    // Each site draws from its own stream, seeded from (seed, site name), so
    // the consult rate at one site never shifts another site's decisions.
    it = sites_.emplace(name, Site(seed_ ^ fnv1a(name))).first;
  }
  return it->second;
}

void FaultInjector::arm(const std::string& site, FaultSpec spec) {
  RankedMutexLock lock(mu_);
  Site& s = site_locked(site);
  s.spec = spec;
  s.armed = true;
}

void FaultInjector::disarm(const std::string& site) {
  RankedMutexLock lock(mu_);
  site_locked(site).armed = false;
}

void FaultInjector::disarm_all() {
  RankedMutexLock lock(mu_);
  for (auto& [_, s] : sites_) s.armed = false;
}

FaultAction FaultInjector::check(const std::string& site) {
  LOGLENS_SCHED_POINT("faults.check");
  FaultAction fired = FaultAction::kNone;
  int64_t delay_ms = 0;
  {
    RankedMutexLock lock(mu_);
    Site& s = site_locked(site);
    if (!s.armed || s.triggered >= s.spec.max_triggers) {
      return FaultAction::kNone;
    }
    if (!s.rng.chance(s.spec.probability)) return FaultAction::kNone;
    ++s.triggered;
    fired = s.spec.action;
    delay_ms = s.spec.delay_ms;
  }
  metrics_
      ->counter("loglens_faults_injected_total",
                {{"site", site}, {"action", fault_action_name(fired)}},
                "Faults fired by the injector")
      .inc();
  if (fired == FaultAction::kDelay && delay_ms > 0) {
    // Routed through the sched/clock shim: virtual under a
    // ScheduleController or ScopedVirtualDelays (fault-delay chaos tests
    // advance the trace clock instead of burning real seconds), a real
    // sleep otherwise.
    sched::sleep_for_ms(static_cast<uint64_t>(delay_ms));
  }
  return fired;
}

void FaultInjector::hit(const std::string& site) {
  if (check(site) == FaultAction::kThrow) {
    throw FaultError("injected fault at " + site);
  }
}

uint64_t FaultInjector::triggered(const std::string& site) const {
  RankedMutexLock lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.triggered;
}

uint64_t FaultInjector::total_triggered() const {
  RankedMutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [_, s] : sites_) total += s.triggered;
  return total;
}

}  // namespace loglens
