// Deterministic fault injection for the streaming core.
//
// The paper sells LogLens as a zero-downtime service (Section V); this layer
// exists to *prove* it. Components consult a seedable FaultInjector at named
// sites on their hot paths — broker produce/fetch, partition task
// start/process/finish, checkpoint write — and the injector decides, from a
// per-site deterministic RNG stream, whether to fail that call and how:
//
//   kThrow     — raise FaultError (the caller's retry/dead-letter/supervisor
//                machinery must absorb it);
//   kDelay     — stall the call for `delay_ms` (a slow broker, a GC pause);
//   kTornWrite — for checkpoint writes: persist a prefix of the payload and
//                report failure, as a crash mid-write would.
//
// A disarmed site costs one map lookup under a short mutex; production code
// holds a nullptr injector and pays nothing. Every fired fault is counted in
// `loglens_faults_injected_total{site,action}` and per-site trigger counts
// are readable directly for tests. `max_triggers` caps how often a site
// fires, which is how chaos tests guarantee that retry budgets are never
// exhausted (so the pipeline's output must match the fault-free run).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "common/lock_rank.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "metrics/metrics.h"

namespace loglens {

// Canonical site names. Components pass these to check()/hit(); tests arm
// them. New sites are just new strings, but keep this list in sync with
// docs/FAULTS.md.
inline constexpr const char* kFaultSiteProduce = "broker.produce";
inline constexpr const char* kFaultSiteFetch = "broker.fetch";
inline constexpr const char* kFaultSiteTaskStart = "task.start";
inline constexpr const char* kFaultSiteTaskProcess = "task.process";
inline constexpr const char* kFaultSiteTaskFinish = "task.finish";
inline constexpr const char* kFaultSiteCheckpointWrite = "checkpoint.write";
inline constexpr const char* kFaultSiteSegmentFlush = "storage.segment_flush";
inline constexpr const char* kFaultSiteStorageCompact = "storage.compact";

enum class FaultAction {
  kNone = 0,
  kThrow,
  kDelay,
  kTornWrite,
};

const char* fault_action_name(FaultAction action);

// The exception injected faults (and real partition-task failures) surface
// as. Deliberately a plain runtime_error subtype: recovery code catches
// std::exception and must not care whether the fault was injected.
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

struct FaultSpec {
  FaultAction action = FaultAction::kThrow;
  // Probability that a consultation fires, drawn from the site's own seeded
  // RNG stream (so one site's draw count never perturbs another's).
  double probability = 1.0;
  // kDelay: how long check() stalls before returning.
  int64_t delay_ms = 0;
  // Lifetime cap on fired faults at this site. The chaos tests set this
  // below the consumers' retry budgets to make eventual success provable.
  uint64_t max_triggers = UINT64_MAX;
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed, MetricsRegistry* metrics = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Arms (or replaces) the spec for a site. Arming resets neither the site's
  // RNG stream nor its trigger count, so re-arming mid-run is well-defined.
  void arm(const std::string& site, FaultSpec spec) LOGLENS_EXCLUDES(mu_);
  void disarm(const std::string& site) LOGLENS_EXCLUDES(mu_);
  void disarm_all() LOGLENS_EXCLUDES(mu_);

  // Consults a site. Returns the action that fired (kNone when the site is
  // disarmed, the dice miss, or max_triggers is spent). kDelay performs the
  // sleep before returning; kThrow and kTornWrite are returned for the
  // caller to act on (use hit() when "act" just means "throw").
  FaultAction check(const std::string& site) LOGLENS_EXCLUDES(mu_);

  // check(), but kThrow raises FaultError here. For call sites with no
  // status channel (partition tasks).
  void hit(const std::string& site) LOGLENS_EXCLUDES(mu_);

  // Fired-fault counts, for assertions.
  uint64_t triggered(const std::string& site) const LOGLENS_EXCLUDES(mu_);
  uint64_t total_triggered() const LOGLENS_EXCLUDES(mu_);

 private:
  struct Site {
    FaultSpec spec;
    Rng rng;
    uint64_t triggered = 0;
    bool armed = false;

    explicit Site(uint64_t seed) : rng(seed) {}
  };

  Site& site_locked(const std::string& name) LOGLENS_REQUIRES(mu_);

  const uint64_t seed_;
  MetricsRegistry* metrics_;
  // Ranked inside the broker so hot paths may consult sites while a broker
  // operation is in flight; metrics fire after this lock is released.
  mutable RankedMutex mu_{lock_rank::kFaults};
  std::map<std::string, Site> sites_ LOGLENS_GUARDED_BY(mu_);
};

}  // namespace loglens
