#include "storage/document_store.h"

#include <algorithm>
#include <fstream>

namespace loglens {

uint64_t DocumentStore::insert(Json doc) {
  RankedMutexLock lock(mu_);
  uint64_t id = docs_.size();
  if (doc.is_object()) {
    for (const auto& [k, v] : doc.as_object()) {
      if (v.is_string()) {
        term_index_[k][v.as_string()].push_back(id);
      }
    }
  }
  docs_.push_back(std::move(doc));
  return id;
}

std::optional<Json> DocumentStore::get(uint64_t id) const {
  RankedMutexLock lock(mu_);
  if (id >= docs_.size()) return std::nullopt;
  return docs_[id];
}

namespace {

// Pure predicate over one document — touches no store state, so it needs no
// lock (the caller passes a reference it obtained under the store's mutex).
bool matches(const Json& doc, const Query& q) {
  for (const auto& c : q.clauses) {
    const Json* v = doc.find(c.field);
    if (v == nullptr) return false;
    if (c.kind == QueryClause::Kind::kTerm) {
      if (!v->is_string() || v->as_string() != c.term) return false;
    } else {
      if (!v->is_number()) return false;
      int64_t n = v->as_int();
      if (n < c.min || n > c.max) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<Json> DocumentStore::query(const Query& q) const {
  RankedMutexLock lock(mu_);
  std::vector<Json> out;

  // If a term clause exists, drive the scan from the smallest posting list.
  const std::vector<uint64_t>* postings = nullptr;
  for (const auto& c : q.clauses) {
    if (c.kind != QueryClause::Kind::kTerm) continue;
    auto fit = term_index_.find(c.field);
    if (fit == term_index_.end()) return out;
    auto vit = fit->second.find(c.term);
    if (vit == fit->second.end()) return out;
    if (postings == nullptr || vit->second.size() < postings->size()) {
      postings = &vit->second;
    }
  }

  // The guarded docs_ reads stay in this function body (where the analysis
  // sees the lock); the lambda only sees the already-fetched document.
  auto consider = [&out, &q](const Json& doc) {
    if (out.size() >= q.limit) return false;
    if (matches(doc, q)) out.push_back(doc);
    return out.size() < q.limit;
  };

  if (postings != nullptr) {
    for (uint64_t id : *postings) {
      if (!consider(docs_[id])) break;
    }
  } else {
    for (uint64_t id = 0; id < docs_.size(); ++id) {
      if (!consider(docs_[id])) break;
    }
  }
  return out;
}

size_t DocumentStore::count(const Query& q) const {
  Query unlimited = q;
  unlimited.limit = SIZE_MAX;
  return query(unlimited).size();
}

size_t DocumentStore::size() const {
  RankedMutexLock lock(mu_);
  return docs_.size();
}

void DocumentStore::clear() {
  RankedMutexLock lock(mu_);
  docs_.clear();
  term_index_.clear();
}

Status DocumentStore::save_jsonl(const std::string& path) const {
  RankedMutexLock lock(mu_);
  std::ofstream out(path);
  if (!out) return Status::Error("cannot open for writing: " + path);
  std::string line;
  for (const auto& d : docs_) {
    line.clear();
    d.dump_to(line);
    out << line << '\n';
  }
  return out ? Status::Ok() : Status::Error("write failed: " + path);
}

Status DocumentStore::load_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::Error("cannot open: " + path);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto doc = Json::parse(line);
    if (!doc.ok()) {
      return Status::Error(path + ":" + std::to_string(line_no) + ": " +
                           doc.status().message());
    }
    insert(std::move(doc.value()));
  }
  return Status::Ok();
}

}  // namespace loglens
