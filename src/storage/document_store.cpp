#include "storage/document_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/sched.h"
#include "faults/fault_injector.h"
#include "metrics/metrics.h"

namespace loglens {

DocumentStore::DocumentStore() : DocumentStore(DocumentStoreOptions{}) {}

DocumentStore::DocumentStore(DocumentStoreOptions options)
    : options_(std::move(options)) {
  MetricsRegistry& m = registry_or_global(options_.metrics);
  const MetricLabels labels{{"store", options_.name}};
  flushes_total_ = &m.counter("loglens_storage_flushes_total", labels,
                              "Hot-segment flushes completed");
  compactions_total_ = &m.counter("loglens_storage_compactions_total", labels,
                                  "Segment compactions completed");
  pruned_total_ =
      &m.counter("loglens_storage_segments_pruned_total", labels,
                 "Sealed segments skipped by zone map or dictionary miss");
  rejected_total_ =
      &m.counter("loglens_storage_segments_rejected_total", labels,
                 "Segment files rejected at open (torn or corrupt)");
  segments_gauge_ = &m.gauge("loglens_storage_segments", labels,
                             "Sealed segments currently open");
  hot_docs_gauge_ = &m.gauge("loglens_storage_hot_docs", labels,
                             "Documents in the mutable hot segment");
  open_dir();
  if (options_.background_compaction && !options_.dir.empty()) {
    compactor_ =
        sched::spawn_named("storage-compactor:" + options_.name, [this] {
          while (!stop_.load(std::memory_order_relaxed)) {
            int64_t remaining = options_.compact_interval_ms;
            while (remaining > 0 && !stop_.load(std::memory_order_relaxed)) {
              const int64_t slice = remaining < 10 ? remaining : 10;
              sched::sleep_for_ms(static_cast<uint64_t>(slice));
              remaining -= slice;
            }
            if (stop_.load(std::memory_order_relaxed)) break;
            if (segment_count() >= options_.compact_min_segments) {
              // Failures (injected or real) leave the inputs untouched and
              // surface through fault counters; the next tick retries.
              (void)compact();
            }
          }
        });
  }
}

DocumentStore::~DocumentStore() {
  stop_.store(true, std::memory_order_relaxed);
  if (compactor_.joinable()) {
    sched::BlockingRegion blocking;
    compactor_.join();
  }
}

std::string DocumentStore::segment_path(uint64_t base_id) const {
  // Decimal zero-padding keeps lexicographic directory order == id order.
  char name[40];
  std::snprintf(name, sizeof(name), "seg-%016llu.llseg",
                static_cast<unsigned long long>(base_id));
  return options_.dir + "/" + name;
}

void DocumentStore::open_dir() {
  if (options_.dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  std::vector<std::shared_ptr<const Segment>> found;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    const std::string p = entry.path().string();
    if (p.size() < 6 || p.compare(p.size() - 6, 6, ".llseg") != 0) continue;
    auto seg = Segment::open(p);
    if (!seg.ok()) {
      // Torn or corrupt: skip it (the file stays for forensics; a re-flush
      // of the same base renames a fresh segment over it).
      ++rejected_;
      rejected_total_->inc();
      continue;
    }
    found.push_back(std::move(seg.value()));
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) {
              return a->base_id() < b->base_id();
            });
  uint64_t covered = 0;
  bool any = false;
  for (auto& seg : found) {
    if (any && seg->end_id() <= covered) {
      // Stale compaction input: a crash hit between publishing the merged
      // segment (which subsumes this range) and unlinking its inputs.
      std::remove(seg->path().c_str());
      continue;
    }
    if (any && seg->base_id() < covered) {
      // Partial overlap is never produced by this engine; refuse it.
      ++rejected_;
      rejected_total_->inc();
      continue;
    }
    covered = seg->end_id();
    any = true;
    segments_.push_back(std::move(seg));
  }
  hot_base_ = covered;
  update_gauges(segments_.size(), 0);
}

void DocumentStore::index_hot_locked(const Json& doc, uint32_t local_id) {
  if (!doc.is_object()) return;
  const JsonObject& obj = doc.as_object();
  for (size_t i = 0; i < obj.size(); ++i) {
    if (!obj[i].second.is_string()) continue;
    // Index the first occurrence only — the value Json::find (and the
    // sealed columns) see.
    bool duplicate = false;
    for (size_t j = 0; j < i; ++j) {
      if (obj[j].first == obj[i].first) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    hot_index_[obj[i].first][obj[i].second.as_string()].push_back(local_id);
  }
}

void DocumentStore::rebuild_hot_index_locked() {
  hot_index_.clear();
  for (uint32_t i = 0; i < hot_docs_.size(); ++i) {
    index_hot_locked(hot_docs_[i], i);
  }
}

void DocumentStore::update_gauges(size_t segments, size_t hot_docs) {
  segments_gauge_->set(static_cast<int64_t>(segments));
  hot_docs_gauge_->set(static_cast<int64_t>(hot_docs));
}

uint64_t DocumentStore::insert(Json doc) {
  uint64_t id;
  bool should_flush = false;
  {
    RankedMutexLock lock(mu_);
    id = hot_base_ + hot_docs_.size();
    index_hot_locked(doc, static_cast<uint32_t>(hot_docs_.size()));
    hot_docs_.push_back(std::move(doc));
    hot_docs_gauge_->set(static_cast<int64_t>(hot_docs_.size()));
    should_flush = !options_.dir.empty() && options_.hot_max_docs > 0 &&
                   hot_docs_.size() >= options_.hot_max_docs;
  }
  if (should_flush) {
    // A failed flush (injected fault, full disk) keeps the documents hot;
    // the threshold re-triggers on the next insert.
    (void)flush_internal(false);
  }
  return id;
}

std::optional<Json> DocumentStore::get(uint64_t id) const {
  RankedMutexLock lock(mu_);
  if (id >= hot_base_) {
    const uint64_t local = id - hot_base_;
    if (local >= hot_docs_.size()) return std::nullopt;
    return hot_docs_[local];
  }
  // Last segment with base_id <= id.
  auto it = std::upper_bound(segments_.begin(), segments_.end(), id,
                             [](uint64_t v, const auto& seg) {
                               return v < seg->base_id();
                             });
  if (it == segments_.begin()) return std::nullopt;
  const Segment& seg = **std::prev(it);
  if (id >= seg.end_id()) return std::nullopt;  // gap (rejected segment)
  auto parsed = Json::parse(seg.doc_bytes(static_cast<uint32_t>(id - seg.base_id())));
  if (!parsed.ok()) return std::nullopt;
  return std::move(parsed.value());
}

namespace {

// Pure predicate over one document — the semantics every plan below must
// reproduce exactly (the differential harness holds them to it).
bool matches(const Json& doc, const Query& q) {
  for (const auto& c : q.clauses) {
    const Json* v = doc.find(c.field);
    if (v == nullptr) return false;
    if (c.kind == QueryClause::Kind::kTerm) {
      if (!v->is_string() || v->as_string() != c.term) return false;
    } else {
      if (!v->is_number()) return false;
      int64_t n = v->as_int();
      if (n < c.min || n > c.max) return false;
    }
  }
  return true;
}

struct SegmentOutcome {
  size_t scanned = 0;
  bool pruned = false;  // skipped without scanning a single document
};

// Runs the query over one sealed segment. Appends parsed matches to `out`
// (or only counts when out == nullptr — the columnar count() path never
// touches document bytes). `hits` spans segments so `limit` is global.
SegmentOutcome run_segment(const Segment& seg, const Query& q,
                           bool zone_pruning, bool sequential, size_t limit,
                           size_t* hits, std::vector<Json>* out) {
  SegmentOutcome r;
  if (sequential) {
    for (uint32_t i = 0; i < seg.doc_count() && *hits < limit; ++i) {
      ++r.scanned;
      auto parsed = Json::parse(seg.doc_bytes(i));
      if (!parsed.ok() || !matches(parsed.value(), q)) continue;
      ++*hits;
      if (out != nullptr) out->push_back(std::move(parsed.value()));
    }
    return r;
  }

  // Resolve every clause against the columns. A term absent from the
  // dictionary, a field with no column, or (when enabled) a zone map
  // disjoint from the requested range proves no document here can match —
  // the whole segment is pruned without reading a row.
  struct TermPlan {
    const Segment::StringField* f;
    uint32_t term_id;
  };
  struct RangePlan {
    const Segment::IntField* f;
    int64_t min, max;
  };
  std::vector<TermPlan> terms;
  std::vector<RangePlan> ranges;
  int driver = -1;  // term plan with the smallest posting list
  for (const auto& c : q.clauses) {
    if (c.kind == QueryClause::Kind::kTerm) {
      const Segment::StringField* f = seg.string_field(c.field);
      if (f == nullptr) {
        r.pruned = true;
        return r;
      }
      auto it = f->term_ids.find(c.term);
      if (it == f->term_ids.end()) {
        r.pruned = true;
        return r;
      }
      terms.push_back(TermPlan{f, it->second});
      if (driver < 0 ||
          f->postings[it->second].second <
              terms[static_cast<size_t>(driver)]
                  .f->postings[terms[static_cast<size_t>(driver)].term_id]
                  .second) {
        driver = static_cast<int>(terms.size()) - 1;
      }
    } else {
      const Segment::IntField* f = seg.int_field(c.field);
      if (f == nullptr) {
        r.pruned = true;
        return r;
      }
      if (zone_pruning && (f->zone_max < c.min || f->zone_min > c.max)) {
        r.pruned = true;
        return r;
      }
      ranges.push_back(RangePlan{f, c.min, c.max});
    }
  }

  auto eval = [&](uint32_t i) {
    for (const TermPlan& t : terms) {
      if (Segment::code_at(*t.f, i) != t.term_id + 1) return false;
    }
    for (const RangePlan& rp : ranges) {
      if (!Segment::int_present(*rp.f, i)) return false;
      const int64_t v = Segment::int_value(*rp.f, i);
      if (v < rp.min || v > rp.max) return false;
    }
    return true;
  };
  auto emit = [&](uint32_t i) {
    ++*hits;
    if (out != nullptr) {
      auto parsed = Json::parse(seg.doc_bytes(i));
      if (parsed.ok()) out->push_back(std::move(parsed.value()));
    }
  };

  if (driver >= 0) {
    const TermPlan& d = terms[static_cast<size_t>(driver)];
    const uint32_t len = d.f->postings[d.term_id].second;
    for (uint32_t k = 0; k < len && *hits < limit; ++k) {
      const uint32_t i = Segment::posting_at(*d.f, d.term_id, k);
      ++r.scanned;
      if (eval(i)) emit(i);
    }
  } else {
    for (uint32_t i = 0; i < seg.doc_count() && *hits < limit; ++i) {
      ++r.scanned;
      if (eval(i)) emit(i);
    }
  }
  return r;
}

}  // namespace

size_t DocumentStore::execute(const Query& q, QueryStats* stats,
                              std::vector<Json>* out) const {
  QueryStats local;
  size_t hits = 0;
  RankedMutexLock lock(mu_);
  for (const auto& seg : segments_) {
    if (hits >= q.limit) break;
    ++local.segments_considered;
    SegmentOutcome oc =
        run_segment(*seg, q, options_.zone_map_pruning,
                    options_.sequential_scan, q.limit, &hits, out);
    local.docs_scanned += oc.scanned;
    if (oc.pruned) ++local.segments_pruned;
  }

  // Hot segment, driven from the smallest in-memory posting list when a
  // term clause has one.
  const std::vector<uint32_t>* postings = nullptr;
  bool hot_possible = hits < q.limit;
  for (const auto& c : q.clauses) {
    if (!hot_possible || c.kind != QueryClause::Kind::kTerm) continue;
    auto fit = hot_index_.find(c.field);
    if (fit == hot_index_.end()) {
      hot_possible = false;
      break;
    }
    auto vit = fit->second.find(c.term);
    if (vit == fit->second.end()) {
      hot_possible = false;
      break;
    }
    if (postings == nullptr || vit->second.size() < postings->size()) {
      postings = &vit->second;
    }
  }
  if (hot_possible && postings != nullptr) {
    for (uint32_t i : *postings) {
      if (hits >= q.limit) break;
      ++local.docs_scanned;
      if (!matches(hot_docs_[i], q)) continue;
      ++hits;
      if (out != nullptr) out->push_back(hot_docs_[i]);
    }
  } else if (hot_possible) {
    for (const Json& d : hot_docs_) {
      if (hits >= q.limit) break;
      ++local.docs_scanned;
      if (!matches(d, q)) continue;
      ++hits;
      if (out != nullptr) out->push_back(d);
    }
  }

  if (local.segments_pruned > 0) pruned_total_->inc(local.segments_pruned);
  if (stats != nullptr) *stats = local;
  return hits;
}

std::vector<Json> DocumentStore::query(const Query& q) const {
  return query(q, nullptr);
}

std::vector<Json> DocumentStore::query(const Query& q,
                                       QueryStats* stats) const {
  std::vector<Json> out;
  execute(q, stats, &out);
  return out;
}

size_t DocumentStore::count(const Query& q, QueryStats* stats) const {
  Query unlimited = q;
  unlimited.limit = SIZE_MAX;
  return execute(unlimited, stats, nullptr);
}

size_t DocumentStore::size() const {
  RankedMutexLock lock(mu_);
  return hot_base_ + hot_docs_.size();
}

size_t DocumentStore::segment_count() const {
  RankedMutexLock lock(mu_);
  return segments_.size();
}

size_t DocumentStore::hot_count() const {
  RankedMutexLock lock(mu_);
  return hot_docs_.size();
}

void DocumentStore::clear() {
  RankedMutexLock flock(flush_mu_);
  std::vector<std::string> paths;
  {
    RankedMutexLock lock(mu_);
    for (const auto& seg : segments_) paths.push_back(seg->path());
    segments_.clear();
    hot_docs_.clear();
    hot_index_.clear();
    hot_base_ = 0;
  }
  for (const auto& p : paths) std::remove(p.c_str());
  // Sweep leftovers a crash could have stranded (torn flushes at the final
  // path, compaction tmps) so a reopen starts empty.
  if (!options_.dir.empty()) {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(options_.dir, ec)) {
      const std::string p = entry.path().string();
      const bool seg_like =
          (p.size() >= 6 && p.compare(p.size() - 6, 6, ".llseg") == 0) ||
          (p.size() >= 4 && p.compare(p.size() - 4, 4, ".tmp") == 0);
      if (seg_like) std::remove(p.c_str());
    }
  }
  update_gauges(0, 0);
}

Status DocumentStore::save_jsonl(const std::string& path) const {
  RankedMutexLock lock(mu_);
  std::ofstream out(path);
  if (!out) return Status::Error("cannot open for writing: " + path);
  for (const auto& seg : segments_) {
    for (uint32_t i = 0; i < seg->doc_count(); ++i) {
      // Sealed rows are already the byte-exact dump() — stream verbatim.
      const std::string_view row = seg->doc_bytes(i);
      out.write(row.data(), static_cast<std::streamsize>(row.size()));
      out.put('\n');
    }
  }
  std::string line;
  for (const auto& d : hot_docs_) {
    line.clear();
    d.dump_to(line);
    out << line << '\n';
  }
  return out ? Status::Ok() : Status::Error("write failed: " + path);
}

Status DocumentStore::load_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::Error("cannot open: " + path);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto doc = Json::parse(line);
    if (!doc.ok()) {
      return Status::Error(path + ":" + std::to_string(line_no) + ": " +
                           doc.status().message());
    }
    if (!doc.value().is_object()) {
      // A scalar or array line would be a document no term or range clause
      // can ever reach — almost certainly a corrupt or foreign file.
      return Status::Error(path + ":" + std::to_string(line_no) +
                           ": not a JSON object");
    }
    insert(std::move(doc.value()));
  }
  return Status::Ok();
}

Status DocumentStore::flush() { return flush_internal(true); }

Status DocumentStore::flush_internal(bool force) {
  if (options_.dir.empty()) return Status::Ok();
  RankedMutexLock flock(flush_mu_);
  Status s = flush_locked(force);
  if (!s.ok()) return s;
  if (options_.auto_compact) {
    size_t n;
    {
      RankedMutexLock lock(mu_);
      n = segments_.size();
    }
    if (n >= options_.compact_min_segments) {
      // Compaction failure does not undo the successful flush; it is
      // retried on the next trigger and visible via fault counters.
      (void)compact_locked();
    }
  }
  return Status::Ok();
}

Status DocumentStore::flush_locked(bool force) {
  uint64_t base;
  std::vector<Json> docs;
  {
    RankedMutexLock lock(mu_);
    if (hot_docs_.empty()) return Status::Ok();
    if (!force && (options_.hot_max_docs == 0 ||
                   hot_docs_.size() < options_.hot_max_docs)) {
      return Status::Ok();  // a racing inserter's flush already ran
    }
    base = hot_base_;
    docs = hot_docs_;
  }
  const std::string bytes = encode_segment(base, docs);
  const std::string path = segment_path(base);
  if (options_.faults != nullptr) {
    const FaultAction fault = options_.faults->check(kFaultSiteSegmentFlush);
    if (fault == FaultAction::kThrow) {
      return Status::Error("segment flush failed (injected)");
    }
    if (fault == FaultAction::kTornWrite) {
      // Simulated power loss where the rename became durable but the data
      // did not: a prefix of the segment at its final path. The hot
      // segment is untouched, and open-time validation rejects the torn
      // file (a retried flush of the same base renames over it).
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (out) {
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
      }
      return Status::Error("segment flush torn (injected)");
    }
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Error("cannot write segment: " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::Error("segment write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Error("cannot publish segment: " + path);
  }
  auto seg = Segment::open(path);
  if (!seg.ok()) return seg.status();
  size_t nsegs, nhot;
  {
    RankedMutexLock lock(mu_);
    segments_.push_back(std::move(seg.value()));
    // Publish and retire the flushed prefix in one critical section, so no
    // reader ever sees the documents twice or not at all. Inserts that
    // landed while we encoded stay hot with their local ids shifted.
    hot_docs_.erase(hot_docs_.begin(),
                    hot_docs_.begin() + static_cast<ptrdiff_t>(docs.size()));
    hot_base_ = base + docs.size();
    rebuild_hot_index_locked();
    nsegs = segments_.size();
    nhot = hot_docs_.size();
  }
  flushes_total_->inc();
  update_gauges(nsegs, nhot);
  return Status::Ok();
}

Status DocumentStore::compact() {
  if (options_.dir.empty()) return Status::Ok();
  RankedMutexLock flock(flush_mu_);
  return compact_locked();
}

Status DocumentStore::compact_locked() {
  // The earliest run of >= 2 adjacent segments that fits the size cap.
  // flush_mu_ (held) is what keeps `run`'s positions stable below: flush
  // only appends, and no other compaction can run.
  std::vector<std::shared_ptr<const Segment>> run;
  size_t run_begin = 0;
  size_t total = 0;
  {
    RankedMutexLock lock(mu_);
    for (size_t i = 0; i + 1 < segments_.size() && run.empty(); ++i) {
      if (segments_[i]->doc_count() > options_.compact_max_docs) continue;
      total = segments_[i]->doc_count();
      size_t j = i + 1;
      while (j < segments_.size() &&
             segments_[j]->base_id() == segments_[j - 1]->end_id() &&
             total + segments_[j]->doc_count() <= options_.compact_max_docs) {
        total += segments_[j]->doc_count();
        ++j;
      }
      if (j - i >= 2) {
        run_begin = i;
        run.assign(segments_.begin() + static_cast<ptrdiff_t>(i),
                   segments_.begin() + static_cast<ptrdiff_t>(j));
      }
    }
  }
  if (run.empty()) return Status::Ok();

  std::vector<Json> docs;
  docs.reserve(total);
  for (const auto& seg : run) {
    for (uint32_t i = 0; i < seg->doc_count(); ++i) {
      auto parsed = Json::parse(seg->doc_bytes(i));
      if (!parsed.ok()) {
        return Status::Error("segment row unreadable: " + seg->path());
      }
      docs.push_back(std::move(parsed.value()));
    }
  }
  const uint64_t base = run.front()->base_id();
  const std::string bytes = encode_segment(base, docs);
  const std::string path = run.front()->path();
  const std::string tmp = path + ".merge.tmp";
  if (options_.faults != nullptr) {
    const FaultAction fault = options_.faults->check(kFaultSiteStorageCompact);
    if (fault == FaultAction::kThrow) {
      return Status::Error("segment compaction failed (injected)");
    }
    if (fault == FaultAction::kTornWrite) {
      // Crash mid-merge: a torn tmp, never renamed. Every input segment is
      // untouched; the stranded tmp is overwritten by the retry.
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (out) {
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
      }
      return Status::Error("segment compaction torn (injected)");
    }
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Error("cannot write segment: " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::Error("segment write failed: " + tmp);
  }
  // Publish by renaming over the first input (same base id, same name). A
  // crash after this rename leaves the remaining inputs subsumed on disk;
  // open_dir() unlinks them as stale.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Error("cannot publish segment: " + path);
  }
  auto merged = Segment::open(path);
  if (!merged.ok()) return merged.status();
  std::vector<std::string> stale;
  size_t nsegs, nhot;
  {
    RankedMutexLock lock(mu_);
    for (size_t k = 1; k < run.size(); ++k) stale.push_back(run[k]->path());
    segments_.erase(
        segments_.begin() + static_cast<ptrdiff_t>(run_begin) + 1,
        segments_.begin() + static_cast<ptrdiff_t>(run_begin + run.size()));
    segments_[run_begin] = std::move(merged.value());
    nsegs = segments_.size();
    nhot = hot_docs_.size();
  }
  // Readers still holding the replaced segments keep valid mappings; the
  // inodes outlive the unlink.
  for (const auto& p : stale) std::remove(p.c_str());
  compactions_total_->inc();
  update_gauges(nsegs, nhot);
  return Status::Ok();
}

}  // namespace loglens
