// Role-specific facades over DocumentStore: the paper's Log Storage, Model
// Storage, and Anomaly Storage components (Figure 1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "storage/anomaly.h"
#include "storage/document_store.h"

namespace loglens {

// Archives raw logs by source (Log Storage). Stored logs feed the model
// builder's periodic relearning and post-facto troubleshooting queries.
class LogStore {
 public:
  LogStore() = default;
  // Tiered-engine configuration (segment dir, flush/compaction policy,
  // metrics label). Default: in-memory, the seed behaviour.
  explicit LogStore(DocumentStoreOptions options) : store_(std::move(options)) {}

  void add(std::string_view source, std::string_view raw, int64_t ts_ms);

  // Raw lines from one source, optionally restricted to [from_ms, to_ms].
  std::vector<std::string> fetch(std::string_view source,
                                 int64_t from_ms = INT64_MIN,
                                 int64_t to_ms = INT64_MAX,
                                 size_t limit = SIZE_MAX) const;
  size_t size() const { return store_.size(); }

  Status save_jsonl(const std::string& path) const {
    return store_.save_jsonl(path);
  }
  Status load_jsonl(const std::string& path) { return store_.load_jsonl(path); }

  // Seals the hot segment (no-op for an in-memory store).
  Status flush() { return store_.flush(); }
  const DocumentStore& docs() const { return store_; }

 private:
  DocumentStore store_;
};

// Versioned named models (Model Storage). A model blob is an arbitrary JSON
// document (pattern model, sequence model, or a composite).
class ModelStore {
 public:
  struct Entry {
    std::string name;
    int version = 0;
    Json blob;
  };

  // Stores a new version of `name`; returns the version number (1-based).
  int put(std::string_view name, Json blob) LOGLENS_EXCLUDES(mu_);

  // Latest version, or nullopt if the model does not exist / was deleted.
  std::optional<Entry> latest(std::string_view name) const
      LOGLENS_EXCLUDES(mu_);
  std::optional<Entry> version(std::string_view name, int version) const
      LOGLENS_EXCLUDES(mu_);

  // Marks the model deleted (latest() stops returning it).
  void remove(std::string_view name) LOGLENS_EXCLUDES(mu_);

  std::vector<std::string> names() const LOGLENS_EXCLUDES(mu_);

 private:
  // Same storage tier as DocumentStore: written under the service's
  // recovery lock, never while holding anything ranked deeper.
  mutable RankedMutex mu_{lock_rank::kStorage};
  std::vector<Entry> entries_ LOGLENS_GUARDED_BY(mu_);
  std::vector<std::string> deleted_ LOGLENS_GUARDED_BY(mu_);
};

// Anomalies awaiting human validation (Anomaly Storage).
class AnomalyStore {
 public:
  AnomalyStore() = default;
  explicit AnomalyStore(DocumentStoreOptions options)
      : store_(std::move(options)) {}

  void add(const Anomaly& anomaly);

  std::vector<Anomaly> all() const;
  std::vector<Anomaly> by_type(AnomalyType type) const;
  size_t count() const { return store_.size(); }
  size_t count_by_type(AnomalyType type) const;

  // Ad-hoc query surface over the raw anomaly documents (fields per
  // Anomaly::to_json: "type", "source", "timestamp_ms", ...). The dashboard
  // builds its "which sources spiked X" panel on this.
  std::vector<Json> query_docs(const Query& q,
                               QueryStats* stats = nullptr) const {
    return store_.query(q, stats);
  }

  Status flush() { return store_.flush(); }
  const DocumentStore& docs() const { return store_; }

  // Drops everything — crash recovery rebuilds the store from the
  // checkpointed prefix of the anomalies topic (LogLensService::recover).
  void clear() { store_.clear(); }

  Status save_jsonl(const std::string& path) const {
    return store_.save_jsonl(path);
  }

 private:
  DocumentStore store_;
};

}  // namespace loglens
