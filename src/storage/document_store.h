// In-memory, JSONL-persisted document store — the Elasticsearch substitute.
//
// The paper uses Elasticsearch for three roles: archiving raw logs by
// source, storing learned models, and storing anomalies for human review,
// all queried by simple term/time predicates. This store covers exactly
// that: JSON documents with auto-assigned ids, an inverted term index over
// top-level string fields, range scans over integer fields, and JSONL
// save/load for durability. Thread-safe.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lock_rank.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "json/json.h"

namespace loglens {

struct QueryClause {
  enum class Kind { kTerm, kRange };
  Kind kind = Kind::kTerm;
  std::string field;
  std::string term;        // kTerm: exact string equality
  int64_t min = INT64_MIN; // kRange: inclusive bounds on an integer field
  int64_t max = INT64_MAX;

  static QueryClause Term(std::string field, std::string value) {
    QueryClause c;
    c.kind = Kind::kTerm;
    c.field = std::move(field);
    c.term = std::move(value);
    return c;
  }
  static QueryClause Range(std::string field, int64_t min, int64_t max) {
    QueryClause c;
    c.kind = Kind::kRange;
    c.field = std::move(field);
    c.min = min;
    c.max = max;
    return c;
  }
};

struct Query {
  std::vector<QueryClause> clauses;  // conjunctive
  size_t limit = SIZE_MAX;
};

class DocumentStore {
 public:
  DocumentStore() = default;
  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  // Inserts a document (must be a JSON object) and returns its id.
  uint64_t insert(Json doc) LOGLENS_EXCLUDES(mu_);

  std::optional<Json> get(uint64_t id) const LOGLENS_EXCLUDES(mu_);

  // Returns copies of documents satisfying every clause, in insertion order.
  std::vector<Json> query(const Query& q) const LOGLENS_EXCLUDES(mu_);
  size_t count(const Query& q) const LOGLENS_EXCLUDES(mu_);

  size_t size() const LOGLENS_EXCLUDES(mu_);
  void clear() LOGLENS_EXCLUDES(mu_);

  // One JSON object per line. load_jsonl inserts line by line (taking the
  // lock per document), so a concurrent reader sees a growing store, never
  // a torn one.
  Status save_jsonl(const std::string& path) const LOGLENS_EXCLUDES(mu_);
  Status load_jsonl(const std::string& path) LOGLENS_EXCLUDES(mu_);

 private:
  // Recovery reads/writes stores while holding the service lock (and the
  // anomaly rebuild follows a broker fetch), so storage ranks inside both.
  mutable RankedMutex mu_{lock_rank::kStorage};
  std::vector<Json> docs_ LOGLENS_GUARDED_BY(mu_);
  // field -> value -> doc ids; maintained for top-level string fields.
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::vector<uint64_t>>>
      term_index_ LOGLENS_GUARDED_BY(mu_);
};

}  // namespace loglens
