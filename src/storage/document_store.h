// Tiered, JSONL-compatible document store — the Elasticsearch substitute.
//
// The paper uses Elasticsearch for three roles: archiving raw logs by
// source, storing learned models, and storing anomalies for human review,
// all queried by simple term/time predicates. This store covers exactly
// that, but no longer caps retention at RAM: documents land in a mutable
// in-memory *hot segment* which seals and flushes to immutable, mmap'd
// columnar segment files (storage/segment.h) once it reaches
// `hot_max_docs`. Sealed segments carry per-field string dictionaries with
// posting lists and integer columns with zone maps, so term/range queries
// prune whole segments before touching a byte of document data, and small
// adjacent segments are merged by compaction (inline after flush and/or a
// background job). Ids are dense and stable: segment k covers
// [base_id, base_id + doc_count) and neither flush nor compaction renumbers
// a document.
//
// With an empty `dir` the store is purely in-memory (the hot segment never
// seals) and behaves exactly like the seed-era vector store. Thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/lock_rank.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "json/json.h"
#include "storage/segment.h"

namespace loglens {

class FaultInjector;
class MetricsRegistry;
class Counter;
class Gauge;

struct QueryClause {
  enum class Kind { kTerm, kRange };
  Kind kind = Kind::kTerm;
  std::string field;
  std::string term;        // kTerm: exact string equality
  int64_t min = INT64_MIN; // kRange: inclusive bounds on an integer field
  int64_t max = INT64_MAX;

  static QueryClause Term(std::string field, std::string value) {
    QueryClause c;
    c.kind = Kind::kTerm;
    c.field = std::move(field);
    c.term = std::move(value);
    return c;
  }
  static QueryClause Range(std::string field, int64_t min, int64_t max) {
    QueryClause c;
    c.kind = Kind::kRange;
    c.field = std::move(field);
    c.min = min;
    c.max = max;
    return c;
  }
};

struct Query {
  std::vector<QueryClause> clauses;  // conjunctive
  size_t limit = SIZE_MAX;
};

// Execution probe filled by query()/count(): how much work the plan did.
// Tests pin the smallest-posting-list selection and zone-map pruning with
// it; the dashboard does not expose it.
struct QueryStats {
  size_t segments_considered = 0;  // sealed segments examined by the plan
  size_t segments_pruned = 0;      // skipped via zone map / dictionary miss
  size_t docs_scanned = 0;         // docs evaluated against the clauses
};

struct DocumentStoreOptions {
  // Segment directory. Empty = in-memory only: flush()/compact() are no-ops
  // and the hot segment grows without bound, exactly the seed behaviour.
  std::string dir;

  // Hot segment seals once it holds this many documents (0 = only explicit
  // flush() seals).
  size_t hot_max_docs = 65536;

  // Compaction policy: after a flush (and from the background job), merge
  // the earliest run of >= compact_min_segments adjacent segments whose
  // combined size stays <= compact_max_docs.
  bool auto_compact = true;
  size_t compact_min_segments = 4;
  size_t compact_max_docs = 262144;

  // Background compaction job (sched::spawn_named, so schedule exploration
  // and virtual time apply). Off by default: tests drive compact()
  // deterministically, and the inline auto_compact covers steady state.
  bool background_compaction = false;
  int64_t compact_interval_ms = 50;

  // Plan switches, for benchmarks and the differential harness:
  // zone_map_pruning=false keeps posting lists but never skips a segment;
  // sequential_scan=true ignores columns entirely and re-parses every
  // document (the full-scan baseline bench_storage compares against).
  bool zone_map_pruning = true;
  bool sequential_scan = false;

  // `store` label on this store's metrics series.
  std::string name = "docs";

  FaultInjector* faults = nullptr;    // consulted at flush/compact writes
  MetricsRegistry* metrics = nullptr; // nullptr = process-global registry
};

class DocumentStore {
 public:
  DocumentStore();  // in-memory only, default options
  explicit DocumentStore(DocumentStoreOptions options);
  ~DocumentStore();
  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  // Inserts a document and returns its id. Ids are assigned densely from 0
  // (resuming after the last sealed segment when `dir` held segments).
  uint64_t insert(Json doc) LOGLENS_EXCLUDES(mu_);

  std::optional<Json> get(uint64_t id) const LOGLENS_EXCLUDES(mu_);

  // Returns copies of documents satisfying every clause, in insertion
  // order. The optional probe reports how much the plan scanned.
  std::vector<Json> query(const Query& q) const LOGLENS_EXCLUDES(mu_);
  std::vector<Json> query(const Query& q, QueryStats* stats) const
      LOGLENS_EXCLUDES(mu_);
  // count() never materializes documents: sealed segments are counted from
  // their columns alone.
  size_t count(const Query& q, QueryStats* stats = nullptr) const
      LOGLENS_EXCLUDES(mu_);

  size_t size() const LOGLENS_EXCLUDES(mu_);

  // Drops every document, sealed segment files included. Ids restart at 0
  // (recover()'s exactly-once anomaly rebuild depends on both).
  void clear() LOGLENS_EXCLUDES(mu_);

  // One JSON object per line, in id order (sealed rows are streamed
  // verbatim). load_jsonl inserts line by line (taking the lock per
  // document), so a concurrent reader sees a growing store, never a torn
  // one; a line that is not a JSON object stops the load with an error
  // identifying the line (documents inserted before it remain).
  Status save_jsonl(const std::string& path) const LOGLENS_EXCLUDES(mu_);
  Status load_jsonl(const std::string& path) LOGLENS_EXCLUDES(mu_);

  // Seals the current hot segment to disk (no-op when empty or in-memory).
  // On failure — injected or real — the hot segment is left intact and the
  // next flush retries the same documents.
  Status flush() LOGLENS_EXCLUDES(flush_mu_, mu_);

  // One compaction round: merges the earliest eligible run of adjacent
  // segments (see DocumentStoreOptions). No-op when nothing is eligible.
  Status compact() LOGLENS_EXCLUDES(flush_mu_, mu_);

  size_t segment_count() const LOGLENS_EXCLUDES(mu_);
  size_t hot_count() const LOGLENS_EXCLUDES(mu_);
  // Segment files present at open but rejected (bad magic / size /
  // checksum). The files are left in place for forensics.
  uint64_t rejected_segments() const { return rejected_; }

  const DocumentStoreOptions& options() const { return options_; }

 private:
  void open_dir();
  // Shared plan executor: fills `out` (query) or only counts (count).
  size_t execute(const Query& q, QueryStats* stats,
                 std::vector<Json>* out) const LOGLENS_EXCLUDES(mu_);
  Status flush_internal(bool force) LOGLENS_EXCLUDES(flush_mu_, mu_);
  // Both assume the caller holds flush_mu_ (flush/compact serialization);
  // they take mu_ themselves only for the short publish step.
  Status flush_locked(bool force) LOGLENS_REQUIRES(flush_mu_)
      LOGLENS_EXCLUDES(mu_);
  Status compact_locked() LOGLENS_REQUIRES(flush_mu_) LOGLENS_EXCLUDES(mu_);
  void index_hot_locked(const Json& doc, uint32_t local_id)
      LOGLENS_REQUIRES(mu_);
  void rebuild_hot_index_locked() LOGLENS_REQUIRES(mu_);
  void update_gauges(size_t segments, size_t hot_docs);
  std::string segment_path(uint64_t base_id) const;

  const DocumentStoreOptions options_;

  // Metric handles, resolved once at construction (hot paths touch only
  // atomics). See docs/OBSERVABILITY.md.
  Counter* flushes_total_ = nullptr;
  Counter* compactions_total_ = nullptr;
  Counter* pruned_total_ = nullptr;
  Counter* rejected_total_ = nullptr;
  Gauge* segments_gauge_ = nullptr;
  Gauge* hot_docs_gauge_ = nullptr;

  // Serializes flush and compaction (one segment-file writer at a time).
  // Ranked *below* kFaults: the writer consults the FaultInjector while
  // holding it, and below kStorage so the publish step can take mu_.
  mutable RankedMutex flush_mu_{lock_rank::kStorageFlush};

  // Recovery reads/writes stores while holding the service lock (and the
  // anomaly rebuild follows a broker fetch), so storage ranks inside both.
  mutable RankedMutex mu_{lock_rank::kStorage};

  // Sealed segments, ascending contiguous id ranges. The shared_ptrs are
  // snapshotted under mu_; the segments themselves are immutable.
  std::vector<std::shared_ptr<const Segment>> segments_
      LOGLENS_GUARDED_BY(mu_);

  // The hot segment: ids [hot_base_, hot_base_ + hot_docs_.size()), plus a
  // first-occurrence term index (field -> value -> ascending local ids).
  uint64_t hot_base_ LOGLENS_GUARDED_BY(mu_) = 0;
  std::vector<Json> hot_docs_ LOGLENS_GUARDED_BY(mu_);
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::vector<uint32_t>>>
      hot_index_ LOGLENS_GUARDED_BY(mu_);

  uint64_t rejected_ = 0;  // written only by open_dir(), before publication

  std::atomic<bool> stop_{false};
  std::thread compactor_;
};

}  // namespace loglens
