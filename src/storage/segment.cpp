#include "storage/segment.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define LOGLENS_SEGMENT_MMAP 1
#else
#define LOGLENS_SEGMENT_MMAP 0
#endif

#include "common/hash.h"

namespace loglens {

namespace {

// File layout constants. The magic doubles as a format version: bump the
// trailing digit when the payload layout changes and old files are rejected
// (and rebuilt from JSONL) instead of misread.
constexpr char kMagic[8] = {'L', 'L', 'S', 'E', 'G', '1', '\n', '\0'};
constexpr uint64_t kHeaderSize = 8 + 8 + 8;  // magic + payload size + checksum

// Structural sanity bounds, enforced on open in addition to the checksum.
constexpr uint64_t kMaxDocs = 1ull << 28;
constexpr uint64_t kMaxFields = 1ull << 20;
constexpr uint64_t kMaxTerms = 1ull << 26;
constexpr uint64_t kMaxStrLen = 1ull << 24;

void put_u32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), 4);
}
void put_u64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), 8);
}
void put_i64(std::string& out, int64_t v) {
  out.append(reinterpret_cast<const char*>(&v), 8);
}
void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

uint32_t load_u32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t load_u64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
int64_t load_i64(const char* p) {
  int64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Bounds-checked forward reader over the payload. Every read that would
// run past the end flips `ok` and returns zeros; the parser checks `ok`
// after each section so a structurally-absurd (if checksum-colliding) file
// can never index out of the mapping.
struct Cursor {
  const char* p;
  const char* end;
  bool ok = true;

  bool has(uint64_t n) {
    if (!ok || static_cast<uint64_t>(end - p) < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint32_t u32() {
    if (!has(4)) return 0;
    uint32_t v = load_u32(p);
    p += 4;
    return v;
  }
  uint64_t u64() {
    if (!has(8)) return 0;
    uint64_t v = load_u64(p);
    p += 8;
    return v;
  }
  int64_t i64() {
    if (!has(8)) return 0;
    int64_t v = load_i64(p);
    p += 8;
    return v;
  }
  std::string_view str(uint64_t max_len) {
    uint32_t n = u32();
    if (n > max_len || !has(n)) {
      ok = false;
      return {};
    }
    std::string_view s(p, n);
    p += n;
    return s;
  }
  const char* bytes(uint64_t n) {
    if (!has(n)) return nullptr;
    const char* s = p;
    p += n;
    return s;
  }
};

// First-occurrence walk over a document's object fields: calls fn(key,
// value) once per distinct key, for the value Json::find would return.
template <typename Fn>
void for_each_first_field(const Json& doc, Fn&& fn) {
  if (!doc.is_object()) return;
  const JsonObject& obj = doc.as_object();
  for (size_t i = 0; i < obj.size(); ++i) {
    bool duplicate = false;
    for (size_t j = 0; j < i; ++j) {
      if (obj[j].first == obj[i].first) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) fn(obj[i].first, obj[i].second);
  }
}

}  // namespace

std::string encode_segment(uint64_t base_id, const std::vector<Json>& docs) {
  const uint32_t n = static_cast<uint32_t>(docs.size());

  // Row section: serialized docs + offsets.
  std::string blob;
  std::vector<uint64_t> offsets;
  offsets.reserve(docs.size() + 1);
  for (const auto& d : docs) {
    offsets.push_back(blob.size());
    d.dump_to(blob);
  }
  offsets.push_back(blob.size());

  // Column section, built by one first-occurrence pass per doc. Field and
  // term ids are assigned in first-appearance order (deterministic given
  // the docs).
  struct StringCol {
    std::string name;
    std::vector<std::string> terms;
    std::unordered_map<std::string, uint32_t> term_ids;
    std::vector<uint32_t> codes;               // per doc, 0 = absent
    std::vector<std::vector<uint32_t>> posts;  // per term
  };
  struct IntCol {
    std::string name;
    int64_t zmin = INT64_MAX;
    int64_t zmax = INT64_MIN;
    std::vector<uint8_t> presence;
    std::vector<int64_t> values;
  };
  std::vector<StringCol> scols;
  std::vector<IntCol> icols;
  std::unordered_map<std::string, size_t> sidx;
  std::unordered_map<std::string, size_t> iidx;

  for (uint32_t d = 0; d < n; ++d) {
    for_each_first_field(docs[d], [&](const std::string& key, const Json& v) {
      if (v.is_string()) {
        auto [it, fresh] = sidx.try_emplace(key, scols.size());
        if (fresh) {
          scols.emplace_back();
          scols.back().name = key;
          scols.back().codes.assign(n, 0);
        }
        StringCol& col = scols[it->second];
        auto [tit, term_fresh] =
            col.term_ids.try_emplace(v.as_string(),
                                     static_cast<uint32_t>(col.terms.size()));
        if (term_fresh) {
          col.terms.push_back(v.as_string());
          col.posts.emplace_back();
        }
        col.codes[d] = tit->second + 1;
        col.posts[tit->second].push_back(d);
      } else if (v.is_number()) {
        auto [it, fresh] = iidx.try_emplace(key, icols.size());
        if (fresh) {
          icols.emplace_back();
          icols.back().name = key;
          icols.back().presence.assign(n, 0);
          icols.back().values.assign(n, 0);
        }
        IntCol& col = icols[it->second];
        const int64_t x = v.as_int();
        col.presence[d] = 1;
        col.values[d] = x;
        col.zmin = std::min(col.zmin, x);
        col.zmax = std::max(col.zmax, x);
      }
    });
  }

  std::string payload;
  payload.reserve(blob.size() + 64 * (scols.size() + icols.size()) + 64);
  put_u64(payload, base_id);
  put_u32(payload, n);
  put_u32(payload, 0);  // reserved
  put_u64(payload, blob.size());
  for (uint64_t off : offsets) put_u64(payload, off);
  payload.append(blob);

  put_u32(payload, static_cast<uint32_t>(scols.size()));
  for (const StringCol& col : scols) {
    put_str(payload, col.name);
    put_u32(payload, static_cast<uint32_t>(col.terms.size()));
    for (const auto& t : col.terms) put_str(payload, t);
    for (uint32_t c : col.codes) put_u32(payload, c);
    for (const auto& post : col.posts) {
      put_u32(payload, static_cast<uint32_t>(post.size()));
      for (uint32_t id : post) put_u32(payload, id);
    }
  }
  put_u32(payload, static_cast<uint32_t>(icols.size()));
  for (const IntCol& col : icols) {
    put_str(payload, col.name);
    put_i64(payload, col.zmin);
    put_i64(payload, col.zmax);
    payload.append(reinterpret_cast<const char*>(col.presence.data()),
                   col.presence.size());
    for (int64_t v : col.values) put_i64(payload, v);
  }

  std::string file;
  file.reserve(kHeaderSize + payload.size());
  file.append(kMagic, sizeof(kMagic));
  put_u64(file, payload.size());
  put_u64(file, fnv1a(payload));
  file.append(payload);
  return file;
}

StatusOr<std::shared_ptr<const Segment>> Segment::open(std::string path) {
  auto seg = std::shared_ptr<Segment>(new Segment());
  seg->path_ = std::move(path);

#if LOGLENS_SEGMENT_MMAP
  int fd = ::open(seg->path_.c_str(), O_RDONLY);
  if (fd < 0) {
    return StatusOr<std::shared_ptr<const Segment>>::Error(
        "cannot open segment: " + seg->path_);
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    ::close(fd);
    return StatusOr<std::shared_ptr<const Segment>>::Error(
        "cannot stat segment: " + seg->path_);
  }
  seg->data_size_ = static_cast<uint64_t>(st.st_size);
  if (seg->data_size_ > 0) {
    void* map = ::mmap(nullptr, seg->data_size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
      return StatusOr<std::shared_ptr<const Segment>>::Error(
          "cannot mmap segment: " + seg->path_);
    }
    seg->data_ = static_cast<const char*>(map);
    seg->mapped_ = true;
  } else {
    ::close(fd);
  }
#else
  std::ifstream in(seg->path_, std::ios::binary);
  if (!in) {
    return StatusOr<std::shared_ptr<const Segment>>::Error(
        "cannot open segment: " + seg->path_);
  }
  seg->heap_copy_.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
  seg->data_ = seg->heap_copy_.data();
  seg->data_size_ = seg->heap_copy_.size();
#endif

  // Header validation: magic, recorded payload size vs actual file length,
  // payload checksum. A torn write or corrupt byte anywhere fails here.
  if (seg->data_size_ < kHeaderSize ||
      std::memcmp(seg->data_, kMagic, sizeof(kMagic)) != 0) {
    return StatusOr<std::shared_ptr<const Segment>>::Error(
        "not a segment file (bad magic): " + seg->path_);
  }
  const uint64_t payload_size = load_u64(seg->data_ + 8);
  const uint64_t checksum = load_u64(seg->data_ + 16);
  if (seg->data_size_ != kHeaderSize + payload_size) {
    return StatusOr<std::shared_ptr<const Segment>>::Error(
        "segment truncated or oversized: " + seg->path_);
  }
  const char* payload = seg->data_ + kHeaderSize;
  if (fnv1a(std::string_view(payload, payload_size)) != checksum) {
    return StatusOr<std::shared_ptr<const Segment>>::Error(
        "segment checksum mismatch: " + seg->path_);
  }
  Status s = seg->parse_payload(payload, payload_size);
  if (!s.ok()) return s;
  return std::shared_ptr<const Segment>(std::move(seg));
}

Status Segment::parse_payload(const char* payload, uint64_t size) {
  Cursor c{payload, payload + size};
  base_id_ = c.u64();
  doc_count_ = c.u32();
  (void)c.u32();  // reserved
  blob_size_ = c.u64();
  if (!c.ok || doc_count_ > kMaxDocs) {
    return Status::Error("segment header malformed: " + path_);
  }
  doc_offsets_ = c.bytes(8ull * (doc_count_ + 1));
  blob_ = c.bytes(blob_size_);
  if (!c.ok || load_u64(doc_offsets_ + 8ull * doc_count_) != blob_size_) {
    return Status::Error("segment row section malformed: " + path_);
  }

  const uint32_t n_strings = c.u32();
  if (!c.ok || n_strings > kMaxFields) {
    return Status::Error("segment column section malformed: " + path_);
  }
  string_fields_.reserve(n_strings);
  for (uint32_t f = 0; f < n_strings; ++f) {
    StringField field;
    field.name = c.str(kMaxStrLen);
    const uint32_t n_terms = c.u32();
    if (!c.ok || n_terms > kMaxTerms) {
      return Status::Error("segment column section malformed: " + path_);
    }
    field.terms.reserve(n_terms);
    for (uint32_t t = 0; t < n_terms; ++t) {
      field.terms.push_back(c.str(kMaxStrLen));
    }
    field.codes = c.bytes(4ull * doc_count_);
    field.postings.reserve(n_terms);
    for (uint32_t t = 0; t < n_terms; ++t) {
      const uint32_t len = c.u32();
      if (len > doc_count_) {
        return Status::Error("segment posting list malformed: " + path_);
      }
      field.postings.emplace_back(c.bytes(4ull * len), len);
    }
    if (!c.ok) {
      return Status::Error("segment column section malformed: " + path_);
    }
    for (uint32_t t = 0; t < n_terms; ++t) field.term_ids[field.terms[t]] = t;
    string_fields_.push_back(std::move(field));
  }

  const uint32_t n_ints = c.u32();
  if (!c.ok || n_ints > kMaxFields) {
    return Status::Error("segment column section malformed: " + path_);
  }
  int_fields_.reserve(n_ints);
  for (uint32_t f = 0; f < n_ints; ++f) {
    IntField field;
    field.name = c.str(kMaxStrLen);
    field.zone_min = c.i64();
    field.zone_max = c.i64();
    field.presence = c.bytes(doc_count_);
    field.values = c.bytes(8ull * doc_count_);
    if (!c.ok) {
      return Status::Error("segment column section malformed: " + path_);
    }
    int_fields_.push_back(std::move(field));
  }
  if (c.p != c.end) {
    return Status::Error("segment has trailing bytes: " + path_);
  }

  for (size_t i = 0; i < string_fields_.size(); ++i) {
    string_by_name_.emplace(string_fields_[i].name, i);
  }
  for (size_t i = 0; i < int_fields_.size(); ++i) {
    int_by_name_.emplace(int_fields_[i].name, i);
  }
  return Status::Ok();
}

Segment::~Segment() {
#if LOGLENS_SEGMENT_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), data_size_);
  }
#endif
}

std::string_view Segment::doc_bytes(uint32_t local_id) const {
  const uint64_t lo = load_u64(doc_offsets_ + 8ull * local_id);
  const uint64_t hi = load_u64(doc_offsets_ + 8ull * (local_id + 1));
  return std::string_view(blob_ + lo, hi - lo);
}

const Segment::StringField* Segment::string_field(
    std::string_view name) const {
  auto it = string_by_name_.find(name);
  return it == string_by_name_.end() ? nullptr : &string_fields_[it->second];
}

const Segment::IntField* Segment::int_field(std::string_view name) const {
  auto it = int_by_name_.find(name);
  return it == int_by_name_.end() ? nullptr : &int_fields_[it->second];
}

uint32_t Segment::code_at(const StringField& f, uint32_t local_id) {
  return load_u32(f.codes + 4ull * local_id);
}

uint32_t Segment::posting_at(const StringField& f, uint32_t term_id,
                             uint32_t index) {
  return load_u32(f.postings[term_id].first + 4ull * index);
}

bool Segment::int_present(const IntField& f, uint32_t local_id) {
  return f.presence[local_id] != 0;
}

int64_t Segment::int_value(const IntField& f, uint32_t local_id) {
  return load_i64(f.values + 8ull * local_id);
}

}  // namespace loglens
