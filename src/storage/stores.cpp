#include "storage/stores.h"

#include <algorithm>

namespace loglens {

void LogStore::add(std::string_view source, std::string_view raw,
                   int64_t ts_ms) {
  JsonObject obj;
  obj.emplace_back("source", Json(source));
  obj.emplace_back("raw", Json(raw));
  obj.emplace_back("ts", Json(ts_ms));
  store_.insert(Json(std::move(obj)));
}

std::vector<std::string> LogStore::fetch(std::string_view source,
                                         int64_t from_ms, int64_t to_ms,
                                         size_t limit) const {
  Query q;
  q.clauses.push_back(QueryClause::Term("source", std::string(source)));
  if (from_ms != INT64_MIN || to_ms != INT64_MAX) {
    q.clauses.push_back(QueryClause::Range("ts", from_ms, to_ms));
  }
  q.limit = limit;
  std::vector<std::string> out;
  for (const auto& doc : store_.query(q)) {
    out.emplace_back(doc.get_string("raw"));
  }
  return out;
}

int ModelStore::put(std::string_view name, Json blob) {
  RankedMutexLock lock(mu_);
  int version = 0;
  for (const auto& e : entries_) {
    if (e.name == name) version = std::max(version, e.version);
  }
  entries_.push_back(Entry{std::string(name), version + 1, std::move(blob)});
  // Re-adding a model revives it after deletion.
  std::erase(deleted_, std::string(name));
  return version + 1;
}

std::optional<ModelStore::Entry> ModelStore::latest(
    std::string_view name) const {
  RankedMutexLock lock(mu_);
  if (std::find(deleted_.begin(), deleted_.end(), name) != deleted_.end()) {
    return std::nullopt;
  }
  const Entry* best = nullptr;
  for (const auto& e : entries_) {
    if (e.name == name && (best == nullptr || e.version > best->version)) {
      best = &e;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::optional<ModelStore::Entry> ModelStore::version(std::string_view name,
                                                     int version) const {
  RankedMutexLock lock(mu_);
  for (const auto& e : entries_) {
    if (e.name == name && e.version == version) return e;
  }
  return std::nullopt;
}

void ModelStore::remove(std::string_view name) {
  RankedMutexLock lock(mu_);
  if (std::find(deleted_.begin(), deleted_.end(), name) == deleted_.end()) {
    deleted_.emplace_back(name);
  }
}

std::vector<std::string> ModelStore::names() const {
  RankedMutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    if (std::find(out.begin(), out.end(), e.name) != out.end()) continue;
    if (std::find(deleted_.begin(), deleted_.end(), e.name) != deleted_.end()) {
      continue;
    }
    out.push_back(e.name);
  }
  return out;
}

void AnomalyStore::add(const Anomaly& anomaly) {
  store_.insert(anomaly.to_json());
}

std::vector<Anomaly> AnomalyStore::all() const {
  std::vector<Anomaly> out;
  for (const auto& doc : store_.query(Query{})) {
    auto a = Anomaly::from_json(doc);
    if (a.ok()) out.push_back(std::move(a.value()));
  }
  return out;
}

std::vector<Anomaly> AnomalyStore::by_type(AnomalyType type) const {
  Query q;
  q.clauses.push_back(
      QueryClause::Term("type", std::string(anomaly_type_name(type))));
  std::vector<Anomaly> out;
  for (const auto& doc : store_.query(q)) {
    auto a = Anomaly::from_json(doc);
    if (a.ok()) out.push_back(std::move(a.value()));
  }
  return out;
}

size_t AnomalyStore::count_by_type(AnomalyType type) const {
  Query q;
  q.clauses.push_back(
      QueryClause::Term("type", std::string(anomaly_type_name(type))));
  return store_.count(q);
}

}  // namespace loglens
