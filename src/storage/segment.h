// Immutable on-disk columnar segments for the tiered DocumentStore.
//
// A segment is the sealed form of the store's in-memory hot segment: a
// contiguous id range [base_id, base_id + doc_count) of JSON documents,
// serialized once and then only ever read through an mmap. The layout is
// column-first so queries touch the few bytes they need:
//
//   header   magic, payload size, fnv1a-64 checksum of the payload
//   rows     per-doc serialized JSON (the byte-exact dump() of each doc),
//            addressed by an offset table — materialization and save_jsonl
//            read these verbatim
//   strings  per string field: a dictionary of distinct terms, a per-doc
//            code column (0 = the doc's first value for this key is not a
//            string), and a posting list of local ids per term
//   ints     per integer field: a zone map (min/max over the segment) plus
//            a per-doc presence byte and value column
//
// Columns index the *first* occurrence of each key in a document — the same
// value Json::find returns — so evaluating a term or range clause against
// the columns is exactly equivalent to evaluating it against the document.
//
// Torn-write safety: open() accepts a file only when the magic matches, the
// file length equals header + recorded payload size, and the payload
// checksum verifies. A crash (or injected torn write) anywhere mid-file
// fails at least one of those checks, so a damaged segment is rejected at
// open time without affecting its neighbours. See DESIGN.md §6.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "json/json.h"

namespace loglens {

// Serializes one sealed segment (header + payload) into a byte buffer. The
// caller owns durability (tmp + rename) and fault injection at the write.
std::string encode_segment(uint64_t base_id, const std::vector<Json>& docs);

class Segment {
 public:
  struct StringField {
    std::string_view name;
    std::vector<std::string_view> terms;  // term_id -> text
    std::unordered_map<std::string_view, uint32_t> term_ids;
    const char* codes = nullptr;  // u32[doc_count]; 0 = absent, else id + 1
    // term_id -> (first id byte, id count); ids are u32 locals, ascending.
    std::vector<std::pair<const char*, uint32_t>> postings;
  };

  struct IntField {
    std::string_view name;
    int64_t zone_min = 0;  // zone map over present values
    int64_t zone_max = 0;
    const char* presence = nullptr;  // u8[doc_count]; 1 = doc has a number
    const char* values = nullptr;    // i64[doc_count]
  };

  // Validates and maps the file. Any truncation or corruption — from the
  // magic through the last payload byte — returns an error and leaves no
  // mapping behind.
  static StatusOr<std::shared_ptr<const Segment>> open(std::string path);

  ~Segment();
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  uint64_t base_id() const { return base_id_; }
  uint32_t doc_count() const { return doc_count_; }
  uint64_t end_id() const { return base_id_ + doc_count_; }
  const std::string& path() const { return path_; }

  // The serialized JSON of one document, byte-identical to the dump() of
  // the Json that was inserted.
  std::string_view doc_bytes(uint32_t local_id) const;

  // nullptr when no document in this segment has a string (respectively
  // numeric) first value for the field.
  const StringField* string_field(std::string_view name) const;
  const IntField* int_field(std::string_view name) const;

  // Column accessors (bounds are the caller's responsibility).
  static uint32_t code_at(const StringField& f, uint32_t local_id);
  static uint32_t posting_at(const StringField& f, uint32_t term_id,
                             uint32_t index);
  static bool int_present(const IntField& f, uint32_t local_id);
  static int64_t int_value(const IntField& f, uint32_t local_id);

 private:
  Segment() = default;
  Status parse_payload(const char* payload, uint64_t size);

  std::string path_;
  // The mapping (mmap when available, a heap copy otherwise).
  const char* data_ = nullptr;
  uint64_t data_size_ = 0;
  bool mapped_ = false;
  std::string heap_copy_;

  uint64_t base_id_ = 0;
  uint32_t doc_count_ = 0;
  const char* doc_offsets_ = nullptr;  // u64[doc_count + 1]
  const char* blob_ = nullptr;
  uint64_t blob_size_ = 0;
  std::vector<StringField> string_fields_;
  std::vector<IntField> int_fields_;
  std::unordered_map<std::string_view, size_t> string_by_name_;
  std::unordered_map<std::string_view, size_t> int_by_name_;
};

}  // namespace loglens
