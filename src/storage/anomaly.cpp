#include "storage/anomaly.h"

#include "common/time.h"

namespace loglens {

std::string_view anomaly_type_name(AnomalyType t) {
  switch (t) {
    case AnomalyType::kUnparsedLog: return "UNPARSED_LOG";
    case AnomalyType::kMissingBeginState: return "MISSING_BEGIN_STATE";
    case AnomalyType::kMissingEndState: return "MISSING_END_STATE";
    case AnomalyType::kMissingIntermediateState:
      return "MISSING_INTERMEDIATE_STATE";
    case AnomalyType::kOccurrenceViolation: return "OCCURRENCE_VIOLATION";
    case AnomalyType::kDurationViolation: return "DURATION_VIOLATION";
    case AnomalyType::kUnknownTransition: return "UNKNOWN_TRANSITION";
    case AnomalyType::kKeywordAlert: return "KEYWORD_ALERT";
    case AnomalyType::kValueOutOfRange: return "VALUE_OUT_OF_RANGE";
    case AnomalyType::kOpenStateEvicted: return "OPEN_STATE_EVICTED";
  }
  return "UNPARSED_LOG";
}

bool anomaly_type_from_name(std::string_view name, AnomalyType& out) {
  for (AnomalyType t :
       {AnomalyType::kUnparsedLog, AnomalyType::kMissingBeginState,
        AnomalyType::kMissingEndState, AnomalyType::kMissingIntermediateState,
        AnomalyType::kOccurrenceViolation, AnomalyType::kDurationViolation,
        AnomalyType::kUnknownTransition, AnomalyType::kKeywordAlert,
        AnomalyType::kValueOutOfRange, AnomalyType::kOpenStateEvicted}) {
    if (anomaly_type_name(t) == name) {
      out = t;
      return true;
    }
  }
  return false;
}

Json Anomaly::to_json() const {
  JsonObject obj;
  obj.emplace_back("type", Json(anomaly_type_name(type)));
  obj.emplace_back("severity", Json(severity));
  obj.emplace_back("reason", Json(reason));
  obj.emplace_back("timestamp_ms", Json(timestamp_ms));
  if (timestamp_ms >= 0) {
    obj.emplace_back("timestamp", Json(format_canonical(timestamp_ms)));
  }
  obj.emplace_back("source", Json(source));
  obj.emplace_back("event_id", Json(event_id));
  obj.emplace_back("automaton_id", Json(static_cast<int64_t>(automaton_id)));
  JsonArray arr;
  arr.reserve(logs.size());
  for (const auto& l : logs) arr.emplace_back(l);
  obj.emplace_back("logs", Json(std::move(arr)));
  obj.emplace_back("details", details);
  return Json(std::move(obj));
}

StatusOr<Anomaly> Anomaly::from_json(const Json& j) {
  if (!j.is_object()) return StatusOr<Anomaly>::Error("anomaly is not an object");
  Anomaly a;
  if (!anomaly_type_from_name(j.get_string("type"), a.type)) {
    return StatusOr<Anomaly>::Error("unknown anomaly type: " +
                                    std::string(j.get_string("type")));
  }
  a.severity = std::string(j.get_string("severity", "medium"));
  a.reason = std::string(j.get_string("reason"));
  a.timestamp_ms = j.get_int("timestamp_ms", -1);
  a.source = std::string(j.get_string("source"));
  a.event_id = std::string(j.get_string("event_id"));
  a.automaton_id = static_cast<int>(j.get_int("automaton_id", -1));
  if (const Json* logs = j.find("logs"); logs != nullptr && logs->is_array()) {
    for (const auto& l : logs->as_array()) {
      if (l.is_string()) a.logs.push_back(l.as_string());
    }
  }
  if (const Json* details = j.find("details"); details != nullptr) {
    a.details = *details;
  }
  return a;
}

}  // namespace loglens
