// Anomaly records (paper Table II plus the stateless unparsed-log anomaly).
//
// "Each anomaly has a type, severity, reason, timestamp, associated logs,
// etc." (Section II, Anomaly Storage). These records are produced by the
// stateless parser (kUnparsedLog) and the stateful sequence detector (the
// four Table II types), stored in the anomaly store, and surfaced by the
// dashboard.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.h"

namespace loglens {

enum class AnomalyType {
  kUnparsedLog,               // stateless: no pattern parses the log
  kMissingBeginState,         // Table II type 1
  kMissingEndState,           // Table II type 1
  kMissingIntermediateState,  // Table II type 2
  kOccurrenceViolation,       // Table II type 3
  kDurationViolation,         // Table II type 4
  kUnknownTransition,         // extension: unseen consecutive state pair
  kKeywordAlert,              // extension: severity keyword (stateless)
  kValueOutOfRange,           // extension: KPI outside learned range
  kOpenStateEvicted,          // open event dropped by the memory bound
                              // before reaching an end state
};

std::string_view anomaly_type_name(AnomalyType t);
bool anomaly_type_from_name(std::string_view name, AnomalyType& out);

struct Anomaly {
  AnomalyType type = AnomalyType::kUnparsedLog;
  std::string severity = "medium";  // low / medium / high
  std::string reason;
  int64_t timestamp_ms = -1;   // log time at which the anomaly was detected
  std::string source;          // log source name
  std::string event_id;        // ID-field content (stateful anomalies)
  int automaton_id = -1;       // which automaton's rule fired (-1: stateless)
  std::vector<std::string> logs;  // associated raw log lines
  // Structured facts behind the anomaly (violated bounds, observed values),
  // machine-readable so feedback tooling can turn "this is normal" into a
  // concrete model edit (service/feedback.h).
  Json details = Json(JsonObject{});

  Json to_json() const;
  static StatusOr<Anomaly> from_json(const Json& j);

  friend bool operator==(const Anomaly&, const Anomaly&) = default;
};

}  // namespace loglens
