// Named dataset builders matching the paper's Table III plus the two
// Section VII case studies.
//
//   D1  trace log        16k/16k logs, 2 event types, 21 injected anomalies
//   D2  synthetic        18k/18k logs, 3 event types, 13 injected anomalies
//   D3  storage server   792,176 logs, 301 templates
//   D4  OpenStack        400,000 logs, 3234 templates
//   D5  PCAP             246,500 logs, 243 templates
//   D6  network          1,000,000 logs, 2012 templates
//   SS7 case study       2.7M logs / 3 h, spoofing bursts (994 anomalies)
//   SQL case study       custom app logs, 367 template shapes
//
// `scale` multiplies log/event counts (template counts stay paper-exact) so
// benchmarks can run at laptop scale; scale=1.0 reproduces paper volumes.
#pragma once

#include <string_view>

#include "datagen/dataset.h"
#include "logmine/discoverer.h"

namespace loglens {

Dataset make_d1(double scale = 1.0, uint64_t seed = 11);
Dataset make_d2(double scale = 1.0, uint64_t seed = 22);
Dataset make_d3(double scale = 1.0, uint64_t seed = 33);
Dataset make_d4(double scale = 1.0, uint64_t seed = 44);
Dataset make_d5(double scale = 1.0, uint64_t seed = 55);
Dataset make_d6(double scale = 1.0, uint64_t seed = 66);
Dataset make_ss7(double scale = 1.0, uint64_t seed = 77);
Dataset make_sql(double scale = 1.0, uint64_t seed = 88);

// By name: "D1".."D6", "SS7", "SQL".
Dataset make_dataset(std::string_view name, double scale = 1.0);

// Clustering thresholds tuned per dataset family (see DESIGN.md: within- vs
// between-template distances determine the usable window).
DiscoveryOptions recommended_discovery(std::string_view dataset_name);

}  // namespace loglens
