// Shared log-template rendering for the synthetic generators.
//
// Placeholders: {TS} timestamp (style: "canonical", "iso", "syslog"),
// {ID} / {HOST} caller-supplied strings, {N} random number, {HEX} random
// 8-hex id, {UUID} random uuid-shaped id, {IP} random address.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"

namespace loglens::datagen {

std::string format_ts(int64_t ms, const std::string& style);

struct RenderVars {
  int64_t ts = 0;
  std::string ts_style = "canonical";
  std::string id;
  std::string host;
};

std::string render_template(const std::string& tmpl, const RenderVars& vars,
                            Rng& rng);

}  // namespace loglens::datagen
