// Synthetic dataset containers.
//
// The paper's datasets (Table III) are proprietary or environment-specific;
// per DESIGN.md each is substituted with a seeded synthetic generator that
// reproduces the *shape* the experiment depends on: pattern-set size for the
// parser experiments (D3–D6), ground-truth anomalous sequences for the
// accuracy/heartbeat/model-update experiments (D1, D2), spoofing bursts for
// the SS7 case study, and deeply-nested SQL for the custom-app case study.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace loglens {

struct Dataset {
  std::string name;
  std::vector<std::string> training;
  std::vector<std::string> testing;

  // Ground truth for sequence-anomaly datasets: event ids whose sequences
  // were deliberately corrupted, and the subset whose corruption was a
  // dropped end state (detectable only via heartbeats/expiry).
  std::set<std::string> anomalous_event_ids;
  std::set<std::string> missing_end_event_ids;

  // Event-type index (1-based, = generated automaton group) per anomalous
  // id; used by the Table V model-deletion experiment.
  std::vector<std::pair<std::string, int>> anomaly_event_types;

  size_t injected_anomalies() const { return anomalous_event_ids.size(); }
};

}  // namespace loglens
