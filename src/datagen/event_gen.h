// Event-trace stream generator: interleaved multi-log events with injectable
// sequence anomalies. Drives D1 (trace log), D2 (synthetic), and the SS7
// case study.
//
// An event type is a fixed action sequence (begin, middles, end); each
// action renders one log line from a template. Generated events overlap in
// time, so their logs interleave in the emitted stream exactly the way the
// stateful detector must handle. Anomaly injection corrupts chosen test
// events in one of five ways matching Table II: drop the begin log, drop the
// end log, drop a middle log, repeat a middle log beyond the trained
// maximum, or stretch the event duration beyond the trained maximum.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/dataset.h"

namespace loglens {

// Template placeholders: {TS} timestamp, {ID} event id, {HOST} host name,
// {N} random number, {HEX} random hex id, {IP} random address.
struct EventTypeSpec {
  std::string name;
  std::vector<std::string> actions;  // >= 2: first is begin, last is end
  // Middle actions repeat uniformly in [repeat_min, repeat_max] times.
  int repeat_min = 1;
  int repeat_max = 1;
  // Gap between consecutive logs of the event, in milliseconds.
  int64_t step_ms_min = 50;
  int64_t step_ms_max = 500;
};

enum class InjectKind {
  kMissingBegin,
  kMissingEnd,
  kMissingMiddle,
  kExtraOccurrences,  // repeat a middle action repeat_max + 3 times
  kSlowDuration,      // stretch steps ~10x past the trained maximum
};

struct InjectPlan {
  InjectKind kind;
  size_t event_type;  // index into EventStreamSpec::types
};

struct EventStreamSpec {
  std::vector<EventTypeSpec> types;
  size_t train_events = 1000;
  size_t test_events = 1000;
  std::vector<InjectPlan> injections;  // applied to distinct test events
  uint64_t seed = 1;
  int64_t start_time_ms = 1456218000000;  // 2016/02/23 09:00:00.000
  // Events start at random offsets within a window this many ms wide per
  // phase; larger values mean more interleaving.
  int64_t spread_ms = 60'000;
  std::string timestamp_format = "canonical";  // or "iso", "syslog"
};

// Generates the training and testing streams (time-sorted) plus ground
// truth. Training is always anomaly-free.
Dataset generate_event_stream(const EventStreamSpec& spec,
                              const std::string& dataset_name);

}  // namespace loglens
