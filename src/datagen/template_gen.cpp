#include "datagen/template_gen.h"

#include <array>

#include "datagen/render.h"

namespace loglens {

namespace {

struct Vocab {
  std::vector<std::string> svcs;
  std::vector<std::string> ops;
  std::vector<std::string> objs;
  std::string ts_style;
  std::string code_prefix;
};

Vocab vocab_for(const std::string& flavor) {
  if (flavor == "openstack") {
    return Vocab{
        {"nova", "neutron", "cinder", "glance", "keystone", "swift", "heat",
         "ceilometer", "ironic", "trove", "magnum", "zaqar"},
        {"create", "delete", "attach", "detach", "boot", "suspend", "resume",
         "migrate", "rebuild", "snapshot", "resize", "pause", "unpause",
         "shelve", "unshelve", "evacuate", "lock", "unlock"},
        {"instance", "volume", "port", "network", "image", "flavor",
         "keypair", "router", "subnet", "token", "server", "stack", "alarm",
         "backup", "quota", "secgroup"},
        "iso", "REQ"};
  }
  if (flavor == "pcap") {
    return Vocab{
        {"TCP", "UDP", "ICMP", "ARP", "DNS", "HTTP", "TLS", "DHCP", "NTP"},
        {"SYN", "ACK", "FIN", "RST", "PUSH", "QUERY", "REPLY", "OFFER",
         "REQUEST"},
        {"segment", "datagram", "frame", "packet", "fragment", "stream"},
        "syslog", "PKT"};
  }
  if (flavor == "network") {
    return Vocab{
        {"eth0", "eth1", "bond0", "vlan10", "vlan20", "mgmt0", "lo0", "gre1",
         "tun0", "br0", "swp1", "swp2"},
        {"linkup", "linkdown", "flap", "negotiate", "drop", "forward",
         "learn", "age", "flood", "mirror", "shape", "police", "queue",
         "trap"},
        {"bgp", "ospf", "stp", "lacp", "lldp", "arp", "macsec", "acl", "qos",
         "vrrp", "igmp", "mld"},
        "canonical", "NET"};
  }
  // storage (default)
  return Vocab{
      {"raid", "smart", "nfs", "iscsi", "scrub", "cache", "volume",
       "snapshot"},
      {"read", "write", "flush", "rebuild", "verify", "mount", "unmount",
       "sync", "trim", "alloc", "free", "migrate"},
      {"block", "stripe", "inode", "extent", "lun", "chunk", "segment",
       "journal", "bitmap", "superblock"},
      "canonical", "STG"};
}

// SQL templates (Table VI shape). Each query shape is a base predicate plus
// a template-specific tail of AND-clause fragments and query hints, sized so
// template i has a *unique token length*. Table VI's real lines range from
// one short SELECT to enormous nested WHERE clauses; unique lengths mirror
// that heterogeneity and make level-0 clustering recover exactly one
// pattern per query shape (clusters are bucketed by token count).
std::vector<std::string> make_sql_templates(size_t n) {
  static constexpr std::array<const char*, 20> kTables = {
      "tblFormControl", "tblContent",   "tblFormData",  "tblFormInstance",
      "tblPerm",        "tblMembership", "tblAudit",     "tblSession",
      "tblWorkflow",    "tblDocument",  "tblRevision",  "tblAttachment",
      "tblUser",        "tblGroup",     "tblTemplate",  "tblIndex",
      "tblQueue",       "tblLock",      "tblArchive",   "tblMeta"};
  static constexpr std::array<const char*, 4> kOps = {"SELECT", "UPDATE",
                                                      "DELETE", "COUNT"};
  static constexpr std::array<const char*, 5> kFuncs = {
      "GetFormControl", "GetObjects", "GetPermissions", "RunQuery",
      "SyncIndex"};
  // {fragment text, token count}
  static constexpr std::array<std::pair<const char*, size_t>, 9> kFragments = {{
      {" AND nType!={N}", 2},
      {" AND oID IN (SELECT oID FROM tblFormData WHERE oFCID='{UUID}')", 9},
      {" AND fRead={N}", 2},
      {" AND (tblFormData.sValue=N'{UUID}')", 2},
      {" AND oGrantID IN (SELECT oParent FROM tblMembership WHERE "
       "oChild='{UUID}')",
       9},
      {" AND (nSubType!={N} AND nSubType!={N})", 4},
      {" AND oID IN (SELECT oFORMINSTID FROM tblFormInstance WHERE "
       "oFORMID='{UUID}')",
       9},
      {" AND (tblFormData.tValue IS NOT NULL)", 5},
      {" AND nVersion!={N}", 2},
  }};
  static constexpr std::array<const char*, 3> kHints = {
      " WITH(NOLOCK)", " OPTION(RECOMPILE)", " FORCESEEK"};

  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const char* table = kTables[i % kTables.size()];
    const char* op = kOps[(i / kTables.size()) % kOps.size()];
    const char* func = kFuncs[(i / 80) % kFuncs.size()];
    // Base: 9 tokens.
    std::string line = "{TS} (0): " + std::string(func) + "():" +
                       std::to_string(i) + " SQL " + op + " TABLE: " + table +
                       " WHERE: " + table + ".oPID='{UUID}'";
    // Tail: exactly i extra tokens — every template has a distinct length.
    size_t remaining = i;
    size_t frag = i;  // rotate the starting fragment per template
    while (remaining > 0) {
      const auto& [text, tokens] = kFragments[frag++ % kFragments.size()];
      if (tokens <= remaining) {
        line += text;
        remaining -= tokens;
      } else {
        line += kHints[remaining % kHints.size()];
        remaining -= 1;
      }
    }
    out.push_back(std::move(line));
  }
  return out;
}

}  // namespace

std::vector<std::string> make_templates(const TemplateCorpusSpec& spec) {
  if (spec.flavor == "sql") return make_sql_templates(spec.num_templates);

  Vocab v = vocab_for(spec.flavor);
  std::vector<std::string> out;
  out.reserve(spec.num_templates);
  const size_t a = v.svcs.size();
  const size_t b = v.ops.size();
  const size_t c = v.objs.size();
  for (size_t i = 0; i < spec.num_templates; ++i) {
    const std::string& svc = v.svcs[i % a];
    const std::string& op = v.ops[(i / a) % b];
    const std::string& obj = v.objs[(i / (a * b)) % c];
    // Separation guarantees (DESIGN.md): the code and tid literals are
    // unique per template; the emitting host is *fixed per template* (a
    // service instance lives on one node), so no random position can
    // coincide between two templates' logs; and the i%29 trailing option
    // tokens give same-length template pairs (i == j mod 29) a tail of
    // differing literals. Net effect: any two same-length templates differ
    // in at least three literal tokens, deterministically — and the token
    // counts spread log signatures over ~100 index buckets, as genuinely
    // heterogeneous logs do.
    std::string host = "node-" + std::to_string(i * 19 % 256);
    std::string code = "code=" + v.code_prefix + "-" + std::to_string(1000 + i);
    std::string tid = "tid=" + std::to_string(i * 13 + 7);
    std::string line;
    switch (i % 4) {
      case 0:
        line = "{TS} " + host + " " + svc + " " + op + " " + obj + " " +
               code + " " + tid + " id={HEX} latency={N}";
        break;
      case 1:
        line = "{TS} " + host + " " + svc + " " + op + " " + obj + " " +
               code + " " + tid + " from {IP} bytes={N}";
        break;
      case 2:
        line = "{TS} " + host + " " + svc + " " + op + " " + obj + " " +
               code + " " + tid + " id={HEX} from {IP} bytes={N} retries={N}";
        break;
      default:
        line = "{TS} " + host + " " + svc + " " + op + " " + code + " " +
               tid + " " + obj + " queued depth={N}";
        break;
    }
    for (size_t k = 0; k < i % 29; ++k) {
      line += " opt" + std::to_string(k) + "=" +
              std::to_string((i * 31 + k * 37) % 997);
    }
    out.push_back(std::move(line));
  }
  return out;
}

Dataset generate_template_corpus(const TemplateCorpusSpec& spec,
                                 const std::string& dataset_name) {
  Dataset ds;
  ds.name = dataset_name;
  Rng rng(spec.seed);
  std::vector<std::string> templates = make_templates(spec);
  const std::string ts_style =
      spec.flavor == "sql" ? "canonical" : vocab_for(spec.flavor).ts_style;

  auto emit = [&](size_t count, std::vector<std::string>& out, int64_t t0) {
    out.reserve(count);
    int64_t ts = t0;
    for (size_t j = 0; j < count; ++j) {
      // Every template appears at least three times early, so each cluster
      // has enough instances to generalize its variable positions (a
      // singleton cluster would freeze random values as literals); after
      // that, skewed random selection.
      size_t t;
      if (j < std::min(count, templates.size() * 3)) {
        t = j % templates.size();
      } else {
        double u = rng.uniform();
        t = static_cast<size_t>(u * u * static_cast<double>(templates.size()));
        if (t >= templates.size()) t = templates.size() - 1;
      }
      datagen::RenderVars vars;
      vars.ts = ts;
      vars.ts_style = ts_style;
      out.push_back(datagen::render_template(templates[t], vars, rng));
      ts += spec.step_ms;
    }
  };

  emit(spec.train_logs, ds.training, spec.start_time_ms);
  emit(spec.test_logs, ds.testing,
       spec.start_time_ms + static_cast<int64_t>(spec.train_logs) * spec.step_ms);
  return ds;
}

}  // namespace loglens
