#include "datagen/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "datagen/event_gen.h"
#include "datagen/render.h"
#include "datagen/template_gen.h"

namespace loglens {

namespace {

size_t scaled(size_t count, double scale, size_t floor_value = 1) {
  auto v = static_cast<size_t>(std::llround(static_cast<double>(count) * scale));
  return std::max(v, floor_value);
}

// Anomaly plans for D1: 13 in event type 1 (including the single
// missing-end that only heartbeats can catch), 8 in event type 2. Deleting
// automaton 2 must leave 13 anomalies (Table V).
std::vector<InjectPlan> d1_injections() {
  std::vector<InjectPlan> plans;
  auto add = [&plans](InjectKind kind, size_t type, int count) {
    for (int i = 0; i < count; ++i) plans.push_back({kind, type});
  };
  add(InjectKind::kMissingEnd, 0, 1);
  add(InjectKind::kMissingBegin, 0, 3);
  add(InjectKind::kMissingMiddle, 0, 4);
  add(InjectKind::kExtraOccurrences, 0, 3);
  add(InjectKind::kSlowDuration, 0, 2);  // 13 in type 1
  add(InjectKind::kMissingBegin, 1, 2);
  add(InjectKind::kMissingMiddle, 1, 3);
  add(InjectKind::kExtraOccurrences, 1, 2);
  add(InjectKind::kSlowDuration, 1, 1);  // 8 in type 2
  return plans;
}

// D2: 13 anomalies over three event types (5/4/4); one missing-end in each
// type (3 total — the Figure 5 without-heartbeat gap); deleting automaton 3
// leaves 9 (Table V).
std::vector<InjectPlan> d2_injections() {
  std::vector<InjectPlan> plans;
  auto add = [&plans](InjectKind kind, size_t type, int count) {
    for (int i = 0; i < count; ++i) plans.push_back({kind, type});
  };
  add(InjectKind::kMissingEnd, 0, 1);
  add(InjectKind::kMissingMiddle, 0, 2);
  add(InjectKind::kExtraOccurrences, 0, 1);
  add(InjectKind::kSlowDuration, 0, 1);  // 5 in type 1
  add(InjectKind::kMissingEnd, 1, 1);
  add(InjectKind::kMissingBegin, 1, 2);
  add(InjectKind::kMissingMiddle, 1, 1);  // 4 in type 2
  add(InjectKind::kMissingEnd, 2, 1);
  add(InjectKind::kMissingMiddle, 2, 2);
  add(InjectKind::kExtraOccurrences, 2, 1);  // 4 in type 3
  return plans;
}

}  // namespace

Dataset make_d1(double scale, uint64_t seed) {
  EventStreamSpec spec;
  spec.seed = seed;
  spec.timestamp_format = "canonical";
  // Type 1: a four-action request workflow (avg ~5.5 logs/event).
  // Actions carry distinct parameter lists (distinct token counts), as real
  // workflow logs do; this also keeps clustering deterministic (see
  // DESIGN.md on within- vs between-template distance margins).
  spec.types.push_back(EventTypeSpec{
      "request",
      {"{TS} {HOST} RequestStart job {ID} from {IP}",
       "{TS} {HOST} SchedulerAssign job {ID} queue q{N} weight {N}",
       "{TS} {HOST} WorkerExec job {ID} step {N} cpu {N} mem {N}",
       "{TS} {HOST} RequestDone job {ID} status {N} total {N} rc {N} bill {N}"},
      /*repeat_min=*/1, /*repeat_max=*/2, 200, 200});
  // Type 2: a three-action storage transaction.
  spec.types.push_back(EventTypeSpec{
      "txn",
      {"{TS} {HOST} TxnBegin txn {ID} table t{N} iso {N}",
       "{TS} {HOST} TxnApply txn {ID} rows {N} bytes {N} delta {N}",
       "{TS} {HOST} TxnCommit txn {ID} bytes {N} lsn {N} sync {N} took {N}"},
      1, 2, 250, 250});
  // ~4.7 logs/event across the mix; 3400 events/phase gives ~16k logs.
  spec.train_events = scaled(3400, scale, 60);
  spec.test_events = scaled(3400, scale, 60);
  spec.spread_ms = 600'000;
  spec.injections = d1_injections();
  return generate_event_stream(spec, "D1");
}

Dataset make_d2(double scale, uint64_t seed) {
  EventStreamSpec spec;
  spec.seed = seed;
  spec.timestamp_format = "iso";
  spec.types.push_back(EventTypeSpec{
      "provision",
      {"{TS} {HOST} VmCreate vm {ID} image img{N}",
       "{TS} {HOST} VmSchedule vm {ID} zone z{N} rack {N}",
       "{TS} {HOST} VmNetwork vm {ID} port {N} mac {HEX} mtu {N}",
       "{TS} {HOST} VmActive vm {ID} uptime {N} vcpus {N} ram {N} disk {N}"},
      1, 2, 150, 150});
  spec.types.push_back(EventTypeSpec{
      "auth",
      {"{TS} {HOST} AuthRequest session {ID} client {IP} proto {N}",
       "{TS} {HOST} AuthChallenge session {ID} nonce {HEX} round {N} cipher {N}",
       "{TS} {HOST} AuthGranted session {ID} ttl {N} scope {N} token {HEX} renew {N}"},
      1, 2, 180, 180});
  spec.types.push_back(EventTypeSpec{
      "backup",
      {"{TS} {HOST} BackupStart set {ID} target {IP}",
       "{TS} {HOST} BackupChunk set {ID} seq {N} bytes {N}",
       "{TS} {HOST} BackupVerify set {ID} crc {HEX} chunks {N} skew {N}",
       "{TS} {HOST} BackupEnd set {ID} total {N} files {N} secs {N} rate {N}"},
      1, 3, 120, 120});
  spec.train_events = scaled(3900, scale, 90);
  spec.test_events = scaled(3900, scale, 90);
  spec.spread_ms = 600'000;
  spec.injections = d2_injections();
  return generate_event_stream(spec, "D2");
}

namespace {

Dataset make_corpus(const char* name, const char* flavor, size_t templates,
                    size_t logs, double scale, uint64_t seed) {
  TemplateCorpusSpec spec;
  spec.flavor = flavor;
  spec.num_templates = templates;
  spec.train_logs = std::max(scaled(logs, scale), templates * 3);
  spec.test_logs = spec.train_logs;
  spec.seed = seed;
  return generate_template_corpus(spec, name);
}

}  // namespace

Dataset make_d3(double scale, uint64_t seed) {
  return make_corpus("D3", "storage", 301, 792176, scale, seed);
}
Dataset make_d4(double scale, uint64_t seed) {
  return make_corpus("D4", "openstack", 3234, 400000, scale, seed);
}
Dataset make_d5(double scale, uint64_t seed) {
  return make_corpus("D5", "pcap", 243, 246500, scale, seed);
}
Dataset make_d6(double scale, uint64_t seed) {
  return make_corpus("D6", "network", 2012, 1000000, scale, seed);
}

Dataset make_ss7(double scale, uint64_t seed) {
  // 2.7M logs over 3 hours; 3 logs per MAP dialogue => ~900k dialogues,
  // 2/3 training. Spoofing attacks: bursts of dialogues that stop after
  // InvokeSendAuthenticationInfo (no InvokeUpdateLocation), 994 in total,
  // concentrated in four temporal clusters of the final hour.
  Dataset ds;
  ds.name = "SS7";
  Rng rng(seed);

  const size_t train_dialogues = scaled(600000, scale, 200);
  const size_t test_dialogues = scaled(300000, scale, 120);
  const size_t attacks = std::min(scaled(994, scale, 8),
                                  test_dialogues / 2);
  const int64_t t0 = 1462788000000;  // 2016/05/09 10:00:00.000
  const int64_t train_window = 2 * 3600'000;
  const int64_t test_window = 1 * 3600'000;

  // Each MAP operation carries its own parameter list, so the three log
  // shapes have distinct token counts (7/9/11) and can never cluster
  // together even under coincidental timestamp/STP matches.
  const char* kPurge = "{TS} stp-{HOST} InvokePurgeMs imsi {ID} gt {N}";
  const char* kAuth =
      "{TS} stp-{HOST} InvokeSendAuthenticationInfo imsi {ID} vlr {N} "
      "rand {HEX}";
  const char* kUpdate =
      "{TS} stp-{HOST} InvokeUpdateLocation imsi {ID} msc {N} lac {N} "
      "tmsi {HEX}";

  struct Line {
    int64_t ts;
    uint64_t order;
    std::string text;
  };
  uint64_t order = 0;

  auto emit_dialogue = [&](std::vector<Line>& out, int64_t start,
                           bool spoofed) {
    std::string imsi =
        "404685" + std::to_string(100000000 + rng.below(899999999));
    std::string stp = std::to_string(rng.below(8));
    int64_t ts = start;
    for (const char* tmpl : {kPurge, kAuth, kUpdate}) {
      if (spoofed && tmpl == kUpdate) break;
      datagen::RenderVars vars;
      vars.ts = ts;
      vars.id = imsi;
      vars.host = stp;
      out.push_back({ts, order++, datagen::render_template(tmpl, vars, rng)});
      ts += rng.range(1, 45) * 20;
    }
    if (spoofed) {
      ds.anomalous_event_ids.insert(imsi);
      ds.missing_end_event_ids.insert(imsi);
      ds.anomaly_event_types.emplace_back(imsi, 1);
    }
  };

  std::vector<Line> train_lines;
  train_lines.reserve(train_dialogues * 3);
  for (size_t i = 0; i < train_dialogues; ++i) {
    emit_dialogue(train_lines, t0 + static_cast<int64_t>(rng.below(
                                        static_cast<uint64_t>(train_window))),
                  false);
  }

  std::vector<Line> test_lines;
  test_lines.reserve(test_dialogues * 3 + attacks * 2);
  const int64_t t1 = t0 + train_window;
  for (size_t i = 0; i < test_dialogues; ++i) {
    emit_dialogue(test_lines, t1 + static_cast<int64_t>(rng.below(
                                       static_cast<uint64_t>(test_window))),
                  false);
  }
  // Four attack clusters, each a tight burst.
  const int64_t cluster_centers[4] = {t1 + 10 * 60'000, t1 + 24 * 60'000,
                                      t1 + 41 * 60'000, t1 + 52 * 60'000};
  for (size_t i = 0; i < attacks; ++i) {
    int64_t center = cluster_centers[i % 4];
    int64_t jitter = rng.range(-90'000, 90'000);
    emit_dialogue(test_lines, center + jitter, true);
  }

  auto finish = [](std::vector<Line>& lines, std::vector<std::string>& out) {
    std::stable_sort(lines.begin(), lines.end(),
                     [](const Line& a, const Line& b) {
                       return a.ts != b.ts ? a.ts < b.ts : a.order < b.order;
                     });
    out.reserve(lines.size());
    for (auto& l : lines) out.push_back(std::move(l.text));
  };
  finish(train_lines, ds.training);
  finish(test_lines, ds.testing);
  return ds;
}

Dataset make_sql(double scale, uint64_t seed) {
  TemplateCorpusSpec spec;
  spec.flavor = "sql";
  spec.num_templates = 367;
  spec.train_logs = std::max(scaled(80000, scale), spec.num_templates * 3);
  spec.test_logs = spec.train_logs;
  spec.seed = seed;
  return generate_template_corpus(spec, "SQL");
}

Dataset make_dataset(std::string_view name, double scale) {
  if (name == "D1") return make_d1(scale);
  if (name == "D2") return make_d2(scale);
  if (name == "D3") return make_d3(scale);
  if (name == "D4") return make_d4(scale);
  if (name == "D5") return make_d5(scale);
  if (name == "D6") return make_d6(scale);
  if (name == "SS7") return make_ss7(scale);
  return make_sql(scale);
}

DiscoveryOptions recommended_discovery(std::string_view dataset_name) {
  DiscoveryOptions opts;
  if (dataset_name == "SQL") {
    // Long SQL lines share vocabulary; a tighter threshold keeps the 367
    // length-distinct shapes separate.
    opts.max_dist = 0.25;
  } else if (dataset_name == "D1" || dataset_name == "D2" ||
             dataset_name == "SS7") {
    // Event-trace templates: within-template distance up to ~0.29 (four
    // variable positions out of seven), between-template >= 0.36.
    opts.max_dist = 0.3;
  } else {
    // Template corpora: within-template distance <= 0.25, between-template
    // >= 0.278 even under a coincidental host collision.
    opts.max_dist = 0.27;
  }
  return opts;
}

}  // namespace loglens
