#include "datagen/render.h"

#include <cstdio>

#include "common/strings.h"
#include "common/time.h"

namespace loglens::datagen {

std::string format_ts(int64_t ms, const std::string& style) {
  if (style == "iso") {
    CivilTime t = from_epoch_millis(ms);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03d",
                  t.year, t.month, t.day, t.hour, t.minute, t.second,
                  t.millis);
    return buf;
  }
  if (style == "syslog") {
    static constexpr const char* kMon[] = {"Jan", "Feb", "Mar", "Apr", "May",
                                           "Jun", "Jul", "Aug", "Sep", "Oct",
                                           "Nov", "Dec"};
    CivilTime t = from_epoch_millis(ms);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%s %d %02d:%02d:%02d", kMon[t.month - 1],
                  t.day, t.hour, t.minute, t.second);
    return buf;
  }
  return format_canonical(ms);
}

std::string render_template(const std::string& tmpl, const RenderVars& vars,
                            Rng& rng) {
  std::string out = tmpl;
  out = replace_all(out, "{TS}", format_ts(vars.ts, vars.ts_style));
  out = replace_all(out, "{ID}", vars.id);
  out = replace_all(out, "{HOST}", vars.host);
  auto replace_each = [&out](std::string_view needle, auto&& make) {
    size_t pos;
    while ((pos = out.find(needle)) != std::string::npos) {
      out = out.substr(0, pos) + make() + out.substr(pos + needle.size());
    }
  };
  replace_each("{UUID}", [&rng] {
    return rng.hex(8) + "-" + rng.hex(4) + "-" + rng.hex(4) + "-" +
           rng.hex(4) + "-" + rng.hex(12);
  });
  replace_each("{HEX}", [&rng] { return rng.hex(8); });
  replace_each("{N}", [&rng] { return std::to_string(rng.below(1000000)); });
  replace_each("{IP}", [&rng] {
    return "10." + std::to_string(rng.below(256)) + "." +
           std::to_string(rng.below(256)) + "." +
           std::to_string(rng.below(254) + 1);
  });
  return out;
}

}  // namespace loglens::datagen
