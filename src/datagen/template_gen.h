// Template-corpus generator: streams drawn from a fixed set of distinct log
// templates. Drives the parser-scale datasets (D3 storage server, D4
// OpenStack, D5 PCAP, D6 network) and the SQL custom-application case study.
//
// Templates are built from flavor-specific vocabularies via mixed-radix
// indexing plus a per-template event-code literal, which guarantees any two
// templates differ in at least two literal tokens — enough separation for
// LogMine clustering to recover exactly one pattern per template.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/dataset.h"

namespace loglens {

struct TemplateCorpusSpec {
  size_t num_templates = 100;
  size_t train_logs = 10000;
  size_t test_logs = 10000;
  uint64_t seed = 1;
  // "storage" | "openstack" | "pcap" | "network" | "sql"
  std::string flavor = "storage";
  int64_t start_time_ms = 1456218000000;
  int64_t step_ms = 25;  // time between consecutive logs
};

// The template strings themselves (exposed for tests).
std::vector<std::string> make_templates(const TemplateCorpusSpec& spec);

// Training and testing streams; testing reuses the same templates (the
// paper's Table IV sanity setup: train == test shape, zero anomalies
// expected).
Dataset generate_template_corpus(const TemplateCorpusSpec& spec,
                                 const std::string& dataset_name);

}  // namespace loglens
