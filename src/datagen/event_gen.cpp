#include "datagen/event_gen.h"

#include <algorithm>

#include "datagen/render.h"

namespace loglens {

namespace {

struct Line {
  int64_t ts;
  uint64_t order;  // stable tie-break
  std::string text;
};

}  // namespace

Dataset generate_event_stream(const EventStreamSpec& spec,
                              const std::string& dataset_name) {
  Dataset ds;
  ds.name = dataset_name;
  Rng rng(spec.seed);

  const size_t num_types = spec.types.size();

  // Decide which test events get which injection: event i has type
  // i % num_types; injections for type t are spread evenly over that type's
  // test events.
  std::vector<std::vector<InjectKind>> plans_by_type(num_types);
  for (const auto& plan : spec.injections) {
    plans_by_type[plan.event_type % num_types].push_back(plan.kind);
  }
  // type -> ordinal-of-type -> injection kind.
  std::vector<std::vector<std::pair<size_t, InjectKind>>> schedule(num_types);
  for (size_t t = 0; t < num_types; ++t) {
    size_t events_of_type =
        spec.test_events / num_types + (t < spec.test_events % num_types);
    const auto& plans = plans_by_type[t];
    for (size_t j = 0; j < plans.size(); ++j) {
      size_t target =
          plans.size() == 0
              ? 0
              : (j * events_of_type) / plans.size() + (events_of_type > 0 ? 0 : 0);
      if (events_of_type > 0) target = std::min(target, events_of_type - 1);
      schedule[t].emplace_back(target, plans[j]);
    }
  }

  uint64_t order = 0;
  auto generate_phase = [&](bool testing, size_t num_events,
                            int64_t phase_start,
                            std::vector<std::string>& out_lines) {
    std::vector<Line> lines;
    std::vector<size_t> ordinal(num_types, 0);
    const int64_t window =
        std::max<int64_t>(spec.spread_ms,
                          static_cast<int64_t>(num_events) * 20);
    for (size_t e = 0; e < num_events; ++e) {
      size_t t = e % num_types;
      const EventTypeSpec& type = spec.types[t];
      size_t ord = ordinal[t]++;

      InjectKind inject = InjectKind::kMissingBegin;
      bool injected = false;
      if (testing) {
        for (const auto& [target, kind] : schedule[t]) {
          if (target == ord) {
            inject = kind;
            injected = true;
            break;
          }
        }
      }

      std::string id = "ev-" + rng.hex(10);
      std::string host = "host-" + std::to_string(rng.below(24));
      int64_t ts = phase_start + static_cast<int64_t>(rng.below(
                                     static_cast<uint64_t>(window)));

      // Build the action list for this event instance.
      struct Step {
        size_t action;
        bool drop = false;
      };
      std::vector<size_t> actions;
      actions.push_back(0);  // begin
      for (size_t a = 1; a + 1 < type.actions.size(); ++a) {
        int repeats =
            static_cast<int>(rng.range(type.repeat_min, type.repeat_max));
        for (int k = 0; k < repeats; ++k) actions.push_back(a);
      }
      actions.push_back(type.actions.size() - 1);  // end

      int64_t step_scale = 1;
      if (injected) {
        switch (inject) {
          case InjectKind::kMissingBegin:
            actions.erase(actions.begin());
            break;
          case InjectKind::kMissingEnd:
            actions.pop_back();
            break;
          case InjectKind::kMissingMiddle: {
            // Remove every occurrence of the first middle action.
            size_t victim = 1;
            std::erase(actions, victim);
            break;
          }
          case InjectKind::kExtraOccurrences: {
            size_t victim = 1;
            for (int k = 0; k < type.repeat_max + 3; ++k) {
              actions.insert(actions.begin() + 1, victim);
            }
            break;
          }
          case InjectKind::kSlowDuration:
            step_scale = 12;
            break;
        }
        ds.anomalous_event_ids.insert(id);
        ds.anomaly_event_types.emplace_back(id, static_cast<int>(t) + 1);
        if (inject == InjectKind::kMissingEnd) {
          ds.missing_end_event_ids.insert(id);
        }
      }

      for (size_t s = 0; s < actions.size(); ++s) {
        const std::string& tmpl = type.actions[actions[s]];
        datagen::RenderVars vars;
        vars.ts = ts;
        vars.ts_style = spec.timestamp_format;
        vars.id = id;
        vars.host = host;
        lines.push_back({ts, order++, datagen::render_template(tmpl, vars, rng)});
        ts += step_scale * rng.range(type.step_ms_min, type.step_ms_max);
      }
    }
    std::stable_sort(lines.begin(), lines.end(), [](const Line& a,
                                                    const Line& b) {
      return a.ts != b.ts ? a.ts < b.ts : a.order < b.order;
    });
    out_lines.reserve(lines.size());
    for (auto& l : lines) out_lines.push_back(std::move(l.text));
  };

  generate_phase(false, spec.train_events, spec.start_time_ms, ds.training);
  // The test phase starts after the training window.
  int64_t test_start =
      spec.start_time_ms +
      std::max<int64_t>(spec.spread_ms,
                        static_cast<int64_t>(spec.train_events) * 20) +
      3'600'000;
  generate_phase(true, spec.test_events, test_start, ds.testing);
  return ds;
}

}  // namespace loglens
