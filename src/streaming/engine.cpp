#include "streaming/engine.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/hash.h"
#include "metrics/timer.h"

namespace loglens {

StreamEngine::StreamEngine(EngineOptions options, const TaskFactory& factory)
    : options_(std::move(options)),
      pool_(options_.workers) {
  if (options_.partitions == 0) options_.partitions = 1;
  if (!options_.partitioner) {
    options_.partitioner = [](const Message& m, size_t n) {
      return m.key.empty() ? 0 : static_cast<size_t>(fnv1a(m.key) % n);
    };
  }
  tasks_.reserve(options_.partitions);
  for (size_t p = 0; p < options_.partitions; ++p) {
    tasks_.push_back(factory(p));
  }

  // Resolve metric handles once; run_batch only touches atomics.
  registry_ = &registry_or_global(options_.metrics);
  MetricLabels stage{{"stage", options_.stage}};
  batches_total_ = &registry_->counter("loglens_engine_batches_total", stage,
                                       "Micro-batches executed");
  records_total_ = &registry_->counter("loglens_engine_records_total", stage,
                                       "Input messages routed to partitions");
  outputs_total_ = &registry_->counter("loglens_engine_outputs_total", stage,
                                       "Messages emitted by partition tasks");
  control_ops_total_ =
      &registry_->counter("loglens_engine_control_ops_total", stage,
                          "Control ops (rebroadcasts etc.) applied");
  task_retries_total_ =
      &registry_->counter("loglens_engine_task_retries_total", stage,
                          "Partition task attempts that were retried");
  dead_letters_total_ = &registry_->counter(
      "loglens_engine_dead_letter_records_total", stage,
      "Messages routed to the dead-letter channel (poison)");
  batch_duration_us_ =
      &registry_->histogram("loglens_engine_batch_duration_us", stage,
                            "Wall time of the parallel section per batch");
  batch_skew_us_ = &registry_->histogram(
      "loglens_engine_batch_skew_us", stage,
      "Per-batch max-min partition task time (load skew)");
  barrier_wait_us_ = &registry_->histogram(
      "loglens_engine_barrier_wait_us", stage,
      "Time a finished partition waited at the end-of-batch barrier");
  partition_records_.reserve(options_.partitions);
  partition_task_us_.reserve(options_.partitions);
  for (size_t p = 0; p < options_.partitions; ++p) {
    MetricLabels labels{{"partition", std::to_string(p)},
                        {"stage", options_.stage}};
    partition_records_.push_back(
        &registry_->counter("loglens_engine_partition_records_total", labels,
                            "Messages processed per partition"));
    partition_task_us_.push_back(
        &registry_->histogram("loglens_engine_partition_task_us", labels,
                              "Per-partition task time per batch"));
  }
}

void StreamEngine::enqueue_control(std::function<void()> op) {
  RankedMutexLock lock(control_mu_);
  pending_controls_.push_back(std::move(op));
}

void StreamEngine::run_partition(size_t p, std::vector<Message>& input,
                                 TaskContext& ctx,
                                 PartitionOutcome& outcome) {
  auto task_start = std::chrono::steady_clock::now();
  // Retries `fn` (optionally preceded by an injected fault at `site`) with
  // capped exponential backoff; false when the attempt budget is spent.
  auto guarded = [&](const char* site, auto&& fn) {
    for (size_t attempt = 1;; ++attempt) {
      try {
        if (options_.faults != nullptr) options_.faults->hit(site);
        fn();
        return true;
      } catch (const std::exception&) {
        if (attempt >= options_.task_max_attempts) return false;
        ++outcome.retries;
        int64_t ms = std::min(options_.retry_cap_ms,
                              options_.retry_base_ms
                                  << std::min<size_t>(attempt - 1, 20));
        if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
    }
  };

  if (!guarded(kFaultSiteTaskStart,
               [&] { tasks_[p]->on_batch_start(ctx); })) {
    // The task cannot even open the batch: dead-letter the whole partition
    // batch rather than stall the stage. (The vector keeps its size; the
    // post-barrier metrics loop only reads sizes.)
    for (auto& m : input) outcome.dead_letters.push_back(std::move(m));
  } else {
    for (Message& m : input) {
      // A message that keeps throwing is poison: route it to the dead
      // letters and move on. Note the at-least-once caveat — a *real* throw
      // from inside process() may leave a partial state mutation behind;
      // the detector task's dedup guard and idempotent parser make the
      // retry safe (docs/FAULTS.md).
      if (!guarded(kFaultSiteTaskProcess,
                   [&] { tasks_[p]->process(m, ctx); })) {
        outcome.dead_letters.push_back(std::move(m));
      }
    }
    if (!guarded(kFaultSiteTaskFinish,
                 [&] { tasks_[p]->on_batch_end(ctx); })) {
      // The task may now hold half-synced state; escalate to the job level
      // (fatal batch) so the supervisor can restore from a checkpoint.
      outcome.fatal = true;
    }
  }
  outcome.task_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - task_start)
          .count());
}

BatchResult StreamEngine::run_batch(std::vector<Message> input) {
  RankedMutexLock run_lock(run_mu_);
  BatchResult result;
  result.batch_number =
      batch_number_.fetch_add(1, std::memory_order_relaxed) + 1;
  result.input_records = input.size();

  // Control operations land between micro-batches, serialized by run_mu_.
  // The queue is swapped out and drained *outside* control_mu_: an op that
  // calls back into enqueue_control (a model instruction scheduling a
  // follow-up rebroadcast) must not deadlock on the queue lock. Ops that
  // land during the drain simply wait for the next batch.
  {
    std::vector<std::function<void()>> ops;
    {
      RankedMutexLock lock(control_mu_);
      ops.swap(pending_controls_);
    }
    for (auto& op : ops) {
      op();
      ++result.control_ops_applied;
    }
  }

  // Route. Heartbeats are duplicated to every partition (custom
  // partitioner); everything else follows the configured partitioner.
  const size_t n = options_.partitions;
  std::vector<std::vector<Message>> per_partition(n);
  for (auto& m : input) {
    if (m.tag == kTagHeartbeat) {
      for (size_t p = 0; p < n; ++p) per_partition[p].push_back(m);
    } else {
      size_t p = options_.partitioner(m, n) % n;
      per_partition[p].push_back(std::move(m));
    }
  }

  // Parallel section with end-of-batch barrier. Each worker stamps its own
  // slot of `task_us` (no contention); histograms are fed after the barrier.
  std::vector<TaskContext> contexts;
  contexts.reserve(n);
  for (size_t p = 0; p < n; ++p) {
    contexts.emplace_back(p, result.batch_number);
  }
  std::vector<PartitionOutcome> outcomes(n);
  const uint64_t span_start = steady_now_us();
  auto start = std::chrono::steady_clock::now();
  for (size_t p = 0; p < n; ++p) {
    pool_.submit([this, p, &per_partition, &contexts, &outcomes] {
      run_partition(p, per_partition[p], contexts[p], outcomes[p]);
    });
  }
  pool_.wait_idle();
  auto end = std::chrono::steady_clock::now();
  result.elapsed_ms =
      std::chrono::duration<double, std::milli>(end - start).count();

  const auto elapsed_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());
  batches_total_->inc();
  records_total_->inc(result.input_records);
  control_ops_total_->inc(result.control_ops_applied);
  batch_duration_us_->record(elapsed_us);
  uint64_t min_task = UINT64_MAX, max_task = 0;
  bool fatal = false;
  for (size_t p = 0; p < n; ++p) {
    const uint64_t task_us = outcomes[p].task_us;
    partition_records_[p]->inc(per_partition[p].size());
    partition_task_us_[p]->record(task_us);
    barrier_wait_us_->record(elapsed_us > task_us ? elapsed_us - task_us : 0);
    min_task = std::min(min_task, task_us);
    max_task = std::max(max_task, task_us);
    result.task_retries += outcomes[p].retries;
    fatal = fatal || outcomes[p].fatal;
    for (auto& m : outcomes[p].dead_letters) {
      result.dead_letters.push_back(std::move(m));
    }
  }
  batch_skew_us_->record(max_task - min_task);
  task_retries_total_->inc(result.task_retries);
  dead_letters_total_->inc(result.dead_letters.size());
  registry_->record_span(options_.stage + ".batch", span_start, elapsed_us);
  if (fatal) {
    throw FaultError("stage '" + options_.stage +
                     "' failed a batch: partition task did not finish after " +
                     std::to_string(options_.task_max_attempts) + " attempts");
  }

  size_t total_outputs = 0;
  for (auto& ctx : contexts) total_outputs += ctx.outputs().size();
  outputs_total_->inc(total_outputs);
  if (n == 1) {
    result.outputs = contexts.front().take_outputs();
  } else {
    result.outputs.reserve(total_outputs);
    for (auto& ctx : contexts) {
      auto outs = ctx.take_outputs();
      result.outputs.insert(result.outputs.end(),
                            std::make_move_iterator(outs.begin()),
                            std::make_move_iterator(outs.end()));
    }
  }
  return result;
}

}  // namespace loglens
