#include "streaming/engine.h"

#include <chrono>

#include "common/hash.h"

namespace loglens {

StreamEngine::StreamEngine(EngineOptions options, const TaskFactory& factory)
    : options_(std::move(options)),
      pool_(options_.workers) {
  if (options_.partitions == 0) options_.partitions = 1;
  if (!options_.partitioner) {
    options_.partitioner = [](const Message& m, size_t n) {
      return m.key.empty() ? 0 : static_cast<size_t>(fnv1a(m.key) % n);
    };
  }
  tasks_.reserve(options_.partitions);
  for (size_t p = 0; p < options_.partitions; ++p) {
    tasks_.push_back(factory(p));
  }
}

void StreamEngine::enqueue_control(std::function<void()> op) {
  std::lock_guard lock(control_mu_);
  pending_controls_.push_back(std::move(op));
}

BatchResult StreamEngine::run_batch(std::vector<Message> input) {
  std::lock_guard run_lock(run_mu_);
  BatchResult result;
  result.batch_number = ++batch_number_;
  result.input_records = input.size();

  // Control operations land between micro-batches, serialized.
  {
    std::lock_guard lock(control_mu_);
    for (auto& op : pending_controls_) {
      op();
      ++result.control_ops_applied;
    }
    pending_controls_.clear();
  }

  // Route. Heartbeats are duplicated to every partition (custom
  // partitioner); everything else follows the configured partitioner.
  const size_t n = options_.partitions;
  std::vector<std::vector<Message>> per_partition(n);
  for (auto& m : input) {
    if (m.tag == kTagHeartbeat) {
      for (size_t p = 0; p < n; ++p) per_partition[p].push_back(m);
    } else {
      size_t p = options_.partitioner(m, n) % n;
      per_partition[p].push_back(std::move(m));
    }
  }

  // Parallel section with end-of-batch barrier.
  std::vector<TaskContext> contexts;
  contexts.reserve(n);
  for (size_t p = 0; p < n; ++p) {
    contexts.emplace_back(p, result.batch_number);
  }
  auto start = std::chrono::steady_clock::now();
  for (size_t p = 0; p < n; ++p) {
    pool_.submit([this, p, &per_partition, &contexts] {
      TaskContext& ctx = contexts[p];
      tasks_[p]->on_batch_start(ctx);
      for (const Message& m : per_partition[p]) {
        tasks_[p]->process(m, ctx);
      }
      tasks_[p]->on_batch_end(ctx);
    });
  }
  pool_.wait_idle();
  auto end = std::chrono::steady_clock::now();
  result.elapsed_ms =
      std::chrono::duration<double, std::milli>(end - start).count();

  for (auto& ctx : contexts) {
    for (auto& m : ctx.outputs()) result.outputs.push_back(std::move(m));
  }
  return result;
}

}  // namespace loglens
