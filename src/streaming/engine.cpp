#include "streaming/engine.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "common/hash.h"
#include "common/sched.h"
#include "metrics/timer.h"
#include "trace/trace.h"

namespace loglens {

StreamEngine::StreamEngine(EngineOptions options, const TaskFactory& factory)
    : options_(std::move(options)),
      pool_(options_.workers) {
  if (options_.partitions == 0) options_.partitions = 1;
  if (!options_.partitioner) {
    options_.partitioner = [](const Message& m, size_t n) {
      return m.key.empty() ? 0 : static_cast<size_t>(fnv1a(m.key) % n);
    };
  }
  tasks_.reserve(options_.partitions);
  for (size_t p = 0; p < options_.partitions; ++p) {
    tasks_.push_back(factory(p));
  }

  // Resolve metric handles once; run_batch only touches atomics.
  registry_ = &registry_or_global(options_.metrics);
  MetricLabels stage{{"stage", options_.stage}};
  batches_total_ = &registry_->counter("loglens_engine_batches_total", stage,
                                       "Micro-batches executed");
  records_total_ = &registry_->counter("loglens_engine_records_total", stage,
                                       "Input messages routed to partitions");
  outputs_total_ = &registry_->counter("loglens_engine_outputs_total", stage,
                                       "Messages emitted by partition tasks");
  control_ops_total_ =
      &registry_->counter("loglens_engine_control_ops_total", stage,
                          "Control ops (rebroadcasts etc.) applied");
  task_retries_total_ =
      &registry_->counter("loglens_engine_task_retries_total", stage,
                          "Partition task attempts that were retried");
  dead_letters_total_ = &registry_->counter(
      "loglens_engine_dead_letter_records_total", stage,
      "Messages routed to the dead-letter channel (poison)");
  batch_duration_us_ =
      &registry_->histogram("loglens_engine_batch_duration_us", stage,
                            "Wall time of the parallel section per batch");
  batch_skew_us_ = &registry_->histogram(
      "loglens_engine_batch_skew_us", stage,
      "Per-batch max-min partition task time (load skew)");
  barrier_wait_us_ = &registry_->histogram(
      "loglens_engine_barrier_wait_us", stage,
      "Time a finished partition waited at the end-of-batch barrier");
  route_us_ = &registry_->histogram(
      "loglens_trace_route_us", stage,
      "Time spent routing a batch's messages to partitions");
  pool_wait_us_ = &registry_->histogram(
      "loglens_trace_pool_wait_us", stage,
      "Delay between pool submit and a partition task starting");
  partition_records_.reserve(options_.partitions);
  partition_task_us_.reserve(options_.partitions);
  for (size_t p = 0; p < options_.partitions; ++p) {
    MetricLabels labels{{"partition", std::to_string(p)},
                        {"stage", options_.stage}};
    partition_records_.push_back(
        &registry_->counter("loglens_engine_partition_records_total", labels,
                            "Messages processed per partition"));
    partition_task_us_.push_back(
        &registry_->histogram("loglens_engine_partition_task_us", labels,
                              "Per-partition task time per batch"));
  }
}

void StreamEngine::enqueue_control(std::function<void()> op) {
  RankedMutexLock lock(control_mu_);
  pending_controls_.push_back(std::move(op));
}

void StreamEngine::run_partition(size_t p, std::vector<Message>& input,
                                 TaskContext& ctx, PartitionOutcome& outcome,
                                 const trace::TraceContext& batch_ctx,
                                 uint64_t exec_span, uint64_t submitted_us) {
  const uint64_t task_start = trace_clock::now_us();
  pool_wait_us_->record(task_start - submitted_us);
  const bool traced = trace::enabled() && batch_ctx.trace_id != 0;
  trace::TraceContext task_ctx = batch_ctx;
  if (traced) {
    trace::Span wait;
    wait.trace_id = batch_ctx.trace_id;
    wait.span_id = trace::new_span_id();
    wait.parent_id = exec_span;
    wait.batch = batch_ctx.batch;
    wait.start_us = submitted_us;
    wait.duration_us = task_start - submitted_us;
    wait.tid = trace::current_tid();
    wait.name = options_.stage + ".pool_wait";
    registry_->record_span(std::move(wait));
    task_ctx.span_id = trace::new_span_id();  // the <stage>.task span below
  }
  // Spans the task itself records (and messages it produces) parent to the
  // per-partition task span via the thread-local context.
  trace::ContextScope scope(task_ctx);
  // Retries `fn` (optionally preceded by an injected fault at `site`) with
  // capped exponential backoff; false when the attempt budget is spent.
  auto guarded = [&](const char* site, auto&& fn) {
    for (size_t attempt = 1;; ++attempt) {
      try {
        if (options_.faults != nullptr) options_.faults->hit(site);
        fn();
        return true;
      } catch (const std::exception&) {
        if (attempt >= options_.task_max_attempts) return false;
        ++outcome.retries;
        int64_t ms = std::min(options_.retry_cap_ms,
                              options_.retry_base_ms
                                  << std::min<size_t>(attempt - 1, 20));
        if (ms > 0) sched::sleep_for_ms(static_cast<uint64_t>(ms));
      }
    }
  };

  if (!guarded(kFaultSiteTaskStart,
               [&] { tasks_[p]->on_batch_start(ctx); })) {
    // The task cannot even open the batch: dead-letter the whole partition
    // batch rather than stall the stage. (The vector keeps its size; the
    // post-barrier metrics loop only reads sizes.)
    for (auto& m : input) outcome.dead_letters.push_back(std::move(m));
  } else {
    for (Message& m : input) {
      // A message that keeps throwing is poison: route it to the dead
      // letters and move on. Note the at-least-once caveat — a *real* throw
      // from inside process() may leave a partial state mutation behind;
      // the detector task's dedup guard and idempotent parser make the
      // retry safe (docs/FAULTS.md).
      if (!guarded(kFaultSiteTaskProcess,
                   [&] { tasks_[p]->process(m, ctx); })) {
        outcome.dead_letters.push_back(std::move(m));
      }
    }
    if (!guarded(kFaultSiteTaskFinish,
                 [&] { tasks_[p]->on_batch_end(ctx); })) {
      // The task may now hold half-synced state; escalate to the job level
      // (fatal batch) so the supervisor can restore from a checkpoint.
      outcome.fatal = true;
    }
  }
  outcome.task_us = trace_clock::now_us() - task_start;
  if (traced) {
    trace::Span task;
    task.trace_id = task_ctx.trace_id;
    task.span_id = task_ctx.span_id;
    task.parent_id = exec_span;
    task.batch = task_ctx.batch;
    task.start_us = task_start;
    task.duration_us = outcome.task_us;
    task.tid = trace::current_tid();
    task.name = options_.stage + ".task";
    registry_->record_span(std::move(task));
  }
}

BatchResult StreamEngine::run_batch(std::vector<Message> input) {
  LOGLENS_SCHED_POINT("engine.run_batch");
  RankedMutexLock run_lock(run_mu_);
  BatchResult result;
  result.batch_number =
      batch_number_.fetch_add(1, std::memory_order_relaxed) + 1;
  result.input_records = input.size();

  // Trace identity for this batch: the `<stage>.batch` span (whole call)
  // parents to the caller's context — the job's pipeline span when the
  // engine runs deployed — and the phase spans below parent to the batch.
  const uint64_t batch_start_us = trace_clock::now_us();
  const bool traced = trace::enabled();
  const uint64_t caller_span = trace::current().span_id;
  trace::TraceContext batch_ctx;
  if (traced) {
    const trace::TraceContext& caller = trace::current();
    batch_ctx.trace_id =
        caller.trace_id != 0 ? caller.trace_id : trace::new_trace_id();
    batch_ctx.span_id = trace::new_span_id();
    batch_ctx.batch = static_cast<int64_t>(result.batch_number);
  }
  auto file_span = [&](const char* phase, uint64_t span_id, uint64_t parent,
                       uint64_t start_us, uint64_t duration_us) {
    trace::Span span;
    span.trace_id = batch_ctx.trace_id;
    span.span_id = span_id;
    span.parent_id = parent;
    span.batch = batch_ctx.batch;
    span.start_us = start_us;
    span.duration_us = duration_us;
    span.tid = trace::current_tid();
    span.name = options_.stage + phase;
    registry_->record_span(std::move(span));
  };

  // Control operations land between micro-batches, serialized by run_mu_.
  // The queue is swapped out and drained *outside* control_mu_: an op that
  // calls back into enqueue_control (a model instruction scheduling a
  // follow-up rebroadcast) must not deadlock on the queue lock. Ops that
  // land during the drain simply wait for the next batch.
  {
    const uint64_t control_start = trace_clock::now_us();
    std::vector<std::function<void()>> ops;
    {
      RankedMutexLock lock(control_mu_);
      ops.swap(pending_controls_);
    }
    LOGLENS_SCHED_POINT("engine.control_drain");
    for (auto& op : ops) {
      op();
      ++result.control_ops_applied;
    }
    if (traced) {
      file_span(".control", trace::new_span_id(), batch_ctx.span_id,
                control_start, trace_clock::now_us() - control_start);
    }
  }

  // Route. Heartbeats are duplicated to every partition (custom
  // partitioner); everything else follows the configured partitioner.
  const uint64_t route_start = trace_clock::now_us();
  const size_t n = options_.partitions;
  std::vector<std::vector<Message>> per_partition(n);
  if (n == 1) {
    // Single-partition fast path: everything (heartbeats included) lands on
    // partition 0, so the whole batch moves as one vector — no per-message
    // routing work, no reallocation.
    per_partition[0] = std::move(input);
  } else {
    for (auto& m : input) {
      if (m.tag == kTagHeartbeat) {
        for (size_t p = 0; p < n; ++p) per_partition[p].push_back(m);
      } else {
        size_t p = options_.partitioner(m, n) % n;
        per_partition[p].push_back(std::move(m));
      }
    }
  }
  const uint64_t route_end = trace_clock::now_us();
  route_us_->record(route_end - route_start);
  if (traced) {
    file_span(".route", trace::new_span_id(), batch_ctx.span_id, route_start,
              route_end - route_start);
  }

  // Parallel section with end-of-batch barrier. Each worker stamps its own
  // slot of `task_us` (no contention); histograms are fed after the barrier.
  std::vector<TaskContext> contexts;
  contexts.reserve(n);
  for (size_t p = 0; p < n; ++p) {
    contexts.emplace_back(p, result.batch_number);
  }
  std::vector<PartitionOutcome> outcomes(n);
  const uint64_t exec_span = traced ? trace::new_span_id() : 0;
  const uint64_t span_start = trace_clock::now_us();
  if (n == 1) {
    // Single-partition fast path: run the task inline on the driver — it
    // would only block at the barrier anyway — saving one thread handoff
    // per batch, the dominant cost of small batches (and of every batch on
    // a single-core host). Multi-partition batches keep every task on the
    // pool: with `workers` pool threads that is the stage's whole
    // concurrency contract (workers=1 means serial partitions, which fault
    // tests rely on to sequence injected failures deterministically).
    const uint64_t submitted_us = trace_clock::now_us();
    run_partition(0, per_partition[0], contexts[0], outcomes[0], batch_ctx,
                  exec_span, submitted_us);
  } else {
    for (size_t p = 0; p < n; ++p) {
      const uint64_t submitted_us = trace_clock::now_us();
      pool_.submit([this, p, &per_partition, &contexts, &outcomes, &batch_ctx,
                    exec_span, submitted_us] {
        run_partition(p, per_partition[p], contexts[p], outcomes[p],
                      batch_ctx, exec_span, submitted_us);
      });
    }
    pool_.wait_idle();
  }
  const uint64_t exec_end = trace_clock::now_us();
  const uint64_t elapsed_us = exec_end - span_start;
  result.elapsed_ms = static_cast<double>(elapsed_us) / 1000.0;
  if (traced) {
    file_span(".exec", exec_span, batch_ctx.span_id, span_start, elapsed_us);
  }
  batches_total_->inc();
  records_total_->inc(result.input_records);
  control_ops_total_->inc(result.control_ops_applied);
  batch_duration_us_->record(elapsed_us);
  uint64_t min_task = UINT64_MAX, max_task = 0;
  bool fatal = false;
  for (size_t p = 0; p < n; ++p) {
    const uint64_t task_us = outcomes[p].task_us;
    partition_records_[p]->inc(per_partition[p].size());
    partition_task_us_[p]->record(task_us);
    barrier_wait_us_->record(elapsed_us > task_us ? elapsed_us - task_us : 0);
    min_task = std::min(min_task, task_us);
    max_task = std::max(max_task, task_us);
    result.task_retries += outcomes[p].retries;
    fatal = fatal || outcomes[p].fatal;
    for (auto& m : outcomes[p].dead_letters) {
      result.dead_letters.push_back(std::move(m));
    }
  }
  batch_skew_us_->record(max_task - min_task);
  task_retries_total_->inc(result.task_retries);
  dead_letters_total_->inc(result.dead_letters.size());
  if (fatal) {
    // Record the batch span before escalating so the trace shows the failed
    // batch (its missing .collect phase marks it as aborted).
    if (traced) {
      file_span(".batch", batch_ctx.span_id, caller_span, batch_start_us,
                trace_clock::now_us() - batch_start_us);
    }
    throw FaultError("stage '" + options_.stage +
                     "' failed a batch: partition task did not finish after " +
                     std::to_string(options_.task_max_attempts) + " attempts");
  }

  const uint64_t collect_start = trace_clock::now_us();
  size_t total_outputs = 0;
  for (auto& ctx : contexts) total_outputs += ctx.outputs().size();
  outputs_total_->inc(total_outputs);
  if (n == 1) {
    result.outputs = contexts.front().take_outputs();
  } else {
    result.outputs.reserve(total_outputs);
    for (auto& ctx : contexts) {
      auto outs = ctx.take_outputs();
      result.outputs.insert(result.outputs.end(),
                            std::make_move_iterator(outs.begin()),
                            std::make_move_iterator(outs.end()));
    }
  }
  if (traced) {
    const uint64_t now_us = trace_clock::now_us();
    file_span(".collect", trace::new_span_id(), batch_ctx.span_id,
              collect_start, now_us - collect_start);
    file_span(".batch", batch_ctx.span_id, caller_span, batch_start_us,
              now_us - batch_start_us);
  }
  return result;
}

}  // namespace loglens
