// Keyed partition state — the engine-level analogue of Spark's
// mapWithState plus the paper's getParentStateMap() extension.
//
// Section V-B: "the key based mapping of states only allows similar keys to
// access or modify the state ... LogLens extends the Spark API to expose the
// reference of the state in a partition to the program logic", so a
// heartbeat can enumerate *all* open states and expire the overdue ones.
//
// StateMap<V> is that facility as a reusable component: a per-partition
// keyed store with the usual get/put access path, plus full enumeration and
// a sweep helper for heartbeat-driven expiry. KeyedStateTask<V> packages the
// common shape of a stateful stage: route data records to a per-key handler
// and heartbeats to a sweep over the whole map. (The sequence detector
// predates this facility and manages its own map with identical semantics;
// new stateful stages should build on this one.)
//
// Thread-safety contract: deliberately unsynchronized. A StateMap belongs to
// exactly one PartitionTask, and the engine runs each partition's task on
// one worker at a time with a barrier per batch — so no lock (and no
// annotation) is needed here. Sharing a StateMap across partitions would
// break that contract; use a guarded structure instead.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "streaming/engine.h"

namespace loglens {

template <typename V>
class StateMap {
 public:
  // Returns the state for `key`, default-constructing it on first access.
  V& get_or_create(const std::string& key) { return states_[key]; }

  // Returns nullptr when the key has no state.
  V* find(const std::string& key) {
    auto it = states_.find(key);
    return it == states_.end() ? nullptr : &it->second;
  }

  void erase(const std::string& key) { states_.erase(key); }
  size_t size() const { return states_.size(); }
  bool empty() const { return states_.empty(); }

  // The getParentStateMap() capability: enumerate every (key, state) pair.
  void for_each(const std::function<void(const std::string&, V&)>& fn) {
    for (auto& [key, value] : states_) fn(key, value);
  }

  // Sweep: remove every entry the predicate marks expired, invoking
  // `on_expire` first. Returns the number removed.
  size_t sweep(const std::function<bool(const std::string&, V&)>& expired,
               const std::function<void(const std::string&, V&)>& on_expire) {
    size_t removed = 0;
    for (auto it = states_.begin(); it != states_.end();) {
      if (expired(it->first, it->second)) {
        if (on_expire) on_expire(it->first, it->second);
        it = states_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

 private:
  std::map<std::string, V> states_;
};

// A partition task with keyed state: data records go to on_record with the
// key's state; heartbeats go to on_heartbeat with the whole map (fan-out to
// every partition is handled by the engine's partitioner).
template <typename V>
class KeyedStateTask : public PartitionTask {
 public:
  void process(const Message& message, TaskContext& ctx) final {
    if (message.tag == kTagHeartbeat) {
      on_heartbeat(message.timestamp_ms, states_, ctx);
      return;
    }
    if (message.tag == kTagControl) return;
    on_record(message, states_.get_or_create(message.key), ctx);
  }

  StateMap<V>& states() { return states_; }

 protected:
  virtual void on_record(const Message& message, V& state,
                         TaskContext& ctx) = 0;
  virtual void on_heartbeat(int64_t /*log_time_ms*/, StateMap<V>& /*states*/,
                            TaskContext& /*ctx*/) {}

 private:
  StateMap<V> states_;
};

}  // namespace loglens
