#include "streaming/job.h"

namespace loglens {

JobRunner::JobRunner(Broker& broker, StreamEngine& engine, JobOptions options)
    : broker_(broker),
      engine_(engine),
      options_(std::move(options)),
      consumer_(broker, options_.input_topic) {}

JobRunner::~JobRunner() { stop(); }

void JobRunner::start() {
  if (running_.exchange(true)) return;
  driver_ = std::thread([this] { loop(); });
}

void JobRunner::stop() {
  if (!running_.exchange(false)) return;
  if (driver_.joinable()) driver_.join();
}

void JobRunner::process_batch(std::vector<Message> batch) {
  records_in_.fetch_add(batch.size());
  BatchResult result = engine_.run_batch(std::move(batch));
  batches_.fetch_add(1);
  if (!options_.output_topic.empty()) {
    for (auto& m : result.outputs) {
      broker_.produce(options_.output_topic, std::move(m));
    }
  }
}

void JobRunner::loop() {
  while (running_.load()) {
    auto batch =
        consumer_.poll_blocking(options_.batch_size, options_.poll_timeout_ms);
    if (batch.empty()) continue;
    process_batch(std::move(batch));
  }
  // Final drain so stop() never strands buffered input.
  for (auto batch = consumer_.poll(options_.batch_size); !batch.empty();
       batch = consumer_.poll(options_.batch_size)) {
    process_batch(std::move(batch));
  }
}

void JobRunner::drain() {
  for (auto batch = consumer_.poll(options_.batch_size); !batch.empty();
       batch = consumer_.poll(options_.batch_size)) {
    process_batch(std::move(batch));
  }
}

}  // namespace loglens
