#include "streaming/job.h"

#include <chrono>

#include "common/clock.h"
#include "common/sched.h"
#include "trace/trace.h"

namespace loglens {

JobRunner::JobRunner(Broker& broker, StreamEngine& engine, JobOptions options)
    : broker_(broker),
      engine_(engine),
      options_(std::move(options)),
      consumer_(broker, options_.input_topic,
                &registry_or_global(options_.metrics)) {
  MetricsRegistry& registry = registry_or_global(options_.metrics);
  MetricLabels labels{{"job", options_.name}};
  batches_total_ = &registry.counter("loglens_job_batches_total", labels,
                                     "Micro-batches pulled from the broker");
  records_total_ = &registry.counter("loglens_job_records_total", labels,
                                     "Messages consumed from the input topic");
  reports_total_ = &registry.counter("loglens_job_metrics_reports_total",
                                     labels, "Health reports emitted");
  failures_total_ = &registry.counter(
      "loglens_job_failures_total", labels,
      "Fatal batches that parked this job pending recovery");
  dead_letters_total_ = &registry.counter(
      "loglens_job_dead_letter_records_total", labels,
      "Messages routed to (or dropped toward) the dead-letter topic");
  produce_retries_total_ = &registry.counter(
      "loglens_job_produce_retries_total", labels,
      "Output produce attempts that were retried at the job level");
  input_lag_ = &registry.gauge(
      "loglens_job_input_lag", labels,
      "Messages buffered on the input topic behind this job");
  queue_wait_us_ = &registry.histogram(
      "loglens_trace_queue_wait_us", labels,
      "Oldest message's wait on the input topic before its batch started");
  publish_us_ = &registry.histogram(
      "loglens_trace_publish_us", labels,
      "Time publishing a batch's outputs (and dead letters) to the broker");
  registry_ = &registry;
}

JobRunner::~JobRunner() { stop(); }

void JobRunner::start() {
  if (running_.exchange(true)) return;
  driver_ = sched::spawn_named("job-" + options_.name, [this] { loop(); });
}

void JobRunner::stop() {
  if (!running_.exchange(false)) return;
  if (driver_.joinable()) {
    // Real join; under a ScheduleController the driver still needs to be
    // scheduled to observe running_ == false, so step outside its view.
    sched::BlockingRegion joining;
    driver_.join();
  }
}

std::string JobRunner::last_error() const {
  RankedMutexLock lock(error_mu_);
  return last_error_;
}

void JobRunner::clear_failure() {
  {
    RankedMutexLock lock(error_mu_);
    last_error_.clear();
  }
  failed_.store(false);
}

void JobRunner::mark_failed(const char* what) {
  {
    RankedMutexLock lock(error_mu_);
    last_error_ = what;
  }
  failed_.store(true);
  failures_total_->inc();
}

Json JobRunner::metrics_report() const {
  JsonObject obj;
  obj.emplace_back("job", Json(options_.name));
  obj.emplace_back("batches", Json(static_cast<int64_t>(batches_.load())));
  obj.emplace_back("records_in",
                   Json(static_cast<int64_t>(records_in_.load())));
  obj.emplace_back("input_lag", Json(static_cast<int64_t>(consumer_.lag())));
  obj.emplace_back("engine_batches",
                   Json(static_cast<int64_t>(engine_.batches_run())));
  obj.emplace_back("failed", Json(failed_.load()));
  return Json(std::move(obj));
}

void JobRunner::produce_with_retry(const std::string& topic, Message message) {
  for (size_t attempt = 1; attempt <= options_.produce_max_attempts;
       ++attempt) {
    // The broker already absorbs transient faults with its own client-style
    // retry loop; a Status error here means that budget is spent too.
    if (broker_.produce(topic, message).ok()) return;
    if (attempt == options_.produce_max_attempts) break;
    produce_retries_total_->inc();
    if (options_.produce_retry_ms > 0) {
      sched::sleep_for_ms(static_cast<uint64_t>(options_.produce_retry_ms));
    }
  }
  // Undeliverable output: dead-letter it rather than lose it silently. If
  // even the dead-letter produce fails, counting is all that is left.
  dead_letters_total_->inc();
  if (!options_.dead_letter_topic.empty()) {
    (void)broker_.produce(options_.dead_letter_topic, std::move(message));
  }
}

void JobRunner::process_batch(std::vector<Message> batch) {
  // Open this batch's pipeline span: its trace identity comes from the
  // first traced input message (so the producing stage's pipeline span is
  // this one's parent — parser.pipeline chains into detector.pipeline), and
  // the oldest enqueue timestamp pins the queue-wait component. The scope
  // installed below makes the engine's batch span a child and stamps every
  // published output with this span as parent.
  const uint64_t dequeue_us = trace_clock::now_us();
  const bool traced = trace::enabled();
  trace::TraceContext pipeline_ctx;
  uint64_t upstream_span = 0;
  uint64_t queue_start_us = dequeue_us;
  if (traced) {
    for (const Message& m : batch) {
      if (pipeline_ctx.trace_id == 0 && m.trace_id != 0) {
        pipeline_ctx.trace_id = m.trace_id;
        upstream_span = m.parent_span;
      }
      if (m.enqueue_us != 0 && m.enqueue_us < queue_start_us) {
        queue_start_us = m.enqueue_us;
      }
    }
    if (pipeline_ctx.trace_id == 0) {
      pipeline_ctx.trace_id = trace::new_trace_id();
    }
    pipeline_ctx.span_id = trace::new_span_id();
  }
  trace::ContextScope scope(pipeline_ctx);
  auto file_span = [&](const char* suffix, uint64_t span_id, uint64_t parent,
                       int64_t batch_number, uint64_t start_us,
                       uint64_t duration_us) {
    trace::Span span;
    span.trace_id = pipeline_ctx.trace_id;
    span.span_id = span_id;
    span.parent_id = parent;
    span.batch = batch_number;
    span.start_us = start_us;
    span.duration_us = duration_us;
    span.tid = trace::current_tid();
    span.name = options_.name + suffix;
    registry_->record_span(std::move(span));
  };

  LOGLENS_SCHED_POINT("job.process_batch");
  records_in_.fetch_add(batch.size());
  records_total_->inc(batch.size());
  queue_wait_us_->record(dequeue_us - queue_start_us);
  BatchResult result;
  try {
    result = engine_.run_batch(std::move(batch));
  } catch (...) {
    // Fatal batch: still record the pipeline span (the trace shows the
    // aborted batch) before the failure escalates to the supervisor.
    if (traced) {
      file_span(".pipeline", pipeline_ctx.span_id, upstream_span,
                static_cast<int64_t>(engine_.batches_run()), dequeue_us,
                trace_clock::now_us() - dequeue_us);
    }
    throw;
  }
  const auto batch_number = static_cast<int64_t>(result.batch_number);
  if (traced) {
    file_span(".queue_wait", trace::new_span_id(), pipeline_ctx.span_id,
              batch_number, queue_start_us, dequeue_us - queue_start_us);
  }
  uint64_t batches = batches_.fetch_add(1) + 1;
  batches_total_->inc();
  input_lag_->set(static_cast<int64_t>(consumer_.lag()));
  const uint64_t publish_start_us = trace_clock::now_us();
  if (!result.dead_letters.empty()) {
    dead_letters_total_->inc(result.dead_letters.size());
    if (!options_.dead_letter_topic.empty()) {
      (void)broker_.produce_batch(options_.dead_letter_topic,
                                  std::move(result.dead_letters));
    }
  }
  if (!options_.output_topic.empty() && !result.outputs.empty()) {
    // Batched publish: the whole batch crosses each output partition's lock
    // once. Messages whose broker-side retry budget is spent come back in
    // `undeliverable` and take the per-message retry/dead-letter slow path.
    std::vector<Message> undeliverable;
    (void)broker_.produce_batch(options_.output_topic,
                                std::move(result.outputs), &undeliverable);
    for (auto& m : undeliverable) {
      produce_retries_total_->inc();
      produce_with_retry(options_.output_topic, std::move(m));
    }
  }
  const uint64_t publish_end_us = trace_clock::now_us();
  publish_us_->record(publish_end_us - publish_start_us);
  if (traced) {
    file_span(".publish", trace::new_span_id(), pipeline_ctx.span_id,
              batch_number, publish_start_us,
              publish_end_us - publish_start_us);
    file_span(".pipeline", pipeline_ctx.span_id, upstream_span, batch_number,
              dequeue_us, publish_end_us - dequeue_us);
  }
  if (options_.metrics_report_every > 0 &&
      batches % options_.metrics_report_every == 0) {
    Message report;
    report.tag = kTagMetrics;
    report.source = options_.name;
    report.value = metrics_report().dump();
    broker_.produce(options_.metrics_topic, std::move(report));
    reports_total_->inc();
  }
}

void JobRunner::loop() {
  while (running_.load()) {
    LOGLENS_SCHED_POINT("job.loop");
    if (failed_.load()) {
      // Parked pending recovery: the supervisor stops this runner, repairs
      // state/offsets, clears the failure, and restarts it.
      sched::sleep_for_ms(static_cast<uint64_t>(options_.poll_timeout_ms));
      continue;
    }
    auto batch =
        consumer_.poll_blocking(options_.batch_size, options_.poll_timeout_ms,
                                options_.poll_min_batch);
    if (batch.empty()) continue;
    try {
      process_batch(std::move(batch));
    } catch (const std::exception& e) {
      // Fatal batch (on_batch_end retries exhausted). The polled messages
      // are past this consumer's offsets, which is why recovery rewinds to
      // the checkpointed offsets before restarting.
      mark_failed(e.what());
    }
  }
  if (failed_.load()) return;
  // Final drain so stop() never strands buffered input.
  for (auto batch = consumer_.poll(options_.batch_size); !batch.empty();
       batch = consumer_.poll(options_.batch_size)) {
    try {
      process_batch(std::move(batch));
    } catch (const std::exception& e) {
      mark_failed(e.what());
      return;
    }
  }
}

void JobRunner::drain() {
  if (failed_.load()) return;
  for (auto batch = consumer_.poll(options_.batch_size); !batch.empty();
       batch = consumer_.poll(options_.batch_size)) {
    try {
      process_batch(std::move(batch));
    } catch (const std::exception& e) {
      mark_failed(e.what());
      return;
    }
  }
}

}  // namespace loglens
