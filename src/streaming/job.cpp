#include "streaming/job.h"

namespace loglens {

JobRunner::JobRunner(Broker& broker, StreamEngine& engine, JobOptions options)
    : broker_(broker),
      engine_(engine),
      options_(std::move(options)),
      consumer_(broker, options_.input_topic) {
  MetricsRegistry& registry = registry_or_global(options_.metrics);
  MetricLabels labels{{"job", options_.name}};
  batches_total_ = &registry.counter("loglens_job_batches_total", labels,
                                     "Micro-batches pulled from the broker");
  records_total_ = &registry.counter("loglens_job_records_total", labels,
                                     "Messages consumed from the input topic");
  reports_total_ = &registry.counter("loglens_job_metrics_reports_total",
                                     labels, "Health reports emitted");
  input_lag_ = &registry.gauge(
      "loglens_job_input_lag", labels,
      "Messages buffered on the input topic behind this job");
}

JobRunner::~JobRunner() { stop(); }

void JobRunner::start() {
  if (running_.exchange(true)) return;
  driver_ = std::thread([this] { loop(); });
}

void JobRunner::stop() {
  if (!running_.exchange(false)) return;
  if (driver_.joinable()) driver_.join();
}

Json JobRunner::metrics_report() const {
  JsonObject obj;
  obj.emplace_back("job", Json(options_.name));
  obj.emplace_back("batches", Json(static_cast<int64_t>(batches_.load())));
  obj.emplace_back("records_in",
                   Json(static_cast<int64_t>(records_in_.load())));
  obj.emplace_back("input_lag", Json(static_cast<int64_t>(consumer_.lag())));
  obj.emplace_back("engine_batches",
                   Json(static_cast<int64_t>(engine_.batches_run())));
  return Json(std::move(obj));
}

void JobRunner::process_batch(std::vector<Message> batch) {
  records_in_.fetch_add(batch.size());
  records_total_->inc(batch.size());
  BatchResult result = engine_.run_batch(std::move(batch));
  uint64_t batches = batches_.fetch_add(1) + 1;
  batches_total_->inc();
  input_lag_->set(static_cast<int64_t>(consumer_.lag()));
  if (!options_.output_topic.empty()) {
    for (auto& m : result.outputs) {
      broker_.produce(options_.output_topic, std::move(m));
    }
  }
  if (options_.metrics_report_every > 0 &&
      batches % options_.metrics_report_every == 0) {
    Message report;
    report.tag = kTagMetrics;
    report.source = options_.name;
    report.value = metrics_report().dump();
    broker_.produce(options_.metrics_topic, std::move(report));
    reports_total_->inc();
  }
}

void JobRunner::loop() {
  while (running_.load()) {
    auto batch =
        consumer_.poll_blocking(options_.batch_size, options_.poll_timeout_ms);
    if (batch.empty()) continue;
    process_batch(std::move(batch));
  }
  // Final drain so stop() never strands buffered input.
  for (auto batch = consumer_.poll(options_.batch_size); !batch.empty();
       batch = consumer_.poll(options_.batch_size)) {
    process_batch(std::move(batch));
  }
}

void JobRunner::drain() {
  for (auto batch = consumer_.poll(options_.batch_size); !batch.empty();
       batch = consumer_.poll(options_.batch_size)) {
    process_batch(std::move(batch));
  }
}

}  // namespace loglens
