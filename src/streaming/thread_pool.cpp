#include "streaming/thread_pool.h"

namespace loglens {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    RankedMutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    RankedMutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

// The waits below use explicit loops rather than the predicate overload:
// the thread-safety analysis checks a predicate lambda as a separate
// function, where the guarded reads would not see the lock held here.

void ThreadPool::wait_idle() {
  RankedMutexLock lock(mu_);
  while (!(queue_.empty() && in_flight_ == 0)) {
    idle_cv_.wait(lock);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      RankedMutexLock lock(mu_);
      while (!stop_ && queue_.empty()) {
        work_cv_.wait(lock);
      }
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      RankedMutexLock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace loglens
