#include "streaming/thread_pool.h"

#include <string>

#include "common/sched.h"

namespace loglens {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back(sched::spawn_named("pool-" + std::to_string(i),
                                             [this] { worker_loop(); }));
  }
}

ThreadPool::~ThreadPool() {
  {
    RankedMutexLock lock(mu_);
    stop_ = true;
  }
  sched::cv_notify_all(work_cv_);
  // The joins block for real; under a ScheduleController the workers still
  // need to be scheduled to observe stop_, so step outside its view.
  sched::BlockingRegion joining;
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    RankedMutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  sched::cv_notify_one(work_cv_);
}

// The waits below use explicit loops rather than the predicate overload:
// the thread-safety analysis checks a predicate lambda as a separate
// function, where the guarded reads would not see the lock held here.

void ThreadPool::wait_idle() {
  RankedMutexLock lock(mu_);
  while (!(queue_.empty() && in_flight_ == 0)) {
    sched::cv_wait(idle_cv_, lock);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      RankedMutexLock lock(mu_);
      while (!stop_ && queue_.empty()) {
        sched::cv_wait(work_cv_, lock);
      }
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    LOGLENS_SCHED_POINT("pool.task_start");
    task();
    {
      RankedMutexLock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        sched::cv_notify_all(idle_cv_);
      }
    }
  }
}

}  // namespace loglens
