// Fixed-size worker pool used by the streaming engine to execute the
// partitions of a micro-batch in parallel.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace loglens {

class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; tasks may run on any worker thread.
  void submit(std::function<void()> task) LOGLENS_EXCLUDES(mu_);

  // Blocks until every submitted task has finished.
  void wait_idle() LOGLENS_EXCLUDES(mu_);

  size_t size() const { return workers_.size(); }

 private:
  void worker_loop() LOGLENS_EXCLUDES(mu_);

  // The engine submits and waits while holding run_mu_ (kEngineRun), so the
  // pool ranks inside it. Tasks run with no pool lock held.
  RankedMutex mu_{lock_rank::kThreadPool};
  std::condition_variable_any work_cv_;
  std::condition_variable_any idle_cv_;
  std::deque<std::function<void()>> queue_ LOGLENS_GUARDED_BY(mu_);
  size_t in_flight_ LOGLENS_GUARDED_BY(mu_) = 0;
  bool stop_ LOGLENS_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace loglens
