// Fixed-size worker pool used by the streaming engine to execute the
// partitions of a micro-batch in parallel.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace loglens {

class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; tasks may run on any worker thread.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void wait_idle();

  size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace loglens
