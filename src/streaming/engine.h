// Micro-batch streaming engine — the Spark Streaming substitute.
//
// The engine executes micro-batches over a fixed set of partitions. Each
// partition owns a long-lived PartitionTask (created once, never recreated),
// which is where keyed state lives — so, as in the paper's requirements,
// state survives for the lifetime of the job and "model updates" never
// restart anything. Per batch:
//
//   1. pending control operations (rebroadcasts, model instructions) are
//      applied under a serialized lock *between* micro-batches (Section V-A);
//   2. input messages are routed by the partitioner — except messages tagged
//      kTagHeartbeat, which the custom partitioner duplicates to *every*
//      partition (Section V-B) so each partition can sweep its open states;
//   3. partitions run in parallel on the worker pool with a barrier at the
//      end of the batch; task outputs are collected in partition order.
//
// Synchronous `run_batch` keeps experiments deterministic; `JobRunner` (in
// job.h) adds the broker-driven background-loop deployment mode.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "broker/message.h"
#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "faults/fault_injector.h"
#include "metrics/metrics.h"
#include "streaming/broadcast.h"
#include "streaming/thread_pool.h"

namespace loglens {

class TaskContext {
 public:
  TaskContext(size_t partition, uint64_t batch_number)
      : partition_(partition), batch_number_(batch_number) {}

  size_t partition() const { return partition_; }
  uint64_t batch_number() const { return batch_number_; }

  // Emits an output record for this batch.
  void emit(Message m) { outputs_.push_back(std::move(m)); }

  std::vector<Message>& outputs() { return outputs_; }

  // Steals the outputs (the engine collects them once per batch; moving the
  // whole vector avoids re-growing the result buffer element by element).
  std::vector<Message> take_outputs() { return std::move(outputs_); }

 private:
  size_t partition_;
  uint64_t batch_number_;
  std::vector<Message> outputs_;
};

// One partition's processing logic. Implementations own their state (keyed
// maps, detectors, ...) and may keep it across batches.
class PartitionTask {
 public:
  virtual ~PartitionTask() = default;
  virtual void on_batch_start(TaskContext& /*ctx*/) {}
  virtual void process(const Message& message, TaskContext& ctx) = 0;
  virtual void on_batch_end(TaskContext& /*ctx*/) {}
};

using TaskFactory = std::function<std::unique_ptr<PartitionTask>(size_t)>;
using Partitioner = std::function<size_t(const Message&, size_t)>;

struct EngineOptions {
  size_t partitions = 4;
  size_t workers = 2;
  // Default: hash of the message key (empty key -> partition 0).
  Partitioner partitioner;
  // Observability: which registry to report into (nullptr -> the global
  // one) and the `stage` label distinguishing this engine's metrics.
  MetricsRegistry* metrics = nullptr;
  std::string stage = "engine";
  // Fault tolerance. A partition task call (on_batch_start, per-message
  // process, on_batch_end) that throws is retried up to `task_max_attempts`
  // times in total, with capped exponential backoff (retry_base_ms doubling
  // up to retry_cap_ms). A message whose process() still throws after that
  // is poison: it is routed to BatchResult::dead_letters instead of killing
  // the job. An on_batch_start that never succeeds dead-letters the whole
  // partition batch; an on_batch_end that never succeeds fails the batch
  // (FaultError out of run_batch) because the task may hold half-synced
  // state — that is the supervisor's cue to restore from a checkpoint.
  size_t task_max_attempts = 4;
  int64_t retry_base_ms = 1;
  int64_t retry_cap_ms = 50;
  // Optional injector consulted at kFaultSiteTaskStart/Process/Finish.
  FaultInjector* faults = nullptr;
};

struct BatchResult {
  uint64_t batch_number = 0;
  size_t input_records = 0;
  size_t control_ops_applied = 0;
  std::vector<Message> outputs;  // concatenated in partition order
  double elapsed_ms = 0;         // wall time of the parallel section
  // Fault tolerance (see EngineOptions): task attempts that were retried,
  // and the poison messages that exhausted their retry budget this batch.
  size_t task_retries = 0;
  std::vector<Message> dead_letters;
};

class StreamEngine {
 public:
  StreamEngine(EngineOptions options, const TaskFactory& factory);

  // Runs one micro-batch synchronously.
  BatchResult run_batch(std::vector<Message> input)
      LOGLENS_EXCLUDES(run_mu_, control_mu_);

  // Queues a control operation to run (serialized) before the next batch.
  // Safe to call from anywhere, including from inside another control op
  // (the engine drains the queue outside control_mu_).
  void enqueue_control(std::function<void()> op) LOGLENS_EXCLUDES(control_mu_);

  // Creates a broadcast variable sized for this engine's partitions.
  template <typename T>
  std::shared_ptr<Broadcast<T>> create_broadcast(T value) {
    return std::make_shared<Broadcast<T>>(
        next_broadcast_id_++, std::move(value), options_.partitions);
  }

  size_t partitions() const { return options_.partitions; }
  uint64_t batches_run() const {
    return batch_number_.load(std::memory_order_relaxed);
  }

  // Direct access for tests and the dashboard (e.g. open-state counters).
  PartitionTask& task(size_t partition) { return *tasks_[partition]; }

 private:
  // Per-partition outcome of one batch attempt, filled by run_partition on a
  // worker thread (each worker touches only its own slot).
  struct PartitionOutcome {
    uint64_t task_us = 0;
    size_t retries = 0;
    std::vector<Message> dead_letters;
    bool fatal = false;  // on_batch_end failed after all retries
  };

  // Executes one partition's share of a batch with the retry/dead-letter
  // policy of EngineOptions. Never throws (fatal failures are reported
  // through the outcome so they cross the thread-pool boundary safely).
  // `batch_ctx` is the batch's trace context (installed on the worker
  // thread for the task's duration), `exec_span` the parallel section's
  // span id, `submitted_us` the pool-submit timestamp that pins the
  // pool-wait span.
  void run_partition(size_t partition, std::vector<Message>& input,
                     TaskContext& ctx, PartitionOutcome& outcome,
                     const trace::TraceContext& batch_ctx, uint64_t exec_span,
                     uint64_t submitted_us);

  EngineOptions options_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<PartitionTask>> tasks_;

  // Metric handles, resolved once at construction (see engine.cpp).
  MetricsRegistry* registry_ = nullptr;
  Counter* batches_total_ = nullptr;
  Counter* records_total_ = nullptr;
  Counter* outputs_total_ = nullptr;
  Counter* control_ops_total_ = nullptr;
  Counter* task_retries_total_ = nullptr;
  Counter* dead_letters_total_ = nullptr;
  Histogram* batch_duration_us_ = nullptr;
  Histogram* batch_skew_us_ = nullptr;
  Histogram* barrier_wait_us_ = nullptr;
  Histogram* route_us_ = nullptr;
  Histogram* pool_wait_us_ = nullptr;
  std::vector<Counter*> partition_records_;
  std::vector<Histogram*> partition_task_us_;

  // Guards only the pending queue. Queued ops run *outside* this lock (but
  // under run_mu_), so an op may re-enqueue follow-up work without
  // self-deadlocking; ops that rebroadcast then take the broadcast driver
  // lock, pinning kEngineControl < kBroadcastDriver.
  RankedMutex control_mu_{lock_rank::kEngineControl};
  std::vector<std::function<void()>> pending_controls_
      LOGLENS_GUARDED_BY(control_mu_);

  // Serializes run_batch callers; held across the pool submit/wait, pinning
  // kEngineRun < kThreadPool.
  RankedMutex run_mu_{lock_rank::kEngineRun};
  // Monotonic batch counter: written under run_mu_, read lock-free by
  // batches_run() (dashboard/monitoring threads), hence atomic.
  std::atomic<uint64_t> batch_number_{0};
  std::atomic<uint64_t> next_broadcast_id_{1};
};

}  // namespace loglens
