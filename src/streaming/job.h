// Broker-driven streaming job: the deployment loop that turns the
// synchronous StreamEngine into a long-running service.
//
// A JobRunner owns a consumer on the input topic; its driver thread polls a
// micro-batch, hands it to the engine, and publishes the outputs to the
// output topic. `stop()` finishes the in-flight batch and drains what is
// already buffered — the zero-downtime property comes from never needing to
// call stop() for a model update (those ride enqueue_control instead).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "broker/broker.h"
#include "json/json.h"
#include "metrics/metrics.h"
#include "streaming/engine.h"

namespace loglens {

struct JobOptions {
  std::string input_topic;
  std::string output_topic;  // empty: outputs are dropped
  size_t batch_size = 1024;
  int64_t poll_timeout_ms = 20;
  // Observability. `name` labels this job's metrics; when
  // `metrics_report_every` > 0, a kTagMetrics message with a JSON health
  // report is produced to `metrics_topic` every N batches.
  std::string name = "job";
  size_t metrics_report_every = 0;
  std::string metrics_topic = "metrics";
  MetricsRegistry* metrics = nullptr;  // nullptr -> the global registry
};

class JobRunner {
 public:
  JobRunner(Broker& broker, StreamEngine& engine, JobOptions options);
  ~JobRunner();

  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  void start();
  void stop();

  // Synchronously processes everything currently in the input topic.
  // Usable whether or not the background thread is running (it competes for
  // the same consumer only when stopped; call on a stopped runner in tests).
  void drain();

  uint64_t batches() const { return batches_.load(); }
  uint64_t records_in() const { return records_in_.load(); }

  // The JSON health report emitted every `metrics_report_every` batches
  // (also handy for tests and ad-hoc inspection).
  Json metrics_report() const;

 private:
  void loop();
  void process_batch(std::vector<Message> batch);

  Broker& broker_;
  StreamEngine& engine_;
  JobOptions options_;
  Consumer consumer_;
  std::thread driver_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> records_in_{0};

  Counter* batches_total_ = nullptr;
  Counter* records_total_ = nullptr;
  Counter* reports_total_ = nullptr;
  Gauge* input_lag_ = nullptr;
};

}  // namespace loglens
