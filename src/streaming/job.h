// Broker-driven streaming job: the deployment loop that turns the
// synchronous StreamEngine into a long-running service.
//
// A JobRunner owns a consumer on the input topic; its driver thread polls a
// micro-batch, hands it to the engine, and publishes the outputs to the
// output topic. `stop()` finishes the in-flight batch and drains what is
// already buffered — the zero-downtime property comes from never needing to
// call stop() for a model update (those ride enqueue_control instead).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "broker/broker.h"
#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "json/json.h"
#include "metrics/metrics.h"
#include "streaming/engine.h"

namespace loglens {

struct JobOptions {
  std::string input_topic;
  std::string output_topic;  // empty: outputs are dropped
  size_t batch_size = 1024;
  int64_t poll_timeout_ms = 20;
  // Low watermark for the blocking poll: the driver keeps accumulating
  // until this many messages are in hand (or the poll times out), so a
  // trickle of input still forms real batches instead of batch-per-message
  // churn. 1 = wake on the first message (lowest latency).
  size_t poll_min_batch = 1;
  // Observability. `name` labels this job's metrics; when
  // `metrics_report_every` > 0, a kTagMetrics message with a JSON health
  // report is produced to `metrics_topic` every N batches.
  std::string name = "job";
  size_t metrics_report_every = 0;
  std::string metrics_topic = "metrics";
  MetricsRegistry* metrics = nullptr;  // nullptr -> the global registry
  // Fault tolerance. Poison messages the engine gives up on, and outputs
  // whose produce exhausts its retries, land on `dead_letter_topic` (empty:
  // they are dropped after being counted). Output produces are themselves
  // retried `produce_max_attempts` times with capped backoff.
  std::string dead_letter_topic = "";
  size_t produce_max_attempts = 5;
  int64_t produce_retry_ms = 1;
};

class JobRunner {
 public:
  JobRunner(Broker& broker, StreamEngine& engine, JobOptions options);
  ~JobRunner();

  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  void start();
  void stop();

  // Synchronously processes everything currently in the input topic.
  // Usable whether or not the background thread is running (it competes for
  // the same consumer only when stopped; call on a stopped runner in tests).
  void drain();

  uint64_t batches() const { return batches_.load(); }
  uint64_t records_in() const { return records_in_.load(); }

  // Messages buffered on the input topic behind this job. Under fault
  // injection an empty poll is not proof of emptiness (fetch faults read as
  // empty), so drain loops gate on this instead.
  uint64_t input_lag() const { return consumer_.lag(); }

  // Failure state. A batch the engine declares fatal (FaultError out of
  // run_batch) marks the job failed: the driver thread parks, drain()
  // returns early, and a supervisor (LogLensService::recover) is expected
  // to restore state and call clear_failure() before resuming.
  bool failed() const { return failed_.load(); }
  std::string last_error() const LOGLENS_EXCLUDES(error_mu_);
  void clear_failure() LOGLENS_EXCLUDES(error_mu_);

  // Offset checkpointing passthrough (call only while the job is stopped):
  // what the service records in a checkpoint, and how recovery rewinds the
  // job to it for at-least-once redelivery.
  std::vector<uint64_t> consumer_offsets() const {
    return consumer_.offsets();
  }
  void seek(const std::vector<uint64_t>& offsets) { consumer_.seek(offsets); }

  // The JSON health report emitted every `metrics_report_every` batches
  // (also handy for tests and ad-hoc inspection).
  Json metrics_report() const;

 private:
  void loop();
  void process_batch(std::vector<Message> batch);
  void produce_with_retry(const std::string& topic, Message message);
  void mark_failed(const char* what) LOGLENS_EXCLUDES(error_mu_);

  Broker& broker_;
  StreamEngine& engine_;
  JobOptions options_;
  Consumer consumer_;
  std::thread driver_;
  std::atomic<bool> running_{false};
  std::atomic<bool> failed_{false};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> records_in_{0};
  // Near-leaf: held only around the error-string copy, never across calls
  // into other subsystems (metrics counters fire outside it).
  mutable RankedMutex error_mu_{lock_rank::kJobState};
  std::string last_error_ LOGLENS_GUARDED_BY(error_mu_);

  MetricsRegistry* registry_ = nullptr;
  Counter* batches_total_ = nullptr;
  Counter* records_total_ = nullptr;
  Counter* reports_total_ = nullptr;
  Counter* failures_total_ = nullptr;
  Counter* dead_letters_total_ = nullptr;
  Counter* produce_retries_total_ = nullptr;
  Gauge* input_lag_ = nullptr;
  Histogram* queue_wait_us_ = nullptr;
  Histogram* publish_us_ = nullptr;
};

}  // namespace loglens
