// Rebroadcastable broadcast variables (Section V-A).
//
// Spark broadcast variables are immutable: updating a model normally means
// restarting the job, losing all keyed state. LogLens instead *rebroadcasts*:
// the driver swaps the value and invalidates every worker's locally cached
// copy, so the next getValue() on a worker misses its cache and pulls the
// fresh value from the driver — while the job (and its state) keeps running.
//
// We reproduce the same protocol: a Broadcast<T> holds a driver-side value
// with a version counter and one cache slot per partition. `value(p)` is the
// worker-side getValue(): it serves the cached copy when the version still
// matches and performs a "pull" (counted in stats) otherwise. `update()` is
// the driver-side rebroadcast; the StreamEngine applies it between
// micro-batches under the control lock, so a batch never observes two model
// versions. The broadcast's identity (`id()`) is stable across updates,
// mirroring the paper's "maintain the same ID for the updated BV".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/lock_rank.h"
#include "common/sched.h"
#include "common/thread_annotations.h"

namespace loglens {

class BroadcastBase {
 public:
  virtual ~BroadcastBase() = default;
  uint64_t id() const { return id_; }

 protected:
  explicit BroadcastBase(uint64_t id) : id_(id) {}

 private:
  uint64_t id_;
};

template <typename T>
class Broadcast : public BroadcastBase {
 public:
  Broadcast(uint64_t id, T value, size_t num_partitions)
      : BroadcastBase(id),
        driver_value_(std::make_shared<const T>(std::move(value))),
        caches_(num_partitions) {}

  // Worker-side getValue() for one partition. Returns the partition's cached
  // copy on version match; otherwise pulls from the driver and re-caches.
  // The cache and driver locks are never nested (the first cache probe is
  // released before the driver pull) — the distinct kBroadcastDriver /
  // kBroadcastCache ranks verify that stays true.
  std::shared_ptr<const T> value(size_t partition)
      LOGLENS_EXCLUDES(driver_mu_) {
    Cache& c = caches_[partition];
    LOGLENS_SCHED_POINT("broadcast.version_probe");
    const uint64_t current = version_.load(std::memory_order_acquire);
    {
      RankedMutexLock lock(c.mu);
      if (c.cached != nullptr && c.version == current) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return c.cached;
      }
    }
    std::shared_ptr<const T> fresh;
    uint64_t fresh_version;
    {
      RankedMutexLock lock(driver_mu_);
      fresh = driver_value_;
      fresh_version = version_.load(std::memory_order_acquire);
    }
    pulls_.fetch_add(1, std::memory_order_relaxed);
    LOGLENS_SCHED_POINT("broadcast.pull");
    RankedMutexLock lock(c.mu);
    c.cached = fresh;
    c.version = fresh_version;
    return fresh;
  }

  // Driver-side rebroadcast: swap the value and bump the version, which
  // logically invalidates every partition cache. Call via
  // StreamEngine::enqueue_control so it lands between micro-batches.
  void update(T value) LOGLENS_EXCLUDES(driver_mu_) {
    RankedMutexLock lock(driver_mu_);
    driver_value_ = std::make_shared<const T>(std::move(value));
    LOGLENS_SCHED_POINT("broadcast.update");
    version_.fetch_add(1, std::memory_order_release);
  }

  uint64_t version() const { return version_.load(std::memory_order_acquire); }
  uint64_t pulls() const { return pulls_.load(std::memory_order_relaxed); }
  uint64_t cache_hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  struct Cache {
    RankedMutex mu{lock_rank::kBroadcastCache};
    std::shared_ptr<const T> cached LOGLENS_GUARDED_BY(mu);
    uint64_t version LOGLENS_GUARDED_BY(mu) = 0;
  };

  // Taken by control ops running under the engine's control phase, pinning
  // kEngineControl < kBroadcastDriver.
  RankedMutex driver_mu_{lock_rank::kBroadcastDriver};
  std::shared_ptr<const T> driver_value_ LOGLENS_GUARDED_BY(driver_mu_);
  std::atomic<uint64_t> version_{0};
  std::vector<Cache> caches_;
  std::atomic<uint64_t> pulls_{0};
  std::atomic<uint64_t> hits_{0};
};

}  // namespace loglens
