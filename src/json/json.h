// Minimal JSON value model, parser, and serializer.
//
// The stateless parser emits parsed logs as JSON objects (Section III of the
// paper: {"Action":"Connect","Server":"127.0.0.1",...}), and the storage
// layer persists documents as JSONL. Objects preserve insertion order so the
// emitted fields appear in pattern order, which keeps parsed output stable
// and diff-friendly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace loglens {

class Json;
using JsonArray = std::vector<Json>;
// Insertion-ordered object; lookups are linear, which is fine for log records
// with tens of fields.
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}                 // NOLINT
  Json(bool b) : value_(b) {}                               // NOLINT
  Json(int v) : value_(static_cast<int64_t>(v)) {}          // NOLINT
  Json(int64_t v) : value_(v) {}                            // NOLINT
  Json(double v) : value_(v) {}                             // NOLINT
  Json(const char* s) : value_(std::string(s)) {}           // NOLINT
  Json(std::string s) : value_(std::move(s)) {}             // NOLINT
  Json(std::string_view s) : value_(std::string(s)) {}      // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}               // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}              // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  int64_t as_int() const {
    return is_double() ? static_cast<int64_t>(std::get<double>(value_))
                       : std::get<int64_t>(value_);
  }
  double as_double() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(value_))
                    : std::get<double>(value_);
  }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  // Makes this value a string and returns it for in-place assembly. When the
  // value already holds a string its storage (capacity) is preserved — the
  // parser hot path reuses field-value slots this way without reallocating.
  std::string& emplace_string() {
    if (auto* s = std::get_if<std::string>(&value_)) return *s;
    value_ = std::string();
    return std::get<std::string>(value_);
  }

  // Object helpers. find() returns nullptr when the key is absent or this is
  // not an object; set() appends or overwrites.
  const Json* find(std::string_view key) const;
  void set(std::string_view key, Json value);

  // String field with default.
  std::string_view get_string(std::string_view key,
                              std::string_view fallback = "") const;
  int64_t get_int(std::string_view key, int64_t fallback = 0) const;

  // Compact single-line serialization (JSONL-safe).
  std::string dump() const;
  void dump_to(std::string& out) const;

  static StatusOr<Json> parse(std::string_view text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, JsonArray,
               JsonObject>
      value_;
};

// Escapes `s` as a JSON string literal (with surrounding quotes) into `out`.
void json_escape(std::string_view s, std::string& out);

}  // namespace loglens
