#include "json/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace loglens {

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(std::string_view key, Json value) {
  if (!is_object()) value_ = JsonObject{};
  for (auto& [k, v] : as_object()) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  as_object().emplace_back(std::string(key), std::move(value));
}

std::string_view Json::get_string(std::string_view key,
                                  std::string_view fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

int64_t Json::get_int(std::string_view key, int64_t fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_int() : fallback;
}

void json_escape(std::string_view s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void Json::dump_to(std::string& out) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(std::get<int64_t>(value_));
  } else if (is_double()) {
    double d = std::get<double>(value_);
    if (std::isfinite(d)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out += buf;
    } else {
      out += "null";  // JSON has no Inf/NaN
    }
  } else if (is_string()) {
    json_escape(as_string(), out);
  } else if (is_array()) {
    out.push_back('[');
    bool first = true;
    for (const auto& v : as_array()) {
      if (!first) out.push_back(',');
      v.dump_to(out);
      first = false;
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : as_object()) {
      if (!first) out.push_back(',');
      json_escape(k, out);
      out.push_back(':');
      v.dump_to(out);
      first = false;
    }
    out.push_back('}');
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> parse() {
    skip_ws();
    auto v = parse_value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) {
      return StatusOr<Json>::Error("trailing characters at offset " +
                                   std::to_string(pos_));
    }
    return v;
  }

 private:
  StatusOr<Json> fail(const std::string& what) {
    return StatusOr<Json>::Error(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<Json> parse_value() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return StatusOr<Json>(s.status());
        return Json(std::move(s.value()));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Json(true);
        }
        return fail("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Json(false);
        }
        return fail("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Json(nullptr);
        }
        return fail("invalid literal");
      default:
        return parse_number();
    }
  }

  StatusOr<std::string> parse_string() {
    if (!consume('"')) {
      return StatusOr<std::string>::Error("expected '\"' at offset " +
                                          std::to_string(pos_));
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return StatusOr<std::string>::Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return StatusOr<std::string>::Error("bad \\u escape");
          }
          // Encode as UTF-8 (surrogate pairs not recombined; logs are ASCII
          // in practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return StatusOr<std::string>::Error("bad escape character");
      }
    }
    return StatusOr<std::string>::Error("unterminated string");
  }

  StatusOr<Json> parse_number() {
    size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (consume('.')) {
      is_double = true;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string_view num = text_.substr(start, pos_ - start);
    if (num.empty() || num == "-") return fail("invalid number");
    if (!is_double) {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), v);
      if (ec == std::errc() && p == num.data() + num.size()) return Json(v);
    }
    double d = 0;
    auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), d);
    if (ec != std::errc() || p != num.data() + num.size()) {
      return fail("invalid number");
    }
    return Json(d);
  }

  StatusOr<Json> parse_array() {
    consume('[');
    JsonArray arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      skip_ws();
      auto v = parse_value();
      if (!v.ok()) return v;
      arr.push_back(std::move(v.value()));
      skip_ws();
      if (consume(']')) return Json(std::move(arr));
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  StatusOr<Json> parse_object() {
    consume('{');
    JsonObject obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key.ok()) return StatusOr<Json>(key.status());
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      auto v = parse_value();
      if (!v.ok()) return v;
      obj.emplace_back(std::move(key.value()), std::move(v.value()));
      skip_ws();
      if (consume('}')) return Json(std::move(obj));
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Json> Json::parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace loglens
