#include "regexlite/regex.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>

namespace loglens {

namespace {

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  enum class Kind { kChar, kAny, kClass, kConcat, kAlt, kRepeat, kGroup, kBegin, kEnd };
  Kind kind;
  char ch = 0;                   // kChar
  uint32_t class_index = 0;      // kClass
  std::vector<NodePtr> children; // kConcat, kAlt
  NodePtr child;                 // kRepeat, kGroup
  int min = 0, max = 0;          // kRepeat; max == -1 means unbounded
  bool greedy = true;            // kRepeat
  int capture = -1;              // kGroup; -1 for non-capturing copies
};

NodePtr make_node(Node::Kind kind) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  return n;
}

// Deep copy used when expanding bounded quantifiers; capture indices are
// preserved so repeated groups keep writing the same slots (last iteration
// wins, matching mainstream engine semantics).
NodePtr clone(const Node& n) {
  auto c = std::make_unique<Node>();
  c->kind = n.kind;
  c->ch = n.ch;
  c->class_index = n.class_index;
  c->min = n.min;
  c->max = n.max;
  c->greedy = n.greedy;
  c->capture = n.capture;
  if (n.child) c->child = clone(*n.child);
  for (const auto& ch : n.children) c->children.push_back(clone(*ch));
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// Compiler: pattern text -> AST -> bytecode
// ---------------------------------------------------------------------------

class RegexCompiler {
 public:
  RegexCompiler(std::string_view pattern, Regex& out)
      : pattern_(pattern), out_(out) {}

  Status compile() {
    auto ast = parse_alt();
    if (!error_.empty()) return Status::Error(error_);
    if (pos_ != pattern_.size()) {
      return Status::Error("unexpected ')' at offset " + std::to_string(pos_));
    }
    out_.group_count_ = static_cast<size_t>(next_capture_);
    // Slot 0/1 hold the whole-match bounds.
    emit(*ast);
    out_.prog_.push_back({Regex::Op::kMatch, 0, 0, 0});
    return Status::Ok();
  }

 private:
  // --- parsing ---

  bool eof() const { return pos_ >= pattern_.size(); }
  char peek() const { return pattern_[pos_]; }
  char take() { return pattern_[pos_++]; }

  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  NodePtr parse_alt() {
    auto first = parse_concat();
    if (eof() || peek() != '|') return first;
    auto alt = make_node(Node::Kind::kAlt);
    alt->children.push_back(std::move(first));
    while (!eof() && peek() == '|') {
      take();
      alt->children.push_back(parse_concat());
    }
    return alt;
  }

  NodePtr parse_concat() {
    auto cat = make_node(Node::Kind::kConcat);
    while (!eof() && peek() != '|' && peek() != ')') {
      auto atom = parse_repeat();
      if (!atom) break;
      cat->children.push_back(std::move(atom));
    }
    return cat;
  }

  NodePtr parse_repeat() {
    auto atom = parse_atom();
    if (!atom) return atom;
    while (!eof()) {
      char c = peek();
      int min = 0, max = 0;
      if (c == '*') {
        take();
        min = 0;
        max = -1;
      } else if (c == '+') {
        take();
        min = 1;
        max = -1;
      } else if (c == '?') {
        take();
        min = 0;
        max = 1;
      } else if (c == '{') {
        size_t save = pos_;
        if (!parse_bounds(min, max)) {
          pos_ = save;
          break;  // not a quantifier: '{' is a literal, handled by parse_atom
        }
      } else {
        break;
      }
      auto rep = make_node(Node::Kind::kRepeat);
      rep->min = min;
      rep->max = max;
      rep->greedy = true;
      if (!eof() && peek() == '?') {
        take();
        rep->greedy = false;
      }
      rep->child = std::move(atom);
      atom = std::move(rep);
    }
    return atom;
  }

  // Parses "{m}", "{m,}", or "{m,n}" starting at '{'. Returns false (without
  // reporting an error) if the braces do not form a valid quantifier.
  bool parse_bounds(int& min, int& max) {
    size_t p = pos_ + 1;  // past '{'
    int m = 0;
    size_t digits = 0;
    while (p < pattern_.size() && pattern_[p] >= '0' && pattern_[p] <= '9') {
      m = m * 10 + (pattern_[p] - '0');
      if (m > 1000) return false;  // cap expansion size
      ++p;
      ++digits;
    }
    if (digits == 0) return false;
    if (p < pattern_.size() && pattern_[p] == '}') {
      min = max = m;
      pos_ = p + 1;
      return true;
    }
    if (p >= pattern_.size() || pattern_[p] != ',') return false;
    ++p;
    if (p < pattern_.size() && pattern_[p] == '}') {
      min = m;
      max = -1;
      pos_ = p + 1;
      return true;
    }
    int n = 0;
    digits = 0;
    while (p < pattern_.size() && pattern_[p] >= '0' && pattern_[p] <= '9') {
      n = n * 10 + (pattern_[p] - '0');
      if (n > 1000) return false;
      ++p;
      ++digits;
    }
    if (digits == 0 || p >= pattern_.size() || pattern_[p] != '}' || n < m) {
      return false;
    }
    min = m;
    max = n;
    pos_ = p + 1;
    return true;
  }

  NodePtr parse_atom() {
    if (eof()) return make_node(Node::Kind::kConcat);
    char c = take();
    switch (c) {
      case '(': {
        auto group = make_node(Node::Kind::kGroup);
        // Support the common non-capturing form (?:...).
        if (pos_ + 1 < pattern_.size() && peek() == '?' &&
            pattern_[pos_ + 1] == ':') {
          pos_ += 2;
        } else {
          group->capture = next_capture_++;
        }
        group->child = parse_alt();
        if (eof() || peek() != ')') {
          fail("missing ')'");
          return group;
        }
        take();
        return group;
      }
      case '[':
        return parse_class();
      case '.':
        return make_node(Node::Kind::kAny);
      case '^':
        return make_node(Node::Kind::kBegin);
      case '$':
        return make_node(Node::Kind::kEnd);
      case '\\':
        return parse_escape();
      case '*':
      case '+':
      case '?':
        fail("quantifier with nothing to repeat");
        return make_node(Node::Kind::kConcat);
      default: {
        auto lit = make_node(Node::Kind::kChar);
        lit->ch = c;
        return lit;
      }
    }
  }

  uint32_t intern_class(const std::bitset<256>& cls) {
    out_.classes_.push_back(cls);
    return static_cast<uint32_t>(out_.classes_.size() - 1);
  }

  static void add_predef(std::bitset<256>& cls, char kind) {
    auto add_range = [&cls](unsigned char lo, unsigned char hi) {
      for (unsigned c = lo; c <= hi; ++c) cls.set(c);
    };
    switch (kind) {
      case 'd': add_range('0', '9'); break;
      case 'w':
        add_range('a', 'z');
        add_range('A', 'Z');
        add_range('0', '9');
        cls.set('_');
        break;
      case 's':
        for (char ws : {' ', '\t', '\n', '\r', '\f', '\v'}) {
          cls.set(static_cast<unsigned char>(ws));
        }
        break;
      default: break;
    }
  }

  NodePtr class_node(const std::bitset<256>& cls) {
    auto n = make_node(Node::Kind::kClass);
    n->class_index = intern_class(cls);
    return n;
  }

  NodePtr parse_escape() {
    if (eof()) {
      fail("dangling backslash");
      return make_node(Node::Kind::kConcat);
    }
    char c = take();
    std::bitset<256> cls;
    switch (c) {
      case 'd': case 'w': case 's':
        add_predef(cls, c);
        return class_node(cls);
      case 'D': case 'W': case 'S':
        // Negated class: everything not in the lowercase counterpart.
        add_predef(cls, static_cast<char>(c - 'A' + 'a'));
        cls.flip();
        return class_node(cls);
      case 'n': { auto n = make_node(Node::Kind::kChar); n->ch = '\n'; return n; }
      case 't': { auto n = make_node(Node::Kind::kChar); n->ch = '\t'; return n; }
      case 'r': { auto n = make_node(Node::Kind::kChar); n->ch = '\r'; return n; }
      default: {
        // Escaped punctuation matches itself.
        auto n = make_node(Node::Kind::kChar);
        n->ch = c;
        return n;
      }
    }
  }

  NodePtr parse_class() {
    std::bitset<256> cls;
    bool negate = false;
    if (!eof() && peek() == '^') {
      take();
      negate = true;
    }
    bool first = true;
    while (true) {
      if (eof()) {
        fail("missing ']'");
        break;
      }
      char c = take();
      if (c == ']' && !first) break;
      first = false;
      if (c == '\\') {
        if (eof()) {
          fail("dangling backslash in class");
          break;
        }
        char e = take();
        switch (e) {
          case 'd': case 'w': case 's': add_predef(cls, e); continue;
          case 'n': cls.set('\n'); continue;
          case 't': cls.set('\t'); continue;
          case 'r': cls.set('\r'); continue;
          default: c = e; break;
        }
      }
      // Range?
      if (!eof() && peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        take();  // '-'
        char hi = take();
        if (hi == '\\' && !eof()) hi = take();
        if (static_cast<unsigned char>(hi) < static_cast<unsigned char>(c)) {
          fail("invalid range in class");
          break;
        }
        for (unsigned v = static_cast<unsigned char>(c);
             v <= static_cast<unsigned char>(hi); ++v) {
          cls.set(v);
        }
      } else {
        cls.set(static_cast<unsigned char>(c));
      }
    }
    if (negate) cls.flip();
    return class_node(cls);
  }

  // --- code emission ---

  using Op = Regex::Op;

  uint32_t here() const { return static_cast<uint32_t>(out_.prog_.size()); }

  void emit(const Node& n) {
    switch (n.kind) {
      case Node::Kind::kChar:
        out_.prog_.push_back({Op::kChar, n.ch, 0, 0});
        break;
      case Node::Kind::kAny:
        out_.prog_.push_back({Op::kAny, 0, 0, 0});
        break;
      case Node::Kind::kClass:
        out_.prog_.push_back({Op::kClass, 0, n.class_index, 0});
        break;
      case Node::Kind::kBegin:
        out_.prog_.push_back({Op::kBegin, 0, 0, 0});
        break;
      case Node::Kind::kEnd:
        out_.prog_.push_back({Op::kEnd, 0, 0, 0});
        break;
      case Node::Kind::kConcat:
        for (const auto& c : n.children) emit(*c);
        break;
      case Node::Kind::kGroup:
        if (n.capture >= 0) {
          out_.prog_.push_back(
              {Op::kSave, 0, static_cast<uint32_t>(2 * n.capture + 2), 0});
          emit(*n.child);
          out_.prog_.push_back(
              {Op::kSave, 0, static_cast<uint32_t>(2 * n.capture + 3), 0});
        } else {
          emit(*n.child);
        }
        break;
      case Node::Kind::kAlt: {
        // split a | split b | ... | last
        std::vector<uint32_t> jumps;
        for (size_t i = 0; i + 1 < n.children.size(); ++i) {
          uint32_t split = here();
          out_.prog_.push_back({Op::kSplit, 0, 0, 0});
          out_.prog_[split].x = here();
          emit(*n.children[i]);
          jumps.push_back(here());
          out_.prog_.push_back({Op::kJmp, 0, 0, 0});
          out_.prog_[split].y = here();
        }
        emit(*n.children.back());
        for (uint32_t j : jumps) out_.prog_[j].x = here();
        break;
      }
      case Node::Kind::kRepeat:
        emit_repeat(n);
        break;
    }
  }

  void emit_repeat(const Node& n) {
    const Node& body = *n.child;
    // Mandatory copies.
    for (int i = 0; i < n.min; ++i) emit(body);
    if (n.max == -1) {
      // Kleene loop over one more body, guarded against empty iterations.
      uint32_t slot = static_cast<uint32_t>(out_.loop_count_++);
      uint32_t l1 = here();
      out_.prog_.push_back({Op::kSplit, 0, 0, 0});
      uint32_t l2 = here();
      out_.prog_.push_back({Op::kMark, 0, slot, 0});
      emit(body);
      out_.prog_.push_back({Op::kCheckProgress, 0, slot, 0});
      out_.prog_.push_back({Op::kJmp, 0, l1, 0});
      uint32_t l3 = here();
      if (n.greedy) {
        out_.prog_[l1].x = l2;
        out_.prog_[l1].y = l3;
      } else {
        out_.prog_[l1].x = l3;
        out_.prog_[l1].y = l2;
      }
    } else {
      // (max - min) nested optionals; each split can bail out to the end.
      std::vector<uint32_t> splits;
      for (int i = n.min; i < n.max; ++i) {
        splits.push_back(here());
        out_.prog_.push_back({Op::kSplit, 0, 0, 0});
        uint32_t start = here();
        emit(body);
        if (n.greedy) {
          out_.prog_[splits.back()].x = start;
        } else {
          out_.prog_[splits.back()].y = start;
        }
      }
      uint32_t end = here();
      for (uint32_t s : splits) {
        if (n.greedy) {
          out_.prog_[s].y = end;
        } else {
          out_.prog_[s].x = end;
        }
      }
    }
  }

  std::string_view pattern_;
  Regex& out_;
  size_t pos_ = 0;
  int next_capture_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Regex
// ---------------------------------------------------------------------------

StatusOr<Regex> Regex::compile(std::string_view pattern) {
  Regex re;
  re.pattern_ = std::string(pattern);
  RegexCompiler compiler(pattern, re);
  Status s = compiler.compile();
  if (!s.ok()) return StatusOr<Regex>(s);
  return re;
}

Regex Regex::compile_or_die(std::string_view pattern) {
  auto re = compile(pattern);
  if (!re.ok()) {
    std::fprintf(stderr, "regexlite: compile_or_die(\"%.*s\") failed: %s\n",
                 static_cast<int>(pattern.size()), pattern.data(),
                 re.status().message().c_str());
    std::abort();
  }
  return std::move(re.value());
}

namespace {

struct Undo {
  bool is_mark;
  uint32_t index;
  size_t old_value;
};
struct Choice {
  uint32_t pc;
  size_t sp;
  size_t undo_size;
};

// Per-thread VM state reused across run() calls: the vectors keep their
// capacity, so a warm thread executes a match attempt with zero heap
// allocations. run() never re-enters itself on the same thread, so a single
// scratch per thread is safe.
struct RunScratch {
  std::vector<size_t> slots;
  std::vector<size_t> marks;
  std::vector<Undo> undo;
  std::vector<Choice> stack;
};

RunScratch& run_scratch() {
  static thread_local RunScratch scratch;
  return scratch;
}

}  // namespace

// Execution: an iterative backtracking VM. Backtrack points (from kSplit)
// go on an explicit heap stack, and kSave/kMark slot writes go on an undo
// log that is rolled back when a backtrack point is popped — so memory use
// is bounded by the live choice points, never by input length (a recursive
// matcher overflows the thread stack on ~100 KB tokens).
bool Regex::run(std::string_view text, size_t start, bool anchored_end,
                RegexMatch* m) const {
  RunScratch& scratch = run_scratch();
  std::vector<size_t>& slots = scratch.slots;
  std::vector<size_t>& marks = scratch.marks;
  std::vector<Undo>& undo = scratch.undo;
  std::vector<Choice>& stack = scratch.stack;
  slots.assign(2 * (group_count_ + 1), RegexMatch::kUnset);
  marks.assign(loop_count_, RegexMatch::kUnset);
  undo.clear();
  stack.clear();
  // run() only ever *sets* m->budget_exhausted. Clearing it here would let a
  // later start position that fails cleanly (within budget) erase the record
  // of an earlier exhausted attempt, turning "unknown" into "genuine
  // no-match" for the whole search. The public entry points reset the flag
  // once per call, so it is sticky across the attempts of that call.

  uint32_t pc = 0;
  size_t sp = start;
  size_t match_end = 0;
  uint64_t steps = 0;
  bool matched = false;

  auto backtrack = [&]() -> bool {
    if (stack.empty()) return false;
    Choice c = stack.back();
    stack.pop_back();
    while (undo.size() > c.undo_size) {
      const Undo& u = undo.back();
      (u.is_mark ? marks : slots)[u.index] = u.old_value;
      undo.pop_back();
    }
    pc = c.pc;
    sp = c.sp;
    return true;
  };

  while (true) {
    if (++steps > step_budget_) {
      budget_exhausted_.v.fetch_add(1, std::memory_order_relaxed);
      if (m != nullptr) m->budget_exhausted = true;
      return false;
    }
    const Inst& in = prog_[pc];
    bool fail = false;
    switch (in.op) {
      case Op::kChar:
        if (sp < text.size() && text[sp] == in.ch) {
          ++pc;
          ++sp;
        } else {
          fail = true;
        }
        break;
      case Op::kAny:
        if (sp < text.size() && text[sp] != '\n') {
          ++pc;
          ++sp;
        } else {
          fail = true;
        }
        break;
      case Op::kClass:
        if (sp < text.size() &&
            classes_[in.x].test(static_cast<unsigned char>(text[sp]))) {
          ++pc;
          ++sp;
        } else {
          fail = true;
        }
        break;
      case Op::kBegin:
        if (sp != 0) {
          fail = true;
        } else {
          ++pc;
        }
        break;
      case Op::kEnd:
        if (sp != text.size()) {
          fail = true;
        } else {
          ++pc;
        }
        break;
      case Op::kJmp:
        pc = in.x;
        break;
      case Op::kSplit:
        stack.push_back({in.y, sp, undo.size()});
        pc = in.x;
        break;
      case Op::kSave:
        undo.push_back({false, in.x, slots[in.x]});
        slots[in.x] = sp;
        ++pc;
        break;
      case Op::kMark:
        undo.push_back({true, in.x, marks[in.x]});
        marks[in.x] = sp;
        ++pc;
        break;
      case Op::kCheckProgress:
        if (sp == marks[in.x]) {
          fail = true;  // empty loop iteration
        } else {
          ++pc;
        }
        break;
      case Op::kMatch:
        if (anchored_end && sp != text.size()) {
          fail = true;
        } else {
          match_end = sp;
          matched = true;
        }
        break;
    }
    if (matched) break;
    if (fail && !backtrack()) return false;
  }

  if (m != nullptr) {
    m->begin = start;
    m->end = match_end;
    m->groups.clear();
    m->groups.reserve(group_count_);
    for (size_t g = 0; g < group_count_; ++g) {
      m->groups.emplace_back(slots[2 * g + 2], slots[2 * g + 3]);
    }
  }
  return true;
}

bool Regex::full_match(std::string_view text, RegexMatch& m) const {
  m.budget_exhausted = false;
  return run(text, 0, /*anchored_end=*/true, &m);
}

bool Regex::full_match(std::string_view text) const {
  return run(text, 0, /*anchored_end=*/true, nullptr);
}

bool Regex::search(std::string_view text, RegexMatch& m) const {
  m.budget_exhausted = false;
  for (size_t start = 0; start <= text.size(); ++start) {
    if (run(text, start, /*anchored_end=*/false, &m)) return true;
    // A pattern anchored with '^' can only ever match at 0; the kBegin
    // instruction makes later starts fail fast, so no special case needed.
  }
  return false;
}

bool Regex::search(std::string_view text) const {
  for (size_t start = 0; start <= text.size(); ++start) {
    if (run(text, start, /*anchored_end=*/false, nullptr)) return true;
  }
  return false;
}

std::string Regex::replace_all(std::string_view text,
                               std::string_view replacement,
                               bool* budget_exhausted) const {
  if (budget_exhausted != nullptr) *budget_exhausted = false;
  std::string out;
  size_t pos = 0;
  bool exhausted = false;
  while (pos <= text.size()) {
    // Match against the *full* text with an absolute start offset, never a
    // remainder substring: anchors see real positions, so '^' matches only
    // at offset 0 and '$' only at the true end of input (replace_all of
    // "^a" on "aaa" rewrites one 'a', not all three).
    RegexMatch local;
    bool found = false;
    for (size_t start = pos; start <= text.size(); ++start) {
      if (run(text, start, /*anchored_end=*/false, &local)) {
        found = true;
        break;
      }
    }
    // Sticky across this scan's start positions (run() never clears it).
    exhausted |= local.budget_exhausted;
    if (!found) break;
    out.append(text.substr(pos, local.begin - pos));
    // Expand the replacement template.
    for (size_t i = 0; i < replacement.size(); ++i) {
      char c = replacement[i];
      if (c == '$' && i + 1 < replacement.size()) {
        char d = replacement[i + 1];
        if (d == '$') {
          out.push_back('$');
          ++i;
          continue;
        }
        if (d >= '0' && d <= '9') {
          size_t g = static_cast<size_t>(d - '0');
          if (g == 0) {
            out.append(text.substr(local.begin, local.end - local.begin));
          } else if (g - 1 < local.groups.size() &&
                     local.groups[g - 1].first != RegexMatch::kUnset) {
            out.append(text.substr(local.groups[g - 1].first,
                                   local.groups[g - 1].second -
                                       local.groups[g - 1].first));
          }
          ++i;
          continue;
        }
      }
      out.push_back(c);
    }
    if (local.end > local.begin) {
      pos = local.end;
    } else {
      if (local.begin < text.size()) {
        out.push_back(text[local.begin]);  // avoid infinite loop: empty match
      }
      pos = local.begin + 1;
    }
  }
  if (pos < text.size()) out.append(text.substr(pos));
  if (budget_exhausted != nullptr) *budget_exhausted = exhausted;
  return out;
}

size_t Regex::compiled_bytes() const {
  return pattern_.size() + prog_.size() * sizeof(Inst) +
         classes_.size() * sizeof(std::bitset<256>);
}

}  // namespace loglens
