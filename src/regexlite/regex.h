// regexlite: a small backtracking regular-expression engine.
//
// LogLens needs regular expressions in three places: the datatype definitions
// of Table I (WORD, NUMBER, IP, ...), user-supplied tokenizer split rules
// (Section III-A1), and the Logstash-style baseline parser which compiles
// whole GROK patterns to regexes and scans them linearly. Depending on a
// full-featured engine would hide exactly the cost structure the paper
// measures, so we implement the required subset from scratch:
//
//   literals, '.', character classes [a-z0-9_] / [^...], escapes
//   (\d \D \w \W \s \S plus punctuation), grouping '(...)' with capture,
//   alternation '|', anchors '^' '$', quantifiers * + ? {m} {m,} {m,n}
//   with lazy variants (*?, +?, ??, {m,n}?).
//
// Patterns compile to a bytecode program executed by an iterative
// backtracking VM (Pike-style instruction set, backtracking execution). A
// step budget bounds pathological backtracking; exceeding it reports
// no-match — the safe direction for anomaly detection — but the exhaustion
// is surfaced (RegexMatch::budget_exhausted + a per-instance counter) so
// callers can tell a truncated search from a genuine no-match.
//
// Hot-path contract: run() keeps its VM state (slot/undo/choice stacks) in
// thread-local scratch reused across calls, so a match attempt performs no
// heap allocation once a thread is warm.
#pragma once

#include <atomic>
#include <bitset>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace loglens {

struct RegexMatch {
  size_t begin = 0;  // byte offset of the whole match
  size_t end = 0;
  // groups[i] is the i-th capture group (1-based in replacement syntax);
  // npos/npos when the group did not participate.
  static constexpr size_t kUnset = static_cast<size_t>(-1);
  std::vector<std::pair<size_t, size_t>> groups;
  // True when any attempt of the last full_match/search call gave up because
  // the VM step budget ran out (the result is then "unknown", reported as
  // no-match). Sticky across the start-position attempts of one call: a
  // search that exhausts the budget at an early start and fails cleanly at
  // every later start still reports exhaustion. Reset at the top of each
  // full_match/search call, never inside an attempt.
  bool budget_exhausted = false;

  std::string_view group_text(std::string_view subject, size_t index) const {
    if (index >= groups.size() || groups[index].first == kUnset) return {};
    return subject.substr(groups[index].first,
                          groups[index].second - groups[index].first);
  }
};

class Regex {
 public:
  Regex() = default;

  // Compiles `pattern`; reports syntax errors with offsets.
  static StatusOr<Regex> compile(std::string_view pattern);

  // Convenience: compiles or aborts (after printing the pattern and the
  // compile error to stderr). For string literals known to be valid.
  static Regex compile_or_die(std::string_view pattern);

  // Whole-string match (as if anchored on both ends).
  bool full_match(std::string_view text) const;
  bool full_match(std::string_view text, RegexMatch& m) const;

  // Leftmost match anywhere in `text`.
  bool search(std::string_view text, RegexMatch& m) const;
  bool search(std::string_view text) const;

  // Replaces every non-overlapping match with `replacement`, where $1..$9
  // refer to capture groups and $0 to the whole match ($$ emits '$').
  // Matching is performed against the full text with a start offset, so
  // '^' matches only at offset 0 and '$' only at the true end of input —
  // never at the seams left by earlier replacements. If any scan exhausts
  // the step budget, the remaining text is left unreplaced and
  // *budget_exhausted (when non-null) is set so the caller can tell the
  // truncated result from a clean completion.
  std::string replace_all(std::string_view text, std::string_view replacement,
                          bool* budget_exhausted = nullptr) const;

  const std::string& pattern() const { return pattern_; }
  size_t group_count() const { return group_count_; }

  // Rough memory footprint of the compiled program, used by the baseline
  // parser memory experiment.
  size_t compiled_bytes() const;

  // Maximum VM steps per match attempt (default 4M). Exposed for tests.
  void set_step_budget(uint64_t budget) { step_budget_ = budget; }

  // Times any match attempt on this instance gave up on budget exhaustion
  // (monotonic; fed into loglens_regex_budget_exhausted_total).
  uint64_t budget_exhausted_count() const {
    return budget_exhausted_.v.load(std::memory_order_relaxed);
  }

 private:
  enum class Op : uint8_t {
    kChar, kAny, kClass, kSplit, kJmp, kSave, kMatch, kBegin, kEnd,
    // Empty-loop guards: kMark snapshots the cursor entering a Kleene
    // iteration; kCheckProgress fails the path when the body consumed
    // nothing (the exit branch of the loop's Split covers that case).
    kMark, kCheckProgress,
  };

  struct Inst {
    Op op;
    char ch = 0;        // kChar
    uint32_t x = 0;     // kSplit/kJmp target, kClass index, kSave slot
    uint32_t y = 0;     // kSplit second target
  };

  // `m` may be null when the caller only needs the boolean (skips group
  // extraction entirely).
  bool run(std::string_view text, size_t start, bool anchored_end,
           RegexMatch* m) const;

  // Relaxed counter with value-copy semantics so Regex stays copyable.
  struct RelaxedCounter {
    std::atomic<uint64_t> v{0};
    RelaxedCounter() = default;
    RelaxedCounter(const RelaxedCounter& o)
        : v(o.v.load(std::memory_order_relaxed)) {}
    RelaxedCounter& operator=(const RelaxedCounter& o) {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
  };

  std::string pattern_;
  std::vector<Inst> prog_;
  std::vector<std::bitset<256>> classes_;
  size_t group_count_ = 0;
  size_t loop_count_ = 0;
  uint64_t step_budget_ = 4u << 20;
  mutable RelaxedCounter budget_exhausted_;

  friend class RegexCompiler;
};

}  // namespace loglens
