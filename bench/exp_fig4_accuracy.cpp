// Figure 4: log sequence anomaly detector accuracy on D1 and D2.
// Paper: D1 has 21 anomalous sequences, D2 has 13; LogLens finds all of
// them (100% recall). At LOGLENS_SCALE >= 0.05 the injected ground truth is
// exactly the paper's 21 / 13.
#include <cstdio>

#include "bench/exp_util.h"

int main() {
  using namespace loglens;
  double scale = bench::scale_or(0.1);

  bench::print_header("Figure 4: sequence anomaly detection accuracy");
  std::printf("scale=%g (paper: 16k/16k and 18k/18k logs)\n\n", scale);
  std::printf("%-8s %-14s %-14s %-8s %-6s\n", "Dataset", "GroundTruth",
              "LogLens", "Recall", "FPs");

  bool all_perfect = true;
  for (const char* name : {"D1", "D2"}) {
    Dataset ds = make_dataset(name, scale);
    ServiceOptions opts;
    opts.build.discovery = recommended_discovery(name);
    LogLensService service(opts);
    BuildResult build = service.train(ds.training);
    if (build.unparsed_training_logs != 0) {
      std::printf("  [warn] %zu unparsed training logs\n",
                  build.unparsed_training_logs);
    }
    bench::RunResult run = bench::run_detection(service, ds, true);
    double r = bench::recall(run.anomalous_ids, ds.anomalous_event_ids);
    size_t fp = bench::false_positives(run.anomalous_ids,
                                       ds.anomalous_event_ids);
    all_perfect = all_perfect && r == 1.0 && fp == 0;
    std::printf("%-8s %-14zu %-14zu %6.1f%%  %zu\n", name,
                ds.injected_anomalies(), run.anomalous_ids.size(), r * 100,
                fp);
  }
  std::printf("\npaper: 21/21 (D1) and 13/13 (D2), 100%% recall -> %s\n",
              all_perfect ? "REPRODUCED" : "NOT reproduced");
  return all_perfect ? 0 : 1;
}
