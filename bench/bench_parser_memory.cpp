// Section VI-A memory claim: Logstash "consumes huge memory" and "cannot
// handle a large number of patterns". We report the resident bytes of each
// engine's compiled model across the four pattern-set sizes. The absolute
// JVM overhead of real Logstash is out of scope (see DESIGN.md); the shape —
// the baseline's per-pattern footprint dwarfing the signature index — is
// what this regenerates.
#include <cstdio>

#include "baseline/logstash_parser.h"
#include "bench/bench_util.h"
#include "datagen/datasets.h"
#include "parser/log_parser.h"

int main() {
  using namespace loglens;
  double scale = bench::scale_or(0.003);

  bench::print_header("Parser model memory: LogLens index vs Logstash regexes");
  std::printf("%-8s %-9s %-14s %-16s %s\n", "Dataset", "Patterns",
              "LogLens (KB)", "Logstash (KB)", "Ratio");
  for (const char* name : {"D3", "D4", "D5", "D6"}) {
    Dataset ds = make_dataset(name, scale);
    auto pre = std::move(Preprocessor::create({}).value());
    auto train = bench::tokenize_all(pre, ds.training);
    auto patterns =
        bench::discover_patterns(pre, train, recommended_discovery(name));

    LogParser loglens_parser(patterns, pre.classifier());
    // Warm the index with the test stream so its resident size is the
    // steady-state one.
    auto test = bench::tokenize_all(pre, ds.testing);
    for (const auto& log : test) loglens_parser.parse(log);
    LogstashParser logstash(patterns);

    double a = static_cast<double>(loglens_parser.resident_bytes()) / 1024.0;
    double b = static_cast<double>(logstash.resident_bytes()) / 1024.0;
    std::printf("%-8s %-9zu %-14.1f %-16.1f %.1fx\n", name, patterns.size(),
                a, b, b / a);
  }
  return 0;
}
