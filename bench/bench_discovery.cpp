// Pattern-discovery scalability (behind §VII-A's "367 patterns in 50 s"):
// LogMine-style clustering cost as a function of corpus size and of the
// number of distinct templates.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datagen/template_gen.h"

namespace loglens {
namespace {

std::vector<TokenizedLog> corpus(size_t templates, size_t logs,
                                 Preprocessor& pre) {
  TemplateCorpusSpec spec;
  spec.flavor = "storage";
  spec.num_templates = templates;
  spec.train_logs = logs;
  spec.test_logs = 1;
  spec.seed = 31;
  Dataset ds = generate_template_corpus(spec, "disc");
  return bench::tokenize_all(pre, ds.training);
}

void BM_DiscoveryVsCorpusSize(benchmark::State& state) {
  auto pre = std::move(Preprocessor::create({}).value());
  auto logs = corpus(100, static_cast<size_t>(state.range(0)), pre);
  DiscoveryOptions opts;
  opts.max_dist = 0.27;
  for (auto _ : state) {
    PatternDiscoverer discoverer(opts, pre.classifier());
    auto patterns = discoverer.discover(logs);
    benchmark::DoNotOptimize(patterns.size());
    state.counters["patterns"] = static_cast<double>(patterns.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(logs.size()));
}
BENCHMARK(BM_DiscoveryVsCorpusSize)
    ->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_DiscoveryVsTemplateCount(benchmark::State& state) {
  auto pre = std::move(Preprocessor::create({}).value());
  const auto templates = static_cast<size_t>(state.range(0));
  auto logs = corpus(templates, std::max<size_t>(templates * 6, 2000), pre);
  DiscoveryOptions opts;
  opts.max_dist = 0.27;
  for (auto _ : state) {
    PatternDiscoverer discoverer(opts, pre.classifier());
    auto patterns = discoverer.discover(logs);
    benchmark::DoNotOptimize(patterns.size());
    state.counters["patterns"] = static_cast<double>(patterns.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(logs.size()));
}
BENCHMARK(BM_DiscoveryVsTemplateCount)
    ->Arg(50)->Arg(150)->Arg(301)
    ->Unit(benchmark::kMillisecond);

// The hierarchical reduction path (max_patterns cap) on top of level 0.
// Note the `patterns` counter: on a uniform synthetic corpus the alignment
// distance collapses quickly once the threshold relaxes, so the cap is met
// with room to spare — the cost shown is the price of the extra levels.
void BM_DiscoveryWithPatternCap(benchmark::State& state) {
  auto pre = std::move(Preprocessor::create({}).value());
  auto logs = corpus(150, 1200, pre);
  DiscoveryOptions opts;
  opts.max_dist = 0.27;
  opts.max_patterns = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    PatternDiscoverer discoverer(opts, pre.classifier());
    auto patterns = discoverer.discover(logs);
    benchmark::DoNotOptimize(patterns.size());
    state.counters["patterns"] = static_cast<double>(patterns.size());
  }
}
BENCHMARK(BM_DiscoveryWithPatternCap)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace loglens

BENCHMARK_MAIN();
