// Section VI-A "Fast Timestamp Identification": caching + filtering vs the
// linear scan over the 89 predefined formats. The paper reports a combined
// ~22x speedup, ~19.4x of it from caching.
//
// Workload: token streams from the four template-corpus datasets, which mix
// canonical, ISO and syslog timestamp styles plus plenty of non-timestamp
// tokens (the filter's prey).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "datagen/datasets.h"
#include "timestamp/recognizer.h"

namespace loglens {
namespace {

// One tokenized line (raw whitespace split — recognition happens in the
// benchmark body itself).
struct RawLine {
  std::string text;
  std::vector<std::string_view> tokens;
};

const std::vector<RawLine>& workload() {
  static const std::vector<RawLine>* kLines = [] {
    auto* lines = new std::vector<RawLine>();
    for (const char* name : {"D3", "D4", "D5", "D6"}) {
      Dataset ds = make_dataset(name, 0.0005);
      size_t limit = std::min<size_t>(ds.training.size(), 2000);
      for (size_t i = 0; i < limit; ++i) {
        lines->push_back({std::move(ds.training[i]), {}});
      }
    }
    for (auto& line : *lines) {
      line.tokens = split_any(line.text, " \t");
    }
    return lines;
  }();
  return *kLines;
}

void run_recognizer(benchmark::State& state, RecognizerOptions options) {
  const auto& lines = workload();
  for (auto _ : state) {
    TimestampRecognizer recognizer(options);
    size_t found = 0;
    for (const auto& line : lines) {
      size_t i = 0;
      while (i < line.tokens.size()) {
        if (auto m = recognizer.match_at(line.tokens, i)) {
          ++found;
          i += m->span;
        } else {
          ++i;
        }
      }
    }
    benchmark::DoNotOptimize(found);
    state.counters["formats_tried_per_call"] = static_cast<double>(
        recognizer.stats().formats_tried) /
        static_cast<double>(recognizer.stats().calls);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lines.size()));
}

// Per-log identification: logs lead with their timestamp, so this is one
// recognizer call per line that almost always *matches* — the case the
// paper's matched-format cache accelerates (~19.4x of the 22x).
void run_per_log(benchmark::State& state, RecognizerOptions options) {
  const auto& lines = workload();
  for (auto _ : state) {
    TimestampRecognizer recognizer(options);
    size_t found = 0;
    for (const auto& line : lines) {
      if (recognizer.match_at(line.tokens, 0)) ++found;
    }
    benchmark::DoNotOptimize(found);
    state.counters["formats_tried_per_call"] = static_cast<double>(
        recognizer.stats().formats_tried) /
        static_cast<double>(recognizer.stats().calls);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lines.size()));
}

void BM_PerLogLinearScan(benchmark::State& state) {
  run_per_log(state, {.use_cache = false, .use_filter = false});
}
BENCHMARK(BM_PerLogLinearScan)->Unit(benchmark::kMillisecond);

void BM_PerLogCacheOnly(benchmark::State& state) {
  run_per_log(state, {.use_cache = true, .use_filter = false});
}
BENCHMARK(BM_PerLogCacheOnly)->Unit(benchmark::kMillisecond);

void BM_PerLogCacheAndFilter(benchmark::State& state) {
  run_per_log(state, {.use_cache = true, .use_filter = true});
}
BENCHMARK(BM_PerLogCacheAndFilter)->Unit(benchmark::kMillisecond);

// Per-token identification: every token of every line is probed, so most
// calls must *reject* — the case the keyword filter accelerates.
void BM_PerTokenLinearScan(benchmark::State& state) {
  run_recognizer(state, {.use_cache = false, .use_filter = false});
}
BENCHMARK(BM_PerTokenLinearScan)->Unit(benchmark::kMillisecond);

void BM_PerTokenFilterOnly(benchmark::State& state) {
  run_recognizer(state, {.use_cache = false, .use_filter = true});
}
BENCHMARK(BM_PerTokenFilterOnly)->Unit(benchmark::kMillisecond);

void BM_PerTokenCacheOnly(benchmark::State& state) {
  run_recognizer(state, {.use_cache = true, .use_filter = false});
}
BENCHMARK(BM_PerTokenCacheOnly)->Unit(benchmark::kMillisecond);

void BM_PerTokenCacheAndFilter(benchmark::State& state) {
  run_recognizer(state, {.use_cache = true, .use_filter = true});
}
BENCHMARK(BM_PerTokenCacheAndFilter)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace loglens

BENCHMARK_MAIN();
