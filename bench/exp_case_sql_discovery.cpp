// Section VII-A case study: pattern discovery on complex custom-application
// SQL logs. Paper: users took one week to write patterns by hand; LogLens
// generated 367 patterns in 50 seconds (a 12096x man-hour reduction).
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/datasets.h"
#include "service/model_ops.h"

int main() {
  using namespace loglens;
  double scale = bench::scale_or(0.05);

  bench::print_header("Case study A: custom SQL application logs");
  Dataset sql = make_sql(scale);
  std::printf("scale=%g -> %zu training logs (avg line length %zu chars)\n",
              scale, sql.training.size(), [&] {
                size_t total = 0;
                for (const auto& l : sql.training) total += l.size();
                return sql.training.empty() ? size_t{0}
                                            : total / sql.training.size();
              }());

  BuildOptions opts;
  opts.discovery = recommended_discovery("SQL");
  ModelBuilder builder(opts);
  BuildResult result = builder.build(sql.training);

  std::printf("\npatterns discovered : %zu   (paper: 367)\n",
              result.model.patterns.size());
  std::printf("discovery time      : %.2f s (paper: 50 s on full volume)\n",
              result.discovery_seconds);
  std::printf("total model build   : %.2f s\n", result.total_seconds);
  std::printf("unparsed training   : %zu   (must be 0)\n",
              result.unparsed_training_logs);
  std::printf("manual alternative  : ~1 week of expert effort (paper)\n");

  // Show a few discovered patterns so the reader can judge quality.
  std::printf("\nsample discovered patterns:\n");
  for (size_t i = 0; i < result.model.patterns.size() && i < 3; ++i) {
    std::string text = result.model.patterns[i].to_string();
    if (text.size() > 140) text = text.substr(0, 137) + "...";
    std::printf("  P%zu: %s\n", i + 1, text.c_str());
  }

  bool ok = result.unparsed_training_logs == 0 &&
            result.model.patterns.size() >= 330 &&
            result.model.patterns.size() <= 400;
  std::printf("\npaper shape (about 367 patterns, minutes not weeks) -> %s\n",
              ok ? "REPRODUCED" : "NOT reproduced");
  return ok ? 0 : 1;
}
