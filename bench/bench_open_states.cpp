// Efficient state management (Section V-B): per-log and per-heartbeat cost
// as a function of the number of simultaneously open events. The heartbeat
// sweep enumerates every open state (the paper's getParentStateMap walk), so
// its cost is linear in open events — this bench quantifies the constant.
#include <benchmark/benchmark.h>

#include "automata/detector.h"
#include "common/rng.h"

namespace loglens {
namespace {

SequenceModel wide_model() {
  SequenceModel m;
  m.id_fields = {{1, "F"}, {2, "F"}, {3, "F"}};
  Automaton a;
  a.id = 1;
  a.begin_patterns = {1};
  a.end_patterns = {3};
  a.states[1] = {1, 1, 1};
  a.states[2] = {2, 1, 4};
  a.states[3] = {3, 1, 1};
  a.min_duration_ms = 0;
  a.max_duration_ms = 1'000'000'000;  // keep everything open
  m.automata.push_back(a);
  return m;
}

ParsedLog elog(int pattern, const std::string& id, int64_t ts) {
  ParsedLog log;
  log.pattern_id = pattern;
  log.timestamp_ms = ts;
  log.fields.emplace_back("F", Json(id));
  log.raw = "line";
  return log;
}

void BM_OnLogWithOpenStates(benchmark::State& state) {
  const auto open = static_cast<size_t>(state.range(0));
  SequenceDetector det(wide_model());
  for (size_t i = 0; i < open; ++i) {
    det.on_log(elog(1, "ev" + std::to_string(i), 1000 + (int64_t)i), "s");
  }
  Rng rng(3);
  for (auto _ : state) {
    std::string id = "ev" + std::to_string(rng.below(open));
    benchmark::DoNotOptimize(det.on_log(elog(2, id, 5000), "s"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_OnLogWithOpenStates)
    ->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HeartbeatSweep(benchmark::State& state) {
  const auto open = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SequenceDetector det(wide_model());
    for (size_t i = 0; i < open; ++i) {
      det.on_log(elog(1, "ev" + std::to_string(i), 1000), "s");
    }
    state.ResumeTiming();
    // Sweep that expires nothing (the common steady-state case)...
    benchmark::DoNotOptimize(det.on_heartbeat(2000));
    // ...and one that expires everything.
    benchmark::DoNotOptimize(det.on_heartbeat(INT64_MAX / 2));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(open));
}
BENCHMARK(BM_HeartbeatSweep)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace loglens

BENCHMARK_MAIN();
