// Efficient state management (Section V-B): detector cost as a function of
// simultaneously open events, exercising the deadline index.
//
// The paper's heartbeat sweep enumerates every open state (the
// getParentStateMap walk), making each sweep O(open). The deadline index
// makes it O(expired · log open): a heartbeat that expires nothing is a
// single heap-top comparison no matter how many events are open, and an
// expiry-heavy schedule pays per EXPIRED event, not per OPEN event. Stages
// measure both at 100k and at 1M open events and fail the run (exit 1) if
// the cost is not flat — an O(open) regression shows up as a ~10x rate drop
// between the two sizes, far beyond the enforced bound.
//
// Writes BENCH_detector.json (same shape as BENCH_parser.json; gated in CI
// by tools/bench_compare.py):
//   detector_heartbeat_steady_100k  no-op sweeps/sec over 100k open events
//   detector_heartbeat_steady_1m    no-op sweeps/sec over 1M open events
//   detector_expiry_sweep_100k      expired events/sec, fixed expiry rate,
//                                   ~100k events open throughout
//   detector_expiry_sweep_1m        same schedule with ~1M open
//   detector_on_log_1m_open         tracked logs/sec against 1M open events
//   detector_eviction_churn         logs/sec with every log past the
//                                   max_open_events bound evicting one event
//
// For scale: the pre-index detector swept ~120 ms per heartbeat at 100k
// open events (O(open)), putting a 1M sweep past one second — versus
// millions of no-op sweeps/sec here.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "automata/detector.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "json/json.h"

namespace loglens {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// max_duration bounds how long an event may stay open; kKeepOpenForever
// parks deadlines far past every heartbeat the steady stages send.
constexpr int64_t kKeepOpenForever = 1'000'000'000'000;

SequenceModel wide_model(int64_t max_duration_ms) {
  SequenceModel m;
  m.id_fields = {{1, "F"}, {2, "F"}, {3, "F"}};
  Automaton a;
  a.id = 1;
  a.begin_patterns = {1};
  a.end_patterns = {3};
  a.states[1] = {1, 1, 1};
  a.states[2] = {2, 0, 1'000'000};
  a.states[3] = {3, 1, 1};
  a.min_duration_ms = 0;
  a.max_duration_ms = max_duration_ms;
  m.automata.push_back(a);
  return m;
}

ParsedLog elog(int pattern, const std::string& id, int64_t ts) {
  ParsedLog log;
  log.pattern_id = pattern;
  log.timestamp_ms = ts;
  log.fields.emplace_back("F", Json(id));
  log.raw = "line";
  return log;
}

// Opens `n` events with staggered first timestamps starting at `base_ts`.
void open_events(SequenceDetector& det, size_t n, int64_t base_ts) {
  for (size_t i = 0; i < n; ++i) {
    det.on_log(elog(1, "ev" + std::to_string(i), base_ts + (int64_t)i), "s");
  }
}

struct StageResult {
  std::string stage;
  double msgs_per_sec = 0;
};

StageResult steady_heartbeats(size_t open, const char* stage) {
  SequenceDetector det(wide_model(kKeepOpenForever));
  open_events(det, open, 1'000);
  det.on_heartbeat(2'000);  // warm

  const int sweeps = 200'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < sweeps; ++i) {
    det.on_heartbeat(2'000 + i);
  }
  const double secs = seconds_since(t0);

  StageResult r;
  r.stage = stage;
  r.msgs_per_sec = static_cast<double>(sweeps) / secs;
  std::printf("%s: %d no-op sweeps over %zu open events in %.3fs = "
              "%.0f sweeps/sec (%.0f ns/sweep)\n",
              stage, sweeps, det.open_events(), secs, r.msgs_per_sec,
              secs / sweeps * 1e9);
  return r;
}

// Fixed expiry rate regardless of open count: each round opens `chunk` new
// events and advances the heartbeat clock just far enough to expire the
// `chunk` oldest, so ~`open` events stay open throughout. Rate is expired
// events/sec; with the deadline index it depends on the expiry rate (plus a
// log factor), not on `open`.
StageResult expiry_sweeps(size_t open, const char* stage) {
  const int64_t max_duration = 1'000'000;
  DetectorOptions opts;
  // Out-bound the 1M population + in-flight chunk: expiry must be the only
  // thing removing events, or the default max_open_events bound silently
  // evicts the oldest (earliest-deadline) events before the sweep sees them.
  opts.max_open_events = open * 2;
  SequenceDetector det(wide_model(max_duration), opts);
  open_events(det, open, 1'000);  // deadlines: 1'001'000 + i

  const size_t chunk = 2'000;
  const int rounds = 25;
  size_t expired = 0;
  size_t next_id = open;
  int64_t next_ts = 1'000 + static_cast<int64_t>(open);
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < chunk; ++i) {
      det.on_log(elog(1, "ev" + std::to_string(next_id++), next_ts++), "s");
    }
    const size_t before = det.open_events();
    det.on_heartbeat(max_duration + 1'000 +
                     static_cast<int64_t>((round + 1) * chunk) + 1);
    expired += before - det.open_events();
  }
  const double secs = seconds_since(t0);

  StageResult r;
  r.stage = stage;
  r.msgs_per_sec = static_cast<double>(expired) / secs;
  std::printf("%s: %zu expiries across %d sweeps (~%zu open) in %.3fs = "
              "%.0f expired/sec\n",
              stage, expired, rounds, det.open_events(), secs,
              r.msgs_per_sec);
  return r;
}

StageResult on_log_hot(size_t open) {
  SequenceDetector det(wide_model(kKeepOpenForever));
  open_events(det, open, 1'000);

  Rng rng(3);
  const int logs = 300'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < logs; ++i) {
    // Mid-state log for an existing event: hash lookup + append; first_ts
    // is unchanged, so the deadline entry is reused, not re-pushed.
    det.on_log(elog(2, "ev" + std::to_string(rng.below(open)), 5'000), "s");
  }
  const double secs = seconds_since(t0);

  StageResult r;
  r.stage = "detector_on_log_1m_open";
  r.msgs_per_sec = static_cast<double>(logs) / secs;
  std::printf("%s: %d logs against %zu open events in %.3fs = "
              "%.0f msgs/sec\n",
              r.stage.c_str(), logs, det.open_events(), secs, r.msgs_per_sec);
  return r;
}

StageResult eviction_churn() {
  DetectorOptions opts;
  opts.max_open_events = 10'000;
  SequenceDetector det(wide_model(kKeepOpenForever), opts);
  open_events(det, opts.max_open_events, 1'000);

  const int logs = 100'000;
  size_t evictions = 0;
  int64_t ts = 1'000 + static_cast<int64_t>(opts.max_open_events);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < logs; ++i) {
    // Every new event pushes the population past the bound: one heap-pop
    // eviction (plus the anomaly report) per log — the worst case.
    auto out = det.on_log(elog(1, "nv" + std::to_string(i), ts++), "s");
    evictions += out.size();
  }
  const double secs = seconds_since(t0);

  StageResult r;
  r.stage = "detector_eviction_churn";
  r.msgs_per_sec = static_cast<double>(logs) / secs;
  std::printf("%s: %d logs / %zu evictions in %.3fs = %.0f msgs/sec\n",
              r.stage.c_str(), logs, evictions, secs, r.msgs_per_sec);
  return r;
}

void write_bench_json(const std::vector<StageResult>& results) {
  JsonObject root;
  root.emplace_back("benchmark", Json("bench_open_states"));
  JsonArray stages;
  for (const auto& r : results) {
    JsonObject obj;
    obj.emplace_back("stage", Json(r.stage));
    obj.emplace_back("msgs_per_sec", Json(r.msgs_per_sec));
    stages.push_back(Json(std::move(obj)));
  }
  root.emplace_back("stages", Json(std::move(stages)));
  std::ofstream out("BENCH_detector.json");
  out << Json(std::move(root)).dump() << "\n";
}

// Flatness gate: `big` ran with 10x the open events of `small`. The deadline
// index makes both rates roughly equal; the old O(open) sweep would divide
// the big rate by ~10 (steady) or worse (expiry, which also pays the walk).
// The 4x bound forgives cache effects at 1M events while still being far
// tighter than any linear regression.
bool flat_enough(const StageResult& small, const StageResult& big) {
  const double ratio = small.msgs_per_sec / big.msgs_per_sec;
  const bool ok = ratio < 4.0;
  std::printf("flatness %s vs %s: %.2fx slower at 10x open events — %s\n",
              big.stage.c_str(), small.stage.c_str(), ratio,
              ok ? "flat" : "NOT FLAT (O(open) regression?)");
  return ok;
}

}  // namespace
}  // namespace loglens

int main() {
  using loglens::StageResult;
  const double scale = loglens::bench::scale_or(1.0);
  const size_t small = static_cast<size_t>(100'000 * scale);
  const size_t big = static_cast<size_t>(1'000'000 * scale);

  std::vector<StageResult> results;
  loglens::bench::print_header("detector open-state benchmarks");
  const StageResult steady_small =
      loglens::steady_heartbeats(small, "detector_heartbeat_steady_100k");
  const StageResult steady_big =
      loglens::steady_heartbeats(big, "detector_heartbeat_steady_1m");
  const StageResult expiry_small =
      loglens::expiry_sweeps(small, "detector_expiry_sweep_100k");
  const StageResult expiry_big =
      loglens::expiry_sweeps(big, "detector_expiry_sweep_1m");
  results.push_back(steady_small);
  results.push_back(steady_big);
  results.push_back(expiry_small);
  results.push_back(expiry_big);
  results.push_back(loglens::on_log_hot(big));
  results.push_back(loglens::eviction_churn());
  loglens::write_bench_json(results);

  bool ok = loglens::flat_enough(steady_small, steady_big);
  ok = loglens::flat_enough(expiry_small, expiry_big) && ok;
  return ok ? 0 : 1;
}
