// Tiered storage engine benchmark: ingest rate, zone-map pruning payoff,
// and the heap high-water claim.
//
// Ingests ~1M documents (LOGLENS_SCALE scales the count) through a
// DocumentStore with a hot tier 1/16th the corpus, then times the same
// term+range query two ways: the indexed path (zone maps prune segments
// outside the time window, postings drive the survivors) and a
// sequential_scan store over the same segment files (parse every row —
// the seed engine's behaviour). Global operator new/delete are overridden
// to track live heap, which makes the tentpole's memory claim checkable:
// the high-water mark must track the hot segment, not the corpus.
//
// Stages (BENCH_storage.json, gated in CI by tools/bench_compare.py):
//   storage_ingest                docs/sec through insert+flush
//   storage_query_pruned          queries/sec, indexed + zone-pruned
//   storage_full_scan             queries/sec, sequential parse-everything
//   storage_prune_speedup_x       pruned / full-scan rate (floor: 5x)
//   storage_heap_highwater_ratio_x  estimated all-in-memory bytes / peak
//                                 live heap during ingest (floor: 2x)
//
// Exits 1 in-process when the speedup is under 5x, the heap ratio is under
// 2x, or the two query paths disagree on a single count.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "json/json.h"
#include "storage/document_store.h"

// ---------------------------------------------------------------------------
// Heap accounting. Every allocation carries a small header recording its
// size and the offset back to the malloc'd base, so unsized deletes and
// over-aligned news are both exact. mmap'd segment payloads are deliberately
// invisible here: the claim under test is that *heap* stays O(hot segment)
// while the corpus lives in mapped files.
namespace {

std::atomic<size_t> g_live{0};
std::atomic<size_t> g_peak{0};

void track(size_t n) {
  size_t live = g_live.fetch_add(n, std::memory_order_relaxed) + n;
  size_t peak = g_peak.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
}

void* tracked_alloc(size_t n, size_t align) {
  if (align < alignof(std::max_align_t)) align = alignof(std::max_align_t);
  const size_t slack = align + 2 * sizeof(size_t);
  char* base = static_cast<char*>(std::malloc(n + slack));
  if (base == nullptr) return nullptr;
  uintptr_t raw = reinterpret_cast<uintptr_t>(base) + 2 * sizeof(size_t);
  uintptr_t user = (raw + align - 1) / align * align;
  reinterpret_cast<size_t*>(user)[-1] = n;
  reinterpret_cast<size_t*>(user)[-2] =
      user - reinterpret_cast<uintptr_t>(base);
  track(n);
  return reinterpret_cast<void*>(user);
}

void tracked_free(void* p) noexcept {
  if (p == nullptr) return;
  char* user = static_cast<char*>(p);
  const size_t n = reinterpret_cast<size_t*>(user)[-1];
  const size_t off = reinterpret_cast<size_t*>(user)[-2];
  g_live.fetch_sub(n, std::memory_order_relaxed);
  std::free(user - off);
}

}  // namespace

void* operator new(size_t n) {
  void* p = tracked_alloc(n, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t n) { return operator new(n); }
void* operator new(size_t n, std::align_val_t a) {
  void* p = tracked_alloc(n, static_cast<size_t>(a));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t n, std::align_val_t a) {
  return operator new(n, a);
}
void* operator new(size_t n, const std::nothrow_t&) noexcept {
  return tracked_alloc(n, 0);
}
void* operator new[](size_t n, const std::nothrow_t&) noexcept {
  return tracked_alloc(n, 0);
}
void operator delete(void* p) noexcept { tracked_free(p); }
void operator delete[](void* p) noexcept { tracked_free(p); }
void operator delete(void* p, size_t) noexcept { tracked_free(p); }
void operator delete[](void* p, size_t) noexcept { tracked_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { tracked_free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  tracked_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  tracked_free(p);
}
// ---------------------------------------------------------------------------

namespace loglens {
namespace {

namespace fs = std::filesystem;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Parsed-log shape: categorical strings drawn from template pools (the
// paper's premise — log messages come from a bounded pattern set, so the
// per-segment term dictionaries stay small) and per-document uniqueness in
// integer columns, which need no dictionary.
Json make_doc(size_t i) {
  JsonObject o;
  o.emplace_back("source", Json("s" + std::to_string(i % 32)));
  o.emplace_back("ts", Json(static_cast<int64_t>(i)));
  o.emplace_back("level", Json(i % 7 == 0 ? "error" : "info"));
  o.emplace_back("msg", Json("request handled by worker w" +
                             std::to_string(i % 64)));
  o.emplace_back("span",
                 Json(static_cast<int64_t>((i * 2654435761u) % (1u << 30))));
  return Json(std::move(o));
}

struct StageResult {
  std::string stage;
  double msgs_per_sec = 0;
};

void write_bench_json(const std::vector<StageResult>& results) {
  JsonObject root;
  root.emplace_back("benchmark", Json("bench_storage"));
  JsonArray stages;
  for (const auto& r : results) {
    JsonObject obj;
    obj.emplace_back("stage", Json(r.stage));
    obj.emplace_back("msgs_per_sec", Json(r.msgs_per_sec));
    stages.push_back(Json(std::move(obj)));
  }
  root.emplace_back("stages", Json(std::move(stages)));
  std::ofstream out("BENCH_storage.json");
  out << Json(std::move(root)).dump() << "\n";
}

// Queries/sec for one store configuration; also returns the (stable) hit
// count so the two paths can be cross-checked.
double time_queries(const DocumentStore& store, const Query& q,
                    size_t min_iters, double min_secs, size_t* hits) {
  size_t iters = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double secs = 0;
  do {
    *hits = store.count(q);
    ++iters;
    secs = seconds_since(t0);
  } while (iters < min_iters || secs < min_secs);
  return static_cast<double>(iters) / secs;
}

}  // namespace
}  // namespace loglens

int main() {
  using loglens::DocumentStore;
  using loglens::DocumentStoreOptions;
  using loglens::Json;
  using loglens::Query;
  using loglens::QueryClause;
  using loglens::QueryStats;
  using loglens::StageResult;
  namespace fs = std::filesystem;

  const double scale = loglens::bench::scale_or(1.0);
  const size_t n_docs =
      std::max<size_t>(20'000, static_cast<size_t>(1'000'000 * scale));
  const size_t hot_max = std::max<size_t>(1'024, n_docs / 16);

  loglens::bench::print_header("tiered storage engine benchmarks");
  std::printf("corpus: %zu docs, hot tier %zu docs\n", n_docs, hot_max);

  // What would the seed engine (everything in one vector<Json>) hold?
  // Sample 10k docs' live-heap delta and extrapolate; done before ingest so
  // the sample never pollutes the tracked high-water mark.
  const size_t sample_n = 10'000;
  size_t in_memory_estimate;
  {
    const size_t before = g_live.load();
    std::vector<Json> sample;
    sample.reserve(sample_n);
    for (size_t i = 0; i < sample_n; ++i) sample.push_back(loglens::make_doc(i));
    const size_t per_doc = (g_live.load() - before) / sample_n;
    in_memory_estimate = per_doc * n_docs;
    std::printf("in-memory estimate: %zu bytes/doc -> %.1f MB for the corpus\n",
                per_doc, static_cast<double>(in_memory_estimate) / 1e6);
  }

  const std::string dir =
      (fs::temp_directory_path() / "loglens_bench_storage").string();
  fs::remove_all(dir);

  DocumentStoreOptions opts;
  opts.dir = dir;
  opts.hot_max_docs = hot_max;
  opts.auto_compact = true;
  opts.compact_min_segments = 4;
  opts.compact_max_docs = 2 * hot_max;  // merge spike stays O(hot)
  opts.name = "bench";

  std::vector<StageResult> results;
  size_t peak_heap;
  size_t segments;
  {
    DocumentStore store(opts);
    g_peak.store(g_live.load());  // high-water measured from here
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < n_docs; ++i) store.insert(loglens::make_doc(i));
    if (!store.flush().ok()) {
      std::printf("FAIL: final flush errored\n");
      return 1;
    }
    const double secs = loglens::seconds_since(t0);
    peak_heap = g_peak.load();
    segments = store.segment_count();
    StageResult ingest;
    ingest.stage = "storage_ingest";
    ingest.msgs_per_sec = static_cast<double>(n_docs) / secs;
    std::printf("storage_ingest: %zu docs in %.2fs = %.0f docs/sec "
                "(%zu segments, peak heap %.1f MB)\n",
                n_docs, secs, ingest.msgs_per_sec, segments,
                static_cast<double>(peak_heap) / 1e6);
    results.push_back(ingest);
  }

  // The probe query: one source over the most recent 1/64th of the time
  // range. Zone maps prune every segment outside the window; postings
  // drive the survivors.
  Query q;
  q.clauses.push_back(QueryClause::Term("source", "s3"));
  q.clauses.push_back(QueryClause::Range(
      "ts", static_cast<int64_t>(n_docs - n_docs / 64),
      static_cast<int64_t>(n_docs)));

  DocumentStore pruned_store(opts);
  DocumentStoreOptions seq = opts;
  seq.sequential_scan = true;
  DocumentStore scan_store(seq);

  QueryStats stats;
  pruned_store.count(q, &stats);
  std::printf("pruned plan: %zu/%zu segments pruned, %zu docs scanned\n",
              stats.segments_pruned, stats.segments_considered,
              stats.docs_scanned);

  size_t pruned_hits = 0, scan_hits = 0;
  StageResult pruned;
  pruned.stage = "storage_query_pruned";
  pruned.msgs_per_sec =
      loglens::time_queries(pruned_store, q, 20, 0.5, &pruned_hits);
  std::printf("storage_query_pruned: %.1f queries/sec (%zu hits)\n",
              pruned.msgs_per_sec, pruned_hits);
  results.push_back(pruned);

  StageResult full;
  full.stage = "storage_full_scan";
  full.msgs_per_sec = loglens::time_queries(scan_store, q, 3, 1.0, &scan_hits);
  std::printf("storage_full_scan: %.1f queries/sec (%zu hits)\n",
              full.msgs_per_sec, scan_hits);
  results.push_back(full);

  StageResult speedup;
  speedup.stage = "storage_prune_speedup_x";
  speedup.msgs_per_sec = pruned.msgs_per_sec / full.msgs_per_sec;
  std::printf("storage_prune_speedup_x: %.1fx\n", speedup.msgs_per_sec);
  results.push_back(speedup);

  StageResult heap;
  heap.stage = "storage_heap_highwater_ratio_x";
  heap.msgs_per_sec = static_cast<double>(in_memory_estimate) /
                      static_cast<double>(peak_heap == 0 ? 1 : peak_heap);
  std::printf("storage_heap_highwater_ratio_x: %.1fx (peak %.1f MB vs "
              "%.1f MB all-in-memory)\n",
              heap.msgs_per_sec, static_cast<double>(peak_heap) / 1e6,
              static_cast<double>(in_memory_estimate) / 1e6);
  results.push_back(heap);

  loglens::write_bench_json(results);
  fs::remove_all(dir);

  bool ok = true;
  if (pruned_hits != scan_hits) {
    std::printf("FAIL: pruned and sequential paths disagree "
                "(%zu vs %zu hits)\n",
                pruned_hits, scan_hits);
    ok = false;
  }
  if (speedup.msgs_per_sec < 5.0) {
    std::printf("FAIL: prune speedup %.1fx is under the 5x floor\n",
                speedup.msgs_per_sec);
    ok = false;
  }
  if (heap.msgs_per_sec < 2.0) {
    std::printf("FAIL: heap high-water ratio %.1fx is under the 2x floor "
                "(heap is not bounded by the hot segment)\n",
                heap.msgs_per_sec);
    ok = false;
  }
  return ok ? 0 : 1;
}
