// Shared runner for the accuracy-style experiments (Figure 4, Figure 5,
// Table V, SS7 case study): trains a LogLensService on a dataset's training
// stream, replays the testing stream through the full pipeline, optionally
// drives the heartbeat controller, and tallies anomalies by event id.
#pragma once

#include <set>
#include <string>

#include "bench/bench_util.h"
#include "datagen/datasets.h"
#include "service/service.h"

namespace loglens::bench {

struct RunResult {
  std::set<std::string> anomalous_ids;   // distinct event ids flagged
  size_t anomaly_records = 0;            // raw anomaly count
  size_t open_events_left = 0;
  BuildResult build;
};

inline RunResult run_detection(LogLensService& service, const Dataset& ds,
                               bool heartbeats) {
  RunResult result;
  Agent agent = service.make_agent(ds.name);
  agent.replay(ds.testing);
  service.drain();
  if (heartbeats) {
    // Advance log time far past every learned max duration, as the paper's
    // heartbeat controller would after the stream goes quiet.
    service.heartbeat_advance(24L * 3600 * 1000);
    service.drain();
  }
  for (const auto& a : service.anomalies().all()) {
    ++result.anomaly_records;
    if (!a.event_id.empty()) result.anomalous_ids.insert(a.event_id);
  }
  result.open_events_left = service.open_events();
  return result;
}

inline double recall(const std::set<std::string>& detected,
                     const std::set<std::string>& truth) {
  if (truth.empty()) return 1.0;
  size_t hit = 0;
  for (const auto& id : truth) {
    if (detected.contains(id)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

inline size_t false_positives(const std::set<std::string>& detected,
                              const std::set<std::string>& truth) {
  size_t fp = 0;
  for (const auto& id : detected) {
    if (!truth.contains(id)) ++fp;
  }
  return fp;
}

}  // namespace loglens::bench
