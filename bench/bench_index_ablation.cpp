// Section III-B ablation: the candidate-pattern-group index (O(mn) -> O(n)).
// Same model, same logs — index on vs off — swept over model sizes.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datagen/template_gen.h"
#include "parser/log_parser.h"

namespace loglens {
namespace {

struct Fixture {
  std::unique_ptr<Preprocessor> pre;
  std::vector<GrokPattern> patterns;
  std::vector<TokenizedLog> logs;
};

const Fixture& fixture_for(size_t templates) {
  static std::map<size_t, Fixture>* kCache = new std::map<size_t, Fixture>();
  auto it = kCache->find(templates);
  if (it != kCache->end()) return it->second;

  TemplateCorpusSpec spec;
  spec.flavor = "storage";
  spec.num_templates = templates;
  spec.train_logs = std::max<size_t>(templates * 3, 2000);
  spec.test_logs = 2000;
  spec.seed = 9;
  Dataset ds = generate_template_corpus(spec, "ablate");

  Fixture f;
  f.pre = std::make_unique<Preprocessor>(
      std::move(Preprocessor::create({}).value()));
  auto train = bench::tokenize_all(*f.pre, ds.training);
  DiscoveryOptions opts;
  opts.max_dist = 0.3;
  f.patterns = bench::discover_patterns(*f.pre, train, opts);
  f.logs = bench::tokenize_all(*f.pre, ds.testing);
  return kCache->emplace(templates, std::move(f)).first->second;
}

void run(benchmark::State& state, IndexMode mode) {
  const Fixture& f = fixture_for(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    LogParser parser(f.patterns, f.pre->classifier(), mode);
    size_t parsed = 0;
    for (const auto& log : f.logs) {
      parsed += parser.parse(log).log.has_value() ? 1 : 0;
    }
    benchmark::DoNotOptimize(parsed);
    state.counters["match_attempts_per_log"] =
        static_cast<double>(parser.stats().match_attempts) /
        static_cast<double>(parser.stats().logs);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.logs.size()));
}

void BM_ParseWithIndex(benchmark::State& state) {
  run(state, IndexMode::kEnabled);
}
BENCHMARK(BM_ParseWithIndex)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(301)
    ->Unit(benchmark::kMillisecond);

void BM_ParseNaiveScan(benchmark::State& state) {
  run(state, IndexMode::kDisabled);
}
BENCHMARK(BM_ParseNaiveScan)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(301)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace loglens

BENCHMARK_MAIN();
