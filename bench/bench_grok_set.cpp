// Set-level GROK matching (ROADMAP item 2): the index-miss and discovery
// paths with the whole pattern set compiled into one matcher
// (grok/set_matcher.h) versus the per-pattern linear scan.
//
// The model is adversarial for the signature index: every pattern is
// "svc<xyz> worker %{WORD:op} %{NUMBER:n} done" with a unique literal
// service name, so all ~2000 patterns share one signature and every log's
// candidate group is the whole model. The linear scan pays ~group/2 match
// attempts per log; the set matcher pays one signature walk to build the
// group and one token walk to pick the single matching candidate.
//
// Stages (BENCH_grok_set.json, gated in CI by tools/bench_compare.py):
//   grok_set_index_miss         logs/sec, set matcher on, index_capacity=1
//                               (every log pays a group build + match scan)
//   grok_set_linear             same workload, set matcher off
//   grok_set_discovery_filter   logs/sec deciding known-pattern coverage in
//                               discover_incremental's walk
//   grok_set_attempt_reduction_x  match attempts per log, linear / set
//                               (reported in the msgs_per_sec field so the
//                               --min-rate gate applies; the acceptance
//                               floor is 5x, the measured value ~1000x)
//
// Exits 1 in-process when the attempt reduction is under 5x or the two
// configurations disagree on any parse outcome.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "grok/set_matcher.h"
#include "json/json.h"
#include "logmine/discoverer.h"
#include "parser/log_parser.h"
#include "tokenize/preprocessor.h"

namespace loglens {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string svc_name(size_t i) {
  std::string suffix(3, 'a');
  suffix[0] = static_cast<char>('a' + i / 676 % 26);
  suffix[1] = static_cast<char>('a' + i / 26 % 26);
  suffix[2] = static_cast<char>('a' + i % 26);
  return "svc" + suffix;
}

std::vector<GrokPattern> make_model(size_t n) {
  std::vector<GrokPattern> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto p = GrokPattern::parse(svc_name(i) +
                                " worker %{WORD:op} %{NUMBER:n} done");
    p->assign_field_ids(static_cast<int>(i) + 1);
    out.push_back(std::move(p.value()));
  }
  return out;
}

std::vector<TokenizedLog> make_logs(Preprocessor& pre, size_t patterns,
                                    size_t count) {
  Rng rng(7);
  std::vector<TokenizedLog> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(pre.process(svc_name(rng.below(patterns)) +
                              " worker start " + std::to_string(i) + " done"));
  }
  return out;
}

struct StageResult {
  std::string stage;
  double msgs_per_sec = 0;
};

struct ParseRun {
  StageResult result;
  uint64_t match_attempts = 0;
  uint64_t unparsed = 0;
};

ParseRun run_parser(const std::vector<GrokPattern>& model,
                    Preprocessor& pre,
                    const std::vector<TokenizedLog>& logs, SetMatchMode mode,
                    const char* stage) {
  // index_capacity=1 with one shared signature still caches the one group,
  // so evict it by construction: capacity 1 plus a second, never-matching
  // signature interleaved would complicate the workload. Instead parse a
  // churn log with a different signature between payload logs so every
  // payload parse is an index miss — the path this benchmark is about.
  LogParser parser(model, pre.classifier(), IndexMode::kEnabled, 1, mode);
  TokenizedLog churn = pre.process("one two three");

  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& log : logs) {
    parser.parse(log);
    parser.parse(churn);
  }
  const double secs = seconds_since(t0);

  ParseRun run;
  run.result.stage = stage;
  run.result.msgs_per_sec = static_cast<double>(logs.size()) / secs;
  run.match_attempts = parser.stats().match_attempts;
  run.unparsed = parser.stats().unparsed - logs.size();  // churn logs
  std::printf("%s: %zu logs x %zu patterns in %.3fs = %.0f logs/sec "
              "(%llu match attempts, %llu set walks, %llu fallbacks)\n",
              stage, logs.size(), model.size(), secs, run.result.msgs_per_sec,
              static_cast<unsigned long long>(run.match_attempts),
              static_cast<unsigned long long>(parser.stats().set_walks),
              static_cast<unsigned long long>(parser.stats().set_fallbacks));
  return run;
}

StageResult run_discovery_filter(const std::vector<GrokPattern>& model,
                                 Preprocessor& pre,
                                 const std::vector<TokenizedLog>& logs) {
  // The discover_incremental front half: one token walk per log deciding
  // whether any known pattern covers it.
  const GrokSetMatcher matcher = GrokSetMatcher::compile_tokens(model);
  GrokSetScratch scratch;
  size_t covered = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& log : logs) {
    if (matcher.match_tokens(log.tokens, pre.classifier(), scratch)) {
      covered += scratch.result.empty() ? 0 : 1;
    }
  }
  const double secs = seconds_since(t0);

  StageResult r;
  r.stage = "grok_set_discovery_filter";
  r.msgs_per_sec = static_cast<double>(logs.size()) / secs;
  std::printf("%s: %zu logs (%zu covered) in %.3fs = %.0f logs/sec\n",
              r.stage.c_str(), logs.size(), covered, secs, r.msgs_per_sec);
  return r;
}

void write_bench_json(const std::vector<StageResult>& results) {
  JsonObject root;
  root.emplace_back("benchmark", Json("bench_grok_set"));
  JsonArray stages;
  for (const auto& r : results) {
    JsonObject obj;
    obj.emplace_back("stage", Json(r.stage));
    obj.emplace_back("msgs_per_sec", Json(r.msgs_per_sec));
    stages.push_back(Json(std::move(obj)));
  }
  root.emplace_back("stages", Json(std::move(stages)));
  std::ofstream out("BENCH_grok_set.json");
  out << Json(std::move(root)).dump() << "\n";
}

}  // namespace
}  // namespace loglens

int main() {
  using loglens::StageResult;
  const double scale = loglens::bench::scale_or(1.0);
  const size_t patterns = static_cast<size_t>(2000 * scale) < 100
                              ? 100
                              : static_cast<size_t>(2000 * scale);
  const size_t log_count = static_cast<size_t>(20'000 * scale) < 1'000
                               ? 1'000
                               : static_cast<size_t>(20'000 * scale);

  loglens::bench::print_header("set-level GROK matcher benchmarks");
  auto pre = loglens::Preprocessor::create({}).value();
  const auto model = loglens::make_model(patterns);
  const auto logs = loglens::make_logs(pre, patterns, log_count);

  const auto set_run = loglens::run_parser(model, pre, logs,
                                           loglens::SetMatchMode::kAuto,
                                           "grok_set_index_miss");
  const auto linear_run = loglens::run_parser(model, pre, logs,
                                              loglens::SetMatchMode::kDisabled,
                                              "grok_set_linear");

  std::vector<StageResult> results;
  results.push_back(set_run.result);
  results.push_back(linear_run.result);
  results.push_back(loglens::run_discovery_filter(model, pre, logs));

  StageResult reduction;
  reduction.stage = "grok_set_attempt_reduction_x";
  reduction.msgs_per_sec =
      static_cast<double>(linear_run.match_attempts) /
      static_cast<double>(set_run.match_attempts == 0 ? 1
                                                      : set_run.match_attempts);
  std::printf("%s: %llu linear attempts vs %llu set attempts = %.1fx\n",
              reduction.stage.c_str(),
              static_cast<unsigned long long>(linear_run.match_attempts),
              static_cast<unsigned long long>(set_run.match_attempts),
              reduction.msgs_per_sec);
  results.push_back(reduction);
  loglens::write_bench_json(results);

  bool ok = true;
  if (set_run.unparsed != linear_run.unparsed) {
    std::printf("FAIL: parse outcomes diverge (set %llu vs linear %llu "
                "unparsed)\n",
                static_cast<unsigned long long>(set_run.unparsed),
                static_cast<unsigned long long>(linear_run.unparsed));
    ok = false;
  }
  if (reduction.msgs_per_sec < 5.0) {
    std::printf("FAIL: attempt reduction %.1fx is under the 5x floor\n",
                reduction.msgs_per_sec);
    ok = false;
  }
  return ok ? 0 : 1;
}
