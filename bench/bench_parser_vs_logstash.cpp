// Table IV: LogLens vs Logstash parsing runtime on D3-D6, plus the
// pattern-count sweep behind the abstract's "up to 41x faster" claim.
//
// Reproduction notes (see DESIGN.md / EXPERIMENTS.md):
//  - Datasets are synthetic equivalents with the paper's template counts
//    (301 / 3234 / 243 / 2012); log volumes scale with LOGLENS_SCALE.
//  - The baseline is given a wall-clock budget (LOGLENS_BASELINE_BUDGET_S,
//    default 20 s); exceeding it prints "NA", mirroring the paper's Logstash
//    never finishing D4/D6 within 48 hours.
//  - Expected shape: LogLens is faster everywhere, the gap widens with the
//    pattern count, and the baseline falls off a cliff at thousands of
//    patterns.
#include <cinttypes>

#include "baseline/logstash_parser.h"
#include "bench/bench_util.h"
#include "datagen/datasets.h"
#include "datagen/template_gen.h"
#include "parser/log_parser.h"

namespace loglens {
namespace {

using bench::Stopwatch;

struct Row {
  std::string dataset;
  size_t patterns;
  size_t logs;
  double loglens_s;
  double logstash_s;  // < 0 => timed out
};

Row run_dataset(const char* name, double scale, double baseline_budget_s) {
  Dataset ds = make_dataset(name, scale);
  auto pre = std::move(Preprocessor::create({}).value());
  auto train = bench::tokenize_all(pre, ds.training);
  auto patterns =
      bench::discover_patterns(pre, train, recommended_discovery(name));
  auto test = bench::tokenize_all(pre, ds.testing);

  Row row;
  row.dataset = name;
  row.patterns = patterns.size();
  row.logs = test.size();

  {
    LogParser parser(patterns, pre.classifier());
    Stopwatch sw;
    size_t unparsed = 0;
    for (const auto& log : test) {
      if (!parser.parse(log).log.has_value()) ++unparsed;
    }
    row.loglens_s = sw.seconds();
    if (unparsed != 0) {
      std::printf("  [warn] %s: %zu unparsed logs in sanity run\n", name,
                  unparsed);
    }
  }

  {
    LogstashParser parser(patterns);
    Stopwatch sw;
    row.logstash_s = -1;
    size_t done = 0;
    for (const auto& log : test) {
      parser.parse(log);
      ++done;
      if ((done & 0x3F) == 0 && sw.seconds() > baseline_budget_s) {
        row.logstash_s = -1;  // timeout: "did not generate any output"
        return row;
      }
    }
    row.logstash_s = sw.seconds();
  }
  return row;
}

}  // namespace
}  // namespace loglens

int main() {
  using namespace loglens;
  double scale = bench::scale_or(0.01);
  double budget = bench::env_double("LOGLENS_BASELINE_BUDGET_S", 20.0);

  bench::print_header("Table IV: LogLens vs Logstash");
  std::printf("scale=%g baseline_budget=%gs (paper: 792k-1M logs, 48h cutoff)\n",
              scale, budget);
  std::printf("%-8s %-9s %-9s %-12s %-12s %s\n", "Dataset", "Patterns",
              "Logs", "LogLens", "Logstash", "Improvement");
  for (const char* name : {"D3", "D4", "D5", "D6"}) {
    Row row = run_dataset(name, scale, budget);
    char logstash[32];
    char improvement[32];
    if (row.logstash_s < 0) {
      std::snprintf(logstash, sizeof(logstash), "NA (>%.0fs)", budget);
      std::snprintf(improvement, sizeof(improvement), "NA");
    } else {
      std::snprintf(logstash, sizeof(logstash), "%.3f s", row.logstash_s);
      std::snprintf(improvement, sizeof(improvement), "%.1fx",
                    row.logstash_s / row.loglens_s);
    }
    std::printf("%-8s %-9zu %-9zu %-12s %-12s %s\n", row.dataset.c_str(),
                row.patterns, row.logs,
                (std::to_string(row.loglens_s).substr(0, 5) + " s").c_str(),
                logstash, improvement);
  }

  // Sweep: speedup as a function of pattern count (the "up to 41x" shape).
  bench::print_header("Speedup vs pattern count (D3 flavor)");
  std::printf("%-10s %-12s %-12s %s\n", "Patterns", "LogLens", "Logstash",
              "Speedup");
  for (size_t templates : {25, 50, 100, 200, 301}) {
    TemplateCorpusSpec spec;
    spec.flavor = "storage";
    spec.num_templates = templates;
    spec.train_logs = std::max<size_t>(templates * 3, 3000);
    spec.test_logs = spec.train_logs;
    spec.seed = 5;
    Dataset ds = generate_template_corpus(spec, "sweep");
    auto pre = std::move(Preprocessor::create({}).value());
    auto train = bench::tokenize_all(pre, ds.training);
    auto patterns =
        bench::discover_patterns(pre, train, recommended_discovery("D3"));
    auto test = bench::tokenize_all(pre, ds.testing);

    LogParser fast(patterns, pre.classifier());
    Stopwatch sw1;
    for (const auto& log : test) fast.parse(log);
    double t1 = sw1.seconds();

    LogstashParser slow(patterns);
    Stopwatch sw2;
    for (const auto& log : test) slow.parse(log);
    double t2 = sw2.seconds();

    std::printf("%-10zu %-12.4f %-12.4f %.1fx\n", patterns.size(), t1, t2,
                t2 / t1);
  }
  return 0;
}
