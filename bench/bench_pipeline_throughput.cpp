// End-to-end service throughput: logs/second through the full pipeline
// (log manager -> parser stage -> detector stage -> anomaly sink), the
// deployment-scale quantity behind the paper's "handling millions of logs".
//
// Besides the google-benchmark report, the binary writes BENCH_pipeline.json
// (messages/sec and batch-latency percentiles, sourced from the metrics
// registry) so successive PRs leave a machine-readable perf trajectory.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <fstream>

#include "bench/bench_util.h"
#include "datagen/datasets.h"
#include "metrics/metrics.h"
#include "service/service.h"

namespace loglens {
namespace {

struct Fixture {
  Dataset dataset;
  ServiceOptions options;
};

const Fixture& fixture() {
  static const Fixture* kFixture = [] {
    auto* f = new Fixture();
    f->dataset = make_d1(0.1);
    f->options.build.discovery = recommended_discovery("D1");
    return f;
  }();
  return *kFixture;
}

void run_pipeline(benchmark::State& state, size_t partitions,
                  size_t workers) {
  const Fixture& f = fixture();
  for (auto _ : state) {
    state.PauseTiming();
    ServiceOptions opts = f.options;
    opts.parser_partitions = partitions;
    opts.detector_partitions = partitions;
    opts.workers = workers;
    LogLensService service(opts);
    service.train(f.dataset.training);
    Agent agent = service.make_agent("bench");
    state.ResumeTiming();

    agent.replay(f.dataset.testing);
    service.drain();
    benchmark::DoNotOptimize(service.anomalies().count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.dataset.testing.size()));
}

void BM_PipelineSinglePartition(benchmark::State& state) {
  run_pipeline(state, 1, 1);
}
BENCHMARK(BM_PipelineSinglePartition)->Unit(benchmark::kMillisecond);

void BM_PipelineFourPartitions(benchmark::State& state) {
  run_pipeline(state, 4, 4);
}
BENCHMARK(BM_PipelineFourPartitions)->Unit(benchmark::kMillisecond);

// Parser stage alone (no brokers, no detector): the library-level ceiling.
void BM_ParserStageOnly(benchmark::State& state) {
  const Fixture& f = fixture();
  auto pre = std::move(Preprocessor::create({}).value());
  auto train = bench::tokenize_all(pre, f.dataset.training);
  DiscoveryOptions opts = recommended_discovery("D1");
  auto patterns = bench::discover_patterns(pre, train, opts);
  auto test = bench::tokenize_all(pre, f.dataset.testing);
  for (auto _ : state) {
    LogParser parser(patterns, pre.classifier());
    size_t parsed = 0;
    for (const auto& log : test) {
      parsed += parser.parse(log).log.has_value() ? 1 : 0;
    }
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(test.size()));
}
BENCHMARK(BM_ParserStageOnly)->Unit(benchmark::kMillisecond);

// Preprocessing alone (tokenize + timestamp recognition).
void BM_PreprocessOnly(benchmark::State& state) {
  const Fixture& f = fixture();
  for (auto _ : state) {
    auto pre = std::move(Preprocessor::create({}).value());
    size_t tokens = 0;
    for (const auto& line : f.dataset.testing) {
      tokens += pre.process(line).tokens.size();
    }
    benchmark::DoNotOptimize(tokens);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.dataset.testing.size()));
}
BENCHMARK(BM_PreprocessOnly)->Unit(benchmark::kMillisecond);

// Summarizes one engine stage from the global metrics registry. Counters
// accumulate across every benchmark iteration in this process (training
// drains included), which is fine for a trajectory metric.
Json stage_report(const std::string& stage) {
  auto& registry = MetricsRegistry::global();
  MetricLabels labels{{"stage", stage}};
  uint64_t records =
      registry.counter("loglens_engine_records_total", labels).value();
  Histogram::Snapshot batch =
      registry.histogram("loglens_engine_batch_duration_us", labels)
          .snapshot();
  double busy_seconds = static_cast<double>(batch.sum) / 1e6;
  JsonObject obj;
  obj.emplace_back("stage", Json(stage));
  obj.emplace_back("records", Json(static_cast<int64_t>(records)));
  obj.emplace_back("batches", Json(static_cast<int64_t>(batch.count)));
  obj.emplace_back("msgs_per_sec",
                   Json(busy_seconds > 0
                            ? static_cast<double>(records) / busy_seconds
                            : 0.0));
  obj.emplace_back("p50_batch_latency_us", Json(batch.p50));
  obj.emplace_back("p99_batch_latency_us", Json(batch.p99));
  return Json(std::move(obj));
}

void write_bench_json() {
  JsonObject root;
  root.emplace_back("benchmark", Json("bench_pipeline_throughput"));
  JsonArray stages;
  stages.push_back(stage_report("parser"));
  stages.push_back(stage_report("detector"));
  root.emplace_back("stages", Json(std::move(stages)));
  std::ofstream out("BENCH_pipeline.json");
  out << Json(std::move(root)).dump() << "\n";
}

}  // namespace
}  // namespace loglens

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  loglens::write_bench_json();
  return 0;
}
