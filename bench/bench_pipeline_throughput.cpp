// End-to-end service throughput: logs/second through the full pipeline
// (log manager -> parser stage -> detector stage -> anomaly sink), the
// deployment-scale quantity behind the paper's "handling millions of logs".
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datagen/datasets.h"
#include "service/service.h"

namespace loglens {
namespace {

struct Fixture {
  Dataset dataset;
  ServiceOptions options;
};

const Fixture& fixture() {
  static const Fixture* kFixture = [] {
    auto* f = new Fixture();
    f->dataset = make_d1(0.1);
    f->options.build.discovery = recommended_discovery("D1");
    return f;
  }();
  return *kFixture;
}

void run_pipeline(benchmark::State& state, size_t partitions,
                  size_t workers) {
  const Fixture& f = fixture();
  for (auto _ : state) {
    state.PauseTiming();
    ServiceOptions opts = f.options;
    opts.parser_partitions = partitions;
    opts.detector_partitions = partitions;
    opts.workers = workers;
    LogLensService service(opts);
    service.train(f.dataset.training);
    Agent agent = service.make_agent("bench");
    state.ResumeTiming();

    agent.replay(f.dataset.testing);
    service.drain();
    benchmark::DoNotOptimize(service.anomalies().count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.dataset.testing.size()));
}

void BM_PipelineSinglePartition(benchmark::State& state) {
  run_pipeline(state, 1, 1);
}
BENCHMARK(BM_PipelineSinglePartition)->Unit(benchmark::kMillisecond);

void BM_PipelineFourPartitions(benchmark::State& state) {
  run_pipeline(state, 4, 4);
}
BENCHMARK(BM_PipelineFourPartitions)->Unit(benchmark::kMillisecond);

// Parser stage alone (no brokers, no detector): the library-level ceiling.
void BM_ParserStageOnly(benchmark::State& state) {
  const Fixture& f = fixture();
  auto pre = std::move(Preprocessor::create({}).value());
  auto train = bench::tokenize_all(pre, f.dataset.training);
  DiscoveryOptions opts = recommended_discovery("D1");
  auto patterns = bench::discover_patterns(pre, train, opts);
  auto test = bench::tokenize_all(pre, f.dataset.testing);
  for (auto _ : state) {
    LogParser parser(patterns, pre.classifier());
    size_t parsed = 0;
    for (const auto& log : test) {
      parsed += parser.parse(log).log.has_value() ? 1 : 0;
    }
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(test.size()));
}
BENCHMARK(BM_ParserStageOnly)->Unit(benchmark::kMillisecond);

// Preprocessing alone (tokenize + timestamp recognition).
void BM_PreprocessOnly(benchmark::State& state) {
  const Fixture& f = fixture();
  for (auto _ : state) {
    auto pre = std::move(Preprocessor::create({}).value());
    size_t tokens = 0;
    for (const auto& line : f.dataset.testing) {
      tokens += pre.process(line).tokens.size();
    }
    benchmark::DoNotOptimize(tokens);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.dataset.testing.size()));
}
BENCHMARK(BM_PreprocessOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace loglens

BENCHMARK_MAIN();
