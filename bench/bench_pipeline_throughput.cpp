// End-to-end service throughput: logs/second through the full pipeline
// (log manager -> parser stage -> detector stage -> anomaly sink), the
// deployment-scale quantity behind the paper's "handling millions of logs".
//
// Hand-rolled main (no google-benchmark) because this binary is also the
// pipeline *profiler*: it runs the same workload twice — tracing disabled,
// then tracing enabled — and writes three machine-readable artifacts:
//
//   BENCH_pipeline_notrace.json  stage throughput with tracing off (the
//                                number CI compares against the committed
//                                baseline, and the denominator of the
//                                tracing-overhead gate)
//   BENCH_pipeline.json          stage throughput with tracing on (same
//                                shape; CI bounds the notrace->traced drop
//                                via tools/bench_compare.py)
//   BENCH_pipeline_profile.json  the trace-derived attribution: per-stage
//                                latency breakdown (queue wait / control /
//                                route / exec / collect / publish), span
//                                accounting, lock-contention profile
//
// It also enforces the attribution's integrity in-process: for each stage,
// the components the report attributes must sum to within 10% of the
// measured end-to-end batch latency (coverage in [0.9, 1.1]) or the run
// exits 1 — a tracing hook that silently loses a hop fails the bench, not
// just the dashboard.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/lock_rank.h"
#include "datagen/datasets.h"
#include "json/json.h"
#include "metrics/metrics.h"
#include "service/service.h"
#include "trace/report.h"
#include "trace/trace.h"

namespace loglens {
namespace {

struct Fixture {
  Dataset dataset;
  ServiceOptions options;
};

const Fixture& fixture() {
  static const Fixture* kFixture = [] {
    auto* f = new Fixture();
    f->dataset = make_d1(0.1);
    f->options.build.discovery = recommended_discovery("D1");
    return f;
  }();
  return *kFixture;
}

size_t bench_reps() {
  if (const char* env = std::getenv("LOGLENS_BENCH_REPS")) {
    long reps = std::atol(env);
    if (reps > 0) return static_cast<size_t>(reps);
  }
  return 3;
}

// One full pipeline pass: fresh service, train, replay the test split,
// drain to the anomaly sink. Metrics and spans accumulate in the global
// registry across calls (the per-phase reset is the caller's job).
void run_pipeline(size_t partitions, size_t workers) {
  const Fixture& f = fixture();
  ServiceOptions opts = f.options;
  opts.parser_partitions = partitions;
  opts.detector_partitions = partitions;
  opts.workers = workers;
  LogLensService service(opts);
  service.train(f.dataset.training);
  Agent agent = service.make_agent("bench");
  agent.replay(f.dataset.testing);
  service.drain();
}

// Summarizes one engine stage from the global metrics registry. Counters
// accumulate across every rep in a phase (training drains included), which
// is fine for a trajectory metric.
Json stage_report(const std::string& stage) {
  auto& registry = MetricsRegistry::global();
  MetricLabels labels{{"stage", stage}};
  uint64_t records =
      registry.counter("loglens_engine_records_total", labels).value();
  Histogram::Snapshot batch =
      registry.histogram("loglens_engine_batch_duration_us", labels)
          .snapshot();
  double busy_seconds = static_cast<double>(batch.sum) / 1e6;
  JsonObject obj;
  obj.emplace_back("stage", Json(stage));
  obj.emplace_back("records", Json(static_cast<int64_t>(records)));
  obj.emplace_back("batches", Json(static_cast<int64_t>(batch.count)));
  obj.emplace_back("msgs_per_sec",
                   Json(busy_seconds > 0
                            ? static_cast<double>(records) / busy_seconds
                            : 0.0));
  obj.emplace_back("p50_batch_latency_us", Json(batch.p50));
  obj.emplace_back("p99_batch_latency_us", Json(batch.p99));
  return Json(std::move(obj));
}

struct PhaseResult {
  double parser_msgs_per_sec = 0;
  double detector_msgs_per_sec = 0;
  std::vector<trace::Span> spans;
  uint64_t spans_dropped = 0;
};

double stage_rate(const Json& stage) {
  const Json* rate = stage.find("msgs_per_sec");
  return rate != nullptr && rate->is_double() ? rate->as_double() : 0.0;
}

// Runs `reps` passes over the (1,1) and (4,4) configurations and writes a
// BENCH_<...>.json in the shared stages[] shape.
PhaseResult run_phase(const char* out_path, size_t reps) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  for (size_t rep = 0; rep < reps; ++rep) {
    run_pipeline(1, 1);
    run_pipeline(4, 4);
  }
  PhaseResult result;
  result.spans = registry.take_trace_spans();
  result.spans_dropped = registry.spans_dropped();

  JsonObject root;
  root.emplace_back("benchmark", Json("bench_pipeline_throughput"));
  JsonArray stages;
  Json parser = stage_report("parser");
  Json detector = stage_report("detector");
  result.parser_msgs_per_sec = stage_rate(parser);
  result.detector_msgs_per_sec = stage_rate(detector);
  stages.push_back(std::move(parser));
  stages.push_back(std::move(detector));
  root.emplace_back("stages", Json(std::move(stages)));
  std::ofstream out(out_path);
  out << Json(std::move(root)).dump() << "\n";
  std::printf("%s: parser %.0f msgs/s, detector %.0f msgs/s\n", out_path,
              result.parser_msgs_per_sec, result.detector_msgs_per_sec);
  return result;
}

Json overhead_entry(const char* stage, double notrace, double traced) {
  JsonObject obj;
  obj.emplace_back("stage", Json(stage));
  obj.emplace_back("notrace_msgs_per_sec", Json(notrace));
  obj.emplace_back("traced_msgs_per_sec", Json(traced));
  obj.emplace_back("overhead",
                   Json(notrace > 0 ? 1.0 - traced / notrace : 0.0));
  return Json(std::move(obj));
}

void write_profile(const trace::Report& report, const PhaseResult& notrace,
                   const PhaseResult& traced) {
  JsonObject root;
  root.emplace_back("benchmark", Json("bench_pipeline_profile"));
  root.emplace_back("report", trace::report_json(report));
  JsonArray overhead;
  overhead.push_back(overhead_entry("parser", notrace.parser_msgs_per_sec,
                                    traced.parser_msgs_per_sec));
  overhead.push_back(overhead_entry("detector", notrace.detector_msgs_per_sec,
                                    traced.detector_msgs_per_sec));
  root.emplace_back("tracing_overhead", Json(std::move(overhead)));
  root.emplace_back("mutex_profile_enabled",
                    Json(lock_rank::profiling_enabled()));
  JsonArray contention;
  for (const auto& stat : lock_rank::contention_profile()) {
    JsonObject row;
    row.emplace_back("rank", Json(stat.rank));
    row.emplace_back("name", Json(stat.name));
    row.emplace_back("contended", Json(static_cast<int64_t>(stat.contended)));
    row.emplace_back("wait_us_total",
                     Json(static_cast<int64_t>(stat.wait_us_total)));
    row.emplace_back("wait_us_max",
                     Json(static_cast<int64_t>(stat.wait_us_max)));
    contention.push_back(Json(std::move(row)));
  }
  root.emplace_back("contention", Json(std::move(contention)));
  std::ofstream out("BENCH_pipeline_profile.json");
  out << Json(std::move(root)).dump() << "\n";
}

// The attribution-integrity gate: every stage with a meaningful sample must
// account for its end-to-end batch latency to within 10%.
int check_coverage(const trace::Report& report) {
  int rc = 0;
  for (const auto& stage : report.stages) {
    if (stage.batches < 5) continue;
    if (stage.coverage < 0.9 || stage.coverage > 1.1) {
      std::fprintf(stderr,
                   "FAIL: stage %s attribution covers %.1f%% of end-to-end "
                   "batch latency (bound: 90%%..110%%)\n",
                   stage.stage.c_str(), stage.coverage * 100.0);
      rc = 1;
    }
  }
  return rc;
}

int run() {
  const size_t reps = bench_reps();

  // Phase A: tracing off — the clean throughput number.
  trace::set_enabled(false);
  PhaseResult notrace = run_phase("BENCH_pipeline_notrace.json", reps);
  if (!notrace.spans.empty()) {
    std::fprintf(stderr,
                 "FAIL: %zu span(s) recorded with tracing disabled\n",
                 notrace.spans.size());
    return 1;
  }

  // Phase B: the same workload with tracing on; the spans feed the
  // attribution report and the traced/notrace pair bounds the overhead.
  trace::set_enabled(true);
  lock_rank::contention_reset();
  PhaseResult traced = run_phase("BENCH_pipeline.json", reps);

  trace::Report report =
      trace::build_report(traced.spans, traced.spans_dropped);
  std::printf("\n%s", trace::format_report(report).c_str());
  write_profile(report, notrace, traced);
  if (traced.spans_dropped != 0) {
    std::fprintf(stderr,
                 "warning: %llu span(s) dropped (buffers overflowed); "
                 "attribution may undercount\n",
                 static_cast<unsigned long long>(traced.spans_dropped));
  }
  return check_coverage(report);
}

}  // namespace
}  // namespace loglens

int main() { return loglens::run(); }
