// Section VII-B case study: discovering SS7 spoofing attacks.
// Paper: 2.7M logs over 3 hours; training on the first 2 hours; 994
// anomalies found in the final hour, in tight temporal clusters; each is a
// truncated InvokePurgeMs -> InvokeSendAuthenticationInfo dialogue that
// never reaches InvokeUpdateLocation. Manual analysis took 2 days; LogLens
// took ~5 minutes (576x saving).
#include <cstdio>

#include "bench/exp_util.h"
#include "service/dashboard.h"

int main() {
  using namespace loglens;
  double scale = bench::scale_or(0.02);

  bench::print_header("Case study B: SS7 spoofing attacks");
  Dataset ss7 = make_ss7(scale);
  std::printf("scale=%g -> %zu training logs, %zu testing logs, "
              "%zu injected spoofing dialogues (paper: 994)\n",
              scale, ss7.training.size(), ss7.testing.size(),
              ss7.anomalous_event_ids.size());

  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("SS7");
  LogLensService service(opts);
  bench::Stopwatch sw;
  BuildResult build = service.train(ss7.training);
  bench::RunResult run = bench::run_detection(service, ss7, true);
  double total_s = sw.seconds();

  size_t missing_end =
      service.anomalies().count_by_type(AnomalyType::kMissingEndState);
  double r = bench::recall(run.anomalous_ids, ss7.anomalous_event_ids);

  std::printf("\npatterns: %zu, automata: %zu, id field discovered: %s\n",
              build.model.patterns.size(),
              build.model.sequence.automata.size(),
              build.model.sequence.id_fields.empty() ? "NO" : "yes (imsi)");
  std::printf("anomalous dialogues flagged : %zu (missing-end records: %zu)\n",
              run.anomalous_ids.size(), missing_end);
  std::printf("recall on spoofed dialogues : %.1f%%\n", r * 100);
  std::printf("end-to-end analysis time    : %.1f s "
              "(paper: ~5 min vs 2 days manual)\n", total_s);

  // The paper's Figure 6: anomalies form temporal clusters. Render the
  // anomaly timeline over the test hour.
  const int64_t t1 = 1462788000000 + 2 * 3600'000;
  Dashboard dashboard(service.anomalies(), service.model_store(),
                      service.log_store());
  std::printf("\n%s", dashboard
                  .render_timeline(t1, t1 + 3600'000, 5 * 60'000)
                  .c_str());

  bool ok = r == 1.0 && !build.model.sequence.id_fields.empty();
  std::printf("\npaper shape (all spoofing dialogues found via missing "
              "UpdateLocation, clustered in time) -> %s\n",
              ok ? "REPRODUCED" : "NOT reproduced");
  return ok ? 0 : 1;
}
