// Parser hot-path microbench: the per-log cost of the stateless parser on
// the index-hit fast path, plus the adversarial multi-wildcard case that
// used to trigger exponential backtracking in the GROK matcher.
//
// Writes BENCH_parser.json:
//   parser_hot_path            msgs/sec and allocs/log over warm index-hit
//                              parse_into calls (the allocation contract
//                              says allocs_per_log == 0)
//   parser_adversarial_wildcard  msgs/sec for a 3-wildcard pattern against a
//                              200-token log it cannot match (pre-rewrite
//                              this ran at ~1 msg/sec)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "json/json.h"
#include "parser/log_parser.h"
#include "tokenize/preprocessor.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace loglens {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<GrokPattern> make_model() {
  std::vector<GrokPattern> model;
  int id = 1;
  for (const char* text : {
           "%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}",
           "%{WORD:w} logged out session %{NUMBER:n}",
           "%{IP:src} -> %{IP:dst} bytes %{NUMBER:b}",
           "error code %{NUMBER:code} at %{NOTSPACE:loc}",
           "start %{ANYDATA:body} end",
       }) {
    auto p = GrokPattern::parse(text);
    p->assign_field_ids(id++);
    model.push_back(std::move(p.value()));
  }
  return model;
}

struct StageResult {
  std::string stage;
  double msgs_per_sec = 0;
  double allocs_per_log = -1;  // < 0: not measured for this stage
};

StageResult run_hot_path() {
  auto pre = std::move(Preprocessor::create({}).value());
  std::vector<TokenizedLog> logs;
  for (int i = 0; i < 4096; ++i) {
    logs.push_back(pre.process("Connect DB 10.0.0." + std::to_string(i % 250) +
                               " user u" + std::to_string(100000 + i)));
  }
  LogParser parser(make_model(), pre.classifier());
  ParsedLog parsed;
  size_t ok = 0;
  for (const auto& l : logs) ok += parser.parse_into(l, parsed);  // warm

  const uint64_t allocs_before = g_allocations.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  size_t n = 0;
  for (int it = 0; it < 200; ++it) {
    for (const auto& l : logs) {
      ok += parser.parse_into(l, parsed);
      ++n;
    }
  }
  const double secs = seconds_since(t0);
  const uint64_t allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;

  StageResult r;
  r.stage = "parser_hot_path";
  r.msgs_per_sec = static_cast<double>(n) / secs;
  r.allocs_per_log = static_cast<double>(allocs) / static_cast<double>(n);
  std::printf("parser_hot_path: %zu logs in %.3fs = %.0f msgs/sec, "
              "%.4f allocs/log (parsed %zu)\n",
              n, secs, r.msgs_per_sec, r.allocs_per_log, ok);
  return r;
}

StageResult run_adversarial() {
  auto pre = std::move(Preprocessor::create({}).value());
  auto adv = GrokPattern::parse(
      "%{ANYDATA:a} alpha %{ANYDATA:b} alpha %{ANYDATA:c} alpha zzz");
  adv->assign_field_ids(99);
  std::string line;
  for (int i = 0; i < 200; ++i) line += "alpha ";
  TokenizedLog log = pre.process(line);
  LogParser parser({adv.value()}, pre.classifier());
  ParsedLog parsed;
  parser.parse_into(log, parsed);  // warm

  const auto t0 = std::chrono::steady_clock::now();
  int reps = 0;
  // Time-box: a regressed matcher must not hang the bench.
  while (reps < 200000 && seconds_since(t0) < 5.0) {
    parser.parse_into(log, parsed);
    ++reps;
  }
  const double secs = seconds_since(t0);

  StageResult r;
  r.stage = "parser_adversarial_wildcard";
  r.msgs_per_sec = static_cast<double>(reps) / secs;
  std::printf("parser_adversarial_wildcard: %d parses in %.3fs = "
              "%.2f msgs/sec\n",
              reps, secs, r.msgs_per_sec);
  return r;
}

void write_bench_json(const std::vector<StageResult>& results) {
  JsonObject root;
  root.emplace_back("benchmark", Json("bench_parser_hot_path"));
  JsonArray stages;
  for (const auto& r : results) {
    JsonObject obj;
    obj.emplace_back("stage", Json(r.stage));
    obj.emplace_back("msgs_per_sec", Json(r.msgs_per_sec));
    if (r.allocs_per_log >= 0) {
      obj.emplace_back("allocs_per_log", Json(r.allocs_per_log));
    }
    stages.push_back(Json(std::move(obj)));
  }
  root.emplace_back("stages", Json(std::move(stages)));
  std::ofstream out("BENCH_parser.json");
  out << Json(std::move(root)).dump() << "\n";
}

}  // namespace
}  // namespace loglens

int main() {
  std::vector<loglens::StageResult> results;
  results.push_back(loglens::run_hot_path());
  results.push_back(loglens::run_adversarial());
  loglens::write_bench_json(results);
  return 0;
}
