// Shared helpers for the experiment/benchmark binaries.
//
// Every binary is runnable with no arguments. Environment knobs:
//   LOGLENS_SCALE          dataset scale factor (default per binary; 1.0
//                          reproduces paper volumes — slow on a laptop)
//   LOGLENS_BASELINE_BUDGET_S  wall-clock budget for the Logstash baseline
//                          before a dataset is declared "NA (timeout)",
//                          mirroring the paper's 48-hour cutoff (default 20)
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "logmine/discoverer.h"
#include "tokenize/preprocessor.h"

namespace loglens::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atof(v);
}

inline double scale_or(double fallback) {
  return env_double("LOGLENS_SCALE", fallback);
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline std::vector<TokenizedLog> tokenize_all(
    Preprocessor& pre, const std::vector<std::string>& lines) {
  std::vector<TokenizedLog> out;
  out.reserve(lines.size());
  for (const auto& l : lines) out.push_back(pre.process(l));
  return out;
}

inline std::vector<GrokPattern> discover_patterns(
    Preprocessor& pre, const std::vector<TokenizedLog>& logs,
    const DiscoveryOptions& opts) {
  PatternDiscoverer discoverer(opts, pre.classifier());
  return discoverer.discover(logs);
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace loglens::bench
