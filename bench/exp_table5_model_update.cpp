// Table V: anomaly detection before/after deleting one automaton through a
// live model update (no service restart).
// Paper: D1 2 automata / 21 anomalies -> 1 automaton / 13 anomalies;
//        D2 3 automata / 13 anomalies -> 2 automata / 9 anomalies.
#include <cstdio>

#include "bench/exp_util.h"

namespace loglens {
namespace {

// The automaton to delete: the one owning the ground-truth event type whose
// anomalies should disappear (type 2 for D1, type 3 for D2). We identify it
// by state count: D1's type-2 automaton has 3 states; D2's type-3 has 4
// states and is the automaton with the most states carrying a BackupChunk-
// style 1..3 occurrence range. To stay dataset-agnostic we delete by index
// learned from the ground truth instead: run once, see which automaton ids
// the doomed events map to, then delete that automaton.
int automaton_of_type(LogLensService& service, const Dataset& ds,
                      int victim_type) {
  // Map one anomalous event id of the victim type to its automaton via the
  // anomaly records of a dry run.
  std::set<std::string> victim_ids;
  for (const auto& [id, type] : ds.anomaly_event_types) {
    if (type == victim_type) victim_ids.insert(id);
  }
  for (const auto& a : service.anomalies().all()) {
    if (victim_ids.contains(a.event_id)) return a.automaton_id;
  }
  return -1;
}

}  // namespace
}  // namespace loglens

int main() {
  using namespace loglens;
  double scale = bench::scale_or(0.1);

  bench::print_header("Table V: anomaly detection using model updates");
  std::printf("scale=%g\n\n", scale);
  std::printf("%-8s %-10s %-10s %-16s %-10s\n", "Dataset", "Automata",
              "Anomalies", "Automata(after)", "Anomalies(after)");

  bool shape_holds = true;
  struct Expect {
    const char* name;
    int victim_type;
    size_t before;
    size_t after;
  };
  const Expect expectations[] = {{"D1", 2, 21, 13}, {"D2", 3, 13, 9}};

  for (const Expect& e : expectations) {
    Dataset ds = make_dataset(e.name, scale);
    ServiceOptions opts;
    opts.build.discovery = recommended_discovery(e.name);

    // Dry run to learn the victim automaton id from ground truth.
    LogLensService probe(opts);
    BuildResult build = probe.train(ds.training);
    bench::RunResult before = bench::run_detection(probe, ds, true);
    int victim = automaton_of_type(probe, ds, e.victim_type);

    // Real run: delete the automaton mid-service, then stream.
    LogLensService service(opts);
    service.train(ds.training);
    service.models().edit(service.model_name(), [victim](CompositeModel& m) {
      std::erase_if(m.sequence.automata, [victim](const Automaton& a) {
        return a.id == victim;
      });
    });
    bench::RunResult after = bench::run_detection(service, ds, true);

    std::printf("%-8s %-10zu %-10zu %-16zu %zu\n", e.name,
                build.model.sequence.automata.size(),
                before.anomalous_ids.size(),
                build.model.sequence.automata.size() - 1,
                after.anomalous_ids.size());
    shape_holds = shape_holds && before.anomalous_ids.size() == e.before &&
                  after.anomalous_ids.size() == e.after;
  }
  std::printf("\npaper: D1 21 -> 13, D2 13 -> 9 after deleting one automaton "
              "-> %s\n",
              shape_holds ? "REPRODUCED" : "NOT reproduced");
  return shape_holds ? 0 : 1;
}
