// Figure 5: anomaly detection with and without the heartbeat controller.
// Paper: without heartbeats LogLens reports 20 (D1) and 10 (D2) of the
// 21 / 13 anomalies — the missing-end anomalies are only reportable when a
// heartbeat advances log time past the open event's deadline.
#include <cstdio>

#include "bench/exp_util.h"

int main() {
  using namespace loglens;
  double scale = bench::scale_or(0.1);

  bench::print_header("Figure 5: anomaly detection with/without heartbeats");
  std::printf("scale=%g\n\n", scale);
  std::printf("%-8s %-13s %-13s %-12s %-10s\n", "Dataset", "GroundTruth",
              "w/o HB", "w/ HB", "OpenStates(w/o)");

  bool shape_holds = true;
  for (const char* name : {"D1", "D2"}) {
    Dataset ds = make_dataset(name, scale);
    ServiceOptions opts;
    opts.build.discovery = recommended_discovery(name);

    LogLensService without(opts);
    without.train(ds.training);
    bench::RunResult no_hb = bench::run_detection(without, ds, false);

    LogLensService with(opts);
    with.train(ds.training);
    bench::RunResult hb = bench::run_detection(with, ds, true);

    std::printf("%-8s %-13zu %-13zu %-12zu %zu\n", name,
                ds.injected_anomalies(), no_hb.anomalous_ids.size(),
                hb.anomalous_ids.size(), no_hb.open_events_left);

    // The gap must be exactly the missing-end events, and heartbeats must
    // close it completely.
    shape_holds =
        shape_holds &&
        hb.anomalous_ids.size() == ds.injected_anomalies() &&
        no_hb.anomalous_ids.size() ==
            ds.injected_anomalies() - ds.missing_end_event_ids.size();
  }
  std::printf(
      "\npaper: D1 20 -> 21 and D2 10 -> 13 with heartbeats -> %s\n",
      shape_holds ? "REPRODUCED" : "NOT reproduced");
  return shape_holds ? 0 : 1;
}
