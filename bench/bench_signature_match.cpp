// Algorithm 1 microbenchmark: the dynamic-programming wildcard signature
// matcher, swept over signature lengths, with and without wildcards.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "parser/signature.h"

namespace loglens {
namespace {

std::vector<Datatype> random_signature(Rng& rng, size_t len,
                                       bool with_wildcards) {
  static constexpr Datatype kBase[] = {Datatype::kWord, Datatype::kNumber,
                                       Datatype::kIp, Datatype::kNotSpace,
                                       Datatype::kDateTime};
  std::vector<Datatype> out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (with_wildcards && rng.chance(0.2)) {
      out.push_back(Datatype::kAnyData);
    } else {
      out.push_back(kBase[rng.below(5)]);
    }
  }
  return out;
}

void BM_SignatureMatchExact(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Rng rng(7);
  auto log = random_signature(rng, len, false);
  auto pat = log;  // guaranteed match: worst case for the exact path
  for (auto _ : state) {
    benchmark::DoNotOptimize(signature_match(log, pat));
  }
}
BENCHMARK(BM_SignatureMatchExact)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SignatureMatchWildcard(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Rng rng(7);
  auto log = random_signature(rng, len, false);
  auto pat = random_signature(rng, len, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signature_match(log, pat));
  }
}
BENCHMARK(BM_SignatureMatchWildcard)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SignatureMatchAllWild(benchmark::State& state) {
  // Pattern of pure wildcards: the densest DP table.
  const size_t len = static_cast<size_t>(state.range(0));
  Rng rng(7);
  auto log = random_signature(rng, len, false);
  std::vector<Datatype> pat(len, Datatype::kAnyData);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signature_match(log, pat));
  }
}
BENCHMARK(BM_SignatureMatchAllWild)->Arg(8)->Arg(32)->Arg(64);

void BM_SignatureKey(benchmark::State& state) {
  Rng rng(7);
  auto sig = random_signature(rng, static_cast<size_t>(state.range(0)), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signature_key(sig));
  }
}
BENCHMARK(BM_SignatureKey)->Arg(8)->Arg(32);

}  // namespace
}  // namespace loglens

BENCHMARK_MAIN();
