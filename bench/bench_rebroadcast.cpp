// Section V-A: dynamic model update overhead. The paper claims the
// rebroadcast pause is "negligible" and proportional only to the model's
// in-memory copy cost. We measure micro-batch latency with and without a
// pending model update, swept over model size.
#include <benchmark/benchmark.h>

#include "service/model.h"
#include "service/tasks.h"
#include "streaming/engine.h"

namespace loglens {
namespace {

CompositeModel model_of_size(size_t patterns) {
  CompositeModel m;
  for (size_t i = 1; i <= patterns; ++i) {
    auto p = GrokPattern::parse("svc" + std::to_string(i) +
                                " op %{NOTSPACE:a} val %{NUMBER:b}");
    p->assign_field_ids(static_cast<int>(i));
    m.patterns.push_back(std::move(p.value()));
  }
  return m;
}

std::vector<Message> small_batch() {
  std::vector<Message> batch;
  for (int i = 0; i < 64; ++i) {
    Message msg;
    msg.key = "k" + std::to_string(i);
    msg.value = "svc1 op x val " + std::to_string(i);
    msg.tag = kTagData;
    msg.source = "bench";
    batch.push_back(std::move(msg));
  }
  return batch;
}

// A task that pulls the broadcast each batch (like the real stages do).
struct PullTask : PartitionTask {
  std::shared_ptr<ModelBroadcast> bv;
  size_t partition;
  PullTask(std::shared_ptr<ModelBroadcast> b, size_t p)
      : bv(std::move(b)), partition(p) {}
  void process(const Message&, TaskContext&) override {
    benchmark::DoNotOptimize(bv->value(partition)->patterns.size());
  }
};

void run(benchmark::State& state, bool update_each_batch) {
  const auto patterns = static_cast<size_t>(state.range(0));
  auto bv = std::make_shared<ModelBroadcast>(1, model_of_size(patterns), 4);
  EngineOptions opts;
  opts.partitions = 4;
  opts.workers = 2;
  StreamEngine engine(opts, [&bv](size_t p) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<PullTask>(bv, p);
  });
  CompositeModel replacement = model_of_size(patterns);
  auto batch = small_batch();
  for (auto _ : state) {
    if (update_each_batch) {
      engine.enqueue_control([&bv, &replacement] {
        bv->update(replacement);  // copy + swap, the paper's only pause
      });
    }
    BatchResult r = engine.run_batch(batch);
    benchmark::DoNotOptimize(r.outputs.size());
  }
  state.counters["pulls"] = static_cast<double>(bv->pulls());
}

void BM_BatchSteadyState(benchmark::State& state) { run(state, false); }
BENCHMARK(BM_BatchSteadyState)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(3000)
    ->Unit(benchmark::kMicrosecond);

void BM_BatchWithModelUpdate(benchmark::State& state) { run(state, true); }
BENCHMARK(BM_BatchWithModelUpdate)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(3000)
    ->Unit(benchmark::kMicrosecond);

// The raw rebroadcast cost in isolation: value copy + version bump + the
// four partition re-pulls.
void BM_RebroadcastAlone(benchmark::State& state) {
  const auto patterns = static_cast<size_t>(state.range(0));
  Broadcast<CompositeModel> bv(1, model_of_size(patterns), 4);
  CompositeModel replacement = model_of_size(patterns);
  for (auto _ : state) {
    bv.update(replacement);
    for (size_t p = 0; p < 4; ++p) {
      benchmark::DoNotOptimize(bv.value(p));
    }
  }
}
BENCHMARK(BM_RebroadcastAlone)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(3000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace loglens

BENCHMARK_MAIN();
