#include "baseline/logstash_parser.h"

#include <gtest/gtest.h>

#include "tokenize/preprocessor.h"

namespace loglens {
namespace {

class LogstashTest : public ::testing::Test {
 protected:
  LogstashTest() : pre_(std::move(Preprocessor::create({}).value())) {}

  std::vector<GrokPattern> model(std::initializer_list<const char*> texts) {
    std::vector<GrokPattern> out;
    int id = 1;
    for (const char* t : texts) {
      auto p = GrokPattern::parse(t);
      EXPECT_TRUE(p.ok()) << t;
      p->assign_field_ids(id++);
      out.push_back(std::move(p.value()));
    }
    return out;
  }

  Preprocessor pre_;
};

TEST_F(LogstashTest, PatternToRegexShapes) {
  auto p = GrokPattern::parse(
      "%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(LogstashParser::pattern_to_regex(p.value()),
            "([a-zA-Z]+) DB ([0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}"
            "\\.[0-9]{1,3}) user (\\S+)");
}

TEST_F(LogstashTest, EscapesRegexMetaInLiterals) {
  auto p = GrokPattern::parse("(0): q.x %{NUMBER:n}");
  ASSERT_TRUE(p.ok());
  std::string re = LogstashParser::pattern_to_regex(p.value());
  EXPECT_EQ(re, "\\(0\\): q\\.x (-?[0-9]+(?:\\.[0-9]+)?)");
  // And the regex actually matches the literal text.
  LogstashParser parser(model({"(0): q.x %{NUMBER:n}"}));
  auto outcome = parser.parse(pre_.process("(0): q.x 42"));
  EXPECT_TRUE(outcome.log.has_value());
  EXPECT_FALSE(parser.parse(pre_.process("(0)! qyx 42")).log.has_value());
}

TEST_F(LogstashTest, ParsesAndExtractsFields) {
  LogstashParser parser(
      model({"%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}"}));
  auto outcome = parser.parse(pre_.process("Connect DB 127.0.0.1 user abc123"));
  ASSERT_TRUE(outcome.log.has_value());
  const auto& f = outcome.log->fields;
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].first, "Action");
  EXPECT_EQ(f[0].second.as_string(), "Connect");
  EXPECT_EQ(f[2].second.as_string(), "abc123");
}

TEST_F(LogstashTest, FirstMatchWinsInModelOrder) {
  LogstashParser parser(model({"%{NOTSPACE:a} %{NOTSPACE:b}",
                               "%{WORD:a} %{NUMBER:b}"}));
  auto outcome = parser.parse(pre_.process("login 42"));
  ASSERT_TRUE(outcome.log.has_value());
  EXPECT_EQ(outcome.log->pattern_id, 1);  // no specificity ordering
}

TEST_F(LogstashTest, LinearScanCostsGrowWithModel) {
  // The defining behaviour: per-log attempts ~ model size for unmatched
  // logs.
  LogstashParser parser(model({"a %{NUMBER:x}", "b %{NUMBER:x}",
                               "c %{NUMBER:x}", "d %{NUMBER:x}"}));
  parser.parse(pre_.process("zz 1"));  // matches nothing
  EXPECT_EQ(parser.stats().regex_attempts, 4u);
  EXPECT_EQ(parser.stats().unparsed, 1u);
  parser.parse(pre_.process("a 1"));  // matches first
  EXPECT_EQ(parser.stats().regex_attempts, 5u);
}

TEST_F(LogstashTest, DateTimeFieldMatchesCanonicalForm) {
  LogstashParser parser(model({"%{DATETIME:t} boot %{WORD:w}"}));
  auto outcome = parser.parse(pre_.process("2016/02/23 09:00:31 boot ok"));
  ASSERT_TRUE(outcome.log.has_value());
  EXPECT_EQ(outcome.log->fields[0].second.as_string(),
            "2016/02/23 09:00:31.000");
}

TEST_F(LogstashTest, AgreesWithLogLensParserOnParseability) {
  auto patterns = model({"%{WORD:a} %{NUMBER:b}", "start %{ANYDATA:x} end",
                         "%{DATETIME:t} %{IP:ip} login %{NOTSPACE:u}"});
  LogstashParser logstash(patterns);
  LogParser loglens_parser(patterns, pre_.classifier());
  const char* inputs[] = {
      "hello 42",
      "start middle bits end",
      "start end",
      "2016/02/23 09:00:31 10.1.2.3 login user9",
      "unmatched garbage line",
      "hello notanumber",
  };
  for (const char* in : inputs) {
    TokenizedLog log = pre_.process(in);
    EXPECT_EQ(logstash.parse(log).log.has_value(),
              loglens_parser.parse(log).log.has_value())
        << in;
  }
}

TEST_F(LogstashTest, NoPatternsDroppedAtConstruction) {
  // Every generated regex must compile: a drop silently shrinks the baseline
  // pattern set and skews the Table IV comparison. Cover all field datatypes
  // plus meta-heavy literals.
  auto patterns = model({
      "%{WORD:a} %{NUMBER:b} %{IP:c} %{NOTSPACE:d}",
      "%{DATETIME:t} %{ANYDATA:rest}",
      "(0): q.x [a] {b} * + ? | ^ $ %{NUMBER:n}",
  });
  LogstashParser parser(patterns);
  EXPECT_EQ(parser.stats().patterns_dropped, 0u);
  EXPECT_EQ(parser.pattern_count() + parser.stats().patterns_dropped,
            patterns.size());
}

TEST_F(LogstashTest, ResetStatsPreservesPatternsDropped) {
  // patterns_dropped is a property of construction, not of a measurement
  // window, so reset_stats() must keep it while zeroing the counters.
  LogstashParser parser(model({"%{WORD:a} %{NUMBER:b}"}));
  parser.parse(pre_.process("hello 42"));
  ASSERT_EQ(parser.stats().logs, 1u);
  const uint64_t dropped = parser.stats().patterns_dropped;
  parser.reset_stats();
  EXPECT_EQ(parser.stats().logs, 0u);
  EXPECT_EQ(parser.stats().regex_attempts, 0u);
  EXPECT_EQ(parser.stats().patterns_dropped, dropped);
}

TEST_F(LogstashTest, ResidentBytesGrowWithPatterns) {
  LogstashParser small(model({"%{WORD:a}"}));
  LogstashParser large(model({"%{WORD:a} %{NUMBER:b} %{IP:c} x y z",
                              "%{DATETIME:t} %{ANYDATA:r}",
                              "alpha %{NOTSPACE:u} beta %{NUMBER:v}"}));
  EXPECT_GT(large.resident_bytes(), small.resident_bytes());
  EXPECT_EQ(large.pattern_count(), 3u);
}

}  // namespace
}  // namespace loglens
