// Concurrency stress tests for the streaming substrate: many batches, many
// partitions, model updates racing with processing, and state integrity
// across the whole run.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "streaming/engine.h"
#include "streaming/job.h"

namespace loglens {
namespace {

Message msg(std::string key, std::string value,
            const char* tag = kTagData) {
  Message m;
  m.key = std::move(key);
  m.value = std::move(value);
  m.tag = tag;
  return m;
}

// Keyed counter task: counts records per key, emits nothing. State must be
// exact at the end no matter how batches were scheduled.
class CountTask : public PartitionTask {
 public:
  void process(const Message& m, TaskContext&) override {
    if (m.tag == kTagHeartbeat) {
      ++heartbeats_;
      return;
    }
    ++counts_[m.key];
  }
  const std::map<std::string, uint64_t>& counts() const { return counts_; }
  uint64_t heartbeats() const { return heartbeats_; }

 private:
  std::map<std::string, uint64_t> counts_;
  uint64_t heartbeats_ = 0;
};

TEST(StreamingStress, ExactCountsAcrossManyBatches) {
  EngineOptions opts;
  opts.partitions = 8;
  opts.workers = 4;
  StreamEngine engine(opts, [](size_t) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<CountTask>();
  });
  constexpr int kKeys = 50;
  constexpr int kBatches = 100;
  constexpr int kPerBatch = 200;
  uint64_t sent = 0;
  for (int b = 0; b < kBatches; ++b) {
    std::vector<Message> batch;
    for (int i = 0; i < kPerBatch; ++i) {
      batch.push_back(msg("key" + std::to_string((b + i) % kKeys), "v"));
      ++sent;
    }
    engine.run_batch(std::move(batch));
  }
  std::map<std::string, uint64_t> merged;
  for (size_t p = 0; p < 8; ++p) {
    for (const auto& [k, v] :
         dynamic_cast<CountTask&>(engine.task(p)).counts()) {
      merged[k] += v;
    }
  }
  uint64_t total = 0;
  for (const auto& [_, v] : merged) total += v;
  EXPECT_EQ(total, sent);
  EXPECT_EQ(merged.size(), kKeys);
  // Keyed partitioning: each key is counted on exactly one partition.
  for (size_t p = 0; p < 8; ++p) {
    for (const auto& [k, v] :
         dynamic_cast<CountTask&>(engine.task(p)).counts()) {
      EXPECT_EQ(v, merged[k]) << k;  // no key split across partitions
    }
  }
}

TEST(StreamingStress, HeartbeatsReachEveryPartitionEveryTime) {
  EngineOptions opts;
  opts.partitions = 5;
  opts.workers = 3;
  StreamEngine engine(opts, [](size_t) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<CountTask>();
  });
  for (int b = 0; b < 50; ++b) {
    std::vector<Message> batch;
    batch.push_back(msg("k" + std::to_string(b), "v"));
    batch.push_back(msg("src", "", kTagHeartbeat));
    engine.run_batch(std::move(batch));
  }
  for (size_t p = 0; p < 5; ++p) {
    EXPECT_EQ(dynamic_cast<CountTask&>(engine.task(p)).heartbeats(), 50u);
  }
}

TEST(StreamingStress, ControlOpsSerializedAgainstBatches) {
  // A control op mutates shared state with no lock of its own; if it ever
  // ran concurrently with a batch, the checker task would observe a torn
  // value. 500 alternations make a race overwhelmingly likely to surface.
  struct Shared {
    std::atomic<int> version{0};
    std::atomic<bool> torn{false};
  };
  auto shared = std::make_shared<Shared>();
  struct Checker : PartitionTask {
    std::shared_ptr<Shared> shared;
    explicit Checker(std::shared_ptr<Shared> s) : shared(std::move(s)) {}
    void process(const Message&, TaskContext&) override {
      int v1 = shared->version.load();
      std::this_thread::yield();
      int v2 = shared->version.load();
      if (v1 != v2) shared->torn = true;  // changed mid-batch
    }
  };
  EngineOptions opts;
  opts.partitions = 4;
  opts.workers = 4;
  StreamEngine engine(opts, [&shared](size_t) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<Checker>(shared);
  });
  for (int i = 0; i < 500; ++i) {
    engine.enqueue_control([shared] { shared->version.fetch_add(1); });
    std::vector<Message> batch;
    for (int k = 0; k < 16; ++k) batch.push_back(msg("k" + std::to_string(k), "v"));
    engine.run_batch(std::move(batch));
  }
  EXPECT_FALSE(shared->torn.load());
  EXPECT_EQ(shared->version.load(), 500);
}

TEST(StreamingStress, ProducersRaceJobRunner) {
  Broker broker;
  broker.create_topic("in", 4);
  broker.create_topic("out", 1);
  EngineOptions opts;
  opts.partitions = 4;
  opts.workers = 2;
  struct Echo : PartitionTask {
    void process(const Message& m, TaskContext& ctx) override { ctx.emit(m); }
  };
  StreamEngine engine(opts, [](size_t) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<Echo>();
  });
  JobRunner runner(broker, engine, {"in", "out", 64, 5});
  runner.start();
  constexpr int kThreads = 3;
  constexpr int kEach = 400;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&broker, t] {
      for (int i = 0; i < kEach; ++i) {
        Message m;
        m.key = "p" + std::to_string(t) + "-" + std::to_string(i);
        m.value = "x";
        m.tag = kTagData;
        broker.produce("in", std::move(m));
      }
    });
  }
  for (auto& p : producers) p.join();
  for (int spin = 0; spin < 400; ++spin) {
    if (broker.end_offset("out", 0) >= kThreads * kEach) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  runner.stop();
  EXPECT_EQ(broker.end_offset("out", 0),
            static_cast<uint64_t>(kThreads * kEach));
}

TEST(StreamingStress, RebroadcastUnderLoadNeverTearsValue) {
  auto bv = std::make_shared<Broadcast<std::string>>(
      1, std::string(1000, 'a'), 4);
  struct Reader : PartitionTask {
    std::shared_ptr<Broadcast<std::string>> bv;
    size_t partition;
    std::atomic<bool>* bad;
    Reader(std::shared_ptr<Broadcast<std::string>> b, size_t p,
           std::atomic<bool>* bad_flag)
        : bv(std::move(b)), partition(p), bad(bad_flag) {}
    void process(const Message&, TaskContext&) override {
      auto v = bv->value(partition);
      // A valid value is homogeneous; a torn one would not be.
      char c = (*v)[0];
      for (char x : *v) {
        if (x != c) {
          *bad = true;
          break;
        }
      }
    }
  };
  std::atomic<bool> bad{false};
  EngineOptions opts;
  opts.partitions = 4;
  opts.workers = 4;
  StreamEngine engine(opts, [&](size_t p) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<Reader>(bv, p, &bad);
  });
  for (int i = 0; i < 200; ++i) {
    engine.enqueue_control(
        [bv, i] { bv->update(std::string(1000, i % 2 == 0 ? 'b' : 'c')); });
    std::vector<Message> batch;
    for (int k = 0; k < 8; ++k) batch.push_back(msg("k" + std::to_string(k), "v"));
    engine.run_batch(std::move(batch));
  }
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(bv->version(), 200u);
}

}  // namespace
}  // namespace loglens
