// Out-of-order arrival robustness: logs reordered in flight (a reality the
// paper's arrival-time sorting glosses over) must not fake anomalies, as
// long as their embedded timestamps are intact.
#include <gtest/gtest.h>

#include <cstring>

#include "automata/detector.h"
#include "common/rng.h"
#include "datagen/datasets.h"
#include "service/service.h"

namespace loglens {
namespace {

ParsedLog elog(int pattern, const std::string& id, int64_t ts) {
  ParsedLog log;
  log.pattern_id = pattern;
  log.timestamp_ms = ts;
  log.fields.emplace_back("P" + std::to_string(pattern) + "F1", Json(id));
  log.raw = "p" + std::to_string(pattern);
  return log;
}

SequenceModel model_123() {
  SequenceModel m;
  m.id_fields = {{1, "P1F1"}, {2, "P2F1"}, {3, "P3F1"}};
  Automaton a;
  a.id = 1;
  a.begin_patterns = {1};
  a.end_patterns = {3};
  a.states[1] = {1, 1, 1};
  a.states[2] = {2, 1, 2};
  a.states[3] = {3, 1, 1};
  a.min_duration_ms = 100;
  a.max_duration_ms = 1000;
  a.transitions = {{1, 2}, {2, 2}, {2, 3}};
  m.automata.push_back(a);
  return m;
}

TEST(OutOfOrder, SwappedBeginAndMiddleDoNotAlarm) {
  SequenceDetector det(model_123());
  // Middle arrives before begin (network reordering); timestamps are true.
  EXPECT_TRUE(det.on_log(elog(2, "e1", 1100), "s").empty());
  EXPECT_TRUE(det.on_log(elog(1, "e1", 1000), "s").empty());
  auto anomalies = det.on_log(elog(3, "e1", 1300), "s");
  EXPECT_TRUE(anomalies.empty()) << anomalies.size() << " anomalies";
}

TEST(OutOfOrder, LegacyArrivalOrderModeStillAvailable) {
  DetectorOptions opts;
  opts.sort_by_log_time = false;  // the paper's arrival-order behaviour
  SequenceDetector det(model_123(), opts);
  det.on_log(elog(2, "e1", 1100), "s");
  det.on_log(elog(1, "e1", 1000), "s");
  auto anomalies = det.on_log(elog(3, "e1", 1300), "s");
  // In arrival order the event "starts" with pattern 2 -> missing begin.
  bool missing_begin = false;
  for (const auto& a : anomalies) {
    if (a.type == AnomalyType::kMissingBeginState) missing_begin = true;
  }
  EXPECT_TRUE(missing_begin);
}

TEST(OutOfOrder, TransitionsCheckedInTimestampOrder) {
  DetectorOptions opts;
  opts.check_transitions = true;
  SequenceDetector det(model_123(), opts);
  // Arrival order 2,2,1,3 but timestamp order 1,2,2,3 (all legal edges).
  det.on_log(elog(2, "e1", 1100), "s");
  det.on_log(elog(2, "e1", 1200), "s");
  det.on_log(elog(1, "e1", 1000), "s");
  auto anomalies = det.on_log(elog(3, "e1", 1300), "s");
  EXPECT_TRUE(anomalies.empty());
}

TEST(OutOfOrder, DurationUsesTrueSpanNotArrivalSpan) {
  SequenceDetector det(model_123());
  // Arrival compresses the event into one instant, but embedded timestamps
  // span 300 ms — inside the learned [100, 1000] window.
  det.on_log(elog(2, "e1", 1150), "s");
  det.on_log(elog(1, "e1", 1000), "s");
  EXPECT_TRUE(det.on_log(elog(3, "e1", 1300), "s").empty());
  // And a genuinely too-fast event still alarms.
  det.on_log(elog(2, "f1", 2010), "s");
  det.on_log(elog(1, "f1", 2000), "s");
  auto anomalies = det.on_log(elog(3, "f1", 2020), "s");
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].type, AnomalyType::kDurationViolation);
}

// Whole-pipeline property: reordering the stream across *different* events
// (the situation real transports create — per-key FIFO holds, cross-key
// order does not) leaves the detected set identical to the in-order run.
TEST(OutOfOrder, CrossEventShuffledStreamMatchesInOrderResults) {
  Dataset d1 = make_d1(0.03);
  auto event_of = [](const std::string& line) -> std::string {
    for (const char* key : {" job ", " txn "}) {
      size_t pos = line.find(key);
      if (pos == std::string::npos) continue;
      pos += std::strlen(key);
      size_t end = line.find(' ', pos);
      return line.substr(pos, end - pos);
    }
    return {};
  };
  // Disjoint adjacent swaps of different-event lines: every event's own
  // logs keep their relative order (per-key FIFO), but the interleaving —
  // and thus the arrival timestamps' global order — changes.
  std::vector<std::string> shuffled = d1.testing;
  Rng rng(777);
  for (size_t i = 0; i + 1 < shuffled.size(); i += 2) {
    if (rng.chance(0.7) &&
        event_of(shuffled[i]) != event_of(shuffled[i + 1])) {
      std::swap(shuffled[i], shuffled[i + 1]);
    }
  }
  ASSERT_NE(shuffled, d1.testing);

  auto run = [&](const std::vector<std::string>& stream) {
    ServiceOptions opts;
    opts.build.discovery = recommended_discovery("D1");
    LogLensService service(opts);
    service.train(d1.training);
    Agent agent = service.make_agent("D1");
    agent.replay(stream);
    service.drain();
    service.heartbeat_advance(24L * 3600 * 1000);
    service.drain();
    std::set<std::string> ids;
    for (const auto& a : service.anomalies().all()) {
      if (!a.event_id.empty()) ids.insert(a.event_id);
    }
    return ids;
  };

  EXPECT_EQ(run(shuffled), run(d1.testing));
  EXPECT_EQ(run(d1.testing), d1.anomalous_event_ids);
}

}  // namespace
}  // namespace loglens
