// Differential property test: regexlite vs a reference matcher.
//
// We generate random regex ASTs over a small alphabet, render them to
// pattern text, and compare regexlite's full_match against a direct
// AST-interpreting reference matcher on random inputs (including inputs
// biased to be near-matches). Any divergence is a bug in the engine's
// parser, compiler, or VM.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "regexlite/regex.h"

namespace loglens {
namespace {

// --- reference AST -----------------------------------------------------

struct Node {
  enum class Kind { kChar, kAny, kClass, kSeq, kAlt, kStar, kPlus, kOpt };
  Kind kind;
  char ch = 0;
  std::string cls;  // characters in the class
  bool negate = false;
  std::vector<std::unique_ptr<Node>> children;
};

using NodePtr = std::unique_ptr<Node>;

// Reference matcher: set-of-positions simulation (no backtracking bugs
// possible). Returns all end positions reachable from `starts`.
std::vector<size_t> match_positions(const Node& n, std::string_view text,
                                    const std::vector<size_t>& starts);

std::vector<size_t> unique_sorted(std::vector<size_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<size_t> match_positions(const Node& n, std::string_view text,
                                    const std::vector<size_t>& starts) {
  std::vector<size_t> out;
  switch (n.kind) {
    case Node::Kind::kChar:
      for (size_t s : starts) {
        if (s < text.size() && text[s] == n.ch) out.push_back(s + 1);
      }
      break;
    case Node::Kind::kAny:
      for (size_t s : starts) {
        if (s < text.size() && text[s] != '\n') out.push_back(s + 1);
      }
      break;
    case Node::Kind::kClass:
      for (size_t s : starts) {
        if (s >= text.size()) continue;
        bool in = n.cls.find(text[s]) != std::string::npos;
        if (in != n.negate) out.push_back(s + 1);
      }
      break;
    case Node::Kind::kSeq: {
      std::vector<size_t> cur = starts;
      for (const auto& c : n.children) {
        cur = match_positions(*c, text, cur);
        if (cur.empty()) break;
      }
      out = cur;
      break;
    }
    case Node::Kind::kAlt:
      for (const auto& c : n.children) {
        auto sub = match_positions(*c, text, starts);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      break;
    case Node::Kind::kStar:
    case Node::Kind::kPlus: {
      std::vector<size_t> all =
          n.kind == Node::Kind::kStar ? unique_sorted(starts)
                                      : std::vector<size_t>{};
      std::vector<size_t> frontier =
          unique_sorted(match_positions(*n.children[0], text, starts));
      while (!frontier.empty()) {
        std::vector<size_t> fresh;
        for (size_t p : frontier) {
          if (std::find(all.begin(), all.end(), p) == all.end()) {
            fresh.push_back(p);
            all.push_back(p);
          }
        }
        all = unique_sorted(all);
        if (fresh.empty()) break;
        frontier =
            unique_sorted(match_positions(*n.children[0], text, fresh));
      }
      out = all;
      break;
    }
    case Node::Kind::kOpt: {
      out = starts;
      auto sub = match_positions(*n.children[0], text, starts);
      out.insert(out.end(), sub.begin(), sub.end());
      break;
    }
  }
  return unique_sorted(out);
}

bool reference_full_match(const Node& n, std::string_view text) {
  auto ends = match_positions(n, text, {0});
  return std::find(ends.begin(), ends.end(), text.size()) != ends.end();
}

// --- random AST generation ---------------------------------------------

constexpr std::string_view kAlphabet = "abc1";

NodePtr random_node(Rng& rng, int depth) {
  auto n = std::make_unique<Node>();
  int pick = static_cast<int>(rng.below(depth <= 0 ? 3 : 8));
  switch (pick) {
    case 0:
      n->kind = Node::Kind::kChar;
      n->ch = kAlphabet[rng.below(kAlphabet.size())];
      break;
    case 1:
      n->kind = Node::Kind::kAny;
      break;
    case 2: {
      n->kind = Node::Kind::kClass;
      n->negate = rng.chance(0.3);
      size_t count = 1 + rng.below(3);
      for (size_t i = 0; i < count; ++i) {
        n->cls.push_back(kAlphabet[rng.below(kAlphabet.size())]);
      }
      break;
    }
    case 3: {
      n->kind = Node::Kind::kSeq;
      size_t count = 1 + rng.below(3);
      for (size_t i = 0; i < count; ++i) {
        n->children.push_back(random_node(rng, depth - 1));
      }
      break;
    }
    case 4: {
      n->kind = Node::Kind::kAlt;
      size_t count = 2 + rng.below(2);
      for (size_t i = 0; i < count; ++i) {
        n->children.push_back(random_node(rng, depth - 1));
      }
      break;
    }
    case 5:
      n->kind = Node::Kind::kStar;
      n->children.push_back(random_node(rng, depth - 1));
      break;
    case 6:
      n->kind = Node::Kind::kPlus;
      n->children.push_back(random_node(rng, depth - 1));
      break;
    default:
      n->kind = Node::Kind::kOpt;
      n->children.push_back(random_node(rng, depth - 1));
      break;
  }
  return n;
}

// Renders the AST in regexlite syntax.
std::string render(const Node& n) {
  switch (n.kind) {
    case Node::Kind::kChar: return std::string(1, n.ch);
    case Node::Kind::kAny: return ".";
    case Node::Kind::kClass: {
      std::string out = "[";
      if (n.negate) out += "^";
      out += n.cls;
      out += "]";
      return out;
    }
    case Node::Kind::kSeq: {
      std::string out;
      for (const auto& c : n.children) {
        bool wrap = c->kind == Node::Kind::kAlt;
        if (wrap) out += "(?:";
        out += render(*c);
        if (wrap) out += ")";
      }
      return out;
    }
    case Node::Kind::kAlt: {
      std::string out;
      for (size_t i = 0; i < n.children.size(); ++i) {
        if (i > 0) out += "|";
        out += render(*n.children[i]);
      }
      return out;
    }
    case Node::Kind::kStar:
    case Node::Kind::kPlus:
    case Node::Kind::kOpt: {
      std::string inner = render(*n.children[0]);
      bool wrap = n.children[0]->kind == Node::Kind::kSeq ||
                  n.children[0]->kind == Node::Kind::kAlt ||
                  n.children[0]->kind == Node::Kind::kStar ||
                  n.children[0]->kind == Node::Kind::kPlus ||
                  n.children[0]->kind == Node::Kind::kOpt || inner.empty();
      std::string out = wrap ? "(?:" + inner + ")" : inner;
      out += n.kind == Node::Kind::kStar ? "*"
             : n.kind == Node::Kind::kPlus ? "+" : "?";
      return out;
    }
  }
  return "";
}

std::string random_input(Rng& rng, size_t max_len) {
  std::string out;
  size_t len = rng.below(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng.below(kAlphabet.size())]);
  }
  return out;
}

TEST(RegexDifferential, RandomPatternsAgreeWithReference) {
  Rng rng(20260705);
  size_t checked = 0;
  for (int round = 0; round < 400; ++round) {
    NodePtr ast = random_node(rng, 4);
    std::string pattern = render(*ast);
    auto re = Regex::compile(pattern);
    ASSERT_TRUE(re.ok()) << pattern << ": " << re.status().message();
    for (int i = 0; i < 25; ++i) {
      std::string input = random_input(rng, 8);
      bool expected = reference_full_match(*ast, input);
      bool actual = re->full_match(input);
      ASSERT_EQ(actual, expected)
          << "pattern='" << pattern << "' input='" << input << "'";
      ++checked;
    }
  }
  EXPECT_EQ(checked, 400u * 25u);
}

TEST(RegexDifferential, SearchIsConsistentWithFullMatch) {
  // If full_match succeeds, search must find a match starting at 0 or
  // earlier... i.e., search must succeed on any full-matching input.
  Rng rng(42);
  for (int round = 0; round < 200; ++round) {
    NodePtr ast = random_node(rng, 3);
    std::string pattern = render(*ast);
    auto re = Regex::compile(pattern);
    ASSERT_TRUE(re.ok()) << pattern;
    for (int i = 0; i < 10; ++i) {
      std::string input = random_input(rng, 6);
      if (re->full_match(input)) {
        EXPECT_TRUE(re->search(input)) << pattern << " / " << input;
      }
    }
  }
}

}  // namespace
}  // namespace loglens
