// Post-facto analysis over archived logs (LogLensService::replay_archive):
// troubleshooting yesterday's logs with today's model, the Log Storage use
// case the paper's Figure 1 calls out.
#include <gtest/gtest.h>

#include <set>

#include "datagen/datasets.h"
#include "service/service.h"

namespace loglens {
namespace {

std::set<std::string> ids_of(const std::vector<Anomaly>& anomalies) {
  std::set<std::string> out;
  for (const auto& a : anomalies) {
    if (!a.event_id.empty()) out.insert(a.event_id);
  }
  return out;
}

class ReplayTest : public ::testing::Test {
 protected:
  ReplayTest() : d1_(make_d1(0.03)) {
    ServiceOptions opts;
    opts.build.discovery = recommended_discovery("D1");
    service_ = std::make_unique<LogLensService>(opts);
    service_->train(d1_.training);
    Agent agent = service_->make_agent("prod");
    agent.replay(d1_.testing);
    service_->drain();
  }

  Dataset d1_;
  std::unique_ptr<LogLensService> service_;
};

TEST_F(ReplayTest, ReplayMatchesLiveDetection) {
  auto result = service_->replay_archive("prod");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->logs, d1_.testing.size());
  EXPECT_EQ(result->unparsed, 0u);
  // The replay (which resolves open events itself) finds exactly the
  // injected ground truth — including the missing-end event the live run
  // only reports after heartbeats.
  EXPECT_EQ(ids_of(result->anomalies), d1_.anomalous_event_ids);
  // And the live pipeline's own store was not polluted by the replay.
  size_t live_count = service_->anomalies().count();
  service_->replay_archive("prod");
  EXPECT_EQ(service_->anomalies().count(), live_count);
}

TEST_F(ReplayTest, TimeWindowRestrictsReplay) {
  auto all = service_->replay_archive("prod");
  ASSERT_TRUE(all.ok());
  // A window covering nothing.
  auto none = service_->replay_archive("prod", 0, 1);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->logs, 0u);
  EXPECT_TRUE(none->anomalies.empty());
  // A window covering everything matches the unbounded replay.
  auto wide = service_->replay_archive("prod", 0, INT64_MAX);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->logs, all->logs);
}

TEST_F(ReplayTest, ReplayUsesTheCurrentlyDeployedModel) {
  // Delete the txn automaton, then replay: the archived txn anomalies
  // disappear from the replay results (today's model, yesterday's logs).
  ASSERT_TRUE(service_->models()
                  .edit(service_->model_name(),
                        [](CompositeModel& m) {
                          std::erase_if(m.sequence.automata,
                                        [](const Automaton& a) {
                                          return a.states.size() == 3;
                                        });
                        })
                  .ok());
  service_->drain();  // land the rebroadcast (live side; replay reads store)
  auto result = service_->replay_archive("prod");
  ASSERT_TRUE(result.ok());
  std::set<std::string> expected;
  for (const auto& [id, type] : d1_.anomaly_event_types) {
    if (type == 1) expected.insert(id);
  }
  EXPECT_EQ(ids_of(result->anomalies), expected);
}

TEST_F(ReplayTest, UnknownSourceFails) {
  EXPECT_FALSE(service_->replay_archive("nope").ok());
}

}  // namespace
}  // namespace loglens
